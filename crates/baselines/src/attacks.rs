//! Label-inference attacks from the paper's privacy evaluation.

use bf_ml::metrics::auc;
use bf_tensor::{Dense, Features};

/// Figure 9 — the forward-activation attack: Party A predicts labels
/// from `X_A · M` where `M` is whatever weight-like matrix A can see
/// (`W_A` under split learning; only the share `U_A` under BlindFL).
/// Returns the attack AUC (binary labels, single-column scores).
pub fn activation_attack_auc(x_a: &Features, m: &Dense, labels: &[f64]) -> f64 {
    assert_eq!(m.cols(), 1, "activation attack scores one column");
    let scores = x_a.matmul(m);
    auc(scores.data(), labels)
}

/// Multi-class variant of the activation attack: A scores `X_A·M` and
/// predicts the argmax class; returns accuracy.
pub fn activation_attack_accuracy(x_a: &Features, m: &Dense, labels: &[u32]) -> f64 {
    let scores = x_a.matmul(m);
    bf_ml::metrics::accuracy_multiclass(&scores, labels)
}

/// Figure 10 — the backward-derivative attack (after Li et al.): for
/// binary classification the derivatives of positive and negative
/// instances point in opposite directions, so within each batch Party A
/// clusters the rows of `∇E_A` by the sign of their cosine similarity
/// to an anchor row, and labels the two clusters optimally (a
/// two-way choice per batch). Returns overall training-label accuracy.
///
/// `recorded` is the `(∇E_A, true labels)` stream captured by the
/// split-learning run; the labels are used for scoring only.
pub fn derivative_attack_accuracy(recorded: &[(Dense, Vec<f64>)]) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (grads, labels) in recorded {
        let n = grads.rows();
        if n == 0 {
            continue;
        }
        // Split by the sign of the projection onto the dominant
        // direction of the derivative cloud (power iteration on GᵀG):
        // positive and negative instances push in opposite directions,
        // so the top principal axis separates them far more robustly
        // than any single anchor row.
        let d = grads.cols();
        let mut v: Vec<f64> = grads.row(0).to_vec();
        if v.iter().all(|&x| x == 0.0) {
            v[0] = 1.0;
        }
        for _ in 0..12 {
            // w = Gᵀ(G·v)
            let mut gv = vec![0.0f64; n];
            for i in 0..n {
                gv[i] = grads.row(i).iter().zip(&v).map(|(a, b)| a * b).sum();
            }
            let mut w = vec![0.0f64; d];
            for i in 0..n {
                for (wk, &g) in w.iter_mut().zip(grads.row(i)) {
                    *wk += gv[i] * g;
                }
            }
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for x in &mut w {
                *x /= norm;
            }
            v = w;
        }
        let mut same_cluster = vec![false; n];
        for i in 0..n {
            let dot: f64 = grads.row(i).iter().zip(&v).map(|(a, b)| a * b).sum();
            same_cluster[i] = dot >= 0.0;
        }
        // Two possible assignments; the adversary picks the better one
        // (in practice via class-prior side knowledge).
        let acc_a = same_cluster
            .iter()
            .zip(labels)
            .filter(|(&s, &l)| s == (l > 0.5))
            .count();
        let acc_b = n - acc_a;
        correct += acc_a.max(acc_b);
        total += n;
    }
    if total == 0 {
        return 0.0;
    }
    correct as f64 / total as f64
}

/// Requirement ② — Party A's *feature* leakage toward Party B: under
/// split learning B receives `Z_A = X_A·W_A` in plaintext, and because
/// `Z_A` is a fixed linear image of `X_A`, instances with similar
/// features have similar activations. This attack measures that
/// leak as the Spearman-style correlation between pairwise feature
/// distances `‖X_A[i]−X_A[j]‖` and pairwise activation distances
/// `‖V[i]−V[j]‖` for whatever view `V` Party B holds.
///
/// Under split learning `V = Z_A` and the correlation is high; under
/// BlindFL Party B's only per-instance view is the share
/// `Z'_A = X_A·U_A + ε + …` whose masks (`ε` drawn fresh per batch)
/// decorrelate it from `X_A`.
pub fn feature_similarity_attack(x_a: &Dense, view: &Dense, max_pairs: usize) -> f64 {
    assert_eq!(x_a.rows(), view.rows());
    let n = x_a.rows();
    let mut feat_d = Vec::new();
    let mut view_d = Vec::new();
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            feat_d.push(dist(x_a.row(i), x_a.row(j)));
            view_d.push(dist(view.row(i), view.row(j)));
            if feat_d.len() >= max_pairs {
                break 'outer;
            }
        }
    }
    bf_util::stats::pearson(&feat_d, &view_d)
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Pairwise-direction statistic used in the paper's discussion: the
/// fraction of instance pairs whose derivative directions agree with
/// their label relationship (same label ⇒ positive cosine, different ⇒
/// negative).
pub fn derivative_direction_consistency(grads: &Dense, labels: &[f64]) -> f64 {
    let n = grads.rows();
    if n < 2 {
        return 1.0;
    }
    let mut ok = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n.min(i + 50) {
            let dot: f64 = grads
                .row(i)
                .iter()
                .zip(grads.row(j))
                .map(|(a, b)| a * b)
                .sum();
            let same = (labels[i] > 0.5) == (labels[j] > 0.5);
            if (dot >= 0.0) == same {
                ok += 1;
            }
            total += 1;
        }
    }
    ok as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_attack_separates_when_weights_known() {
        // Labels = sign of x·w with known w ⇒ AUC 1.
        let x = Dense::from_vec(4, 2, vec![1.0, 0.0, -1.0, 0.0, 2.0, 1.0, -2.0, -1.0]);
        let w = Dense::from_vec(2, 1, vec![1.0, 0.5]);
        let scores = x.matmul(&w);
        let labels: Vec<f64> = scores
            .data()
            .iter()
            .map(|&s| if s > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let got = activation_attack_auc(&Features::Dense(x), &w, &labels);
        assert!((got - 1.0).abs() < 1e-12);
    }

    #[test]
    fn activation_attack_random_share_is_chance() {
        // Scores independent of labels ⇒ AUC ≈ 0.5.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let x = bf_tensor::init::gaussian(&mut rng, 500, 4, 1.0);
        let u = bf_tensor::init::gaussian(&mut rng, 4, 1, 1.0);
        let labels: Vec<f64> = (0..500).map(|i| (i % 2) as f64).collect();
        let got = activation_attack_auc(&Features::Dense(x), &u, &labels);
        assert!((got - 0.5).abs() < 0.1, "auc={got}");
    }

    #[test]
    fn derivative_attack_recovers_opposite_directions() {
        // Synthetic BCE-like derivatives: positives ∝ -v, negatives ∝ +v.
        let v = [0.3, -0.7, 0.2];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..64 {
            let pos = i % 3 == 0;
            let scale = 0.5 + (i as f64 % 5.0) * 0.1;
            let sign = if pos { -1.0 } else { 1.0 };
            rows.extend(v.iter().map(|&c| sign * scale * c));
            labels.push(if pos { 1.0 } else { 0.0 });
        }
        let grads = Dense::from_vec(64, 3, rows);
        let acc = derivative_attack_accuracy(&[(grads.clone(), labels.clone())]);
        assert!(acc > 0.99, "acc={acc}");
        let cons = derivative_direction_consistency(&grads, &labels);
        assert!(cons > 0.99);
    }

    #[test]
    fn feature_similarity_leaks_through_linear_activations() {
        // V = X·W (split learning): distances correlate strongly.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let x = bf_tensor::init::gaussian(&mut rng, 60, 6, 1.0);
        let w = bf_tensor::init::gaussian(&mut rng, 6, 4, 1.0);
        let z = x.matmul(&w);
        let corr = feature_similarity_attack(&x, &z, 500);
        assert!(corr > 0.5, "split-learning similarity leak corr={corr}");

        // V = random mask (BlindFL's share view): no correlation.
        let noise = bf_tensor::init::gaussian(&mut rng, 60, 4, 100.0);
        let masked = z.add(&noise);
        let corr_masked = feature_similarity_attack(&x, &masked, 500);
        assert!(
            corr_masked.abs() < 0.25,
            "masked view should decorrelate: {corr_masked}"
        );
    }

    #[test]
    fn derivative_attack_on_noise_is_weak() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        let grads = bf_tensor::init::gaussian(&mut rng, 128, 8, 1.0);
        let labels: Vec<f64> = (0..128).map(|i| ((i * 7) % 2) as f64).collect();
        let acc = derivative_attack_accuracy(&[(grads, labels)]);
        // Optimal two-way assignment on noise stays near 0.5 (above by
        // the max over two choices).
        assert!(acc < 0.65, "acc={acc}");
    }
}
