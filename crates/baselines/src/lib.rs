//! Baselines and adversaries for the BlindFL evaluation.
//!
//! * [`secureml`] — the MPC/data-outsourcing comparator of Table 5:
//!   secret-shared matrix multiplication via Beaver triplets, in both
//!   the *client-aided* (dealer triplets, crypto-free online phase) and
//!   *HE-assisted* (two-party Paillier triplet generation) variants.
//!   Outsourced features are dense by construction — reproducing the
//!   paper's argument that outsourcing destroys sparsity.
//! * [`split`] — the split-learning comparator (local bottom models,
//!   plaintext activation/derivative exchange): deliberately insecure,
//!   it is the attack surface for Figures 9 and 10.
//! * [`attacks`] — the label-inference adversaries: prediction from
//!   forward activations (`X_A·W_A` / `X_A·U_A`, Figure 9) and
//!   cosine-direction clustering of backward derivatives (`∇E_A`,
//!   Figure 10).

#![allow(clippy::needless_range_loop)] // index-parallel numeric loops
pub mod attacks;
pub mod secureml;
pub mod split;

pub use attacks::{activation_attack_auc, derivative_attack_accuracy, feature_similarity_attack};
pub use secureml::{secureml_batch_cost, SecuremlOutcome, TripletMode};
pub use split::{SplitGlm, SplitWdl};
