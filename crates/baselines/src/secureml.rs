//! SecureML-style secret-shared training cost model (Table 5).
//!
//! SecureML outsources features and weights as additive shares between
//! the two parties and multiplies them with Beaver triplets. One
//! training mini-batch costs two secret matmuls — forward
//! `⟨X⟩·⟨W⟩` (`bs×d · d×out`) and backward `⟨Xᵀ⟩·⟨∇Z⟩`
//! (`d×bs · bs×out`) — over **dense** share matrices: outsourced values
//! must not reveal which entries are zero, so sparsity cannot be
//! exploited (the paper's core efficiency argument).
//!
//! Two variants, as in the paper:
//! * **client-aided** — a non-colluding dealer supplies triplets, the
//!   online phase is crypto-free (fast at low dimension, but still
//!   `O(bs·d)` dense work),
//! * **HE-assisted** — the parties generate the triplet themselves with
//!   Paillier (Section "BlindFL vs. SecureML"; dominated by encrypting
//!   a `bs×d` share matrix every batch).
//!
//! For the paper-scale dimensionalities the harness refuses to allocate
//! (reporting OOM, as the paper does for SecureML on avazu/industry) or
//! measures a scaled-down run and extrapolates linearly in `d`,
//! flagging the result — see EXPERIMENTS.md.

use bf_mpc::beaver::{beaver_matmul, dealer_triple, he_gen_triple, TripleShare};
use bf_mpc::shares::{random_mask, share_dense};
use bf_mpc::transport::channel_pair;
use bf_paillier::{keygen, ObfMode, Obfuscator};
use bf_util::Stopwatch;
use rand::SeedableRng;

/// Triplet provisioning strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripletMode {
    /// Dealer-generated (client-aided): online phase only is timed.
    ClientAided,
    /// Two-party Paillier generation, timed as part of the batch.
    HeAssisted { key_bits: usize },
}

/// Result of a SecureML batch-cost measurement.
#[derive(Clone, Debug)]
pub enum SecuremlOutcome {
    /// Measured (or extrapolated) seconds per mini-batch.
    Ok {
        /// Seconds per batch.
        secs: f64,
        /// True when the number came from a scaled-down run
        /// extrapolated linearly in the feature dimension.
        extrapolated: bool,
    },
    /// The dense share/triplet matrices exceed the memory budget.
    Oom {
        /// Estimated bytes required.
        bytes: usize,
    },
}

/// Memory required for one batch of dense SecureML state: X shares,
/// triplet shares and opened E/F matrices on both parties.
pub fn batch_memory_bytes(bs: usize, d: usize, out: usize) -> usize {
    // Per party: X share (bs×d), A share (bs×d), E share + opened E
    // (2·bs×d), B/F (2·d×out + …), C (bs×out) — forward; the backward
    // matmul transposes the big matrix, same order. ≈ 5 copies of bs×d
    // dominate.
    2 * (5 * bs * d + 4 * d * out + 2 * bs * out) * 8
}

/// Measure the per-mini-batch matmul cost of SecureML training at the
/// given shape, within `budget_secs` of measurement time and
/// `mem_limit` bytes.
pub fn secureml_batch_cost(
    bs: usize,
    d: usize,
    out: usize,
    mode: TripletMode,
    budget_secs: f64,
    mem_limit: usize,
) -> SecuremlOutcome {
    let bytes = batch_memory_bytes(bs, d, out);
    if bytes > mem_limit {
        return SecuremlOutcome::Oom { bytes };
    }
    // Estimate a feasible dimension for direct measurement: calibrate
    // on a small probe, then decide whether to extrapolate.
    let probe_d = d.min(2_000);
    let probe_secs = run_batches(bs, probe_d, out, mode, 1);
    let predicted_full = probe_secs * d as f64 / probe_d as f64;
    if d == probe_d {
        return SecuremlOutcome::Ok {
            secs: probe_secs,
            extrapolated: false,
        };
    }
    if predicted_full <= budget_secs {
        let secs = run_batches(bs, d, out, mode, 1);
        SecuremlOutcome::Ok {
            secs,
            extrapolated: false,
        }
    } else {
        // Largest d that fits the budget, then linear extrapolation.
        let d_run = ((budget_secs / probe_secs) * probe_d as f64) as usize;
        let d_run = d_run.clamp(probe_d, d);
        let secs_run = run_batches(bs, d_run, out, mode, 1);
        SecuremlOutcome::Ok {
            secs: secs_run * d as f64 / d_run as f64,
            extrapolated: true,
        }
    }
}

/// Run `iters` SecureML mini-batches (forward + backward secret
/// matmuls) and return the mean seconds per batch.
fn run_batches(bs: usize, d: usize, out: usize, mode: TripletMode, iters: usize) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB1127);
    // Outsourced dense data (shared once, outside the timed loop).
    let x = random_mask(&mut rng, bs, d, 1.0);
    let w = random_mask(&mut rng, d, out, 0.1);
    let gz = random_mask(&mut rng, bs, out, 0.1);
    let (x1, x2) = share_dense(&mut rng, &x, 2.0);
    let (w1, w2) = share_dense(&mut rng, &w, 2.0);
    let (g1, g2) = share_dense(&mut rng, &gz, 2.0);

    let (ep1, ep2) = channel_pair();
    let mode2 = mode;
    let (x1t, x2t) = (x1.transpose(), x2.transpose());

    let handle = std::thread::Builder::new()
        .stack_size(16 << 20)
        .spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xA);
            let crypto = match mode2 {
                TripletMode::HeAssisted { key_bits } => {
                    let (pk, sk) = keygen(key_bits, 24, &mut rng);
                    let obf = Obfuscator::new(&pk, ObfMode::Pool(16), 1);
                    ep1.send(bf_mpc::Msg::Key(pk.clone())).expect("transport");
                    let peer = ep1.recv_key().expect("transport");
                    Some((pk, sk, obf, peer))
                }
                TripletMode::ClientAided => None,
            };
            for i in 0..iters {
                let (tf, tb) = match &crypto {
                    Some((pk, sk, obf, peer)) => {
                        let mut trng = rand::rngs::StdRng::seed_from_u64(100 + i as u64);
                        let tf = he_gen_triple(&ep1, pk, sk, obf, peer, bs, d, out, &mut trng)
                            .expect("transport");
                        let tb = he_gen_triple(&ep1, pk, sk, obf, peer, d, bs, out, &mut trng)
                            .expect("transport");
                        (tf, tb)
                    }
                    None => {
                        // Dealer share arrives out-of-band (free third
                        // party): deterministically mirrored on both
                        // sides for the benchmark.
                        (
                            dealer_share(bs, d, out, i as u64, true),
                            dealer_share(d, bs, out, i as u64 + 7_000, true),
                        )
                    }
                };
                let _z = beaver_matmul(&ep1, true, &x1, &w1, &tf).expect("transport");
                let _gw = beaver_matmul(&ep1, true, &x1t, &g1, &tb).expect("transport");
            }
        })
        .expect("spawn secureml party 1");

    let crypto = match mode {
        TripletMode::HeAssisted { key_bits } => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xB);
            let (pk, sk) = keygen(key_bits, 24, &mut rng);
            let obf = Obfuscator::new(&pk, ObfMode::Pool(16), 2);
            ep2.send(bf_mpc::Msg::Key(pk.clone())).expect("transport");
            let peer = ep2.recv_key().expect("transport");
            Some((pk, sk, obf, peer))
        }
        TripletMode::ClientAided => None,
    };
    let mut sw = Stopwatch::new();
    sw.start();
    for i in 0..iters {
        let (tf, tb) = match &crypto {
            Some((pk, sk, obf, peer)) => {
                let mut trng = rand::rngs::StdRng::seed_from_u64(200 + i as u64);
                let tf = he_gen_triple(&ep2, pk, sk, obf, peer, bs, d, out, &mut trng)
                    .expect("transport");
                let tb = he_gen_triple(&ep2, pk, sk, obf, peer, d, bs, out, &mut trng)
                    .expect("transport");
                (tf, tb)
            }
            None => (
                dealer_share(bs, d, out, i as u64, false),
                dealer_share(d, bs, out, i as u64 + 7_000, false),
            ),
        };
        let _z = beaver_matmul(&ep2, false, &x2, &w2, &tf).expect("transport");
        let _gw = beaver_matmul(&ep2, false, &x2t, &g2, &tb).expect("transport");
    }
    sw.stop();
    handle.join().expect("secureml party 1 panicked");
    sw.secs() / iters as f64
}

/// Deterministic "dealer" for the client-aided benchmark: both parties
/// derive consistent triplet shares from a common seed without
/// communicating (standing in for the free third party; generation is
/// deliberately outside the timed section).
fn dealer_share(m: usize, k: usize, n: usize, seed: u64, first: bool) -> TripleShare {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDEA1 ^ seed);
    let (t1, t2) = dealer_triple(&mut rng, m, k, n, 2.0);
    if first {
        t1
    } else {
        t2
    }
}

/// Reconstruction check used by tests: one secret forward matmul.
pub fn secureml_forward_check(bs: usize, d: usize, out: usize) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let x = random_mask(&mut rng, bs, d, 1.0);
    let w = random_mask(&mut rng, d, out, 1.0);
    let (x1, x2) = share_dense(&mut rng, &x, 5.0);
    let (w1, w2) = share_dense(&mut rng, &w, 5.0);
    let (t1, t2) = dealer_triple(&mut rng, bs, d, out, 5.0);
    let (ep1, ep2) = channel_pair();
    let h = std::thread::spawn(move || beaver_matmul(&ep1, true, &x1, &w1, &t1).unwrap());
    let z2 = beaver_matmul(&ep2, false, &x2, &w2, &t2).unwrap();
    let z1 = h.join().unwrap();
    let z = z1.add(&z2);
    z.sub(&x.matmul(&w)).max_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matmul_reconstructs() {
        let err = secureml_forward_check(8, 16, 3);
        assert!(err < 1e-8, "err {err}");
    }

    #[test]
    fn client_aided_cost_is_measurable() {
        let out = secureml_batch_cost(16, 500, 2, TripletMode::ClientAided, 5.0, 1 << 30);
        match out {
            SecuremlOutcome::Ok { secs, extrapolated } => {
                assert!(secs > 0.0 && secs < 5.0);
                assert!(!extrapolated);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn he_assisted_is_slower_than_client_aided() {
        let ca = secureml_batch_cost(8, 300, 1, TripletMode::ClientAided, 5.0, 1 << 30);
        let he = secureml_batch_cost(
            8,
            300,
            1,
            TripletMode::HeAssisted { key_bits: 256 },
            30.0,
            1 << 30,
        );
        let (SecuremlOutcome::Ok { secs: s_ca, .. }, SecuremlOutcome::Ok { secs: s_he, .. }) =
            (ca, he)
        else {
            panic!("expected Ok outcomes");
        };
        assert!(s_he > s_ca * 5.0, "he {s_he} vs ca {s_ca}");
    }

    #[test]
    fn oom_detection_at_paper_scale() {
        // industry: 10M features — dense shares cannot fit.
        let out = secureml_batch_cost(128, 10_000_000, 1, TripletMode::ClientAided, 1.0, 8 << 30);
        assert!(matches!(out, SecuremlOutcome::Oom { .. }));
    }

    #[test]
    fn memory_estimate_monotone() {
        assert!(batch_memory_bytes(128, 1_000_000, 1) > batch_memory_bytes(128, 1_000, 1));
    }
}
