//! Split-learning baselines (the insecure comparator of Figures 9/10).
//!
//! In split learning each party trains a *local bottom model* and
//! exchanges plaintext activations and derivatives. These
//! implementations deliberately expose exactly the intermediate values
//! the paper's attacks consume: Party A's `W_A` (and thus `X_A·W_A`)
//! for the activation attack, and the per-batch `∇E_A` stream for the
//! derivative attack. Since the information flow, not the wire
//! protocol, is what matters to the attacks, the two "parties" run in
//! one process.

use bf_ml::data::{Dataset, Labels};
use bf_ml::layers::{Bias, Embedding, LinearF, Mlp};
use bf_ml::models::loss_and_grad;
use bf_ml::optim::Sgd;
use bf_tensor::Dense;
use rand::Rng;

/// Split GLM (LR/MLR): Party A owns `W_A`, Party B owns `W_B` + bias +
/// labels; `Z_A = X_A·W_A` crosses in plaintext.
pub struct SplitGlm {
    /// Party A's bottom model (the leak).
    pub bottom_a: LinearF,
    bottom_b: LinearF,
    bias: Bias,
    out: usize,
}

impl SplitGlm {
    /// Construct for the two parties' feature widths.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_a: usize, in_b: usize, out: usize) -> Self {
        Self {
            bottom_a: LinearF::new(rng, in_a, out),
            bottom_b: LinearF::new(rng, in_b, out),
            bias: Bias::new(out),
            out,
        }
    }

    /// One mini-batch step; returns the loss.
    pub fn train_batch(&mut self, batch_a: &Dataset, batch_b: &Dataset, opt: &Sgd) -> f64 {
        let x_a = batch_a.num.as_ref().expect("party A features");
        let x_b = batch_b.num.as_ref().expect("party B features");
        let labels = batch_b.labels.as_ref().expect("labels at B");
        let z_a = self.bottom_a.forward(x_a); // plaintext to B
        let z_b = self.bottom_b.forward(x_b);
        let logits = self.bias.forward(&z_a.add(&z_b));
        let (loss, grad) = loss_and_grad(&logits, labels);
        // ∇Z_A = ∇Z_B = grad, both in plaintext.
        self.bias.backward(&grad);
        self.bottom_a.backward(&grad);
        self.bottom_b.backward(&grad);
        self.bias.step(opt);
        self.bottom_a.step(opt);
        self.bottom_b.step(opt);
        loss
    }

    /// Party A's local activations `X_A·W_A` — available to A at any
    /// time because A owns the bottom model (the Figure 9 leak).
    pub fn party_a_activations(&self, data_a: &Dataset) -> Dense {
        self.bottom_a
            .infer(data_a.num.as_ref().expect("party A features"))
    }

    /// Joint logits (Party B's view).
    pub fn predict(&self, data_a: &Dataset, data_b: &Dataset) -> Dense {
        let z_a = self.bottom_a.infer(data_a.num.as_ref().unwrap());
        let z_b = self.bottom_b.infer(data_b.num.as_ref().unwrap());
        self.bias.infer(&z_a.add(&z_b))
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out
    }
}

/// Split WDL for the Figure 10 derivative attack: Party A owns an
/// embedding table over its categorical fields; `E_A` flows to B in
/// plaintext, B runs the joint deep stack (with a configurable number
/// of hidden layers between the embeddings and the loss) and returns
/// `∇E_A` in plaintext — which A records.
pub struct SplitWdl {
    emb_a: Embedding,
    emb_b: Embedding,
    wide_b: LinearF,
    deep: Mlp,
    fields_a: usize,
    dim: usize,
    /// Party A's recorded `(∇E_A, batch labels)` stream — labels are
    /// kept only for attack evaluation, A never sees them.
    pub recorded: Vec<(Dense, Vec<f64>)>,
}

impl SplitWdl {
    /// Construct with `hidden_layers` ReLU layers between the embedding
    /// concat and the single output.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        vocab_a: usize,
        fields_a: usize,
        vocab_b: usize,
        fields_b: usize,
        in_b_num: usize,
        dim: usize,
        hidden_layers: usize,
    ) -> Self {
        #[allow(clippy::same_item_push)]
        let widths = {
            let mut widths = vec![(fields_a + fields_b) * dim];
            for _ in 0..hidden_layers {
                widths.push(16);
            }
            widths.push(1);
            widths
        };
        Self {
            emb_a: Embedding::new(rng, vocab_a, dim),
            emb_b: Embedding::new(rng, vocab_b, dim),
            wide_b: LinearF::new(rng, in_b_num, 1),
            deep: Mlp::new(rng, &widths),
            fields_a,
            dim,
            recorded: Vec::new(),
        }
    }

    /// One mini-batch step; records Party A's `∇E_A` alongside the true
    /// labels (for attack scoring only).
    pub fn train_batch(&mut self, batch_a: &Dataset, batch_b: &Dataset, opt: &Sgd) -> f64 {
        let cat_a = batch_a.cat.as_ref().expect("party A categorical");
        let cat_b = batch_b.cat.as_ref().expect("party B categorical");
        let x_b = batch_b.num.as_ref().expect("party B numerical");
        let labels = batch_b.labels.as_ref().expect("labels at B");

        let e_a = self.emb_a.forward(cat_a); // plaintext to B
        let e_b = self.emb_b.forward(cat_b);
        let e = e_a.hstack(&e_b);
        let deep_out = self.deep.forward(&e);
        let wide_out = self.wide_b.forward(x_b);
        let logits = deep_out.add(&wide_out);
        let (loss, grad) = loss_and_grad(&logits, labels);

        let g_e = self.deep.backward(&grad);
        // Split ∇E into the two parties' blocks; A's goes back in
        // plaintext — the Figure 10 leak.
        let d_a = self.fields_a * self.dim;
        let cols_a: Vec<usize> = (0..d_a).collect();
        let cols_b: Vec<usize> = (d_a..g_e.cols()).collect();
        let g_ea = g_e.select_cols(&cols_a);
        let g_eb = g_e.select_cols(&cols_b);
        if let Labels::Binary(y) = labels {
            self.recorded.push((g_ea.clone(), y.clone()));
        }
        self.emb_a.backward(&g_ea);
        self.emb_b.backward(&g_eb);
        self.wide_b.backward(&grad);
        self.emb_a.step(opt);
        self.emb_b.step(opt);
        self.wide_b.step(opt);
        self.deep.step(opt);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_datagen::{generate, spec, vsplit};
    use rand::SeedableRng;

    #[test]
    fn split_glm_trains() {
        let ds = spec("a9a").scaled(100, 1);
        let (train_ds, _) = generate(&ds, 1);
        let v = vsplit(&train_ds);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut m = SplitGlm::new(&mut rng, v.party_a.num_dim(), v.party_b.num_dim(), 1);
        let opt = Sgd::paper_default();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let idx: Vec<usize> = (0..128).collect();
            last = m.train_batch(&v.party_a.select(&idx), &v.party_b.select(&idx), &opt);
            first.get_or_insert(last);
        }
        assert!(last < first.unwrap(), "{first:?} -> {last}");
        // The leak: A's activations correlate with the labels.
        let z_a = m.party_a_activations(&v.party_a);
        assert_eq!(z_a.cols(), 1);
    }

    #[test]
    fn split_wdl_records_derivatives() {
        let ds = spec("a9a").scaled(200, 1);
        let (train_ds, _) = generate(&ds, 3);
        let v = vsplit(&train_ds);
        let cat_a = v.party_a.cat.as_ref().unwrap();
        let cat_b = v.party_b.cat.as_ref().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut m = SplitWdl::new(
            &mut rng,
            cat_a.vocab(),
            cat_a.fields(),
            cat_b.vocab(),
            cat_b.fields(),
            v.party_b.num_dim(),
            4,
            2,
        );
        let opt = Sgd::paper_default();
        for i in 0..3 {
            let idx: Vec<usize> = (i * 64..(i + 1) * 64).collect();
            m.train_batch(&v.party_a.select(&idx), &v.party_b.select(&idx), &opt);
        }
        assert_eq!(m.recorded.len(), 3);
        assert_eq!(m.recorded[0].0.rows(), 64);
    }
}
