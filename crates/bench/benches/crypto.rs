//! Criterion micro-benchmarks for the cryptography substrate: bignum
//! exponentiation, Paillier encrypt/decrypt, and the CryptoTensor
//! matmul kernels that dominate every protocol (Table 5's inner loop).

use bf_bigint::{BigUint, MontCtx};
use bf_paillier::{keygen, ObfMode, Obfuscator, PaillierMode, PublicKey};
use bf_tensor::{Csr, Dense, Features};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::time::Duration;

fn bench_bigint(c: &mut Criterion) {
    let mut g = c.benchmark_group("bigint");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    // 1024-bit odd modulus (the size of n² for a 512-bit key).
    let mut m = BigUint::from_u64(0xdead_beef_1234_5677);
    for i in 0..15u64 {
        m = m.shl(64).add_u64(0x9e3779b97f4a7c15 ^ i);
    }
    let m = if m.is_even() { m.add_u64(1) } else { m };
    let ctx = MontCtx::new(&m);
    let base = m.shr(1).sub_u64(12345);
    let small_exp = BigUint::from_u64(0x00ff_ffff_ffff); // 40-bit
    let big_exp = m.shr(2);

    g.bench_function("mont_mul_1024", |b| {
        let am = ctx.to_mont(&base);
        b.iter(|| ctx.mont_mul(&am, &am))
    });
    g.bench_function("pow_40bit_exp_1024", |b| {
        let am = ctx.to_mont(&base);
        b.iter(|| ctx.pow_mont(&am, &small_exp))
    });
    g.bench_function("pow_full_exp_1024", |b| {
        let am = ctx.to_mont(&base);
        b.iter(|| ctx.pow_mont(&am, &big_exp))
    });
    g.finish();
}

fn bench_paillier(c: &mut Criterion) {
    let mut g = c.benchmark_group("paillier_512");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let (pk, sk) = keygen(512, 32, &mut rng);
    let obf_pool = Obfuscator::new(&pk, ObfMode::Pool(32), 2);
    let obf_exact = Obfuscator::new(&pk, ObfMode::Exact, 3);
    let m = bf_tensor::init::uniform(&mut rng, 8, 8, 1.0);

    g.bench_function("encrypt_64_pooled", |b| {
        b.iter(|| pk.encrypt(&m, &obf_pool))
    });
    g.bench_function("encrypt_64_exact", |b| {
        b.iter(|| pk.encrypt(&m, &obf_exact))
    });
    let ct = pk.encrypt(&m, &obf_pool);
    g.bench_function("decrypt_64_crt", |b| b.iter(|| sk.decrypt(&ct)));

    // The packed hot path (4 slots per ciphertext at 512/32): the
    // standing speedup target lives in `crypto_hotpath`; these rows
    // keep the packed kernels visible in the bench-smoke timing table.
    g.bench_function("encrypt_64_packed_pooled", |b| {
        b.iter(|| pk.encrypt_mode(&m, PaillierMode::Packed, &obf_pool))
    });
    let ctp = pk.encrypt_mode(&m, PaillierMode::Packed, &obf_pool);
    g.bench_function("decrypt_64_packed_crt", |b| b.iter(|| sk.decrypt(&ctp)));
    g.finish();
}

fn bench_ctmat(c: &mut Criterion) {
    let mut g = c.benchmark_group("cryptotensor");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let (pk, _sk) = keygen(512, 32, &mut rng);
    let obf = Obfuscator::new(&pk, ObfMode::Pool(32), 5);

    // The Table 5 inner loop: sparse X (32×2000, ~16 nnz/row) times an
    // encrypted weight column.
    let mut triplets = Vec::new();
    for r in 0..32 {
        for k in 0..16u32 {
            triplets.push((r, (k * 125 + r as u32) % 2000, 1.0));
        }
    }
    let x_sparse = Features::Sparse(Csr::from_triplets(32, 2000, triplets));
    let w = bf_tensor::init::uniform(&mut rng, 2000, 1, 0.1);
    let cw = pk.encrypt(&w, &obf);
    g.bench_function("sparse_matmul_32x2000_nnz16", |b| {
        b.iter(|| pk.matmul(&x_sparse, &cw))
    });

    // Dense equivalent at the same nnz count (16 columns): what the
    // outsourcing baseline must pay is the full 2000 columns instead.
    let x_dense = Features::Dense(x_sparse.to_dense());
    g.bench_function("densified_matmul_32x2000", |b| {
        b.iter(|| pk.matmul(&x_dense, &cw))
    });

    // Gradient projection on the batch support.
    let gz = bf_tensor::init::uniform(&mut rng, 32, 1, 0.1);
    let cgz = pk.encrypt(&gz, &obf);
    let support = x_sparse.col_support();
    g.bench_function("t_matmul_support", |b| {
        b.iter(|| pk.t_matmul_support(&x_sparse, &cgz, &support))
    });

    // Multi-output weights (an MLP/MLR head) where packing engages:
    // the 16 columns ride in ceil(16/4) = 4 chunks per row.
    let w16 = bf_tensor::init::uniform(&mut rng, 2000, 16, 0.1);
    let cw16 = pk.encrypt_mode(&w16, PaillierMode::Packed, &obf);
    g.bench_function("sparse_matmul_packed_32x2000x16", |b| {
        b.iter(|| pk.matmul(&x_sparse, &cw16))
    });
    g.finish();
}

fn bench_plain_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("plain_backend");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    let pk = PublicKey::Plain { frac_bits: 32 };
    let obf = Obfuscator::new(&pk, ObfMode::Pool(2), 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let x = Features::Dense(bf_tensor::init::uniform(&mut rng, 128, 256, 1.0));
    let w: Dense = bf_tensor::init::uniform(&mut rng, 256, 16, 0.1);
    let cw = pk.encrypt(&w, &obf);
    g.bench_function("matmul_128x256x16", |b| b.iter(|| pk.matmul(&x, &cw)));
    g.finish();
}

criterion_group!(
    benches,
    bench_bigint,
    bench_paillier,
    bench_ctmat,
    bench_plain_backend
);
criterion_main!(benches);
