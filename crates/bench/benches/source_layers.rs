//! Criterion benchmarks of the federated source layers themselves —
//! one full forward+backward mini-batch per iteration (the unit Table 5
//! reports), plus the SecureML online phase for comparison.

use bf_bench::{cfg_quality, cfg_timing, matmul_source_batch_secs};
use bf_datagen::{generate, spec, vsplit};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_matmul_source(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_source_batch");
    g.measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);

    let ds = spec("a9a");
    let mut ds = ds.scaled(100, 1);
    ds.train_rows = 512;
    let (train, _) = generate(&ds, 1);
    let v = vsplit(&train);

    // Iteration = 1 measured batch (bs 64) through the full two-thread
    // protocol, Paillier 512 vs Plain.
    let (a, b) = (v.party_a.clone(), v.party_b.clone());
    g.bench_function("a9a_lr_paillier512_bs64", |bch| {
        bch.iter(|| matmul_source_batch_secs(&cfg_timing(), &a, &b, 1, 64, 1))
    });
    let (a, b) = (v.party_a.clone(), v.party_b.clone());
    g.bench_function("a9a_lr_plain_bs64", |bch| {
        bch.iter(|| matmul_source_batch_secs(&cfg_quality(), &a, &b, 1, 64, 1))
    });
    g.finish();
}

fn bench_secureml_online(c: &mut Criterion) {
    let mut g = c.benchmark_group("secureml_online");
    g.measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);
    use bf_baselines::secureml::{secureml_batch_cost, TripletMode};
    g.bench_function("client_aided_bs64_d123", |bch| {
        bch.iter(|| secureml_batch_cost(64, 123, 1, TripletMode::ClientAided, 5.0, 1 << 30))
    });
    g.finish();
}

criterion_group!(benches, bench_matmul_source, bench_secureml_online);
criterion_main!(benches);
