//! Crypto hot-path bench — scalar vs packed ciphertexts across
//! obfuscation settings.
//!
//! Times the four CryptoTensor operations every protocol round pays
//! (encrypt, plaintext×ciphertext matmul, homomorphic add, CRT
//! decrypt) under `PaillierMode::Scalar` and `PaillierMode::Packed`
//! at the timing key size (512-bit modulus, 32 fractional bits →
//! 4 slots per ciphertext), then sweeps the obfuscation modes
//! (exact draws, pools of several sizes, fixed-base windowed
//! exponentiation) over the encrypt path, which is where obfuscation
//! cost lives.
//!
//! Results go to `BENCH_crypto.json` at the repo root in
//! machine-readable form; the composite packed-over-scalar speedup is
//! asserted to stay above the 3× floor (CI greps the same floor from
//! the JSON, so a regression fails twice).

use bf_paillier::{keygen, ObfMode, Obfuscator, PaillierMode, PublicKey, SlotLayout};
use bf_tensor::Features;
use bf_util::Table;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Table 5-style shape: one mini-batch against one party's piece of a
/// multi-output first layer (an MLP/MLR head, so columns really pack).
const BATCH: usize = 32;
const FEATURES: usize = 128;
const OUT: usize = 16;
const REPS: usize = 3;
const FLOOR: f64 = 3.0;

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn obf_label(mode: ObfMode) -> String {
    match mode {
        ObfMode::Exact => "exact".to_string(),
        ObfMode::Pool(n) => format!("pool({n})"),
        ObfMode::FixedBase => "fixedbase".to_string(),
    }
}

struct OpRow {
    name: &'static str,
    scalar_secs: f64,
    packed_secs: f64,
}

impl OpRow {
    fn speedup(&self) -> f64 {
        self.scalar_secs / self.packed_secs
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FE);
    let (pk, sk) = keygen(512, 32, &mut rng);
    let PublicKey::Paillier(p) = &pk else {
        unreachable!()
    };
    let layout = SlotLayout::for_key(p.key_bits, p.frac_bits).expect("timing key packs");
    eprintln!(
        "[crypto_hotpath] 512-bit key, frac 32: {}-bit slots, {} per ciphertext",
        layout.slot_bits, layout.slots
    );

    let obf = Obfuscator::new(&pk, ObfMode::Pool(64), 0x0BF);
    let w = bf_tensor::init::uniform(&mut rng, FEATURES, OUT, 0.1);
    let x = Features::Dense(bf_tensor::init::uniform(&mut rng, BATCH, FEATURES, 1.0));

    // --- Main op-by-op comparison (pool(64), the timing default). ---
    eprintln!("[crypto_hotpath] op sweep ({BATCH}x{FEATURES} batch, {OUT}-column weights)...");
    let mut ops = Vec::new();
    let mut cts = Vec::new();
    for mode in [PaillierMode::Scalar, PaillierMode::Packed] {
        let enc = time_best(REPS, || pk.encrypt_mode(&w, mode, &obf));
        let cw = pk.encrypt_mode(&w, mode, &obf);
        let mm = time_best(REPS, || pk.matmul(&x, &cw));
        let cz = pk.matmul(&x, &cw);
        // Gradient-accumulation shape: adding two scale-2 tensors.
        let add = time_best(REPS, || pk.add(&cz, &cz));
        let dec = time_best(REPS, || sk.decrypt(&cz));
        cts.push((cw, cz, [enc, mm, add, dec]));
    }
    let (scalar_ct, _, s) = &cts[0];
    let (packed_ct, _, q) = &cts[1];
    assert!(
        packed_ct.is_packed(),
        "timing shape must take the packed path"
    );
    for (i, name) in ["encrypt", "matmul", "add", "decrypt"].iter().enumerate() {
        ops.push(OpRow {
            name,
            scalar_secs: s[i],
            packed_secs: q[i],
        });
    }
    let scalar_total: f64 = ops.iter().map(|o| o.scalar_secs).sum();
    let packed_total: f64 = ops.iter().map(|o| o.packed_secs).sum();
    let composite = scalar_total / packed_total;
    let wire_scalar = scalar_ct.wire_size();
    let wire_packed = packed_ct.wire_size();

    // --- Obfuscation sweep: encrypt is the only obfuscation consumer. ---
    eprintln!("[crypto_hotpath] obfuscation sweep...");
    let sweep_modes = [
        ObfMode::Exact,
        ObfMode::Pool(8),
        ObfMode::Pool(64),
        ObfMode::FixedBase,
    ];
    let mut sweep = Vec::new();
    for m in sweep_modes {
        let o = Obfuscator::new(&pk, m, 0x5EED);
        let sc = time_best(REPS, || pk.encrypt_mode(&w, PaillierMode::Scalar, &o));
        let pa = time_best(REPS, || pk.encrypt_mode(&w, PaillierMode::Packed, &o));
        eprintln!(
            "[crypto_hotpath]   {:>10}: scalar {:.4}s, packed {:.4}s ({:.1}x)",
            obf_label(m),
            sc,
            pa,
            sc / pa
        );
        sweep.push((m, sc, pa));
    }

    // Pool sizing from the measured draw rate: the obfuscator counts
    // its draws, and `sized_for` turns that into a birthday-bounded
    // pool (ISSUE: pools sized from measured rates, not guessed).
    let draws = obf.drawn();
    let sized = ObfMode::sized_for(draws);

    // --- Report. ---
    let mut t = Table::new(vec!["Op", "Scalar (s)", "Packed (s)", "Speedup"]);
    for o in &ops {
        t.row(vec![
            o.name.to_string(),
            format!("{:.4}", o.scalar_secs),
            format!("{:.4}", o.packed_secs),
            format!("{:.2}x", o.speedup()),
        ]);
    }
    t.row(vec![
        "composite".to_string(),
        format!("{scalar_total:.4}"),
        format!("{packed_total:.4}"),
        format!("{composite:.2}x"),
    ]);
    t.print();
    println!(
        "weight ciphertext wire bytes: scalar {wire_scalar}, packed {wire_packed} ({:.2}x smaller)",
        wire_scalar as f64 / wire_packed as f64
    );
    println!(
        "obf draws this run: {draws}; sized_for → {}",
        obf_label(sized)
    );

    // --- Machine-readable record. ---
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(m, sc, pa)| {
            format!(
                "    {{\"obf\": \"{}\", \"scalar_encrypt_secs\": {sc:.6}, \"packed_encrypt_secs\": {pa:.6}, \"speedup\": {:.3}}}",
                obf_label(*m),
                sc / pa
            )
        })
        .collect();
    let ops_json: Vec<String> = ops
        .iter()
        .map(|o| {
            format!(
                "    \"{}\": {{\"scalar_secs\": {:.6}, \"packed_secs\": {:.6}, \"speedup\": {:.3}}}",
                o.name,
                o.scalar_secs,
                o.packed_secs,
                o.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"crypto_hotpath\",\n  \"key_bits\": 512,\n  \"frac_bits\": 32,\n  \
         \"slot_bits\": {},\n  \"slots\": {},\n  \
         \"shape\": {{\"batch\": {BATCH}, \"features\": {FEATURES}, \"out\": {OUT}}},\n  \
         \"ops\": {{\n{}\n  }},\n  \
         \"composite_speedup\": {composite:.3},\n  \"floor\": {FLOOR:.1},\n  \"meets_3x_floor\": {},\n  \
         \"wire_bytes\": {{\"scalar\": {wire_scalar}, \"packed\": {wire_packed}}},\n  \
         \"obf_sweep\": [\n{}\n  ],\n  \
         \"pool_sizing\": {{\"draws_measured\": {draws}, \"sized_for\": \"{}\"}}\n}}\n",
        layout.slot_bits,
        layout.slots,
        ops_json.join(",\n"),
        composite >= FLOOR,
        sweep_json.join(",\n"),
        obf_label(sized),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json");
    std::fs::write(path, &json).expect("write BENCH_crypto.json");
    println!("wrote {path}");

    assert!(
        composite >= FLOOR,
        "packed composite speedup {composite:.2}x below the {FLOOR}x floor"
    );
    println!("composite speedup {composite:.2}x >= {FLOOR}x floor: ok");
}
