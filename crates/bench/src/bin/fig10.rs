//! Figure 10 — label leakage from backward derivatives.
//!
//! Split-learning WDL: Party A owns its embedding table and receives
//! `∇E_A` in plaintext every batch. The cosine-direction attack
//! recovers essentially all training labels, *regardless of how many
//! hidden layers separate the embeddings from the loss*. Under BlindFL
//! the attack input simply does not exist (A only ever sees `⟦∇E_A⟧`).

use bf_baselines::attacks::derivative_attack_accuracy;
use bf_baselines::split::SplitWdl;
use bf_bench::quality_spec;
use bf_datagen::{generate, vsplit};
use bf_ml::data::BatchIter;
use bf_ml::Sgd;
use bf_util::Table;
use rand::SeedableRng;

fn main() {
    println!("Figure 10: predicting training labels from ∇E_A (split-learning WDL)\n");
    let mut t = Table::new(vec![
        "Dataset",
        "#Hiddens = 2",
        "#Hiddens = 3",
        "#Hiddens = 4",
    ]);
    for name in ["a9a", "w8a"] {
        let mut cells = vec![name.to_string()];
        for hidden in [2usize, 3, 4] {
            cells.push(format!("{:.3}", attack_accuracy(name, hidden)));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\nExpected shape: ≈1.0 across the board — the derivative directions leak the labels\n\
         no matter how deep the top model is. BlindFL (not shown): Party A only observes\n\
         ⟦∇E_A⟧ under Party B's key, so the attack has no plaintext input at all."
    );
}

fn attack_accuracy(name: &str, hidden_layers: usize) -> f64 {
    let spec = quality_spec(name);
    let (train_ds, _) = generate(&spec, 0xF10);
    let v = vsplit(&train_ds);
    let cat_a = v.party_a.cat.as_ref().expect("categorical at A");
    let cat_b = v.party_b.cat.as_ref().expect("categorical at B");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut model = SplitWdl::new(
        &mut rng,
        cat_a.vocab(),
        cat_a.fields(),
        cat_b.vocab(),
        cat_b.fields(),
        v.party_b.num_dim(),
        8,
        hidden_layers,
    );
    let opt = Sgd::paper_default();
    for epoch in 0..3 {
        for idx in BatchIter::new(v.party_a.rows(), 128, epoch as u64) {
            model.train_batch(&v.party_a.select(&idx), &v.party_b.select(&idx), &opt);
        }
    }
    // Report the final epoch (the paper's Figure 10 plots accuracy vs
    // iteration, converging upward; the aggregate over early random-net
    // batches would understate the leak).
    let per_epoch = model.recorded.len() / 3;
    derivative_attack_accuracy(&model.recorded[model.recorded.len() - per_epoch..])
}
