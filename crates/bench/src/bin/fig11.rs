//! Figure 11 — model weights vs. their secret-share pieces.
//!
//! After training, a party's share piece (`U_A` of the MatMul weights,
//! `S_A` of the embedding table) must reveal neither the sign nor the
//! magnitude of the true value on any coordinate. We print sample
//! coordinates plus the aggregate informativeness statistics (Pearson
//! correlation and sign-agreement rate — both ≈ chance for a
//! protective sharing).

use bf_bench::{cfg_quality, quality_spec};
use bf_datagen::{generate, vsplit};
use bf_ml::TrainConfig;
use bf_util::Table;
use blindfl::inspect::{embed_share_vs_table, matmul_share_vs_weight, share_informativeness};
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};

fn main() {
    println!("Figure 11: true values vs. secret-share pieces (after training)\n");

    // w8a / LR — U_A vs W_A.
    let pairs = trained_pairs("w8a", FedSpec::Glm { out: 1 }, false);
    print_panel("w8a, LR — piece U_A vs weight W_A", &pairs);

    // a9a / WDL — S_A vs Q_A.
    let pairs = trained_pairs(
        "a9a",
        FedSpec::Wdl {
            emb_dim: 8,
            deep_hidden: vec![16],
            out: 1,
        },
        true,
    );
    print_panel("a9a, W&D — piece S_A vs table Q_A", &pairs);
}

fn trained_pairs(name: &str, spec: FedSpec, embed: bool) -> Vec<(f64, f64)> {
    let ds = quality_spec(name);
    let (train_ds, test_ds) = generate(&ds, 0xF11);
    let train_v = vsplit(&train_ds);
    let test_v = vsplit(&test_ds);
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs: 5,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &spec,
        &cfg_quality(),
        &tc,
        train_v.party_a,
        train_v.party_b,
        test_v.party_a,
        test_v.party_b,
        0xF11,
    );
    if embed {
        embed_share_vs_table(&outcome.party_a, &outcome.party_b)
    } else {
        matmul_share_vs_weight(&outcome.party_a, &outcome.party_b)
    }
}

fn print_panel(title: &str, pairs: &[(f64, f64)]) {
    println!("{title}");
    let mut t = Table::new(vec!["coordinate", "share piece", "true value"]);
    let step = (pairs.len() / 10).max(1);
    for (i, (p, w)) in pairs.iter().step_by(step).take(10).enumerate() {
        t.row(vec![
            (i * step).to_string(),
            format!("{p:+.3}"),
            format!("{w:+.5}"),
        ]);
    }
    t.print();
    let (corr, sign) = share_informativeness(pairs);
    let piece_mag = pairs.iter().map(|p| p.0.abs()).fold(0.0f64, f64::max);
    let true_mag = pairs.iter().map(|p| p.1.abs()).fold(0.0f64, f64::max);
    println!(
        "pearson(piece, truth) = {corr:+.4}   sign agreement = {sign:.3}   \
         max|piece| = {piece_mag:.2}   max|truth| = {true_mag:.4}\n"
    );
}
