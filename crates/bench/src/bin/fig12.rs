//! Figure 12 — model quality: training-loss trajectory and test metric
//! for BlindFL vs NonFed-collocated vs NonFed-Party-B across the eight
//! dataset/model combinations of the paper.
//!
//! Runs the Plain backend: the protocols are lossless (verified exactly
//! by the `blindfl` equivalence tests), so convergence matches the
//! Paillier backend while keeping this harness minutes-scale.

use bf_bench::{cfg_quality, quality_spec};
use bf_datagen::{generate, vsplit};
use bf_ml::models::{DlrmModel, GlmModel, WdlModel};
use bf_ml::{MlpModel, TrainConfig};
use bf_util::Table;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};
use rand::SeedableRng;

const EPOCHS: usize = 10;

struct Case {
    dataset: &'static str,
    model: &'static str,
}

fn main() {
    let cases = [
        Case {
            dataset: "a9a",
            model: "LR",
        },
        Case {
            dataset: "w8a",
            model: "LR",
        },
        Case {
            dataset: "connect-4",
            model: "MLP",
        },
        Case {
            dataset: "news20",
            model: "MLR",
        },
        Case {
            dataset: "higgs",
            model: "LR",
        },
        Case {
            dataset: "avazu-app",
            model: "LR",
        },
        Case {
            dataset: "avazu-app",
            model: "WDL",
        },
        Case {
            dataset: "industry",
            model: "DLRM",
        },
    ];
    println!("Figure 12: model quality — BlindFL vs non-federated baselines ({EPOCHS} epochs)\n");
    let mut t = Table::new(vec![
        "Dataset, Model",
        "Metric",
        "NonFed-Party B",
        "NonFed-collocated",
        "BlindFL",
        "BlindFL vs Party B",
        "loss first→last (BlindFL)",
    ]);
    for case in &cases {
        eprintln!("[fig12] {} / {} ...", case.dataset, case.model);
        let row = run_case(case);
        t.row(row);
    }
    t.print();
    println!(
        "\nExpected shape (paper): BlindFL ≈ NonFed-collocated on every combination (lossless),\n\
         and strictly better than NonFed-Party B (Party A's features add signal)."
    );
}

fn run_case(case: &Case) -> Vec<String> {
    let spec = quality_spec(case.dataset);
    let (train_ds, test_ds) = generate(&spec, 0xF12);
    let v_train = vsplit(&train_ds);
    let v_test = vsplit(&test_ds);
    let classes = spec.classes;
    let out = if classes == 2 { 1 } else { classes };
    let tc = TrainConfig {
        epochs: EPOCHS,
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);

    // Non-federated baselines.
    let (party_b, collocated) = match case.model {
        "LR" | "MLR" => {
            let mut mb = GlmModel::new(&mut rng, v_train.party_b.num_dim(), out);
            let rb = bf_ml::train(&mut mb, &v_train.party_b, &v_test.party_b, &tc);
            let mut mc = GlmModel::new(&mut rng, train_ds.num_dim(), out);
            let rc = bf_ml::train(&mut mc, &train_ds, &test_ds, &tc);
            (rb.test_metric, rc.test_metric)
        }
        "MLP" => {
            let widths = vec![64, 16, out];
            let mut mb = MlpModel::new(&mut rng, v_train.party_b.num_dim(), &widths);
            let rb = bf_ml::train(&mut mb, &v_train.party_b, &v_test.party_b, &tc);
            let mut mc = MlpModel::new(&mut rng, train_ds.num_dim(), &widths);
            let rc = bf_ml::train(&mut mc, &train_ds, &test_ds, &tc);
            (rb.test_metric, rc.test_metric)
        }
        "WDL" => {
            let run = |ds_train: &bf_ml::Dataset,
                       ds_test: &bf_ml::Dataset,
                       rng: &mut rand::rngs::StdRng| {
                let cat = ds_train.cat.as_ref().unwrap();
                let mut m = WdlModel::new(
                    rng,
                    ds_train.num_dim(),
                    cat.vocab(),
                    cat.fields(),
                    8,
                    &[16],
                    out,
                );
                bf_ml::train(&mut m, ds_train, ds_test, &tc).test_metric
            };
            (
                run(&v_train.party_b, &v_test.party_b, &mut rng),
                run(&train_ds, &test_ds, &mut rng),
            )
        }
        "DLRM" => {
            let run = |ds_train: &bf_ml::Dataset,
                       ds_test: &bf_ml::Dataset,
                       rng: &mut rand::rngs::StdRng| {
                let cat = ds_train.cat.as_ref().unwrap();
                let mut m = DlrmModel::new(
                    rng,
                    ds_train.num_dim(),
                    cat.vocab(),
                    cat.fields(),
                    8,
                    &[16],
                    &[16],
                    out,
                );
                bf_ml::train(&mut m, ds_train, ds_test, &tc).test_metric
            };
            (
                run(&v_train.party_b, &v_test.party_b, &mut rng),
                run(&train_ds, &test_ds, &mut rng),
            )
        }
        other => panic!("unknown model {other}"),
    };

    // BlindFL.
    let fed_spec = match case.model {
        "LR" | "MLR" => FedSpec::Glm { out },
        "MLP" => FedSpec::Mlp {
            widths: vec![64, 16, out],
        },
        "WDL" => FedSpec::Wdl {
            emb_dim: 8,
            deep_hidden: vec![16],
            out,
        },
        "DLRM" => FedSpec::Dlrm {
            emb_dim: 8,
            vec_dim: 16,
            top_hidden: vec![16],
        },
        _ => unreachable!(),
    };
    let ftc = FedTrainConfig {
        base: tc.clone(),
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &fed_spec,
        &cfg_quality(),
        &ftc,
        v_train.party_a.clone(),
        v_train.party_b.clone(),
        v_test.party_a.clone(),
        v_test.party_b.clone(),
        0xF12,
    );
    let fed = outcome.report.test_metric;
    let losses = &outcome.report.losses;
    let metric_name = if classes == 2 { "AUC" } else { "Accuracy" };

    vec![
        format!("{}, {}", case.dataset, case.model),
        metric_name.to_string(),
        format!("{party_b:.3}"),
        format!("{collocated:.3}"),
        format!("{fed:.3}"),
        format!("{:+.3}", fed - party_b),
        format!(
            "{:.3}→{:.3}",
            losses.first().copied().unwrap_or(f64::NAN),
            losses.last().copied().unwrap_or(f64::NAN)
        ),
    ]
}
