//! Figure 9 — label leakage from forward activations.
//!
//! Party A predicts the labels from its local view of the first layer:
//! `X_A·W_A` under split learning (it owns `W_A`), `X_A·U_A` under
//! BlindFL (it owns only the share `U_A`), and `X_A·U_A` under the
//! ModelSS-without-GradSS ablation (`U_A` updated with plaintext
//! gradients against a frozen `V_A` of varying magnitude). The paper's
//! finding: everything except full BlindFL leaks.

use bf_baselines::attacks::{activation_attack_accuracy, activation_attack_auc};
use bf_baselines::split::SplitGlm;
use bf_bench::{cfg_quality, quality_spec};
use bf_datagen::{generate, vsplit, VflData};
use bf_ml::data::{BatchIter, Labels};
use bf_ml::{Sgd, TrainConfig};
use bf_tensor::Dense;
use bf_util::Table;
use blindfl::config::GradMode;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};
use rand::SeedableRng;

const EPOCHS: usize = 10;

fn main() {
    run_dataset("w8a", 1, "Testing AUC");
    run_dataset("news20", 20, "Testing Accuracy");
}

fn run_dataset(name: &str, classes: usize, metric_name: &str) {
    let spec = quality_spec(name);
    let (train_ds, test_ds) = generate(&spec, 0xF19);
    let train_v = vsplit(&train_ds);
    let test_v = vsplit(&test_ds);
    let out = if classes == 2 { 1 } else { classes };

    println!("\nFigure 9: predicting labels from Party A's activations — {name} ({metric_name})\n");
    let mut table = Table::new(vec![
        "Epoch",
        "NonFed-collocated",
        "SplitLearning (X_A·W_A)",
        "BlindFL (X_A·U_A)",
        "noGradSS v=1",
        "noGradSS v=5",
        "noGradSS v=10",
    ]);

    // Reference: collocated model quality (flat line in the paper plot).
    let collocated = collocated_metric(&spec, &train_ds, &test_ds, out);

    // Split learning per-epoch attack.
    let split_attack = split_attack_curve(&train_v, &test_v, out);

    // BlindFL per-epoch attack via U_A snapshots.
    let blindfl_attack = fed_attack_curve(&train_v, &test_v, out, GradMode::SecretShared);
    let ablation: Vec<Vec<f64>> = [1.0, 5.0, 10.0]
        .iter()
        .map(|&v| {
            fed_attack_curve(
                &train_v,
                &test_v,
                out,
                GradMode::PlainGradToA { v_scale: v },
            )
        })
        .collect();

    for e in 0..EPOCHS {
        table.row(vec![
            (e + 1).to_string(),
            format!("{collocated:.3}"),
            format!("{:.3}", split_attack[e]),
            format!("{:.3}", blindfl_attack[e]),
            format!("{:.3}", ablation[0][e]),
            format!("{:.3}", ablation[1][e]),
            format!("{:.3}", ablation[2][e]),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: split learning and every no-GradSS ablation approach the collocated\n\
         metric (label leakage); BlindFL stays at chance ({}).",
        if classes == 2 {
            "≈0.5 AUC"
        } else {
            "≈1/C accuracy"
        }
    );
}

fn collocated_metric(
    spec: &bf_datagen::DatasetSpec,
    train: &bf_ml::Dataset,
    test: &bf_ml::Dataset,
    out: usize,
) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut m = bf_ml::GlmModel::new(&mut rng, spec.shape.features(), out);
    let tc = TrainConfig {
        epochs: EPOCHS,
        ..Default::default()
    };
    bf_ml::train(&mut m, train, test, &tc).test_metric
}

/// Attack metric on the test split given Party A's visible matrix.
fn attack_metric(test_v: &VflData, m: &Dense) -> f64 {
    let x_a = test_v.party_a.num.as_ref().unwrap();
    match test_v.party_b.labels.as_ref().unwrap() {
        Labels::Binary(y) => activation_attack_auc(x_a, m, y),
        Labels::Multi { y, .. } => activation_attack_accuracy(x_a, m, y),
    }
}

fn split_attack_curve(train_v: &VflData, test_v: &VflData, out: usize) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut model = SplitGlm::new(
        &mut rng,
        train_v.party_a.num_dim(),
        train_v.party_b.num_dim(),
        out,
    );
    let opt = Sgd::paper_default();
    let mut curve = Vec::new();
    for epoch in 0..EPOCHS {
        for idx in BatchIter::new(train_v.party_a.rows(), 128, 42 ^ epoch as u64) {
            model.train_batch(
                &train_v.party_a.select(&idx),
                &train_v.party_b.select(&idx),
                &opt,
            );
        }
        curve.push(attack_metric(test_v, &model.bottom_a.w));
    }
    curve
}

fn fed_attack_curve(
    train_v: &VflData,
    test_v: &VflData,
    out: usize,
    grad_mode: GradMode,
) -> Vec<f64> {
    let cfg = cfg_quality().with_grad_mode(grad_mode);
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs: EPOCHS,
            ..Default::default()
        },
        snapshot_u_a: true,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out },
        &cfg,
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        9,
    );
    outcome
        .report
        .u_a_snapshots
        .iter()
        .map(|u| attack_metric(test_v, u))
        .collect()
}
