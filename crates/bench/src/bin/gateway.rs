//! Gateway load-generator: many pipelined TCP clients against the
//! multi-replica serving gateway vs the single-queue baseline (see
//! `docs/SERVING.md` §gateway).
//!
//! The gateway (`blindfl::gateway`) multiplexes every client
//! connection onto a pool of serving replicas through sharded
//! micro-batch queues, so aggregate throughput scales with the pool
//! while each reply stays bit-identical to the direct forward. This
//! binary trains a small federated LR once, persists both halves, and
//! then drives the same request stream through two fleets:
//!
//! * **baseline** — a 1-replica gateway: the single-queue `serving`
//!   architecture behind the same TCP front door,
//! * **gateway** — an `R`-replica pool fed by the same client fleet.
//!
//! Every client pipelines its whole row plan before draining, so the
//! fleet holds thousands of requests in flight at once; the peak is
//! measured on the client side (submitted − completed) and the
//! gateway side (`GatewayReport::peak_in_flight`). The run replays
//! every replica's recorded batch partitions through the direct
//! `predict_batch` forward and compares bits, then writes a
//! machine-readable `BENCH_serving.json` at the repo root and asserts
//! the floors: ≥ 1000 concurrent in-flight across ≥ 4 client threads
//! and ≥ 2× the single-queue throughput.
//!
//! ```text
//! cargo run --release -p bf-bench --bin gateway
//! ```
//!
//! Env knobs: `GATEWAY_SCALE` (a9a row divisor, default 8 → a
//! 2000-row feature store), `GATEWAY_REQUESTS` (default 2000),
//! `GATEWAY_CLIENTS` (default 8), `GATEWAY_REPLICAS` (default 4),
//! `GATEWAY_MAX_BATCH` (default 32), `GATEWAY_SHARD_DEPTH`
//! (default 512), `GATEWAY_BACKEND` (`plain` | `paillier`, default
//! `plain` — the bench measures event-loop/pool scaling, not crypto),
//! `GATEWAY_NET` (`metro` | `lan` | `wan` | `none`, default `metro`:
//! a 5 ms / 1 Gbps guest link, the same-city cross-enterprise
//! deployment the paper implies).

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use bf_datagen::{generate, spec, vsplit};
use bf_mpc::transport::NetworkProfile;
use bf_util::{Stopwatch, Table};
use blindfl::config::FedConfig;
use blindfl::gateway::{
    gateway_replica_seed, run_gateway, GatewayClient, GatewayConfig, GatewayReplica, GatewayReport,
};
use blindfl::models::FedSpec;
use blindfl::persist::{export_party_a, export_party_b, import_party_a, import_party_b};
use blindfl::serve::serve_party_a;
use blindfl::session::{party_seed, run_pair, Role, Session};
use blindfl::train::{train_federated, FedTrainConfig};

const TRAIN_SEED: u64 = 0x5E17;
const SERVE_SEED: u64 = 0xCAFE;
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
const INFLIGHT_FLOOR: u64 = 1000;
const SPEEDUP_FLOOR: f64 = 2.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct FleetOut {
    report: GatewayReport,
    /// Wall-clock of the client fleet (connect → last drain).
    secs: f64,
    /// Peak submitted-but-unanswered across the whole client fleet.
    peak_client_inflight: u64,
    /// (row, logit bits) for every answered reply, across clients.
    answered: Vec<(u64, Vec<u64>)>,
}

/// Stand up a gateway over `n_replicas` in-process guest links and a
/// TCP front door, then drive it with a fleet of pipelined clients
/// that split `plans` between them.
fn run_fleet(
    cfg: &FedConfig,
    net: Option<NetworkProfile>,
    bytes_a: &[u8],
    bytes_b: &[u8],
    store_a: &bf_ml::Dataset,
    store_b: &bf_ml::Dataset,
    n_replicas: usize,
    gw_cfg: &GatewayConfig,
    plans: Vec<Vec<u64>>,
) -> FleetOut {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind front door");
    let addr = listener.local_addr().expect("front-door addr");
    let stop = AtomicBool::new(false);
    let submitted = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let peak = AtomicU64::new(0);
    std::thread::scope(|s| {
        let mut replicas = Vec::new();
        for r in 0..n_replicas {
            let (ep_a, ep_b) = match net {
                Some(p) => bf_mpc::channel_pair_with_network(p),
                None => bf_mpc::channel_pair(),
            };
            let seed = gateway_replica_seed(SERVE_SEED, r);
            let cfg_a = cfg.clone();
            let bytes_a = bytes_a.to_vec();
            let store_a = store_a.clone();
            std::thread::Builder::new()
                .name(format!("gw-guest-{r}"))
                .stack_size(16 << 20)
                .spawn_scoped(s, move || {
                    let mut sess =
                        Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, seed))
                            .expect("guest handshake");
                    let mut model = import_party_a(&bytes_a).expect("guest model");
                    serve_party_a(&mut sess, &mut model, &store_a).expect("guest serve loop");
                })
                .expect("spawn guest");
            let sess = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, seed))
                .expect("host handshake");
            let model = import_party_b(bytes_b).expect("host model");
            replicas.push(GatewayReplica::TwoParty { sess, model });
        }
        let stop_ref = &stop;
        let store_b_ref = &*store_b;
        let gw = std::thread::Builder::new()
            .name("gateway".into())
            .stack_size(16 << 20)
            .spawn_scoped(s, move || {
                run_gateway(listener, replicas, store_b_ref, gw_cfg, stop_ref).expect("gateway")
            })
            .expect("spawn gateway");
        let mut sw = Stopwatch::new();
        sw.start();
        let clients: Vec<_> = plans
            .into_iter()
            .enumerate()
            .map(|(c, plan)| {
                let (submitted, completed, peak) = (&submitted, &completed, &peak);
                std::thread::Builder::new()
                    .name(format!("gw-client-{c}"))
                    .spawn_scoped(s, move || {
                        let mut client =
                            GatewayClient::connect(addr, CONNECT_TIMEOUT).expect("connect");
                        // Pipeline the whole plan before reading a
                        // single reply: the fleet-wide in-flight count
                        // is what the bench is exercising.
                        for &row in &plan {
                            client.submit(row).expect("submit");
                            let up = submitted.fetch_add(1, Ordering::Relaxed) + 1;
                            let in_flight = up - completed.load(Ordering::Relaxed);
                            peak.fetch_max(in_flight, Ordering::Relaxed);
                        }
                        let mut answered = Vec::new();
                        while client.in_flight() > 0 {
                            let (row, reply) = client.recv().expect("recv");
                            completed.fetch_add(1, Ordering::Relaxed);
                            let logits = reply.expect("reply was a rejection");
                            answered.push((row, logits.iter().map(|v| v.to_bits()).collect()));
                        }
                        answered
                    })
                    .expect("spawn client")
            })
            .collect();
        let mut answered = Vec::new();
        for c in clients {
            answered.extend(c.join().expect("client thread"));
        }
        sw.stop();
        stop.store(true, Ordering::Relaxed);
        let report = gw.join().expect("gateway thread");
        FleetOut {
            report,
            secs: sw.secs(),
            peak_client_inflight: peak.load(Ordering::Relaxed),
            answered,
        }
    })
}

/// Replay one replica's recorded batch partitions through the direct
/// forward (fresh sessions, the replica's seed, no simulated link —
/// the bits don't depend on the transport). Returns row → logit bits.
fn replay_replica(
    cfg: &FedConfig,
    bytes_a: &[u8],
    bytes_b: &[u8],
    store_a: &bf_ml::Dataset,
    store_b: &bf_ml::Dataset,
    seed: u64,
    partitions: &[Vec<u32>],
) -> HashMap<u64, Vec<u64>> {
    let parts: Vec<Vec<usize>> = partitions
        .iter()
        .map(|p| p.iter().map(|&r| r as usize).collect())
        .collect();
    let bytes_a = bytes_a.to_vec();
    let store_a = store_a.clone();
    let parts_a = parts.clone();
    let bytes_b = bytes_b.to_vec();
    let store_b = store_b.clone();
    let (_, map) = run_pair(
        cfg,
        seed,
        move |mut sess| {
            let mut model = import_party_a(&bytes_a).expect("replay guest model");
            for p in &parts_a {
                model
                    .predict_batch(&mut sess, &store_a.select(p))
                    .expect("replay guest forward");
            }
        },
        move |mut sess| {
            let mut model = import_party_b(&bytes_b).expect("replay host model");
            let mut map = HashMap::new();
            for p in &parts {
                let logits = model
                    .predict_batch(&mut sess, &store_b.select(p))
                    .expect("replay host forward");
                for (k, &row) in p.iter().enumerate() {
                    let bits: Vec<u64> = logits.row(k).iter().map(|v| v.to_bits()).collect();
                    map.insert(row as u64, bits);
                }
            }
            map
        },
    );
    map
}

fn main() {
    let scale = env_usize("GATEWAY_SCALE", 8);
    let requests = env_usize("GATEWAY_REQUESTS", 2000);
    let clients = env_usize("GATEWAY_CLIENTS", 8).max(1);
    let n_replicas = env_usize("GATEWAY_REPLICAS", 4).max(1);
    let max_batch = env_usize("GATEWAY_MAX_BATCH", 32);
    let shard_depth = env_usize("GATEWAY_SHARD_DEPTH", 512);
    let backend = std::env::var("GATEWAY_BACKEND").unwrap_or_else(|_| "plain".into());
    let net_name = std::env::var("GATEWAY_NET").unwrap_or_else(|_| "metro".into());
    let cfg = match backend.as_str() {
        "paillier" => FedConfig::paillier_test(),
        _ => FedConfig::plain(),
    };
    let net = match net_name.as_str() {
        "none" => None,
        "lan" => Some(NetworkProfile::lan_10gbps()),
        "wan" => Some(NetworkProfile::wan_100mbps()),
        // Same-city cross-enterprise link: 5 ms one-way, 1 Gbps.
        _ => Some(NetworkProfile {
            latency: Duration::from_millis(5),
            bytes_per_sec: 125_000_000,
        }),
    };
    println!(
        "Federated serving gateway: {backend} backend, {net_name} guest links, \
         {requests} requests from {clients} clients over {n_replicas} replicas\n"
    );

    // Train → persist once; both fleets start from the same bytes.
    eprintln!("[gateway] training + persisting the model...");
    let ds = spec("a9a").scaled(scale, 1);
    let (train, test) = generate(&ds, 0xDA7A);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let tc = FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 1,
            batch_size: 64,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        &cfg,
        &tc,
        train_v.party_a,
        train_v.party_b,
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    let bytes_a = export_party_a(&outcome.party_a);
    let bytes_b = export_party_b(&outcome.party_b);
    let store_a = test_v.party_a;
    let store_b = test_v.party_b;
    let rows = store_b.rows();
    eprintln!(
        "[gateway] persisted models: A {} bytes, B {} bytes (AUC {:.3}); {rows}-row store",
        bytes_a.len(),
        bytes_b.len(),
        outcome.report.test_metric
    );

    // Row plans: globally distinct rows whenever the store is large
    // enough (row → bits is then single-valued and the replay-parity
    // check applies); otherwise wrap and skip parity.
    let distinct = requests <= rows;
    let plan_rows: Vec<u64> = (0..requests as u64).map(|r| r % rows as u64).collect();
    let plans = |n_clients: usize| -> Vec<Vec<u64>> {
        (0..n_clients)
            .map(|c| plan_rows[c..].iter().step_by(n_clients).copied().collect())
            .collect()
    };
    let gw_cfg = GatewayConfig {
        max_batch,
        shard_depth,
        conn_window: requests.div_ceil(clients).max(256),
        ..GatewayConfig::default()
    };

    eprintln!("[gateway] single-queue baseline (1 replica)...");
    let base = run_fleet(
        &cfg,
        net,
        &bytes_a,
        &bytes_b,
        &store_a,
        &store_b,
        1,
        &gw_cfg,
        plans(clients),
    );
    eprintln!("[gateway] {n_replicas}-replica pool...");
    let pool = run_fleet(
        &cfg,
        net,
        &bytes_a,
        &bytes_b,
        &store_a,
        &store_b,
        n_replicas,
        &gw_cfg,
        plans(clients),
    );

    for (name, out) in [("baseline", &base), ("gateway", &pool)] {
        assert_eq!(out.report.answered, requests as u64, "{name} answered");
        assert_eq!(out.report.rejected, 0, "{name} rejected");
        assert_eq!(out.report.orphaned, 0, "{name} orphaned");
        assert!(out.report.replica_failures.is_empty(), "{name} failures");
    }

    // Parity by replay: every reply the pool delivered must be
    // bit-identical to the direct forward under the replica's seed
    // and recorded batch partition.
    let parity_rows = if distinct {
        eprintln!("[gateway] replaying {n_replicas} replicas' partitions for bit-parity...");
        let mut replayed = HashMap::new();
        for (r, rep) in pool.report.replicas.iter().enumerate() {
            replayed.extend(replay_replica(
                &cfg,
                &bytes_a,
                &bytes_b,
                &store_a,
                &store_b,
                gateway_replica_seed(SERVE_SEED, r),
                &rep.batch_rows,
            ));
        }
        for (row, bits) in &pool.answered {
            assert_eq!(
                bits,
                replayed
                    .get(row)
                    .unwrap_or_else(|| panic!("row {row} absent from the replay")),
                "row {row}: gateway bits diverged from the direct forward"
            );
        }
        pool.answered.len()
    } else {
        eprintln!(
            "[gateway] note: {requests} requests > {rows} store rows — rows repeat, \
             replay parity skipped (run with GATEWAY_REQUESTS <= store rows to check it)"
        );
        0
    };

    let mut t = Table::new(vec![
        "fleet",
        "replicas",
        "requests",
        "wall secs",
        "req/s",
        "p50 lat ms",
        "p99 lat ms",
        "peak in-flight (client)",
        "peak in-flight (gateway)",
    ]);
    for (name, replicas, out) in [("baseline", 1, &base), ("gateway", n_replicas, &pool)] {
        t.row(vec![
            name.to_string(),
            format!("{replicas}"),
            format!("{}", out.report.answered),
            format!("{:.2}", out.secs),
            format!("{:.1}", out.report.answered as f64 / out.secs),
            format!("{:.1}", out.report.p50_latency_secs() * 1e3),
            format!("{:.1}", out.report.p99_latency_secs() * 1e3),
            format!("{}", out.peak_client_inflight),
            format!("{}", out.report.peak_in_flight),
        ]);
    }
    t.print();

    let base_qps = base.report.answered as f64 / base.secs;
    let pool_qps = pool.report.answered as f64 / pool.secs;
    let speedup = pool_qps / base_qps;
    println!(
        "\nsustained QPS: baseline {base_qps:.1}, gateway {pool_qps:.1} → {speedup:.2}x; \
         peak in-flight {} across {clients} clients",
        pool.peak_client_inflight
    );

    // The floors are defined for the serving-gateway scenario proper:
    // a replica pool behind real (simulated) links with a saturating
    // client fleet. Degenerate knob combos only warn.
    let strict =
        requests >= INFLIGHT_FLOOR as usize && clients >= 4 && n_replicas >= 4 && net.is_some();

    // --- Machine-readable record. ---
    let fleet_json = |out: &FleetOut, replicas: usize| {
        format!(
            "{{\"replicas\": {replicas}, \"answered\": {}, \"rejected\": {}, \
             \"wall_secs\": {:.4}, \"qps\": {:.1}, \"p50_latency_ms\": {:.2}, \
             \"p99_latency_ms\": {:.2}, \"peak_in_flight_client\": {}, \
             \"peak_in_flight_gateway\": {}}}",
            out.report.answered,
            out.report.rejected,
            out.secs,
            out.report.answered as f64 / out.secs,
            out.report.p50_latency_secs() * 1e3,
            out.report.p99_latency_secs() * 1e3,
            out.peak_client_inflight,
            out.report.peak_in_flight,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"gateway\",\n  \"backend\": \"{backend}\",\n  \"net\": \"{net_name}\",\n  \
         \"store_rows\": {rows},\n  \"requests\": {requests},\n  \"clients\": {clients},\n  \
         \"max_batch\": {max_batch},\n  \"shard_depth\": {shard_depth},\n  \
         \"baseline\": {},\n  \"gateway\": {},\n  \
         \"speedup\": {speedup:.3},\n  \"floor\": {SPEEDUP_FLOOR:.1},\n  \
         \"meets_2x_floor\": {},\n  \"inflight_floor\": {INFLIGHT_FLOOR},\n  \
         \"meets_inflight_floor\": {},\n  \
         \"parity\": {{\"replayed_rows\": {parity_rows}, \"bit_identical\": {distinct}}},\n  \
         \"strict\": {strict}\n}}\n",
        fleet_json(&base, 1),
        fleet_json(&pool, n_replicas),
        speedup >= SPEEDUP_FLOOR,
        pool.peak_client_inflight >= INFLIGHT_FLOOR,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("wrote {path}");

    if strict {
        assert!(
            pool.peak_client_inflight >= INFLIGHT_FLOOR,
            "client fleet must sustain >= {INFLIGHT_FLOOR} concurrent in-flight requests \
             (got {})",
            pool.peak_client_inflight
        );
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "{n_replicas}-replica gateway must reach >= {SPEEDUP_FLOOR}x the single-queue \
             throughput (got {speedup:.2}x)"
        );
        println!(
            "floors: in-flight {} >= {INFLIGHT_FLOOR}, speedup {speedup:.2}x >= \
             {SPEEDUP_FLOOR}x: ok",
            pool.peak_client_inflight
        );
    } else {
        eprintln!(
            "[gateway] note: floors not asserted on a degenerate config \
             (requests {requests}, clients {clients}, replicas {n_replicas}, net {net_name})"
        );
    }
}
