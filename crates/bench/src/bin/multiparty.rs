//! Multi-guest scaling experiment (paper Appendix C): federated LR
//! with `M ∈ {1, 2, 4, 8}` Party A's against one Party B, over the
//! in-process transport. One feature matrix is re-split vertically so
//! every `M` trains over the *same* virtually-joint data
//! (`bf_datagen::vsplit_multi`); the run reports per-M epoch
//! wall-clock, the per-link traffic in both directions, and the final
//! loss / AUC — each link speaks the unchanged two-party protocol over
//! a `1/M`-width feature slice, so per-link bytes shrink with `M` (the
//! support-sparse gradient messages scale with slice width) while the
//! host's total traffic grows.
//!
//! ```text
//! cargo run --release -p bf-bench --bin multiparty
//! ```
//!
//! Env knobs: `MULTIPARTY_ROWS` (default 256), `MULTIPARTY_EPOCHS`
//! (default 2), `MULTIPARTY_BACKEND` (`plain` | `paillier`, default
//! `plain`).

use bf_datagen::{generate, spec, vsplit_multi};
use bf_util::Table;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated_multi, FedTrainConfig, MultiFedOutcome};

const SEED: u64 = 0x3A27;
const BS: usize = 32;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn run(cfg: &FedConfig, m: usize, rows: usize, epochs: usize) -> MultiFedOutcome {
    let ds = spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 0xDA7A);
    let train_v = vsplit_multi(&train, m);
    let test_v = vsplit_multi(&test, m);
    let tc = FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs,
            batch_size: BS,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    train_federated_multi(
        &FedSpec::Glm { out: 1 },
        cfg,
        &tc,
        train_v.guests,
        train_v.party_b,
        test_v.guests,
        test_v.party_b,
        SEED,
    )
}

fn main() {
    let rows = env_usize("MULTIPARTY_ROWS", 256);
    let epochs = env_usize("MULTIPARTY_EPOCHS", 2);
    let backend = std::env::var("MULTIPARTY_BACKEND").unwrap_or_else(|_| "plain".into());
    let cfg = match backend.as_str() {
        "paillier" => FedConfig::paillier_test(),
        _ => FedConfig::plain(),
    };
    println!(
        "Multi-guest scaling: {backend} LR (a9a×{rows}, bs={BS}, {epochs} epochs), \
         M guests vs one Party B\n"
    );

    // Links carry unequal widths (the split hands the first
    // `width % M` guests one extra column), so per-link bytes are a
    // range, not one number.
    let span = |per_link: &[u64]| -> String {
        let min = per_link.iter().min().copied().unwrap_or(0);
        let max = per_link.iter().max().copied().unwrap_or(0);
        if min == max {
            format!("{min}")
        } else {
            format!("{min}–{max}")
        }
    };
    let mut t = Table::new(vec![
        "M",
        "epoch secs",
        "final loss",
        "AUC",
        "A(i)→B bytes/link",
        "B→A(i) bytes/link",
        "total bytes",
    ]);
    for m in [1usize, 2, 4, 8] {
        eprintln!("[multiparty] M = {m}...");
        let out = run(&cfg, m, rows, epochs);
        let r = &out.report;
        let total: u64 = r.bytes_a_to_b_per_link.iter().sum::<u64>()
            + r.bytes_b_to_a_per_link.iter().sum::<u64>();
        t.row(vec![
            format!("{m}"),
            format!("{:.3}", r.train_secs / epochs as f64),
            format!("{:.4}", r.losses.last().copied().unwrap_or(f64::NAN)),
            format!("{:.3}", r.test_metric),
            span(&r.bytes_a_to_b_per_link),
            span(&r.bytes_b_to_a_per_link),
            format!("{total}"),
        ]);
    }
    t.print();
    println!("\nmultiparty scaling bench completed (M = 1, 2, 4, 8)");
}
