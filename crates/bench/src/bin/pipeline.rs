//! Pipeline-speedup experiment: the pipelined mini-batch engine vs the
//! lock-step loop on the Paillier LR workload over a simulated WAN
//! (`NetworkProfile::wan_100mbps` — 100 Mbps, 20 ms one-way).
//!
//! The paper's GMP system hides ciphertext-transfer time behind crypto
//! compute (§7); this binary measures how much of that our engine
//! recovers: same protocol, same bytes, same loss curve (asserted),
//! epoch wall-clock compared. Also prints Party B's per-stage time
//! attribution for the pipelined run.
//!
//! ```text
//! cargo run --release -p bf-bench --bin pipeline
//! ```
//!
//! Env knobs: `PIPELINE_ROWS` (default 192), `PIPELINE_EPOCHS`
//! (default 2).

use bf_datagen::{generate, spec, vsplit, VflData};
use bf_mpc::transport::{channel_pair_with_network, NetworkProfile};
use bf_util::Table;
use blindfl::config::FedConfig;
use blindfl::engine::TrainMode;
use blindfl::models::FedSpec;
use blindfl::session::{party_seed, Role, Session};
use blindfl::train::{run_party_a, run_party_b, FedTrainConfig, PartyBRun};

const SEED: u64 = 0xB11D;
const BS: usize = 32;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn datasets(rows: usize) -> (VflData, VflData) {
    let ds = spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 0xDA7A);
    (vsplit(&train), vsplit(&test))
}

struct RunOut {
    b: PartyBRun,
    bytes_a: u64,
    train_secs: f64,
}

/// One federated-LR run over an in-process pair with the WAN profile.
fn run(cfg: &FedConfig, mode: TrainMode, rows: usize, epochs: usize) -> RunOut {
    let (train_v, test_v) = datasets(rows);
    let (ep_a, ep_b) = channel_pair_with_network(NetworkProfile::wan_100mbps());
    let tc = FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs,
            batch_size: BS,
            ..Default::default()
        },
        snapshot_u_a: false,
        mode,
        ..Default::default()
    };
    let fed = FedSpec::Glm { out: 1 };

    let cfg_a = cfg.clone();
    let tc_a = tc.clone();
    let fed_a = fed.clone();
    let (train_a, test_a) = (train_v.party_a.clone(), test_v.party_a.clone());
    let guest = std::thread::Builder::new()
        .name("pipeline-party-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SEED))
                .expect("A handshake");
            run_party_a(&mut sess, &fed_a, &tc_a, &train_a, &test_a)
                .expect("party A run")
                .bytes_sent
        })
        .expect("spawn party A");
    let mut sess =
        Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SEED)).expect("B");
    let b = run_party_b(&mut sess, &fed, &tc, &train_v.party_b, &test_v.party_b).expect("party B");
    let bytes_a = guest.join().expect("party A thread");
    let train_secs = b.train_secs;
    RunOut {
        b,
        bytes_a,
        train_secs,
    }
}

fn main() {
    let rows = env_usize("PIPELINE_ROWS", 192);
    let epochs = env_usize("PIPELINE_EPOCHS", 2);
    let cfg = FedConfig::paillier_test();
    println!(
        "Pipeline speedup: Paillier LR (a9a×{rows}, bs={BS}, {epochs} epochs) over wan_100mbps\n"
    );

    eprintln!("[pipeline] sync run...");
    let sync = run(&cfg, TrainMode::Sync, rows, epochs);
    eprintln!("[pipeline] pipelined run...");
    let pipe = run(&cfg, TrainMode::pipelined(), rows, epochs);

    // Determinism contract: pipelining may only move wall-clock.
    assert_eq!(
        sync.b.losses, pipe.b.losses,
        "loss curves must be bit-identical across modes"
    );
    assert_eq!(sync.bytes_a, pipe.bytes_a, "A→B bytes diverged");
    assert_eq!(sync.b.bytes_sent, pipe.b.bytes_sent, "B→A bytes diverged");

    let speedup = sync.train_secs / pipe.train_secs;
    let mut t = Table::new(vec!["mode", "epoch secs", "AUC", "A→B bytes", "B→A bytes"]);
    for (name, r) in [("sync", &sync), ("pipelined", &pipe)] {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", r.train_secs / epochs as f64),
            format!("{:.3}", r.b.test_metric),
            format!("{}", r.bytes_a),
            format!("{}", r.b.bytes_sent),
        ]);
    }
    t.print();

    println!("\nParty B stage attribution (pipelined run):");
    let mut st = Table::new(vec!["stage", "secs"]);
    for (label, secs) in &pipe.b.stage_secs {
        st.row(vec![label.to_string(), format!("{secs:.3}")]);
    }
    st.print();

    println!("\nepoch-time speedup: {speedup:.2}x (pipelined vs sync)");
    if speedup < 1.3 {
        eprintln!("[pipeline] WARNING: speedup below the 1.3x target — is the machine loaded?");
    }
}
