//! PSI sample-alignment bench: overlap fraction vs accuracy vs
//! per-phase traffic (PSI vs training), with and without the
//! limited-overlap local encoder (Sun et al.; `docs/ARCHITECTURE.md`
//! §sample alignment).
//!
//! ```text
//! cargo run --release -p bf-bench --bin psi
//! ```
//!
//! Each cell builds a misaligned vertical split
//! ([`bf_datagen::vsplit_misaligned`]) at one overlap fraction, runs
//! the full PSI-aligned federated pipeline
//! ([`blindfl::train_federated_aligned`]), and records the test
//! metric plus the exact byte split between the alignment phase and
//! training. The `encoded` mode additionally fits the guest's
//! StandardScaler+PCA encoder on *all* of its local rows — the
//! unaligned remainder contributes — before training on the encoded
//! intersection.
//!
//! Two parity contracts are checked en route and summarised in the
//! greppable `intersection_parity=ok` line CI looks for:
//!
//! * every cell's PSI intersection equals the planted overlap set, in
//!   canonical order, on both parties;
//! * the `overlap=1.0 raw` cell's loss curve and metric are
//!   bit-identical to a vanilla pre-aligned [`train_federated`] run —
//!   full overlap degenerates to the paper's aligned-instances
//!   assumption exactly.
//!
//! Results go to `BENCH_psi.json` at the repo root.
//!
//! Env knobs: `PSI_ROW_DIV` (a9a row divisor, default 64),
//! `PSI_EPOCHS` (default 3), `PSI_BATCH` (default 16), `PSI_BACKEND`
//! (`plain` | `paillier`, default plain), `PSI_ENCODER_DIM`
//! (default 8).

use bf_datagen::{generate, sample_id, spec as dataset_spec, vsplit, vsplit_misaligned};
use bf_util::Table;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};
use blindfl::{train_federated_aligned, LimitedOverlapConfig};

const SEED: u64 = 47;
const DATA_SEED: u64 = 19;
const FRACS: [f64; 4] = [0.1, 0.3, 0.5, 1.0];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Cell {
    overlap_frac: f64,
    mode: &'static str,
    aligned_rows: usize,
    guest_local_rows: usize,
    test_metric: f64,
    /// PSI-phase bytes, both directions summed.
    psi_bytes: u64,
    /// Training/inference bytes (run totals minus the PSI phase).
    train_bytes: u64,
    train_secs: f64,
    intersection_ok: bool,
}

fn main() {
    let row_div = env_usize("PSI_ROW_DIV", 64);
    let epochs = env_usize("PSI_EPOCHS", 3);
    let bs = env_usize("PSI_BATCH", 16);
    let encoder_dim = env_usize("PSI_ENCODER_DIM", 8);
    let backend = std::env::var("PSI_BACKEND").unwrap_or_else(|_| "plain".into());
    let cfg = match backend.as_str() {
        "paillier" => FedConfig::paillier_test(),
        _ => FedConfig::plain(),
    };
    let spec = FedSpec::Glm { out: 1 };
    let tc = FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs,
            batch_size: bs,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };

    let ds = dataset_spec("a9a").scaled(row_div, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let test_v = vsplit(&test);
    println!(
        "PSI alignment sweep: a9a ÷ {row_div} ({} train rows), {epochs} epochs, \
         batch {bs}, backend {backend}\n",
        train.rows()
    );

    // The pre-aligned reference the overlap=1.0 raw cell must hit
    // bit-for-bit.
    let full = vsplit(&train);
    let reference = train_federated(
        &spec,
        &cfg,
        &tc,
        full.party_a,
        full.party_b,
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        SEED,
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut full_overlap_parity = true;
    for frac in FRACS {
        let mis = vsplit_misaligned(&train, frac, DATA_SEED);
        let want_ids: Vec<u64> = mis.overlap_rows.iter().map(|&r| sample_id(r)).collect();
        let modes: [(&'static str, Option<LimitedOverlapConfig>); 2] = [
            ("raw", None),
            (
                "encoded",
                Some(LimitedOverlapConfig {
                    encoder_dim,
                    ..Default::default()
                }),
            ),
        ];
        for (mode, overlap) in modes {
            eprintln!("[psi] overlap={frac} {mode} cell...");
            let out = train_federated_aligned(
                &spec,
                &cfg,
                &tc,
                mis.party_a.data.clone(),
                mis.party_a.ids.clone(),
                mis.party_b.data.clone(),
                mis.party_b.ids.clone(),
                test_v.party_a.clone(),
                test_v.party_b.clone(),
                overlap.as_ref(),
                SEED,
            );
            let intersection_ok = out.align_a.ids == want_ids && out.align_b.ids == want_ids;
            if frac == 1.0 && mode == "raw" {
                full_overlap_parity = out.report.losses == reference.report.losses
                    && out.report.test_metric == reference.report.test_metric;
            }
            let psi_bytes = out.align_a.psi_bytes_sent + out.align_b.psi_bytes_sent;
            let total = out.report.bytes_a_to_b + out.report.bytes_b_to_a;
            cells.push(Cell {
                overlap_frac: frac,
                mode,
                aligned_rows: out.align_a.len(),
                guest_local_rows: mis.party_a.ids.len(),
                test_metric: out.report.test_metric,
                psi_bytes,
                train_bytes: total - psi_bytes,
                train_secs: out.report.train_secs,
                intersection_ok,
            });
        }
    }

    let mut t = Table::new(vec![
        "overlap",
        "mode",
        "aligned rows",
        "guest rows",
        "test metric",
        "PSI KiB",
        "train KiB",
        "secs",
    ]);
    for c in &cells {
        t.row(vec![
            format!("{:.1}", c.overlap_frac),
            c.mode.to_string(),
            c.aligned_rows.to_string(),
            c.guest_local_rows.to_string(),
            format!("{:.4}", c.test_metric),
            format!("{}", c.psi_bytes >> 10),
            format!("{}", c.train_bytes >> 10),
            format!("{:.2}", c.train_secs),
        ]);
    }
    t.print();

    let intersection_all = cells.iter().all(|c| c.intersection_ok) && full_overlap_parity;
    println!(
        "\nintersection_parity={}",
        if intersection_all { "ok" } else { "FAIL" }
    );

    let cell_lines: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"overlap_frac\": {:.1}, \"mode\": \"{}\", \"aligned_rows\": {}, \
                 \"guest_local_rows\": {}, \"test_metric\": {:.6}, \"psi_bytes\": {}, \
                 \"train_bytes\": {}, \"train_secs\": {:.4}, \"intersection_ok\": {}}}",
                c.overlap_frac,
                c.mode,
                c.aligned_rows,
                c.guest_local_rows,
                c.test_metric,
                c.psi_bytes,
                c.train_bytes,
                c.train_secs,
                c.intersection_ok,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"psi\",\n  \"dataset\": \"a9a\",\n  \"row_div\": {row_div},\n  \
         \"train_rows\": {},\n  \"epochs\": {epochs},\n  \"batch_size\": {bs},\n  \
         \"backend\": \"{backend}\",\n  \"encoder_dim\": {encoder_dim},\n  \
         \"cells\": [\n{}\n  ],\n  \"full_overlap_parity\": {full_overlap_parity},\n  \
         \"intersection_parity\": {intersection_all},\n  \"completed\": true\n}}\n",
        train.rows(),
        cell_lines.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_psi.json");
    std::fs::write(path, &json).expect("write BENCH_psi.json");
    println!("wrote {path}");

    assert!(
        intersection_all,
        "PSI alignment diverged from the planted overlap — the \
         alignment contract is broken"
    );
}
