//! Serving-throughput experiment: micro-batched federated inference
//! vs sequential single-row requests on the Paillier backend (see
//! `docs/SERVING.md`).
//!
//! The serving runtime (`blindfl::serve`) coalesces concurrent
//! prediction requests into one federated forward pass, amortizing the
//! per-pass Paillier upload and the protocol round trips across every
//! rider. This binary trains a small federated LR, persists both model
//! halves (`blindfl::persist`), reloads them, and serves the same
//! request stream twice over a simulated network link:
//!
//! * **sequential** — one closed-loop client, `max_batch = 1`: every
//!   request pays the full forward-pass round trips alone,
//! * **batched** — many closed-loop clients against the micro-batching
//!   queue: requests ride shared passes.
//!
//! Reported per mode: wall-clock, throughput, mean/p95 latency, batch
//! shape, and per-request B→A traffic. Asserts the ≥ 2× throughput
//! target whenever the config leaves something to amortize (Paillier
//! plus a simulated link — the default); crypto-less or link-less knob
//! combos only warn.
//!
//! ```text
//! cargo run --release -p bf-bench --bin serving
//! ```
//!
//! Env knobs: `SERVING_ROWS` (feature-store rows, default 64),
//! `SERVING_REQUESTS` (default 48), `SERVING_MAX_BATCH` (default 16),
//! `SERVING_CLIENTS` (batched-mode client threads, default 16),
//! `SERVING_BACKEND` (`paillier` | `plain`), `SERVING_NET`
//! (`wan` | `lan` | `none`, default `wan` — the cross-enterprise
//! serving link the paper's deployment implies).

use bf_datagen::{generate, spec, vsplit};
use bf_mpc::transport::NetworkProfile;
use bf_util::{Stopwatch, Table};
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::persist::{export_party_a, export_party_b, import_party_a, import_party_b};
use blindfl::serve::{self, serve_party_a, serve_party_b, ServeConfig, ServeReport};
use blindfl::session::{party_seed, Role, Session};
use blindfl::train::{train_federated, FedTrainConfig};

const TRAIN_SEED: u64 = 0x5E17;
const SERVE_SEED: u64 = 0xCAFE;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct ModeOut {
    report: ServeReport,
    secs: f64,
}

/// One serve run: guest thread + micro-batching host over a fresh
/// endpoint pair, `clients` closed-loop client threads issuing
/// `requests` predictions round-robin over the store rows.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    cfg: &FedConfig,
    net: Option<NetworkProfile>,
    bytes_a_model: &[u8],
    bytes_b_model: &[u8],
    store_a: &bf_ml::Dataset,
    store_b: &bf_ml::Dataset,
    max_batch: usize,
    clients: usize,
    requests: usize,
) -> ModeOut {
    let (ep_a, ep_b) = match net {
        Some(p) => bf_mpc::channel_pair_with_network(p),
        None => bf_mpc::channel_pair(),
    };
    let cfg_a = cfg.clone();
    let store_a = store_a.clone();
    let model_a = bytes_a_model.to_vec();
    let guest = std::thread::Builder::new()
        .name("serving-guest".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess =
                Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SERVE_SEED))
                    .expect("guest handshake");
            let mut model = import_party_a(&model_a).expect("guest model");
            serve_party_a(&mut sess, &mut model, &store_a).expect("guest serve loop")
        })
        .expect("spawn guest");

    let mut sess = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SERVE_SEED))
        .expect("host handshake");
    let mut model = import_party_b(bytes_b_model).expect("host model");
    let (client, queue) = serve::queue(requests.max(1));
    let rows = store_b.rows();
    // Distribute the request count exactly: the first `requests %
    // clients` threads take one extra, so every request is issued
    // whatever the knob values.
    let clients = clients.max(1);
    let (base, extra) = (requests / clients, requests % clients);
    let mut sw = Stopwatch::new();
    sw.start();
    let client_threads: Vec<_> = (0..clients)
        .map(|c| {
            let client = client.clone();
            let count = base + usize::from(c < extra);
            let start = c * base + c.min(extra);
            std::thread::Builder::new()
                .name(format!("serving-client-{c}"))
                .spawn(move || {
                    for k in 0..count {
                        let row = (start + k) % rows;
                        let pred = client.predict(row).expect("prediction");
                        assert_eq!(pred.logits.len(), 1);
                    }
                })
                .expect("spawn client")
        })
        .collect();
    drop(client);
    let report = serve_party_b(
        &mut sess,
        &mut model,
        store_b,
        &ServeConfig { max_batch },
        queue,
    )
    .expect("host serve loop");
    sw.stop();
    for t in client_threads {
        t.join().expect("client thread");
    }
    let guest_report = guest.join().expect("guest thread");
    assert_eq!(guest_report.rows, report.requests);
    ModeOut {
        report,
        secs: sw.secs(),
    }
}

fn main() {
    let rows = env_usize("SERVING_ROWS", 64);
    let requests = env_usize("SERVING_REQUESTS", 48);
    let max_batch = env_usize("SERVING_MAX_BATCH", 16);
    let clients = env_usize("SERVING_CLIENTS", 16);
    let backend = std::env::var("SERVING_BACKEND").unwrap_or_else(|_| "paillier".into());
    let net_name = std::env::var("SERVING_NET").unwrap_or_else(|_| "wan".into());
    let cfg = match backend.as_str() {
        "plain" => FedConfig::plain(),
        _ => FedConfig::paillier_test(),
    };
    let net = match net_name.as_str() {
        "none" => None,
        "lan" => Some(NetworkProfile::lan_10gbps()),
        _ => Some(NetworkProfile::wan_100mbps()),
    };
    println!(
        "Federated inference serving: {backend} backend, {net_name} link, \
         {requests} single-row requests over a {rows}-row store\n"
    );

    // Train → persist: one quick epoch, then both halves to bytes
    // (the serve runs below always start from the persisted state).
    eprintln!("[serving] training + persisting the model...");
    let ds = spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 0xDA7A);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let tc = FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 1,
            batch_size: 32,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        &cfg,
        &tc,
        train_v.party_a,
        train_v.party_b,
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    let model_a = export_party_a(&outcome.party_a);
    let model_b = export_party_b(&outcome.party_b);
    eprintln!(
        "[serving] persisted models: A {} bytes, B {} bytes (AUC {:.3})",
        model_a.len(),
        model_b.len(),
        outcome.report.test_metric
    );

    eprintln!("[serving] sequential single-row baseline...");
    let seq = run_mode(
        &cfg,
        net,
        &model_a,
        &model_b,
        &test_v.party_a,
        &test_v.party_b,
        1,
        1,
        requests,
    );
    eprintln!("[serving] micro-batched run...");
    let bat = run_mode(
        &cfg,
        net,
        &model_a,
        &model_b,
        &test_v.party_a,
        &test_v.party_b,
        max_batch,
        clients,
        requests,
    );

    let mut t = Table::new(vec![
        "mode",
        "requests",
        "batches",
        "max batch",
        "wall secs",
        "req/s",
        "mean lat ms",
        "p95 lat ms",
        "B→A bytes/req",
    ]);
    for (name, m) in [("sequential", &seq), ("batched", &bat)] {
        t.row(vec![
            name.to_string(),
            format!("{}", m.report.requests),
            format!("{}", m.report.batches),
            format!("{}", m.report.max_batch()),
            format!("{:.2}", m.secs),
            format!("{:.1}", m.report.requests as f64 / m.secs),
            format!("{:.1}", m.report.mean_latency_secs() * 1e3),
            format!("{:.1}", m.report.latency_quantile_secs(0.95) * 1e3),
            format!(
                "{:.0}",
                m.report.bytes_sent as f64 / m.report.requests as f64
            ),
        ]);
    }
    t.print();

    assert_eq!(seq.report.requests, requests as u64);
    assert_eq!(bat.report.requests, requests as u64);
    let speedup = (bat.report.requests as f64 / bat.secs) / (seq.report.requests as f64 / seq.secs);
    println!("\nthroughput speedup: {speedup:.2}x (micro-batched vs sequential single-row)");
    // The ≥ 2x amortization target is defined for the serving scenario
    // proper — Paillier ciphertexts over a real (simulated) link. With
    // the crypto or the network knobbed away there is little left to
    // amortize, so degenerate configs warn instead of aborting.
    if backend != "plain" && net.is_some() {
        assert!(
            speedup >= 2.0,
            "micro-batching must amortize to ≥ 2x sequential throughput (got {speedup:.2}x)"
        );
    } else if speedup < 2.0 {
        eprintln!(
            "[serving] note: {speedup:.2}x < 2x on a degenerate config              (backend {backend}, net {net_name}) — the target applies to paillier + a link"
        );
    }
}
