//! Table 4 — dataset inventory: the paper-scale statistics and the
//! scaled variants this reproduction actually runs (see EXPERIMENTS.md
//! for the substitution rationale).

use bf_bench::quality_spec;
use bf_datagen::catalog;
use bf_util::Table;

fn main() {
    println!("Table 4: datasets (paper-scale statistics)\n");
    let mut t = Table::new(vec![
        "Dataset",
        "#Instances (train/test)",
        "#Features",
        "Avg #nnz",
        "#Classes",
    ]);
    for s in catalog() {
        t.row(vec![
            s.name.to_string(),
            format!("{}/{}", fmt_k(s.train_rows), fmt_k(s.test_rows)),
            fmt_k(s.shape.features()),
            s.shape.avg_nnz().to_string(),
            s.classes.to_string(),
        ]);
    }
    t.print();

    println!("\nScaled variants used by the quality harnesses:\n");
    let mut t = Table::new(vec![
        "Dataset",
        "#Instances (train/test)",
        "#Features",
        "Avg #nnz",
        "#Classes",
    ]);
    for s in catalog() {
        let q = quality_spec(s.name);
        t.row(vec![
            q.name.to_string(),
            format!("{}/{}", q.train_rows, q.test_rows),
            q.shape.features().to_string(),
            q.shape.avg_nnz().to_string(),
            q.classes.to_string(),
        ]);
    }
    t.print();
}

fn fmt_k(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}
