//! Table 5 — per-mini-batch training time of the first-layer matrix
//! multiplication: BlindFL (federated MatMul source, real Paillier)
//! vs SecureML (HE-assisted triplets) vs client-aided SecureML.
//!
//! The feature dimensionalities are the paper's; row counts are just
//! enough for a few batches (the per-batch cost is dimension- and
//! sparsity-driven). SecureML cells that exceed the time budget are
//! measured at a reduced dimension and extrapolated linearly (marked
//! `~`); cells exceeding the memory budget report OOM, as in the paper.

use bf_baselines::secureml::{secureml_batch_cost, SecuremlOutcome, TripletMode};
use bf_bench::{cfg_timing, fmt_secs, sparsity_label, timing_spec};
use bf_datagen::{generate, vsplit};
use bf_util::Table;

const BS: usize = 128;
const MEM_LIMIT: usize = 8 << 30; // 8 GiB
const BUDGET_SECS: f64 = 8.0;

fn main() {
    let cases: &[(&str, &str, usize)] = &[
        ("a9a", "LR", 1),
        ("w8a", "LR", 1),
        ("connect-4", "MLP", 64),
        ("higgs", "LR", 1),
        ("news20", "MLR", 20),
        ("avazu-app", "LR", 1),
        ("industry", "LR", 1),
    ];
    println!("Table 5: per-mini-batch matmul time (seconds), batch size {BS}\n");
    let mut t = Table::new(vec![
        "Dataset (sparsity)",
        "Model",
        "BlindFL",
        "SecureML",
        "SecureML (client-aided)",
    ]);
    for &(name, model, out) in cases {
        let spec = timing_spec(name);
        let d = spec.shape.features();
        eprintln!("[table5] {name}: generating ({d} features)...");
        let (train_ds, _) = generate(&spec, 0x7AB5);
        let v = vsplit(&train_ds);

        eprintln!("[table5] {name}: BlindFL source layer...");
        let blindfl =
            bf_bench::matmul_source_batch_secs(&cfg_timing(), &v.party_a, &v.party_b, out, BS, 3);

        eprintln!("[table5] {name}: SecureML (HE-assisted)...");
        let sml = secureml_batch_cost(
            BS,
            d,
            out,
            TripletMode::HeAssisted { key_bits: 512 },
            BUDGET_SECS,
            MEM_LIMIT,
        );
        eprintln!("[table5] {name}: SecureML (client-aided)...");
        let sml_ca = client_aided_cost(d, out);

        t.row(vec![
            format!("{name} ({})", sparsity_label(&spec.shape)),
            model.to_string(),
            fmt_secs(blindfl),
            fmt_outcome(&sml),
            sml_ca,
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): BlindFL beats SecureML everywhere (≫10× on sparse data);\n\
         client-aided SecureML wins at low dimension but loses to BlindFL on the\n\
         very-high-dimensional sparse sets; plain SecureML OOMs/times out there."
    );
}

fn fmt_outcome(o: &SecuremlOutcome) -> String {
    match o {
        SecuremlOutcome::Ok { secs, extrapolated } => {
            format!(
                "{}{}",
                if *extrapolated { "~" } else { "" },
                fmt_secs(*secs)
            )
        }
        SecuremlOutcome::Oom { bytes } => format!("OOM ({} GiB)", bytes >> 30),
    }
}

/// Client-aided SecureML: when the dense state exceeds memory we
/// measure at the largest feasible dimension and extrapolate (the
/// paper's testbed had 375 GB of RAM; ours does not).
fn client_aided_cost(d: usize, out: usize) -> String {
    let fits = bf_baselines::secureml::batch_memory_bytes(BS, d, out) <= MEM_LIMIT;
    if fits {
        return fmt_outcome(&secureml_batch_cost(
            BS,
            d,
            out,
            TripletMode::ClientAided,
            BUDGET_SECS,
            MEM_LIMIT,
        ));
    }
    // Largest dimension whose dense state fits the budget (with margin).
    let per_d = 2 * 8 * (5 * BS + 4 * out);
    let d_run = ((MEM_LIMIT / per_d) * 9 / 10).min(d / 2).max(100_000);
    let out_run = secureml_batch_cost(
        BS,
        d_run,
        out,
        TripletMode::ClientAided,
        BUDGET_SECS,
        MEM_LIMIT,
    );
    match out_run {
        SecuremlOutcome::Ok { secs, .. } => {
            format!(
                "~{} (extrap {}x)",
                fmt_secs(secs * d as f64 / d_run as f64),
                d / d_run
            )
        }
        SecuremlOutcome::Oom { bytes } => format!("OOM ({} GiB)", bytes >> 30),
    }
}
