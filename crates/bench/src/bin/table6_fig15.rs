//! Table 6 + Figure 15 — Fashion-MNIST MLP (appendix D.1): each 28×28
//! image is split into two half-images (Party A: first half of the
//! pixels; Party B: second half plus the labels).
//!
//! Table 6 reports the per-batch matmul time (BlindFL vs SecureML vs
//! client-aided); Figure 15 the model quality vs the non-federated
//! baselines.

use bf_baselines::secureml::{secureml_batch_cost, SecuremlOutcome, TripletMode};
use bf_bench::{
    cfg_quality, cfg_timing, fmt_secs, matmul_source_batch_secs, quality_spec, timing_spec,
};
use bf_datagen::{generate, vsplit};
use bf_ml::{MlpModel, TrainConfig};
use bf_util::Table;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};
use rand::SeedableRng;

const BS: usize = 128;
const HIDDEN: usize = 64;

fn main() {
    table6();
    fig15();
}

fn table6() {
    println!("Table 6: fmnist MLP — per-mini-batch matmul time (seconds), batch {BS}\n");
    let spec = timing_spec("fmnist");
    let (train_ds, _) = generate(&spec, 0x7AB6);
    let v = vsplit(&train_ds);
    eprintln!("[table6] BlindFL source layer (dense 784 → {HIDDEN})...");
    let blindfl = matmul_source_batch_secs(&cfg_timing(), &v.party_a, &v.party_b, HIDDEN, BS, 2);
    eprintln!("[table6] SecureML HE-assisted...");
    let sml = secureml_batch_cost(
        BS,
        784,
        HIDDEN,
        TripletMode::HeAssisted { key_bits: 512 },
        20.0,
        8 << 30,
    );
    eprintln!("[table6] SecureML client-aided...");
    let ca = secureml_batch_cost(BS, 784, HIDDEN, TripletMode::ClientAided, 20.0, 8 << 30);

    let mut t = Table::new(vec![
        "Dataset",
        "Model",
        "BlindFL",
        "SecureML",
        "SecureML (client-aided)",
    ]);
    t.row(vec![
        "fmnist (Dense)".to_string(),
        "MLP".to_string(),
        fmt_secs(blindfl),
        fmt_o(&sml),
        fmt_o(&ca),
    ]);
    t.print();
    println!("\nExpected shape: BlindFL < SecureML, client-aided fastest (dense, low-dim).\n");
}

fn fmt_o(o: &SecuremlOutcome) -> String {
    match o {
        SecuremlOutcome::Ok { secs, extrapolated } => {
            format!(
                "{}{}",
                if *extrapolated { "~" } else { "" },
                fmt_secs(*secs)
            )
        }
        SecuremlOutcome::Oom { bytes } => format!("OOM ({} GiB)", bytes >> 30),
    }
}

fn fig15() {
    println!("Figure 15: fmnist MLP — testing accuracy\n");
    let spec = quality_spec("fmnist");
    let (train_ds, test_ds) = generate(&spec, 0xF15);
    let v_train = vsplit(&train_ds);
    let v_test = vsplit(&test_ds);
    let tc = TrainConfig {
        epochs: 10,
        ..Default::default()
    };
    let widths = vec![HIDDEN, 32, 10];

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF15);
    eprintln!("[fig15] NonFed-Party B...");
    let mut mb = MlpModel::new(&mut rng, v_train.party_b.num_dim(), &widths);
    let party_b = bf_ml::train(&mut mb, &v_train.party_b, &v_test.party_b, &tc).test_metric;
    eprintln!("[fig15] NonFed-collocated...");
    let mut mc = MlpModel::new(&mut rng, train_ds.num_dim(), &widths);
    let collocated = bf_ml::train(&mut mc, &train_ds, &test_ds, &tc).test_metric;
    eprintln!("[fig15] BlindFL...");
    let ftc = FedTrainConfig {
        base: tc,
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Mlp { widths },
        &cfg_quality(),
        &ftc,
        v_train.party_a,
        v_train.party_b,
        v_test.party_a,
        v_test.party_b,
        0xF15,
    );

    let mut t = Table::new(vec![
        "NonFed-Party B",
        "NonFed-collocated",
        "BlindFL",
        "BlindFL vs Party B",
    ]);
    t.row(vec![
        format!("{party_b:.3}"),
        format!("{collocated:.3}"),
        format!("{:.3}", outcome.report.test_metric),
        format!("{:+.3}", outcome.report.test_metric - party_b),
    ]);
    t.print();
    println!(
        "\nExpected shape (paper: 80.9% / 86.2% / 86.2%): BlindFL ≈ collocated > Party-B-only\n\
         (two class pairs are distinguishable only from Party A's half of the image)."
    );
}
