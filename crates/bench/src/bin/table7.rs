//! Table 7 — scalability w.r.t. the source layer's output
//! dimensionality (connect-4, 3-layer MLP; first-layer width swept
//! over {32, 64, 128, 256}).
//!
//! The paper finds the training time grows ≈linearly with the source
//! layer's output width (the cryptography is the bottleneck) while
//! validation accuracy moves only slightly.

use bf_bench::{cfg_quality, cfg_timing, matmul_source_batch_secs, quality_spec, timing_spec};
use bf_datagen::{generate, vsplit};
use bf_ml::TrainConfig;
use bf_util::Table;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};

const BS: usize = 128;

fn main() {
    println!("Table 7: scalability vs source-layer output width (connect-4, 3-layer MLP)\n");
    let widths = [32usize, 64, 128, 256];

    // Timing at full dimensionality (Paillier).
    let tspec = timing_spec("connect-4");
    let (t_train, _) = generate(&tspec, 0x7AB7);
    let tv = vsplit(&t_train);
    let mut secs = Vec::new();
    for &w in &widths {
        eprintln!("[table7] timing width {w}...");
        secs.push(matmul_source_batch_secs(
            &cfg_timing(),
            &tv.party_a,
            &tv.party_b,
            w,
            BS,
            2,
        ));
    }

    // Accuracy with the Plain backend.
    let qspec = quality_spec("connect-4");
    let (q_train, q_test) = generate(&qspec, 0x7AB7);
    let qv_train = vsplit(&q_train);
    let qv_test = vsplit(&q_test);
    let mut accs = Vec::new();
    for &w in &widths {
        eprintln!("[table7] accuracy width {w}...");
        let tc = FedTrainConfig {
            base: TrainConfig {
                epochs: 5,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        let outcome = train_federated(
            &FedSpec::Mlp {
                widths: vec![w, 16, 3],
            },
            &cfg_quality(),
            &tc,
            qv_train.party_a.clone(),
            qv_train.party_b.clone(),
            qv_test.party_a.clone(),
            qv_test.party_b.clone(),
            0x7AB7,
        );
        accs.push(outcome.report.test_metric);
    }

    let mut t = Table::new(vec![
        "Hidden Dim",
        "Relative Time Cost",
        "Validation Accuracy",
    ]);
    for (i, &w) in widths.iter().enumerate() {
        t.row(vec![
            w.to_string(),
            format!("{:.2}x", secs[i] / secs[0]),
            format!("{:.1}%", accs[i] * 100.0),
        ]);
    }
    t.print();
    println!("\nExpected shape: time ≈ width/32 (linear in OUT); accuracy changes little.");
}
