//! Table 8 — scalability w.r.t. the number of layers (connect-4 MLP;
//! 32-unit layers inserted between a 64-wide source layer and a
//! 16-wide penultimate layer).
//!
//! The paper's point: the federated source layer dominates the cost, so
//! additional *local* hidden layers at Party B are nearly free.

use bf_bench::{cfg_quality, cfg_timing, quality_spec, timing_spec};
use bf_datagen::{generate, vsplit};
use bf_ml::TrainConfig;
use bf_util::{Stopwatch, Table};
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};

#[allow(clippy::same_item_push)]
fn widths_for(layers: usize) -> Vec<usize> {
    // 3 layers: 64, 16, 3; k>3 inserts (k-3) 32-unit layers after 64.
    let mut w = vec![64usize];
    for _ in 0..layers.saturating_sub(3) {
        w.push(32);
    }
    w.push(16);
    w.push(3);
    w
}

fn main() {
    println!("Table 8: scalability vs number of layers (connect-4, MLP)\n");
    let layer_counts = [3usize, 4, 5, 6];

    // Timing: full federated batches (source + local top) with Paillier
    // — one epoch over a few batches each.
    let tspec = timing_spec("connect-4");
    let (t_train, t_test) = generate(&tspec, 0x7AB8);
    let tv_train = vsplit(&t_train);
    let tv_test = vsplit(&t_test);
    let mut secs = Vec::new();
    for &k in &layer_counts {
        eprintln!("[table8] timing {k} layers...");
        let tc = FedTrainConfig {
            base: TrainConfig {
                epochs: 1,
                batch_size: 128,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        let mut sw = Stopwatch::new();
        sw.start();
        let _ = train_federated(
            &FedSpec::Mlp {
                widths: widths_for(k),
            },
            &cfg_timing(),
            &tc,
            tv_train.party_a.clone(),
            tv_train.party_b.clone(),
            tv_test.party_a.clone(),
            tv_test.party_b.clone(),
            0x7AB8,
        );
        sw.stop();
        secs.push(sw.secs());
    }

    // Accuracy with the Plain backend.
    let qspec = quality_spec("connect-4");
    let (q_train, q_test) = generate(&qspec, 0x7AB8);
    let qv_train = vsplit(&q_train);
    let qv_test = vsplit(&q_test);
    let mut accs = Vec::new();
    for &k in &layer_counts {
        eprintln!("[table8] accuracy {k} layers...");
        let tc = FedTrainConfig {
            base: TrainConfig {
                epochs: 5,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        let outcome = train_federated(
            &FedSpec::Mlp {
                widths: widths_for(k),
            },
            &cfg_quality(),
            &tc,
            qv_train.party_a.clone(),
            qv_train.party_b.clone(),
            qv_test.party_a.clone(),
            qv_test.party_b.clone(),
            0x7AB8,
        );
        accs.push(outcome.report.test_metric);
    }

    let mut t = Table::new(vec![
        "# Layers",
        "Relative Time Cost",
        "Validation Accuracy",
    ]);
    for (i, &k) in layer_counts.iter().enumerate() {
        t.row(vec![
            k.to_string(),
            format!("{:.2}x", secs[i] / secs[0]),
            format!("{:.1}%", accs[i] * 100.0),
        ]);
    }
    t.print();
    println!("\nExpected shape: ≈1.0x across layer counts (the source layer dominates).");
}
