//! Federated gradient-boosting bench: per-tree wall-clock and per-link
//! traffic for SecureBoost-style training (`blindfl::trees`), Plain vs
//! Paillier-256/Packed, with the bit-exact parity flag against the
//! collocated XGBoost twin recorded alongside (see `docs/TREES.md`).
//!
//! ```text
//! cargo run --release -p bf-bench --bin trees
//! ```
//!
//! Results go to `BENCH_trees.json` at the repo root in machine-readable
//! form; CI greps the parity and completion flags.
//!
//! Env knobs: `TREES_ROWS` (default 512), `TREES_FEATURES` (default 8),
//! `TREES_COUNT` (boosting rounds, default 4), `TREES_DEPTH` (default
//! 3), `TREES_GUESTS` (default 2), `TREES_BINS` (default 16).

use bf_datagen::{generate_tree, vsplit_multi};
use bf_ml::gbdt::{CollocatedGbdt, GbdtParams};
use bf_util::{Stopwatch, Table};
use blindfl::config::FedConfig;
use blindfl::trees::train_gbdt;

const SEED: u64 = 41;
const DATA_SEED: u64 = 13;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Cell {
    backend: &'static str,
    train_secs: f64,
    tree_secs: Vec<f64>,
    final_logloss: f64,
    host_bytes_per_link: Vec<u64>,
    guest_bytes_per_link: Vec<u64>,
    parity: bool,
}

fn run_cell(
    backend: &'static str,
    cfg: &FedConfig,
    params: &GbdtParams,
    rows: usize,
    features: usize,
    guests: usize,
) -> Cell {
    let ds = generate_tree(rows, features, DATA_SEED);
    let split = vsplit_multi(&ds, guests);
    let mut sw = Stopwatch::new();
    sw.start();
    let fed = train_gbdt(cfg, params, split.guests, &split.party_b, SEED);
    sw.stop();
    let (tw, tw_losses) = CollocatedGbdt::train(&ds, params);
    let parity = fed.host.losses == tw_losses && fed.host.model.trees == tw.trees;
    Cell {
        backend,
        train_secs: sw.secs(),
        tree_secs: fed.host.tree_secs,
        final_logloss: fed.host.losses.last().copied().unwrap_or(f64::NAN),
        host_bytes_per_link: fed.host.bytes_sent_per_link,
        guest_bytes_per_link: fed.guests.iter().map(|g| g.bytes_sent).collect(),
        parity,
    }
}

fn json_f64s(v: &[f64]) -> String {
    let items: Vec<String> = v.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_u64s(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let rows = env_usize("TREES_ROWS", 512);
    let features = env_usize("TREES_FEATURES", 8);
    let trees = env_usize("TREES_COUNT", 4);
    let depth = env_usize("TREES_DEPTH", 3);
    let guests = env_usize("TREES_GUESTS", 2);
    let bins = env_usize("TREES_BINS", 16);
    println!(
        "Federated gradient boosting: {rows} rows × {features} features, \
         {trees} trees of depth {depth}, {guests} guests, {bins} bins\n"
    );

    let cells: Vec<Cell> = [
        ("plain", FedConfig::plain()),
        ("paillier-256-packed", FedConfig::paillier_test()),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        eprintln!("[trees] {name} cell...");
        let params = GbdtParams {
            trees,
            max_depth: depth,
            max_bins: bins,
            frac_bits: cfg.frac_bits,
            ..GbdtParams::default()
        };
        run_cell(name, &cfg, &params, rows, features, guests)
    })
    .collect();

    let mut t = Table::new(vec![
        "backend",
        "train secs",
        "secs/tree",
        "final logloss",
        "B→A KiB/link",
        "A→B KiB/link",
        "twin parity",
    ]);
    for c in &cells {
        let per_tree = c.train_secs / c.tree_secs.len().max(1) as f64;
        t.row(vec![
            c.backend.to_string(),
            format!("{:.2}", c.train_secs),
            format!("{per_tree:.3}"),
            format!("{:.4}", c.final_logloss),
            json_u64s(
                &c.host_bytes_per_link
                    .iter()
                    .map(|b| b >> 10)
                    .collect::<Vec<_>>(),
            ),
            json_u64s(
                &c.guest_bytes_per_link
                    .iter()
                    .map(|b| b >> 10)
                    .collect::<Vec<_>>(),
            ),
            format!("{}", c.parity),
        ]);
    }
    t.print();

    let parity_all = cells.iter().all(|c| c.parity);
    let cell_json = |c: &Cell| {
        format!(
            "{{\"backend\": \"{}\", \"train_secs\": {:.4}, \"tree_secs\": {}, \
             \"final_logloss\": {:.6}, \"host_bytes_per_link\": {}, \
             \"guest_bytes_per_link\": {}, \"parity\": {}}}",
            c.backend,
            c.train_secs,
            json_f64s(&c.tree_secs),
            c.final_logloss,
            json_u64s(&c.host_bytes_per_link),
            json_u64s(&c.guest_bytes_per_link),
            c.parity,
        )
    };
    let cell_lines: Vec<String> = cells
        .iter()
        .map(|c| format!("    {}", cell_json(c)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"trees\",\n  \"rows\": {rows},\n  \"features\": {features},\n  \
         \"trees\": {trees},\n  \"depth\": {depth},\n  \"guests\": {guests},\n  \
         \"bins\": {bins},\n  \"cells\": [\n{}\n  ],\n  \
         \"parity_all\": {parity_all},\n  \"completed\": true\n}}\n",
        cell_lines.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trees.json");
    std::fs::write(path, &json).expect("write BENCH_trees.json");
    println!("\nwrote {path}");

    assert!(
        parity_all,
        "federated forest diverged from the collocated twin — the \
         equivalence contract is broken"
    );
}
