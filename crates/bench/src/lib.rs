//! Shared infrastructure for the experiment harnesses.
//!
//! One binary per table/figure of the paper (see `src/bin/`): each
//! prints the same rows/series the publication reports, over the
//! synthetic datasets of `bf-datagen` (scaling documented in
//! EXPERIMENTS.md). Two standard configurations:
//!
//! * [`cfg_timing`] — real Paillier (512-bit modulus, pooled
//!   obfuscations): used wherever wall-clock cost is the measurement.
//! * [`cfg_quality`] — the Plain backend: used wherever *model quality*
//!   is the measurement (the protocols are lossless, so convergence is
//!   identical; verified by `blindfl`'s equivalence tests).

use bf_datagen::{DatasetSpec, Shape};
use bf_ml::data::Dataset;
use bf_paillier::ObfMode;
use bf_tensor::Dense;
use bf_util::Stopwatch;
use blindfl::config::{Backend, FedConfig};
use blindfl::session::run_pair;
use blindfl::source::matmul::{aggregate_a, aggregate_b};
use blindfl::source::MatMulSource;

/// Paillier configuration for the timing experiments.
pub fn cfg_timing() -> FedConfig {
    FedConfig {
        backend: Backend::Paillier { key_bits: 512 },
        frac_bits: 32,
        obf_mode: ObfMode::from_env_or(ObfMode::Pool(64)),
        paillier_mode: bf_paillier::PaillierMode::Packed,
        he_mask: 1e4,
        grad_mode: blindfl::config::GradMode::SecretShared,
        lr: 0.05,
        momentum: 0.9,
    }
}

/// Plain-backend configuration for the model-quality experiments.
pub fn cfg_quality() -> FedConfig {
    FedConfig::plain()
}

/// Row-scaled dataset specs for the quality experiments (Figure 12 et
/// al.): feature spaces shrunk for the ultra-high-dimensional sets,
/// row counts cut to laptop scale. Documented in EXPERIMENTS.md.
pub fn quality_spec(name: &str) -> DatasetSpec {
    let s = bf_datagen::spec(name);
    match name {
        "a9a" | "w8a" | "connect-4" => s.scaled(10, 1),
        "news20" => s.scaled(5, 10),
        "higgs" => s.scaled(1000, 1),
        "avazu-app" => s.scaled(2000, 100),
        "industry" => s.scaled(20_000, 1000),
        "fmnist" => s.scaled(10, 1),
        other => panic!("no quality scaling for {other}"),
    }
}

/// Timing specs keep the **full feature dimensionality** (that is what
/// drives the Table 5 comparison) but only enough rows for a few
/// batches.
pub fn timing_spec(name: &str) -> DatasetSpec {
    let mut s = bf_datagen::spec(name);
    s.train_rows = 640;
    s.test_rows = 128;
    s
}

/// Measure the federated MatMul source layer's per-mini-batch cost
/// (forward + backward, exactly the "matrix multiplication" portion the
/// paper times): returns mean seconds/batch over `batches` measured
/// batches after one warm-up.
pub fn matmul_source_batch_secs(
    cfg: &FedConfig,
    train_a: &Dataset,
    train_b: &Dataset,
    out: usize,
    batch_size: usize,
    batches: usize,
) -> f64 {
    let n = train_a.rows();
    let idxs: Vec<Vec<usize>> = (0..=batches)
        .map(|i| (0..batch_size).map(|j| (i * batch_size + j) % n).collect())
        .collect();
    let a_view = train_a.clone();
    let b_view = train_b.clone();
    let idx_a = idxs.clone();
    let grad_template = Dense::zeros(batch_size, out);
    let (_, secs) = run_pair(
        cfg,
        0xBEEF,
        move |mut sess| {
            let mut layer = MatMulSource::init(&mut sess, a_view.num_dim(), out).unwrap();
            for idx in &idx_a {
                let batch = a_view.select(idx);
                let x = batch.num.as_ref().unwrap();
                let z = layer.forward(&mut sess, x, true).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer.backward_a(&mut sess).unwrap();
            }
        },
        move |mut sess| {
            let mut layer = MatMulSource::init(&mut sess, b_view.num_dim(), out).unwrap();
            let mut sw = Stopwatch::new();
            for (i, idx) in idxs.iter().enumerate() {
                if i == 1 {
                    sw.start(); // skip warm-up batch
                }
                let batch = b_view.select(idx);
                let x = batch.num.as_ref().unwrap();
                let z_own = layer.forward(&mut sess, x, true).unwrap();
                let _z = aggregate_b(&sess, z_own).unwrap();
                // A synthetic ∇Z of the right shape: the cost being
                // measured is the protocol's, not the loss function's.
                let g = grad_template.map(|_| 0.01);
                layer.backward_b(&mut sess, &g).unwrap();
            }
            sw.stop();
            sw.secs() / batches as f64
        },
    );
    secs
}

/// Format seconds like the paper's Table 5 (three decimals, or `<1 ms`).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.0005 {
        "<0.001".to_string()
    } else {
        format!("{s:.3}")
    }
}

/// Render a dataset's sparsity label like Table 5 ("88.72%" / "Dense").
pub fn sparsity_label(shape: &Shape) -> String {
    match shape {
        Shape::Dense { .. } | Shape::Image { .. } => "Dense".to_string(),
        s => format!("{:.2}%", s.sparsity() * 100.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_datagen::{generate, vsplit};

    #[test]
    fn timing_spec_keeps_dims() {
        let s = timing_spec("news20");
        assert_eq!(s.shape.features(), 62_000);
        assert_eq!(s.train_rows, 640);
    }

    #[test]
    fn source_timer_runs() {
        let s = bf_datagen::spec("a9a").scaled(200, 1);
        let (train, _) = generate(&s, 1);
        let v = vsplit(&train);
        let secs = matmul_source_batch_secs(&cfg_quality(), &v.party_a, &v.party_b, 1, 32, 2);
        assert!(secs > 0.0 && secs < 5.0);
    }

    #[test]
    fn labels_and_formats() {
        assert_eq!(fmt_secs(0.0001), "<0.001");
        assert_eq!(fmt_secs(0.0191), "0.019");
        assert_eq!(sparsity_label(&Shape::Dense { features: 28 }), "Dense");
    }
}
