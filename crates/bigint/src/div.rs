//! Division and remainder via Knuth's Algorithm D (TAOCP vol. 2, 4.3.1),
//! with a fast path for single-limb divisors.

use crate::BigUint;

impl BigUint {
    /// Quotient and remainder; panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        knuth_d(self, divisor)
    }

    /// Quotient and remainder by a `u64`; panics on zero divisor.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert_ne!(d, 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Remainder.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular addition: `(self + other) mod m`. Inputs need not be reduced.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.add(other).rem(m)
    }

    /// Modular subtraction: `(self - other) mod m` where both are `< m`.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m);
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// Modular multiplication via full product and reduction.
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }
}

/// Knuth Algorithm D for multi-limb divisors (len >= 2).
fn knuth_d(num: &BigUint, den: &BigUint) -> (BigUint, BigUint) {
    let n = den.limbs.len();
    let m = num.limbs.len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = den.limbs[n - 1].leading_zeros() as usize;
    let v = den.shl(shift);
    let mut u = num.shl(shift).limbs;
    u.resize(num.limbs.len() + 1, 0); // u has m+n+1 limbs

    let v_limbs = &v.limbs;
    debug_assert_eq!(v_limbs.len(), n);
    let vn1 = v_limbs[n - 1];
    let vn2 = v_limbs[n - 2];

    let mut q = vec![0u64; m + 1];

    // D2..D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two limbs of u and top of v.
        let u_hi = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = u_hi / vn1 as u128;
        let mut rhat = u_hi % vn1 as u128;
        // Refine: at most two corrections.
        while qhat >> 64 != 0 || qhat * vn2 as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
            qhat -= 1;
            rhat += vn1 as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }
        let mut qhat = qhat as u64;

        // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat as u128 * v_limbs[i] as u128 + carry;
            carry = p >> 64;
            let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
            u[j + i] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = u[j + n] as i128 - carry as i128 + borrow;
        u[j + n] = t as u64;
        borrow = t >> 64;

        // D5/D6: if we subtracted too much, add back one v.
        if borrow != 0 {
            qhat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = u[j + i] as u128 + v_limbs[i] as u128 + carry;
                u[j + i] = s as u64;
                carry = s >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat;
    }

    // D8: denormalize remainder.
    let rem = BigUint::from_limbs(u[..n].to_vec()).shr(shift);
    (BigUint::from_limbs(q), rem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_division() {
        let a = BigUint::from_u64(1000);
        let b = BigUint::from_u64(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.low_u64(), 142);
        assert_eq!(r.low_u64(), 6);
    }

    #[test]
    fn divide_by_larger_is_zero() {
        let (q, r) = BigUint::from_u64(5).div_rem(&BigUint::from_u64(100));
        assert!(q.is_zero());
        assert_eq!(r.low_u64(), 5);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn multi_limb_reconstruction() {
        // (q*d + r) == n, r < d, across limb-boundary cases.
        let mut n = BigUint::one();
        for i in 0..12u64 {
            n = n.shl(61).add_u64(0xdeadbeef ^ (i.wrapping_mul(0x9e3779b9)));
        }
        let mut d = BigUint::from_u64(3);
        for i in 0..5u64 {
            d = d.shl(59).add_u64(0x12345678 ^ i);
            let (q, r) = n.div_rem(&d);
            assert!(r < d);
            assert_eq!(q.mul(&d).add(&r), n);
        }
    }

    #[test]
    fn knuth_d_addback_case() {
        // A crafted case that historically triggers the D6 add-back step:
        // numerator with high limbs just below the divisor pattern.
        let u = BigUint::from_limbs(vec![0, u64::MAX - 1, u64::MAX]);
        let v = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    #[test]
    fn mod_helpers() {
        let m = BigUint::from_u64(97);
        let a = BigUint::from_u64(95);
        let b = BigUint::from_u64(10);
        assert_eq!(a.mod_add(&b, &m).low_u64(), 8);
        assert_eq!(b.mod_sub(&a, &m).low_u64(), 12);
        assert_eq!(a.mod_mul(&b, &m).low_u64(), 950 % 97);
    }

    #[test]
    fn div_rem_u64_matches_generic() {
        let n = BigUint::from_u128(0xffee_ddcc_bbaa_9988_7766_5544_3322_1100);
        let (q1, r1) = n.div_rem_u64(12345);
        let (q2, r2) = n.div_rem(&BigUint::from_u64(12345));
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from_u64(r1), r2);
    }
}
