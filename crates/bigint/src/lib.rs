//! Arbitrary-precision unsigned integer arithmetic for blindfl-rs.
//!
//! The BlindFL paper builds its Paillier layer on GMP; since no bignum
//! crate is available in this workspace's sanctioned dependency set, this
//! crate implements the required number theory from scratch:
//!
//! * [`BigUint`] — heap-allocated little-endian `u64` limbs with
//!   schoolbook + Karatsuba multiplication and Knuth Algorithm D
//!   division,
//! * [`mont::MontCtx`] — Montgomery multiplication and windowed modular
//!   exponentiation (the workhorse of Paillier encryption),
//! * [`prime`] — Miller–Rabin primality testing and random prime
//!   generation,
//! * [`modular`] — gcd, extended gcd, and modular inverses,
//! * [`rng`] — uniform sampling of big integers.
//!
//! The implementation favours clarity and testability; performance is
//! addressed where it matters for the protocols (Montgomery arithmetic,
//! operand scanning multiplication with `u128` intermediates).

#![warn(missing_docs)]
#![allow(clippy::same_item_push)] // limb padding loops
pub mod div;
pub mod modular;
pub mod mont;
pub mod mul;
pub mod prime;
pub mod rng;
pub mod uint;

pub use modular::{batch_mod_inv, gcd, mod_inv};
pub use mont::MontCtx;
pub use prime::{gen_prime, is_probable_prime};
pub use rng::{random_below, random_bits};
pub use uint::BigUint;
