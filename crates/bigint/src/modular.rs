//! GCD, extended GCD, and modular inverses.

use crate::BigUint;

/// Greatest common divisor (Euclid).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = a.rem(&b);
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; panics if both are zero.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    let g = gcd(a, b);
    a.div_rem(&g).0.mul(b)
}

/// Modular inverse of `a` modulo `m`, or `None` if `gcd(a, m) != 1`.
///
/// Iterative extended Euclid tracking only the `t` coefficient with a
/// sign flag (the classic trick avoiding signed bignums).
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    assert!(!m.is_zero(), "mod_inv: zero modulus");
    if m.is_one() {
        return Some(BigUint::zero());
    }
    let mut r0 = m.clone();
    let mut r1 = a.rem(m);
    // t coefficients with explicit signs: t0 = 0, t1 = 1.
    let mut t0 = BigUint::zero();
    let mut t1 = BigUint::one();
    let mut neg0 = false;
    let mut neg1 = false;

    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1);
        // t2 = t0 - q*t1 with sign tracking.
        let qt1 = q.mul(&t1);
        let (t2, neg2) = signed_sub(&t0, neg0, &qt1, neg1);
        r0 = std::mem::replace(&mut r1, r2);
        t0 = std::mem::replace(&mut t1, t2);
        neg0 = std::mem::replace(&mut neg1, neg2);
    }
    if !r0.is_one() {
        return None; // not coprime
    }
    let inv = if neg0 {
        m.sub(&t0.rem(m)).rem(m)
    } else {
        t0.rem(m)
    };
    Some(inv)
}

/// Batch modular inversion (Montgomery's trick): inverts every element
/// of `values` modulo `m` using a single `mod_inv` plus `3(n-1)`
/// modular multiplications.
///
/// All values must be invertible (the Paillier callers invert
/// ciphertexts, which are units of `Z_{n^2}` by construction); panics
/// otherwise.
pub fn batch_mod_inv(values: &[BigUint], m: &BigUint) -> Vec<BigUint> {
    if values.is_empty() {
        return Vec::new();
    }
    // prefix[i] = v0*v1*...*vi mod m
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = values[0].rem(m);
    prefix.push(acc.clone());
    for v in &values[1..] {
        acc = acc.mod_mul(v, m);
        prefix.push(acc.clone());
    }
    let mut inv_acc = mod_inv(&acc, m).expect("batch_mod_inv: non-invertible element");
    let mut out = vec![BigUint::zero(); values.len()];
    for i in (1..values.len()).rev() {
        out[i] = inv_acc.mod_mul(&prefix[i - 1], m);
        inv_acc = inv_acc.mod_mul(&values[i].rem(m), m);
    }
    out[0] = inv_acc;
    out
}

/// `(a, neg_a) - (b, neg_b)` in sign-magnitude form.
fn signed_sub(a: &BigUint, neg_a: bool, b: &BigUint, neg_b: bool) -> (BigUint, bool) {
    match (neg_a, neg_b) {
        // a - (-b) = a + b ; (-a) - b = -(a+b)
        (false, true) => (a.add(b), false),
        (true, false) => (a.add(b), true),
        // same sign: magnitude subtraction
        (sa, _) => {
            if a >= b {
                (a.sub(b), sa)
            } else {
                (b.sub(a), !sa)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(
            gcd(&BigUint::from_u64(12), &BigUint::from_u64(18)).low_u64(),
            6
        );
        assert_eq!(
            gcd(&BigUint::from_u64(17), &BigUint::from_u64(13)).low_u64(),
            1
        );
        assert_eq!(gcd(&BigUint::zero(), &BigUint::from_u64(5)).low_u64(), 5);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(
            lcm(&BigUint::from_u64(4), &BigUint::from_u64(6)).low_u64(),
            12
        );
    }

    #[test]
    fn mod_inv_small() {
        let m = BigUint::from_u64(97);
        for a in 1..97u64 {
            let inv = mod_inv(&BigUint::from_u64(a), &m).unwrap();
            assert_eq!(inv.mul_u64(a).rem(&m).low_u64(), 1, "a={a}");
        }
    }

    #[test]
    fn mod_inv_not_coprime() {
        assert!(mod_inv(&BigUint::from_u64(6), &BigUint::from_u64(9)).is_none());
        assert!(mod_inv(&BigUint::zero(), &BigUint::from_u64(9)).is_none());
    }

    #[test]
    fn mod_inv_multi_limb() {
        // modulus = 2^127 - 1 (prime); inverse must satisfy a*inv = 1.
        let m = BigUint::one().shl(127).sub_u64(1);
        let a = BigUint::from_u128(0x1234_5678_9abc_def0_fedc_ba98_7654_3210);
        let inv = mod_inv(&a, &m).unwrap();
        assert!(a.mod_mul(&inv, &m).is_one());
    }

    #[test]
    fn batch_mod_inv_matches_individual() {
        let m = BigUint::one().shl(127).sub_u64(1);
        let values: Vec<BigUint> = (1..20u64)
            .map(|i| BigUint::from_u64(i * 7919 + 3))
            .collect();
        let batch = batch_mod_inv(&values, &m);
        for (v, inv) in values.iter().zip(&batch) {
            assert!(v.mod_mul(inv, &m).is_one());
        }
        assert!(batch_mod_inv(&[], &m).is_empty());
        let single = batch_mod_inv(&[BigUint::from_u64(5)], &m);
        assert_eq!(single[0], mod_inv(&BigUint::from_u64(5), &m).unwrap());
    }

    #[test]
    fn mod_inv_of_unreduced_input() {
        let m = BigUint::from_u64(101);
        let a = BigUint::from_u64(3 + 101 * 7);
        let inv = mod_inv(&a, &m).unwrap();
        assert_eq!(inv.mul_u64(3).rem(&m).low_u64(), 1);
    }
}
