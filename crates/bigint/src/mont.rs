//! Montgomery multiplication and windowed modular exponentiation.
//!
//! Paillier encryption is dominated by `r^n mod n^2`; a CIOS (coarsely
//! integrated operand scanning) Montgomery multiplier plus 4-bit-window
//! exponentiation makes this tractable without GMP.

use crate::BigUint;

/// Precomputed context for arithmetic modulo a fixed odd modulus.
#[derive(Clone, Debug)]
pub struct MontCtx {
    /// The modulus (odd, > 1).
    pub m: BigUint,
    /// Limb count of the modulus.
    k: usize,
    /// `-m^{-1} mod 2^64`.
    m_inv: u64,
    /// `R mod m` where `R = 2^{64k}` (the Montgomery form of 1).
    r1: Vec<u64>,
    /// `R^2 mod m`, used to convert into Montgomery form.
    r2: Vec<u64>,
}

impl MontCtx {
    /// Build a context. Panics if `m` is even or < 3.
    pub fn new(m: &BigUint) -> Self {
        assert!(!m.is_even() && m.bits() >= 2, "modulus must be odd and > 1");
        let k = m.limbs.len();
        let m_inv = inv64(m.limbs[0]).wrapping_neg();
        let r = BigUint::one().shl(64 * k);
        let r1 = pad(&r.rem(m), k);
        let r2 = pad(&r.mod_mul(&r, m), k);
        Self {
            m: m.clone(),
            k,
            m_inv,
            r1,
            r2,
        }
    }

    /// Convert to Montgomery form: `a*R mod m`. `a` must be `< m`.
    pub fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        debug_assert!(a < &self.m);
        self.mont_mul(&pad(a, self.k), &self.r2)
    }

    /// Convert out of Montgomery form.
    pub fn from_mont(&self, a: &[u64]) -> BigUint {
        let one = pad(&BigUint::one(), self.k);
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// CIOS Montgomery product: returns `a*b*R^{-1} mod m` in limb form.
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let m = &self.m.limbs;
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // u = t[0] * m' mod 2^64 ; t += u*m ; t >>= 64
            let u = t[0].wrapping_mul(self.m_inv);
            let s = t[0] as u128 + u as u128 * m[0] as u128;
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + u as u128 * m[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + ((s >> 64) as u64);
            t[k + 1] = 0;
        }
        t.truncate(k + 1);
        // Conditional subtraction to bring into [0, m).
        if t[k] != 0 || cmp_limbs(&t[..k], m) >= 0 {
            sub_limbs(&mut t, m);
        }
        t.truncate(k);
        t
    }

    /// Montgomery squaring: `a*a*R^{-1} mod m` in limb form.
    ///
    /// Unlike the interleaved CIOS product, this squares first with the
    /// half-product schoolbook/Karatsuba path (~half the limb
    /// multiplies) and then runs a separate SOS reduction pass whose
    /// inner loop streams sequentially over the modulus limbs — the
    /// double-width intermediate stays in one linear buffer, so both
    /// passes walk memory in order. Exponentiation is 4 squarings per
    /// window and ~1 multiply, so this is the hot path of `pow_mont`.
    pub fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let k = self.k;
        debug_assert_eq!(a.len(), k);
        let m = &self.m.limbs;
        let mut t = crate::mul::sqr_limbs(a);
        t.resize(2 * k + 1, 0);
        // Reduction: clear one low limb per iteration (t += u*m << 64i),
        // then drop the low k limbs — the same REDC as mont_mul, just
        // unfused from the product.
        for i in 0..k {
            let u = t[i].wrapping_mul(self.m_inv);
            let mut carry = 0u128;
            for (j, &mj) in m.iter().enumerate() {
                let s = t[i + j] as u128 + u as u128 * mj as u128 + carry;
                t[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let s = t[idx] as u128 + carry;
                t[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        let mut out = t[k..=2 * k].to_vec();
        if out[k] != 0 || cmp_limbs(&out[..k], m) >= 0 {
            sub_limbs(&mut out, m);
        }
        out.truncate(k);
        out
    }

    /// Modular multiplication of reduced operands (`a, b < m`).
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// The Montgomery form of 1 (`R mod m`).
    pub fn one_mont(&self) -> Vec<u64> {
        self.r1.clone()
    }

    /// Limb width of operands in this context.
    pub fn limb_count(&self) -> usize {
        self.k
    }

    /// Exponentiation entirely in the Montgomery domain: given
    /// `base_mont = aR mod m`, returns `a^exp · R mod m`.
    ///
    /// This is the hot path of the Paillier CryptoTensor, which keeps
    /// ciphertexts in Montgomery form end to end.
    pub fn pow_mont(&self, base_mont: &[u64], exp: &BigUint) -> Vec<u64> {
        if exp.is_zero() {
            return self.r1.clone();
        }
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        table.push(base_mont.to_vec());
        for i in 2..16 {
            table.push(self.mont_mul(&table[i - 1], base_mont));
        }
        let bits = exp.bits();
        let nwin = bits.div_ceil(4);
        let mut acc = table[window(exp, nwin - 1)].clone();
        for w in (0..nwin - 1).rev() {
            acc = self.mont_sqr(&acc);
            acc = self.mont_sqr(&acc);
            acc = self.mont_sqr(&acc);
            acc = self.mont_sqr(&acc);
            let d = window(exp, w);
            if d != 0 {
                acc = self.mont_mul(&acc, &table[d]);
            }
        }
        acc
    }

    /// Modular exponentiation `base^exp mod m` with a 4-bit fixed window.
    /// `base` must be `< m`.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.m);
        }
        let bm = self.to_mont(&base.rem(&self.m));
        // Precompute odd powers table: bm^0..bm^15.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone()); // 1 in Montgomery form
        table.push(bm.clone());
        for i in 2..16 {
            table.push(self.mont_mul(&table[i - 1], &bm));
        }
        let bits = exp.bits();
        let nwin = bits.div_ceil(4);
        let mut acc = table[window(exp, nwin - 1)].clone();
        for w in (0..nwin - 1).rev() {
            acc = self.mont_sqr(&acc);
            acc = self.mont_sqr(&acc);
            acc = self.mont_sqr(&acc);
            acc = self.mont_sqr(&acc);
            let d = window(exp, w);
            if d != 0 {
                acc = self.mont_mul(&acc, &table[d]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Extract the `w`-th 4-bit window (little-endian) of `e`.
fn window(e: &BigUint, w: usize) -> usize {
    let bit = w * 4;
    let limb = bit / 64;
    let off = bit % 64;
    let lo = e.limbs.get(limb).copied().unwrap_or(0) >> off;
    let v = if off > 60 {
        let hi = e.limbs.get(limb + 1).copied().unwrap_or(0);
        lo | (hi << (64 - off))
    } else {
        lo
    };
    (v & 0xf) as usize
}

/// Inverse of an odd u64 modulo 2^64 (Newton iteration).
fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct mod 2^3
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

fn pad(a: &BigUint, k: usize) -> Vec<u64> {
    let mut v = a.limbs.clone();
    v.resize(k, 0);
    v
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return if a[i] > b[i] { 1 } else { -1 };
        }
    }
    0
}

fn sub_limbs(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..b.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    let mut i = b.len();
    while borrow != 0 && i < a.len() {
        let (d, bw) = a[i].overflowing_sub(borrow);
        a[i] = d;
        borrow = bw as u64;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_pow(base: u64, exp: u64, m: u64) -> u64 {
        let mut acc: u128 = 1;
        let mut b: u128 = base as u128 % m as u128;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * b % m as u128;
            }
            b = b * b % m as u128;
            e >>= 1;
        }
        acc as u64
    }

    #[test]
    fn mont_mul_single_limb() {
        let m = BigUint::from_u64(0xffff_ffff_ffff_ffc5); // prime
        let ctx = MontCtx::new(&m);
        let a = BigUint::from_u64(0x1234_5678_9abc_def1);
        let b = BigUint::from_u64(0xfeed_face_cafe_beef);
        let want = a.mod_mul(&b, &m);
        assert_eq!(ctx.mul(&a, &b), want);
    }

    #[test]
    fn mont_mul_multi_limb() {
        // m = a large odd number spanning several limbs.
        let mut m = BigUint::from_u64(0xdead_beef);
        for i in 0..6u64 {
            m = m.shl(64).add_u64(0x1111_2222_3333_4444 ^ i);
        }
        m = if m.is_even() { m.add_u64(1) } else { m };
        let ctx = MontCtx::new(&m);
        let a = m.shr(3).add_u64(12345);
        let b = m.shr(5).add_u64(999);
        assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn pow_matches_naive_u64() {
        let m = BigUint::from_u64(1_000_000_007);
        let ctx = MontCtx::new(&m);
        for (b, e) in [(2u64, 10u64), (3, 100), (12345, 67890), (999999, 1)] {
            let got = ctx.pow(&BigUint::from_u64(b), &BigUint::from_u64(e));
            assert_eq!(got.low_u64(), naive_pow(b, e, 1_000_000_007));
        }
    }

    #[test]
    fn pow_edge_cases() {
        let m = BigUint::from_u64(97);
        let ctx = MontCtx::new(&m);
        assert_eq!(
            ctx.pow(&BigUint::from_u64(5), &BigUint::zero()).low_u64(),
            1
        );
        assert_eq!(
            ctx.pow(&BigUint::zero(), &BigUint::from_u64(5)).low_u64(),
            0
        );
        assert_eq!(
            ctx.pow(&BigUint::from_u64(96), &BigUint::from_u64(2))
                .low_u64(),
            1
        );
    }

    #[test]
    fn fermat_little_theorem_multi_limb() {
        // p = 2^127 - 1 (Mersenne prime), a^(p-1) = 1 mod p.
        let p = BigUint::one().shl(127).sub_u64(1);
        let ctx = MontCtx::new(&p);
        let a = BigUint::from_u64(0xabcdef0123456789);
        let e = p.sub_u64(1);
        assert!(ctx.pow(&a, &e).is_one());
    }

    #[test]
    fn pow_large_exponent_consistency() {
        // (a^e1)^e2 == a^(e1*e2) mod m
        let mut m = BigUint::from_u64(7);
        for _ in 0..4 {
            m = m.shl(64).add_u64(0x0123_4567_89ab_cdef);
        }
        let m = m.add_u64(if m.is_even() { 1 } else { 0 });
        let ctx = MontCtx::new(&m);
        let a = BigUint::from_u64(31337);
        let e1 = BigUint::from_u64(65537);
        let e2 = BigUint::from_u64(101);
        let lhs = ctx.pow(&ctx.pow(&a, &e1), &e2);
        let rhs = ctx.pow(&a, &e1.mul(&e2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pow_mont_matches_pow() {
        let m = BigUint::one().shl(127).sub_u64(1);
        let ctx = MontCtx::new(&m);
        let a = BigUint::from_u64(123456789);
        let e = BigUint::from_u64(987654);
        let am = ctx.to_mont(&a);
        let got = ctx.from_mont(&ctx.pow_mont(&am, &e));
        assert_eq!(got, ctx.pow(&a, &e));
        // Zero exponent gives 1.
        assert_eq!(
            ctx.from_mont(&ctx.pow_mont(&am, &BigUint::zero()))
                .low_u64(),
            1
        );
    }

    #[test]
    fn mont_sqr_matches_mont_mul() {
        // Several widths, including one past the Karatsuba threshold so
        // the squaring pass exercises both product kernels.
        for limbs in [1usize, 5, 15, 39] {
            let mut m = BigUint::from_u64(0xdead_beef);
            for i in 0..limbs as u64 {
                m = m.shl(64).add_u64(0x9e37_79b9_7f4a_7c15 ^ (i * 31));
            }
            let m = if m.is_even() { m.add_u64(1) } else { m };
            let ctx = MontCtx::new(&m);
            let mut a = ctx.to_mont(&m.shr(7).add_u64(12345));
            for _ in 0..4 {
                assert_eq!(ctx.mont_sqr(&a), ctx.mont_mul(&a, &a));
                a = ctx.mont_sqr(&a);
            }
            // Edge operands: zero and R (the Montgomery form of 1).
            let zero = vec![0u64; ctx.limb_count()];
            assert_eq!(ctx.mont_sqr(&zero), ctx.mont_mul(&zero, &zero));
            let one = ctx.one_mont();
            assert_eq!(ctx.mont_sqr(&one), ctx.mont_mul(&one, &one));
        }
    }

    #[test]
    fn inv64_works() {
        for x in [1u64, 3, 5, 0xffff_ffff_ffff_ffff, 0x1234_5679] {
            assert_eq!(x.wrapping_mul(inv64(x)), 1);
        }
    }
}
