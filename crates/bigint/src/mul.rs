//! Multiplication: operand-scanning schoolbook with `u128` intermediates,
//! Karatsuba above a limb-count threshold, and a dedicated squaring path.

use crate::BigUint;

/// Limb count above which Karatsuba splitting kicks in. Chosen
/// empirically; schoolbook with u128 intermediates wins below ~32 limbs.
const KARATSUBA_THRESHOLD: usize = 32;

impl BigUint {
    /// Full multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let out = mul_limbs(&self.limbs, &other.limbs);
        BigUint::from_limbs(out)
    }

    /// Multiply by a `u64`.
    pub fn mul_u64(&self, v: u64) -> BigUint {
        if v == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = l as u128 * v as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Squaring (slightly cheaper than `mul(self, self)`).
    pub fn sqr(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(sqr_limbs(&self.limbs))
    }
}

/// Square a limb slice, dispatching between the half-product schoolbook
/// squaring and Karatsuba splitting. Output always has `2 * a.len()`
/// limbs (high limbs may be zero). Used both by [`BigUint::sqr`] and by
/// the Montgomery squaring in `mont.rs`, whose fixed-width operands may
/// carry trailing zero limbs.
pub(crate) fn sqr_limbs(a: &[u64]) -> Vec<u64> {
    if a.len() < KARATSUBA_THRESHOLD {
        schoolbook_sqr(a)
    } else {
        karatsuba_sqr(a)
    }
}

/// Schoolbook squaring: off-diagonal half products, doubled, plus the
/// diagonal — ~half the limb multiplies of `schoolbook(a, a)`.
fn schoolbook_sqr(a: &[u64]) -> Vec<u64> {
    let n = a.len();
    let mut out = vec![0u64; 2 * n];
    // Off-diagonal products.
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in (i + 1)..n {
            let t = a[i] as u128 * a[j] as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + n;
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    // Double.
    let mut carry = 0u64;
    for limb in out.iter_mut() {
        let new_carry = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = new_carry;
    }
    debug_assert_eq!(carry, 0);
    // Diagonal.
    let mut carry = 0u128;
    for i in 0..n {
        let t = a[i] as u128 * a[i] as u128 + out[2 * i] as u128 + carry;
        out[2 * i] = t as u64;
        let t2 = out[2 * i + 1] as u128 + (t >> 64);
        out[2 * i + 1] = t2 as u64;
        carry = t2 >> 64;
    }
    debug_assert_eq!(carry, 0);
    out
}

/// Karatsuba squaring: three recursive squarings instead of three
/// general products — `(a0 + a1·B)² = z0 + (z1 − z0 − z2)·B + z2·B²`
/// with `z0 = a0²`, `z2 = a1²`, `z1 = (a0 + a1)²`.
fn karatsuba_sqr(a: &[u64]) -> Vec<u64> {
    let split = a.len() / 2;
    if split == 0 {
        return schoolbook_sqr(a);
    }
    let (a0, a1) = a.split_at(split);
    let a0 = trim(a0);

    let z0 = sqr_limbs(a0);
    let z2 = sqr_limbs(a1);
    let a01 = add_slices(a0, a1);
    let mut z1 = sqr_limbs(&a01);
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    let mut out = vec![0u64; 2 * a.len()];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, split);
    add_at(&mut out, &z2, 2 * split);
    out
}

/// Multiply two limb slices, dispatching between schoolbook and Karatsuba.
fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        schoolbook(a, b)
    } else {
        karatsuba(a, b)
    }
}

/// Operand-scanning schoolbook multiplication.
fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        out[i + b.len()] = carry as u64;
    }
    out
}

/// Karatsuba multiplication on limb slices.
fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let split = a.len().max(b.len()) / 2;
    if split == 0 || a.len() <= split || b.len() <= split {
        return schoolbook(a, b);
    }
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);
    let a0 = trim(a0);
    let b0 = trim(b0);

    let z0 = mul_limbs(a0, b0); // low*low
    let z2 = mul_limbs(a1, b1); // high*high
    let a01 = add_slices(a0, a1);
    let b01 = add_slices(b0, b1);
    let mut z1 = mul_limbs(&a01, &b01); // (a0+a1)(b0+b1)
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    let mut out = vec![0u64; a.len() + b.len()];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, split);
    add_at(&mut out, &z2, 2 * split);
    out
}

fn trim(s: &[u64]) -> &[u64] {
    let mut n = s.len();
    while n > 0 && s[n - 1] == 0 {
        n -= 1;
    }
    &s[..n]
}

#[allow(clippy::needless_range_loop)]
fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = longer.to_vec();
    let mut carry = 0u64;
    for i in 0..out.len() {
        let bi = shorter.get(i).copied().unwrap_or(0);
        let (s1, c1) = out[i].overflowing_add(bi);
        let (s2, c2) = s1.overflowing_add(carry);
        out[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
        if carry == 0 && i >= shorter.len() {
            break;
        }
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

#[allow(clippy::ptr_arg, clippy::needless_range_loop)]
fn sub_in_place(a: &mut Vec<u64>, b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = a[i].overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
        if borrow == 0 && i >= b.len() {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "karatsuba internal underflow");
}

#[allow(clippy::needless_range_loop)]
fn add_at(out: &mut [u64], v: &[u64], offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < v.len() || carry != 0 {
        let vi = v.get(i).copied().unwrap_or(0);
        let slot = &mut out[offset + i];
        let (s1, c1) = slot.overflowing_add(vi);
        let (s2, c2) = s1.overflowing_add(carry);
        *slot = s2;
        carry = (c1 as u64) + (c2 as u64);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        let a = BigUint::from_u64(123456789);
        let b = BigUint::from_u64(987654321);
        assert_eq!(a.mul(&b).low_u128(), 123456789u128 * 987654321);
        assert_eq!(a.mul(&BigUint::zero()), BigUint::zero());
        assert_eq!(a.mul(&BigUint::one()), a);
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = BigUint::from_u128(u128::MAX - 5);
        assert_eq!(a.mul_u64(7), a.mul(&BigUint::from_u64(7)));
        assert_eq!(a.mul_u64(0), BigUint::zero());
    }

    #[test]
    fn sqr_matches_mul() {
        let mut a = BigUint::from_u64(0xdead_beef_1234_5678);
        for _ in 0..6 {
            assert_eq!(a.sqr(), a.mul(&a));
            a = a.mul(&a).add_u64(17);
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build two numbers big enough to cross the threshold.
        let mut a = BigUint::one();
        let mut b = BigUint::from_u64(3);
        for i in 0..40u64 {
            a = a.shl(64).add_u64(0x9e3779b97f4a7c15 ^ i);
            b = b.shl(64).add_u64(0xc2b2ae3d27d4eb4f ^ (i * 7));
        }
        assert!(a.limbs().len() >= KARATSUBA_THRESHOLD);
        let fast = a.mul(&b);
        let slow = BigUint::from_limbs(schoolbook(a.limbs(), b.limbs()));
        assert_eq!(fast, slow);
        assert_eq!(a.sqr(), slow_ref(&a, &a));
    }

    fn slow_ref(a: &BigUint, b: &BigUint) -> BigUint {
        BigUint::from_limbs(schoolbook(a.limbs(), b.limbs()))
    }

    #[test]
    fn sqr_limbs_handles_trailing_zeros() {
        // Montgomery operands are fixed-width and may carry high zero
        // limbs; the squaring paths must tolerate them. 40 limbs also
        // pushes the padded slice through the Karatsuba branch.
        let a = BigUint::from_u128(0xffff_abcd_1234_5678_9abc_def0);
        let mut padded = a.limbs().to_vec();
        padded.resize(40, 0);
        assert_eq!(BigUint::from_limbs(sqr_limbs(&padded)), a.sqr());
        assert_eq!(sqr_limbs(&[]), Vec::<u64>::new());
    }

    #[test]
    fn karatsuba_sqr_matches_schoolbook_sqr() {
        let mut a = BigUint::one();
        for i in 0..48u64 {
            a = a.shl(64).add_u64(0x517c_c1b7_2722_0a95 ^ (i * 13));
        }
        assert!(a.limbs().len() >= KARATSUBA_THRESHOLD);
        assert_eq!(
            BigUint::from_limbs(karatsuba_sqr(a.limbs())),
            BigUint::from_limbs(schoolbook_sqr(a.limbs()))
        );
    }

    #[test]
    fn distributivity_spot_check() {
        let a = BigUint::from_u128(0xffff_ffff_ffff_ffff_ffff_ffff);
        let b = BigUint::from_u64(0x1234_5678);
        let c = BigUint::from_u64(0x9abc_def0);
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        assert_eq!(lhs, rhs);
    }
}
