//! Miller–Rabin primality testing and random prime generation for
//! Paillier key generation.

use crate::{rng::random_below, rng::random_bits, BigUint, MontCtx};
use rand::Rng;

/// Small primes for trial division before Miller–Rabin.
const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Miller–Rabin with `rounds` random bases (error probability 4^-rounds).
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.bits() <= 6 {
        let v = n.low_u64();
        return matches!(
            v,
            2 | 3 | 5 | 7 | 11 | 13 | 17 | 19 | 23 | 29 | 31 | 37 | 41 | 43 | 47 | 53 | 59 | 61
        );
    }
    if n.is_even() {
        return false;
    }
    for &p in SMALL_PRIMES {
        if n.div_rem_u64(p).1 == 0 {
            return n.to_u64() == Some(p);
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.sub_u64(1);
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr(s);
    let ctx = MontCtx::new(n);
    let two = BigUint::from_u64(2);
    let bound = n.sub_u64(3);

    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let a = random_below(rng, &bound).add(&two);
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut tz = 0;
    for &l in n.limbs() {
        if l == 0 {
            tz += 64;
        } else {
            tz += l.trailing_zeros() as usize;
            break;
        }
    }
    tz
}

/// Generate a random probable prime with exactly `bits` bits.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size too small for Paillier");
    loop {
        let mut candidate = random_bits(rng, bits);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add_u64(1);
            if candidate.bits() != bits {
                continue;
            }
        }
        // Scan forward in steps of 2 for a while before resampling; this
        // amortizes the random generation cost.
        for _ in 0..64 {
            if candidate.bits() != bits {
                break;
            }
            if is_probable_prime(&candidate, 20, rng) {
                return candidate;
            }
            candidate = candidate.add_u64(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn known_small_primes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 97, 101, 65537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 20, &mut rng),
                "p={p}"
            );
        }
    }

    #[test]
    fn known_composites() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // Includes Carmichael numbers 561, 1105, 1729, 294409.
        for c in [
            1u64,
            4,
            9,
            15,
            91,
            561,
            1105,
            1729,
            294409,
            65536,
            1_000_000_008,
        ] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut rng),
                "c={c}"
            );
        }
    }

    #[test]
    fn mersenne_127_is_prime() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = BigUint::one().shl(127).sub_u64(1);
        assert!(is_probable_prime(&p, 16, &mut rng));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl(128).sub_u64(1);
        assert!(!is_probable_prime(&c, 16, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for bits in [16usize, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, 20, &mut rng));
        }
    }

    #[test]
    fn gen_prime_256_smoke() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = gen_prime(256, &mut rng);
        assert_eq!(p.bits(), 256);
        assert!(!p.is_even());
    }
}
