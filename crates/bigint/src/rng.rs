//! Uniform random sampling of big integers.

use crate::BigUint;
use rand::Rng;

/// A uniformly random integer with exactly `bits` significant bits
/// (top bit forced to 1), e.g. for prime candidates.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits > 0);
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.random()).collect();
    let top_bits = bits - (limbs - 1) * 64;
    // Mask the top limb to `top_bits` bits and force the highest bit.
    if top_bits < 64 {
        v[limbs - 1] &= (1u64 << top_bits) - 1;
    }
    v[limbs - 1] |= 1u64 << (top_bits - 1);
    BigUint::from_limbs(v)
}

/// A uniformly random integer in `[0, bound)` via rejection sampling.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "random_below: zero bound");
    let bits = bound.bits();
    let limbs = bits.div_ceil(64);
    let top_bits = bits - (limbs - 1) * 64;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    loop {
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.random()).collect();
        v[limbs - 1] &= mask;
        let candidate = BigUint::from_limbs(v);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// A uniformly random unit of `Z_n^*` (i.e. coprime to `n`).
pub fn random_coprime<R: Rng + ?Sized>(rng: &mut R, n: &BigUint) -> BigUint {
    loop {
        let candidate = random_below(rng, n);
        if candidate.is_zero() {
            continue;
        }
        if crate::modular::gcd(&candidate, n).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_bits_exact_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for bits in [1usize, 8, 63, 64, 65, 128, 512] {
            let v = random_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            let v = random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_below_covers_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bound = BigUint::from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[random_below(&mut rng, &bound).low_u64() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_coprime_is_coprime() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = BigUint::from_u64(2 * 3 * 5 * 7 * 11 * 13);
        for _ in 0..50 {
            let v = random_coprime(&mut rng, &n);
            assert!(crate::modular::gcd(&v, &n).is_one());
        }
    }
}
