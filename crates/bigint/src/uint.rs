//! The [`BigUint`] type: little-endian `u64` limbs, normalized so the
//! most significant limb is non-zero (zero is the empty limb vector).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Representation invariant: `limbs` is little-endian and has no trailing
/// zero limbs; the value zero is represented by an empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// From a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = Self {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// From little-endian limbs (normalizes).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = Self { limbs };
        out.normalize();
        out
    }

    /// Expose the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Serialized size in bytes (8 per limb, plus a u32 length prefix),
    /// used by the transport layer's byte accounting.
    pub fn wire_size(&self) -> usize {
        4 + 8 * self.limbs.len()
    }

    pub(crate) fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => 64 * (self.limbs.len() - 1) + (64 - hi.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Low 128 bits.
    pub fn low_u128(&self) -> u128 {
        let lo = self.limbs.first().copied().unwrap_or(0) as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        lo | (hi << 64)
    }

    /// Lossy conversion to `f64` (correct to f64 precision; returns
    /// `f64::INFINITY` above the representable range). Used by the
    /// fixed-point decoder, whose magnitudes are far below `n`.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + l as f64; // 2^64
        }
        acc
    }

    /// Exact conversion to `u64`, if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// In-place addition.
    pub fn add_assign(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Add a `u64`.
    pub fn add_u64(&self, v: u64) -> BigUint {
        self.add(&BigUint::from_u64(v))
    }

    /// In-place subtraction; panics if `other > self`.
    pub fn sub_assign(&mut self, other: &BigUint) {
        debug_assert!(*self >= *other, "BigUint underflow");
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        assert_eq!(borrow, 0, "BigUint underflow");
        self.normalize();
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Subtract a `u64`; panics on underflow.
    pub fn sub_u64(&self, v: u64) -> BigUint {
        self.sub(&BigUint::from_u64(v))
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let len = limbs.len();
            for i in 0..len {
                let hi = if i + 1 < len { limbs[i + 1] } else { 0 };
                limbs[i] = (limbs[i] >> bit_shift) | (hi << (64 - bit_shift));
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Big-endian byte encoding (minimal length; zero encodes to empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        // Trim leading zero bytes.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first);
        out
    }

    /// Parse big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        BigUint::from_limbs(limbs)
    }

    /// Lowercase hexadecimal rendering (no `0x` prefix).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{:016x}", l));
        }
        s
    }

    /// Parse a hexadecimal string (no prefix). Returns `None` on invalid
    /// characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut limbs = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut i = bytes.len();
        while i > 0 {
            let start = i.saturating_sub(16);
            let chunk = std::str::from_utf8(&bytes[start..i]).ok()?;
            limbs.push(u64::from_str_radix(chunk, 16).ok()?);
            i = start;
        }
        Some(BigUint::from_limbs(limbs))
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_u128(u128::MAX);
        let b = BigUint::from_u64(12345);
        let c = a.add(&b);
        assert_eq!(c.sub(&b), a);
        assert_eq!(c.sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::one();
        let c = a.add(&b);
        assert_eq!(c.limbs(), &[0, 1]);
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(0b1011);
        assert_eq!(a.shl(1).low_u64(), 0b10110);
        assert_eq!(a.shl(64).limbs(), &[0, 0b1011]);
        assert_eq!(a.shl(65).limbs(), &[0, 0b10110]);
        assert_eq!(a.shl(65).shr(65), a);
        assert_eq!(a.shr(100), BigUint::zero());
    }

    #[test]
    fn bit_access() {
        let a = BigUint::from_u64(0b101).shl(64);
        assert!(!a.bit(0));
        assert!(a.bit(64));
        assert!(!a.bit(65));
        assert!(a.bit(66));
        assert!(!a.bit(1000));
    }

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        let bytes = a.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), a);
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
    }

    #[test]
    fn hex_roundtrip() {
        let a = BigUint::from_u128(0xdead_beef_0000_0001_ffff_ffff_ffff_fff7);
        assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(7);
        let c = BigUint::from_u64(1).shl(64);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn u128_conversion() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        assert_eq!(BigUint::from_u128(v).low_u128(), v);
    }
}
