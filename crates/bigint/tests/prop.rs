//! Property-based tests for the bignum substrate: ring laws, division
//! reconstruction, Montgomery consistency, and modular-inverse
//! correctness over arbitrary inputs.

use bf_bigint::{mod_inv, BigUint, MontCtx};
use proptest::prelude::*;

fn big(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
}

/// An odd modulus with at least 2 bits.
fn odd_modulus(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 1..=max_limbs).prop_map(|mut limbs| {
        limbs[0] |= 1;
        let m = BigUint::from_limbs(limbs);
        if m.bits() < 2 {
            BigUint::from_u64(3)
        } else {
            m
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in big(8), b in big(8)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_sub_roundtrip(a in big(8), b in big(8)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn add_associates(a in big(6), b in big(6), c in big(6)) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in big(6), b in big(6)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes(a in big(5), b in big(5), c in big(5)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn sqr_is_self_mul(a in big(8)) {
        prop_assert_eq!(a.sqr(), a.mul(&a));
    }

    #[test]
    fn u128_mul_reference(x in any::<u64>(), y in any::<u64>()) {
        let got = BigUint::from_u64(x).mul(&BigUint::from_u64(y));
        prop_assert_eq!(got, BigUint::from_u128(x as u128 * y as u128));
    }

    #[test]
    fn div_rem_reconstructs(n in big(10), d in big(4)) {
        prop_assume!(!d.is_zero());
        let (q, r) = n.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), n);
    }

    #[test]
    fn shl_shr_roundtrip(a in big(6), s in 0usize..300) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in big(5), s in 0usize..120) {
        prop_assert_eq!(a.shl(s), a.mul(&BigUint::one().shl(s)));
    }

    #[test]
    fn bytes_roundtrip(a in big(8)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in big(8)) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn mont_mul_matches_mod_mul(m in odd_modulus(5), a in big(5), b in big(5)) {
        let ctx = MontCtx::new(&m);
        let ar = a.rem(&m);
        let br = b.rem(&m);
        prop_assert_eq!(ctx.mul(&ar, &br), ar.mod_mul(&br, &m));
    }

    #[test]
    fn mont_pow_matches_naive(m in odd_modulus(3), a in big(3), e in 0u64..500) {
        let ctx = MontCtx::new(&m);
        let ar = a.rem(&m);
        // Naive square-and-multiply reference.
        let mut want = BigUint::one().rem(&m);
        for _ in 0..e {
            want = want.mod_mul(&ar, &m);
        }
        prop_assert_eq!(ctx.pow(&ar, &BigUint::from_u64(e)), want);
    }

    #[test]
    fn mod_inv_correct_when_exists(m in odd_modulus(4), a in big(4)) {
        let ar = a.rem(&m);
        if let Some(inv) = mod_inv(&ar, &m) {
            prop_assert!(inv < m.clone());
            prop_assert!(ar.mod_mul(&inv, &m).is_one() || m.is_one());
        } else {
            prop_assert!(!bf_bigint::gcd(&ar, &m).is_one() || m.is_one());
        }
    }

    #[test]
    fn ordering_consistent_with_sub(a in big(6), b in big(6)) {
        if a >= b {
            let d = a.sub(&b);
            prop_assert_eq!(b.add(&d), a);
        } else {
            let d = b.sub(&a);
            prop_assert_eq!(a.add(&d), b);
        }
    }
}
