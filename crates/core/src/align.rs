//! Sample alignment: the PSI phase between session handshake and
//! training.
//!
//! The paper assumes both parties feed row *i* of the same logical
//! sample ("PSI-aligned instances"); this module makes the assumption
//! true at runtime. After the cryptographic handshake, the host sends
//! a salted-digest PSI offer over the same [`Endpoint`] the protocol
//! uses ([`bf_mpc::psi`], wire kinds 11–12), both sides compute the
//! intersection of their sample-ID columns, and each feeds its
//! party-specific row selection to `Dataset::select`. Because the
//! canonical order is ascending sample ID — equal on the common rows
//! by construction — all parties end up on the same logical row
//! order without any further coordination.
//!
//! Three properties the alignment-parity suite
//! (`tests/alignment_parity.rs`) pins down:
//!
//! * **Bit-identity** — a PSI-aligned run on shuffled supersets equals
//!   the pre-aligned run on the bare intersection: same losses, same
//!   weights, and `total bytes − PSI bytes = pre-aligned bytes`.
//!   [`psi_salt`] is pure in the run seed (it never consumes the
//!   session mask RNG), so the mask streams of aligned and
//!   pre-aligned runs are identical.
//! * **Exact accounting** — PSI frames move through `Endpoint::send`
//!   and land in [`bf_mpc::TrafficStats`] exactly once;
//!   [`Alignment::from_cursor`] rebuilds a checkpointed selection with
//!   *zero* wire traffic, so resume never double-counts the phase.
//! * **Permutation invariance** — shuffling either party's local rows
//!   changes neither the wire bytes (digest sets are canonical
//!   ascending) nor the aligned datasets.
//!
//! [`train_federated_aligned`] / [`train_federated_multi_aligned`]
//! are the in-process harnesses; [`LimitedOverlapConfig`] adds the
//! limited-overlap regime of Sun et al. (guest fits a local
//! StandardScaler+PCA encoder on *all* of its rows — the unaligned
//! remainder included — then federated training runs on encoded
//! features of the intersection only).

use std::collections::HashMap;

use bf_ml::data::Dataset;
use bf_ml::LocalEncoder;
use bf_mpc::psi::{psi_guest, psi_host_multi};
use bf_mpc::transport::{Endpoint, TransportError, TransportResult};

use crate::config::FedConfig;
use crate::models::{FedSpec, PartyAModel, PartyBModel};
use crate::multiparty::{collect_guests, send_hello};
use crate::persist::AlignCursor;
use crate::session::{multi_party_seed, run_pair, Role, Session};
use crate::train::{
    run_party_a_aligned, run_party_b_aligned, run_party_b_multi_aligned, FedReport, FedTrainConfig,
    MultiFedReport, MultiPartyBRun, PartyARun,
};

/// Derive the run's PSI salt from the shared run seed (SplitMix64
/// finalizer). Pure — it deliberately does **not** draw from the
/// session mask RNG, so an aligned run's mask stream is bit-identical
/// to a pre-aligned run's with the same seed.
pub fn psi_salt(seed: u64) -> u64 {
    let mut x = seed ^ 0x0A11_6E5A_17D1_6E57;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One party's completed alignment: the intersection (canonical
/// ascending-ID order), this party's row selection realising it, and
/// the PSI bytes this party sent to get it.
#[derive(Clone, Debug)]
pub struct Alignment {
    /// The salt of the PSI exchange (persisted in aligned checkpoints
    /// so a resumed run can prove it re-selected the same set).
    pub salt: u64,
    /// Common sample IDs, strictly ascending — identical on every
    /// party of the run.
    pub ids: Vec<u64>,
    /// `rows[i]` = this party's local row holding `ids[i]`.
    pub rows: Vec<usize>,
    /// Bytes this party sent during the PSI phase (0 when the
    /// selection was rebuilt from a checkpoint, which is wire-free).
    pub psi_bytes_sent: u64,
}

impl Alignment {
    /// Number of aligned samples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the intersection is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The aligned view of a local dataset: rows reordered into the
    /// shared canonical order.
    pub fn select(&self, ds: &Dataset) -> Dataset {
        ds.select(&self.rows)
    }

    /// The persistable form: what an aligned checkpoint embeds (see
    /// `persist` kinds 9–11).
    pub fn cursor(&self) -> AlignCursor {
        AlignCursor {
            salt: self.salt,
            ids: self.ids.clone(),
        }
    }

    /// Rebuild a selection from a checkpointed cursor against the
    /// local ID column — **zero wire traffic**, which is load-bearing:
    /// `Session::restore_cursor` preloads traffic totals that already
    /// include the original run's PSI bytes exactly once, so a resumed
    /// run that re-ran PSI would double-count the phase.
    pub fn from_cursor(cur: &AlignCursor, local_ids: &[u64]) -> TransportResult<Alignment> {
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(local_ids.len());
        for (row, &id) in local_ids.iter().enumerate() {
            if index.insert(id, row).is_some() {
                return Err(TransportError::Setup(format!(
                    "psi resume: duplicate sample id {id} in local column"
                )));
            }
        }
        let mut rows = Vec::with_capacity(cur.ids.len());
        for &id in &cur.ids {
            rows.push(*index.get(&id).ok_or_else(|| {
                TransportError::Setup(format!(
                    "psi resume: checkpointed id {id} missing from local column"
                ))
            })?);
        }
        Ok(Alignment {
            salt: cur.salt,
            ids: cur.ids.clone(),
            rows,
            psi_bytes_sent: 0,
        })
    }
}

/// Guest (Party A) side of the alignment phase over an established
/// session. Blocks for the host's offer, answers with the local digest
/// set, returns the selection with this link's PSI byte cost.
pub fn align_guest(sess: &Session, ids: &[u64]) -> TransportResult<Alignment> {
    let before = sess.ep.stats().bytes();
    let (salt, sel) = psi_guest(&sess.ep, ids)?;
    Ok(Alignment {
        salt,
        ids: sel.ids,
        rows: sel.rows,
        psi_bytes_sent: sess.ep.stats().bytes() - before,
    })
}

/// Host (Party B) side of the alignment phase over one link. Derive
/// `salt` with [`psi_salt`] from the shared run seed.
pub fn align_host(sess: &Session, salt: u64, ids: &[u64]) -> TransportResult<Alignment> {
    align_host_multi(std::slice::from_ref(sess), salt, ids).map(|(a, _)| a)
}

/// Host side across `M` guest links: one global intersection (host ∩
/// every guest) echoed to all guests. Returns the host's alignment
/// plus the PSI bytes sent per link, in link order.
pub fn align_host_multi(
    sessions: &[Session],
    salt: u64,
    ids: &[u64],
) -> TransportResult<(Alignment, Vec<u64>)> {
    let before: Vec<u64> = sessions.iter().map(|s| s.ep.stats().bytes()).collect();
    let eps: Vec<&Endpoint> = sessions.iter().map(|s| &s.ep).collect();
    let sel = psi_host_multi(&eps, salt, ids)?;
    let per_link: Vec<u64> = sessions
        .iter()
        .zip(&before)
        .map(|(s, b)| s.ep.stats().bytes() - b)
        .collect();
    let total = per_link.iter().sum();
    Ok((
        Alignment {
            salt,
            ids: sel.ids,
            rows: sel.rows,
            psi_bytes_sent: total,
        },
        per_link,
    ))
}

/// The limited-overlap regime (Sun et al., SNIPPETS.md snippet 3):
/// before alignment, the guest fits a [`LocalEncoder`]
/// (StandardScaler + PCA) on **all** of its local rows — including the
/// ones outside the intersection, which is how the unaligned remainder
/// contributes — and federated training runs on the encoded features.
#[derive(Clone, Debug)]
pub struct LimitedOverlapConfig {
    /// Encoder output dimensionality (clamped to `min(d, rows)`).
    pub encoder_dim: usize,
    /// Power-iteration steps per principal component (≈10 suffices at
    /// these scales).
    pub power_iters: usize,
    /// Encoder fitting seed (local to the guest; never on the wire).
    pub seed: u64,
}

impl Default for LimitedOverlapConfig {
    fn default() -> LimitedOverlapConfig {
        LimitedOverlapConfig {
            encoder_dim: 8,
            power_iters: 12,
            seed: 0x10ca1,
        }
    }
}

/// Everything a PSI-aligned two-party run returns: the usual federated
/// report and model halves, plus each side's [`Alignment`] (PSI byte
/// costs included) and the guest's fitted encoder when the
/// limited-overlap regime was on.
pub struct AlignedFedOutcome {
    /// Metrics and curves (traffic totals *include* the PSI phase).
    pub report: FedReport,
    /// Party A's trained half.
    pub party_a: PartyAModel,
    /// Party B's trained half (includes the top model).
    pub party_b: PartyBModel,
    /// Guest-side alignment (`psi_bytes_sent` = PSI bytes A→B).
    pub align_a: Alignment,
    /// Host-side alignment (`psi_bytes_sent` = PSI bytes B→A).
    pub align_b: Alignment,
    /// The guest's local encoder, when [`LimitedOverlapConfig`] was
    /// supplied.
    pub encoder: Option<LocalEncoder>,
}

/// Train a federated model on *misaligned* party data: handshake, PSI
/// over the sample-ID columns, `Dataset::select` into the canonical
/// shared order, then the standard federated run on the intersection.
///
/// `ids_a[r]` / `ids_b[r]` is the sample ID of local train row `r`
/// (any order, duplicates refused by the PSI layer). The test splits
/// must already be aligned across the parties — inference is over
/// jointly-known samples. With `overlap: Some(_)`, the guest encodes
/// its numerical features (train *and* test, same frozen transform)
/// through a [`LocalEncoder`] fitted on all local train rows first.
pub fn train_federated_aligned(
    spec: &FedSpec,
    cfg: &FedConfig,
    tc: &FedTrainConfig,
    train_a: Dataset,
    ids_a: Vec<u64>,
    train_b: Dataset,
    ids_b: Vec<u64>,
    test_a: Dataset,
    test_b: Dataset,
    overlap: Option<&LimitedOverlapConfig>,
    seed: u64,
) -> AlignedFedOutcome {
    let (train_a, test_a, encoder) = match overlap {
        None => (train_a, test_a, None),
        Some(lo) => {
            let x = train_a
                .num
                .as_ref()
                .expect("limited-overlap encoder needs numerical features")
                .to_dense();
            let enc = LocalEncoder::fit(&x, lo.encoder_dim, lo.power_iters, lo.seed);
            let enc_train = enc.encode_dataset(&train_a);
            let enc_test = enc.encode_dataset(&test_a);
            (enc_train, enc_test, Some(enc))
        }
    };
    let salt = psi_salt(seed);
    let spec_a = spec.clone();
    let tc_a = tc.clone();
    let spec_b = spec.clone();
    let tc_b = tc.clone();
    let (a_res, b_res) = run_pair(
        cfg,
        seed,
        move |mut sess| {
            run_party_a_aligned(&mut sess, &spec_a, &tc_a, &train_a, &test_a, &ids_a)
                .expect("party A transport")
        },
        move |mut sess| {
            run_party_b_aligned(&mut sess, &spec_b, &tc_b, &train_b, &test_b, salt, &ids_b)
                .expect("party B transport")
        },
    );
    let (align_a, a_run) = a_res;
    let (align_b, b_run) = b_res;
    AlignedFedOutcome {
        report: FedReport {
            losses: b_run.losses,
            test_logits: b_run.test_logits,
            test_metric: b_run.test_metric,
            train_secs: b_run.train_secs,
            bytes_a_to_b: a_run.bytes_sent,
            bytes_b_to_a: b_run.bytes_sent,
            u_a_snapshots: a_run.u_a_snapshots,
            stage_secs: b_run.stage_secs,
        },
        party_a: a_run.model,
        party_b: b_run.model,
        align_a,
        align_b,
        encoder,
    }
}

/// The multi-guest counterpart of [`AlignedFedOutcome`]: per-link PSI
/// byte costs on both sides.
pub struct MultiAlignedFedOutcome {
    /// Metrics and curves (per-link traffic *includes* PSI).
    pub report: MultiFedReport,
    /// One trained Party A run per guest, in link order.
    pub guests: Vec<PartyARun>,
    /// One guest-side alignment per link (`psi_bytes_sent` = PSI bytes
    /// A(i)→B).
    pub guest_aligns: Vec<Alignment>,
    /// Party B's trained multi-guest run.
    pub party_b: MultiPartyBRun,
    /// Host-side alignment (the global intersection).
    pub align_b: Alignment,
    /// PSI bytes B→A(i), per link.
    pub psi_bytes_b_per_link: Vec<u64>,
}

/// The `M`-guest generalisation of [`train_federated_aligned`]: one
/// global intersection (host ∩ every guest), every party selected into
/// the same canonical order. Guest encoders are deliberately not
/// plumbed here — the limited-overlap regime is a two-party study.
pub fn train_federated_multi_aligned(
    spec: &FedSpec,
    cfg: &FedConfig,
    tc: &FedTrainConfig,
    guests_train: Vec<Dataset>,
    guests_ids: Vec<Vec<u64>>,
    train_b: Dataset,
    ids_b: Vec<u64>,
    guests_test: Vec<Dataset>,
    test_b: Dataset,
    seed: u64,
) -> MultiAlignedFedOutcome {
    let m = guests_train.len();
    assert!(m >= 1, "train_federated_multi_aligned needs a guest");
    assert_eq!(m, guests_ids.len(), "one ID column per guest");
    assert_eq!(m, guests_test.len(), "train/test guest slice counts differ");
    let salt = psi_salt(seed);
    let mut host_eps = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    let mut guest_inputs: Vec<_> = guests_train
        .into_iter()
        .zip(guests_test)
        .zip(guests_ids)
        .collect();
    for (i, ((train_a, test_a), ids_a)) in guest_inputs.drain(..).enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        host_eps.push(ep_b);
        let cfg_a = cfg.clone();
        let spec_a = spec.clone();
        let tc_a = tc.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    send_hello(&ep_a, i, m).expect("guest hello");
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, seed),
                    )
                    .expect("guest handshake");
                    run_party_a_aligned(&mut sess, &spec_a, &tc_a, &train_a, &test_a, &ids_a)
                        .expect("guest transport")
                })
                .expect("spawn guest"),
        );
    }
    let ordered = collect_guests(host_eps, m).expect("guest fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, seed))
                .expect("host handshake")
        })
        .collect();
    let (align_b, psi_bytes_b_per_link, party_b) =
        run_party_b_multi_aligned(&mut sessions, spec, tc, &train_b, &test_b, salt, &ids_b)
            .expect("party B transport");
    let mut guests = Vec::with_capacity(m);
    let mut guest_aligns = Vec::with_capacity(m);
    for h in handles {
        let (align, run) = h.join().expect("guest panicked");
        guest_aligns.push(align);
        guests.push(run);
    }
    MultiAlignedFedOutcome {
        report: MultiFedReport {
            losses: party_b.losses.clone(),
            test_metric: party_b.test_metric,
            train_secs: party_b.train_secs,
            bytes_a_to_b_per_link: guests.iter().map(|g| g.bytes_sent).collect(),
            bytes_b_to_a_per_link: party_b.bytes_sent_per_link.clone(),
            stage_secs: party_b.stage_secs.clone(),
        },
        guests,
        guest_aligns,
        party_b,
        align_b,
        psi_bytes_b_per_link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salt_is_pure_and_seed_sensitive() {
        assert_eq!(psi_salt(7), psi_salt(7));
        assert_ne!(psi_salt(7), psi_salt(8));
    }

    #[test]
    fn from_cursor_rebuilds_the_selection_without_wire_traffic() {
        let cur = AlignCursor {
            salt: 99,
            ids: vec![10, 30, 50],
        };
        let local = vec![50, 10, 99, 30];
        let a = Alignment::from_cursor(&cur, &local).unwrap();
        assert_eq!(a.ids, vec![10, 30, 50]);
        assert_eq!(a.rows, vec![1, 3, 0]);
        assert_eq!(a.psi_bytes_sent, 0);
    }

    #[test]
    fn from_cursor_rejects_missing_and_duplicate_ids() {
        let cur = AlignCursor {
            salt: 1,
            ids: vec![10, 20],
        };
        let err = Alignment::from_cursor(&cur, &[10]).unwrap_err();
        assert!(err.to_string().contains("missing from local column"));
        let err = Alignment::from_cursor(&cur, &[10, 10, 20]).unwrap_err();
        assert!(err.to_string().contains("duplicate sample id"));
    }
}
