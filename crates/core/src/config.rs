//! Protocol configuration.

use bf_paillier::{ObfMode, PaillierMode};

/// Cryptographic backend selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Real Paillier with the given modulus size.
    Paillier {
        /// Modulus bits (≥ 256 recommended for experiments; ≥ 2048 for
        /// actual deployments).
        key_bits: usize,
    },
    /// Identity "encryption" — functional testing and the lossless
    /// model-quality experiments only (the protocols are lossless, so
    /// convergence behaviour is identical; see DESIGN.md §3).
    Plain,
}

/// How Party A's model gradients are handled — the Figure 9 ablation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GradMode {
    /// The real protocol: `∇W_A` stays secret-shared, both pieces
    /// updated in the SS manner (`w/ ModelSS & w/ GradSS`).
    SecretShared,
    /// Ablation: `W_A` is secret-shared at initialisation, but Party A
    /// receives `∇W_A` in plaintext and updates `U_A` alone while
    /// `V_A` stays frozen at `v_scale ×` its normal magnitude
    /// (`w/ ModelSS & w/o GradSS, ‖V_A‖ = v_scale·‖U_A‖`). The paper
    /// shows this still leaks labels.
    PlainGradToA {
        /// Frozen-piece magnitude multiplier.
        v_scale: f64,
    },
}

/// Full protocol configuration, shared by both parties.
#[derive(Clone, Debug)]
pub struct FedConfig {
    /// Crypto backend.
    pub backend: Backend,
    /// Fixed-point fractional bits.
    pub frac_bits: u32,
    /// Encryption-randomness strategy.
    pub obf_mode: ObfMode,
    /// Ciphertext layout for uploads: [`PaillierMode::Packed`] packs
    /// several fixed-point values per ciphertext on shapes/keys that
    /// allow it (falling back to scalar otherwise); decodes are
    /// bit-identical either way. Must match on both parties.
    pub paillier_mode: PaillierMode,
    /// Magnitude of the ephemeral HE2SS masks (`ε, φ, ξ, ρ`).
    pub he_mask: f64,
    /// Gradient handling (Figure 9 ablation hook).
    pub grad_mode: GradMode,
    /// Learning rate `η` (source layers apply it inside the SS update).
    pub lr: f64,
    /// Momentum `μ` (applied lazily per piece; linear, so the shared
    /// weight follows exact momentum SGD on the touched rows).
    pub momentum: f64,
}

impl FedConfig {
    /// Paper defaults with a laptop-scale Paillier modulus.
    pub fn paillier_default() -> Self {
        Self {
            backend: Backend::Paillier {
                key_bits: bf_paillier::DEFAULT_KEY_BITS,
            },
            frac_bits: bf_paillier::DEFAULT_FRAC_BITS,
            obf_mode: ObfMode::from_env_or(ObfMode::Pool(32)),
            paillier_mode: PaillierMode::Packed,
            he_mask: 1e4,
            grad_mode: GradMode::SecretShared,
            lr: 0.05,
            momentum: 0.9,
        }
    }

    /// Small-key Paillier for fast unit tests.
    pub fn paillier_test() -> Self {
        Self {
            backend: Backend::Paillier { key_bits: 256 },
            frac_bits: 24,
            obf_mode: ObfMode::from_env_or(ObfMode::Pool(8)),
            paillier_mode: PaillierMode::Packed,
            he_mask: 100.0,
            grad_mode: GradMode::SecretShared,
            lr: 0.05,
            momentum: 0.9,
        }
    }

    /// Plain backend (fastest; lossless semantics preserved).
    pub fn plain() -> Self {
        Self {
            backend: Backend::Plain,
            frac_bits: bf_paillier::DEFAULT_FRAC_BITS,
            obf_mode: ObfMode::Pool(2),
            paillier_mode: PaillierMode::Scalar,
            he_mask: 1e4,
            grad_mode: GradMode::SecretShared,
            lr: 0.05,
            momentum: 0.9,
        }
    }

    /// Builder-style learning-rate override.
    pub fn with_lr(mut self, lr: f64) -> Self {
        self.lr = lr;
        self
    }

    /// Builder-style gradient-mode override.
    pub fn with_grad_mode(mut self, mode: GradMode) -> Self {
        self.grad_mode = mode;
        self
    }

    /// Builder-style ciphertext-layout override.
    pub fn with_paillier_mode(mut self, mode: PaillierMode) -> Self {
        self.paillier_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_hparams() {
        let c = FedConfig::paillier_default();
        assert_eq!(c.lr, 0.05);
        assert_eq!(c.momentum, 0.9);
        assert_eq!(c.grad_mode, GradMode::SecretShared);
    }

    #[test]
    fn builders() {
        let c = FedConfig::plain()
            .with_lr(0.1)
            .with_grad_mode(GradMode::PlainGradToA { v_scale: 5.0 });
        assert_eq!(c.lr, 0.1);
        assert!(matches!(c.grad_mode, GradMode::PlainGradToA { .. }));
    }
}
