//! The pipelined mini-batch training engine.
//!
//! BlindFL's wall-clock cost is dominated by ciphertext kernels and
//! party-to-party transfers (paper §6, Tables 7/8); the paper's GMP
//! system hides much of the transfer time by overlapping crypto compute
//! with communication. This module is the Rust equivalent: it selects
//! a [`TrainMode`], double-buffers mini-batch *preparation* on a worker
//! thread, and (together with [`bf_mpc::Endpoint::make_pipelined`])
//! overlaps each party's compute with its wire traffic.
//!
//! # Stages
//!
//! One training step decomposes into the stages below; [`StageTimes`]
//! accumulates wall-clock per stage so the bench harness can show
//! where a configuration spends its time:
//!
//! ```text
//!  prep ──▶ encrypt/upload ──▶ fed-matmul / fed-embed ──▶ top/ss-top
//!   ▲                                                        │
//!   └──────────── decrypt/update ◀───────────────────────────┘
//! ```
//!
//! # Determinism contract
//!
//! Pipelining reorders **wall-clock work only** — never math, never
//! wire content. Each party's protocol thread executes the identical
//! instruction stream in both modes (same RNG draws, same obfuscator
//! counter sequence, same message order), so loss curves are
//! bit-identical and [`bf_mpc::TrafficStats`] totals are equal across
//! `{Sync, Pipelined} × {in-process, TCP}`; `tests/pipeline_parity.rs`
//! enforces all four cells.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Instant;

use bf_ml::data::{BatchIter, Dataset};

/// How a party schedules its per-batch work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrainMode {
    /// The lock-step request/response loop: every send sleeps through
    /// its (simulated) wire time inline, batches are selected on the
    /// protocol thread.
    #[default]
    Sync,
    /// The pipelined engine: the transport is queue-decoupled
    /// ([`bf_mpc::Endpoint::make_pipelined`]) so wire time overlaps
    /// compute, and mini-batch preparation is double-buffered on a
    /// worker thread.
    Pipelined {
        /// Transport queue depth (outstanding messages per direction).
        queue_depth: usize,
        /// Mini-batches prepared ahead of the protocol thread.
        prefetch_batches: usize,
    },
}

impl TrainMode {
    /// Pipelined mode with the default queue depth (32) and batch
    /// prefetch (2).
    pub fn pipelined() -> TrainMode {
        TrainMode::Pipelined {
            queue_depth: 32,
            prefetch_batches: 2,
        }
    }
}

/// Drive `f` over one epoch's mini-batches, skipping the first `skip`
/// batches (checkpoint resume: the schedule is a pure function of
/// `(rows, batch_size, epoch_seed)`, so a resumed party rebuilds the
/// identical epoch and simply fast-forwards past the batches the
/// checkpoint already covers — no RNG draws, no wire traffic).
///
/// Both parties construct the same deterministic schedule from
/// `(rows, batch_size, epoch_seed)` — exactly [`BatchIter`]'s contract —
/// so the prepared batches are identical in both modes; only *where*
/// `Dataset::select` runs differs (protocol thread vs. prefetch
/// thread). The callback is topology-agnostic: the two-party trainers
/// drive one session through it and the multi-guest trainer drives a
/// whole session slice (every guest shares the schedule, so one
/// prefetched batch feeds all `M` links; in pipelined mode each
/// link's transport additionally gets its own writer/reader pair).
pub(crate) fn run_epoch<E>(
    mode: TrainMode,
    data: &Dataset,
    batch_size: usize,
    epoch_seed: u64,
    skip: usize,
    mut f: impl FnMut(Dataset) -> Result<(), E>,
) -> Result<(), E> {
    let iter = BatchIter::new(data.rows(), batch_size, epoch_seed).skip(skip);
    match mode {
        TrainMode::Sync => {
            for idx in iter {
                f(data.select(&idx))?;
            }
            Ok(())
        }
        TrainMode::Pipelined {
            prefetch_batches, ..
        } => {
            let depth = prefetch_batches.max(1);
            std::thread::scope(|s| {
                let (tx, rx) = sync_channel::<Dataset>(depth);
                s.spawn(move || {
                    for idx in iter {
                        // A send error means the consumer bailed (its
                        // callback failed); stop preparing quietly.
                        if tx.send(data.select(&idx)).is_err() {
                            return;
                        }
                    }
                });
                // Receiving until the producer closes the channel
                // yields exactly the sync-mode batch sequence.
                while let Ok(batch) = rx.recv() {
                    f(batch)?;
                }
                Ok(())
            })
        }
    }
}

/// A pipeline stage, for wall-clock attribution. Stages are timed as
/// **non-overlapping** scopes (a nested timer would double-count), so
/// each label names the scope's *dominant* work; time spent blocked in
/// `recv` counts toward the stage that waits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Party B's up-front `⟦∇Z⟧` encryptions shipped to Party A at the
    /// start of a backward pass. (Delta re-encryptions later in the
    /// backward pass are interleaved with decrypts/updates and count
    /// under [`Stage::DecryptUpdate`].)
    EncryptUpload,
    /// The federated MatMul source layer (Figure 6 forward).
    FedMatmul,
    /// The federated Embed-MatMul source layer (Figure 7 forward).
    FedEmbed,
    /// The secret-shared top extension (Appendix B).
    SsTop,
    /// Party B's local top model + loss.
    TopLocal,
    /// The rest of the backward pass: ciphertext gradient kernels,
    /// HE2SS splits/decrypts, piece updates, delta re-encryptions and
    /// cache refreshes.
    DecryptUpdate,
}

const STAGE_COUNT: usize = 6;

impl Stage {
    fn index(self) -> usize {
        match self {
            Stage::EncryptUpload => 0,
            Stage::FedMatmul => 1,
            Stage::FedEmbed => 2,
            Stage::SsTop => 3,
            Stage::TopLocal => 4,
            Stage::DecryptUpdate => 5,
        }
    }

    /// Human-readable stage label (bench tables).
    pub fn label(self) -> &'static str {
        match self {
            Stage::EncryptUpload => "encrypt/upload",
            Stage::FedMatmul => "fed-matmul",
            Stage::FedEmbed => "fed-embed",
            Stage::SsTop => "ss-top",
            Stage::TopLocal => "top(local)",
            Stage::DecryptUpdate => "decrypt/update",
        }
    }

    const ALL: [Stage; STAGE_COUNT] = [
        Stage::EncryptUpload,
        Stage::FedMatmul,
        Stage::FedEmbed,
        Stage::SsTop,
        Stage::TopLocal,
        Stage::DecryptUpdate,
    ];
}

/// Per-stage wall-clock accumulator, shared through the session so the
/// source layers can attribute their time without threading a borrow
/// through every call (`Arc` + atomics: timers are guards that outlive
/// the `&mut Session` borrows around them).
#[derive(Debug, Default)]
pub struct StageTimes {
    nanos: [AtomicU64; STAGE_COUNT],
}

impl StageTimes {
    /// Start a scoped timer for `stage`; time accumulates when the
    /// returned guard drops.
    pub fn timer(self: &Arc<Self>, stage: Stage) -> StageTimer {
        StageTimer {
            times: Arc::clone(self),
            stage,
            start: Instant::now(),
        }
    }

    /// Seconds accumulated in `stage` so far.
    pub fn secs(&self, stage: Stage) -> f64 {
        self.nanos[stage.index()].load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// `(label, seconds)` for every stage, in pipeline order.
    pub fn snapshot(&self) -> Vec<(&'static str, f64)> {
        Stage::ALL
            .iter()
            .map(|&s| (s.label(), self.secs(s)))
            .collect()
    }
}

/// RAII guard adding its lifetime to one [`Stage`]'s accumulator.
pub struct StageTimer {
    times: Arc<StageTimes>,
    stage: Stage,
    start: Instant,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let dt = self.start.elapsed().as_nanos() as u64;
        self.times.nanos[self.stage.index()].fetch_add(dt, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_tensor::{Dense, Features};

    fn toy_dataset(rows: usize) -> Dataset {
        let data: Vec<f64> = (0..rows * 2).map(|i| i as f64).collect();
        Dataset {
            num: Some(Features::Dense(Dense::from_vec(rows, 2, data))),
            cat: None,
            labels: None,
        }
    }

    /// Collect the batch sequence a mode produces (first feature of
    /// each row identifies the instance).
    fn batch_trace(mode: TrainMode, rows: usize, bs: usize, seed: u64) -> Vec<Vec<f64>> {
        let ds = toy_dataset(rows);
        let mut out = Vec::new();
        run_epoch::<()>(mode, &ds, bs, seed, 0, |b| {
            let f = match b.num.as_ref().unwrap() {
                Features::Dense(d) => (0..d.rows()).map(|r| d.get(r, 0)).collect(),
                _ => unreachable!(),
            };
            out.push(f);
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn prefetched_batches_match_sync_exactly() {
        for seed in [0u64, 7, 41] {
            let sync = batch_trace(TrainMode::Sync, 37, 8, seed);
            let pipe = batch_trace(TrainMode::pipelined(), 37, 8, seed);
            assert_eq!(sync, pipe);
        }
    }

    #[test]
    fn skip_fast_forwards_to_the_identical_tail() {
        // The checkpoint-resume contract: skipping N batches yields
        // exactly the full schedule minus its first N entries, in both
        // modes.
        let full = batch_trace(TrainMode::Sync, 37, 8, 5);
        for mode in [TrainMode::Sync, TrainMode::pipelined()] {
            for skip in [0usize, 1, 3, full.len()] {
                let ds = toy_dataset(37);
                let mut tail: Vec<Vec<f64>> = Vec::new();
                run_epoch::<()>(mode, &ds, 8, 5, skip, |b| {
                    let f: Vec<f64> = match b.num.as_ref().unwrap() {
                        Features::Dense(d) => (0..d.rows()).map(|r| d.get(r, 0)).collect(),
                        _ => unreachable!(),
                    };
                    tail.push(f);
                    Ok(())
                })
                .unwrap();
                assert_eq!(tail, full[skip..]);
            }
        }
    }

    #[test]
    fn run_epoch_propagates_callback_errors() {
        let ds = toy_dataset(64);
        for mode in [TrainMode::Sync, TrainMode::pipelined()] {
            let mut n = 0;
            let res = run_epoch(mode, &ds, 8, 3, 0, |_| {
                n += 1;
                if n == 3 {
                    Err("boom")
                } else {
                    Ok(())
                }
            });
            assert_eq!(res, Err("boom"));
            assert_eq!(n, 3);
        }
    }

    #[test]
    fn stage_times_accumulate() {
        let t = Arc::new(StageTimes::default());
        {
            let _g = t.timer(Stage::FedMatmul);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(t.secs(Stage::FedMatmul) >= 0.004);
        assert_eq!(t.secs(Stage::FedEmbed), 0.0);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 6);
        assert!(snap.iter().any(|(l, s)| *l == "fed-matmul" && *s > 0.0));
    }
}
