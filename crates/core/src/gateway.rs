//! The multi-client federated serving **gateway**: Party B's front
//! door for prediction traffic at deployment scale (ROADMAP item 2).
//!
//! PR 5's serving runtime multiplexes riders onto *one* session via
//! one micro-batching queue ([`crate::serve`]); this module scales
//! that design out without changing a byte of the federated protocol:
//!
//! ```text
//!  many TCP clients            gateway event loop            replica pool
//!  ───────────────             ──────────────────            ────────────
//!  U64(row) ──┐                                         ┌─▶ shard 0 queue ─▶ serve_party_b ◀─link─▶ guest
//!  U64(row) ──┼─▶ FrameAcceptor ─▶ dispatch (least      ├─▶ shard 1 queue ─▶ serve_party_b ◀─link─▶ guest
//!  U64(row) ──┘     │              outstanding, row     └─▶ shard 2 queue ─▶ serve_party_b_multi ◀═▶ M guests
//!                   │              validated)                     │
//!                   ◀── Mat(logits) / U64(reject code) ───────────┘
//!                       strictly FIFO per connection
//! ```
//!
//! * **Acceptor + event loop** — one thread, nonblocking
//!   [`FrameAcceptor`]/[`FrameConn`] ([`bf_mpc::reactor`]): accept,
//!   read, dispatch, collect completions, flush, in a level-triggered
//!   scan with an idle sleep. No thread per connection.
//! * **Replica pool** — each [`GatewayReplica`] is a full Party B
//!   serving stack (session(s) over its own guest link(s) + a model
//!   loaded via [`crate::persist`]) running the *unmodified*
//!   [`crate::serve::serve_party_b`] /
//!   [`crate::serve::serve_party_b_multi`] loop
//!   on its own thread. The replicas' federated forwards proceed in
//!   parallel; the event loop never blocks on one.
//! * **Sharded queues** — one bounded [`crate::serve::queue`] per
//!   replica; requests go to the live shard with the fewest
//!   outstanding requests.
//! * **Admission control & backpressure** — per-connection window
//!   ([`GatewayConfig::conn_window`]) plus per-shard depth
//!   ([`GatewayConfig::shard_depth`]) bound gateway memory. When
//!   every shard is full the gateway either stops reading
//!   (backpressure — default) or answers
//!   [`GW_OVERLOADED`] immediately ([`GatewayConfig::shed_load`]).
//! * **Accounting** — every request is answered, rejected, or
//!   orphaned (client left first); nothing vanishes.
//!
//! **Wire protocol** (no new frame kinds): a request is one
//! [`Msg::U64`] carrying the row index; the reply is one [`Msg::Mat`]
//! (the logits row) or one [`Msg::U64`] reject code ([`GW_BAD_ROW`] /
//! [`GW_OVERLOADED`] / [`GW_UNAVAILABLE`]). Replies are strictly FIFO
//! per connection, so clients correlate by order ([`GatewayClient`]
//! does this bookkeeping).
//!
//! **Parity contract**: a gateway-served prediction is bit-identical
//! to the direct [`crate::models::PartyBModel::predict_batch`] forward
//! on an identically-seeded session under the same batch partition.
//! Each replica records its exact partitions
//! ([`crate::serve::ServeReport::batch_rows`]), so the contract is
//! *replayable*: `tests/gateway.rs` re-runs every partition directly
//! and compares bits (see `docs/SERVING.md` §gateway).

use std::collections::VecDeque;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bf_ml::data::Dataset;
use bf_mpc::reactor::{FrameAcceptor, FrameConn};
use bf_mpc::transport::{Endpoint, Msg, TransportError, TransportResult};
use bf_tensor::Dense;

use crate::models::{MultiPartyBModel, PartyBModel};
use crate::serve::{self, PendingPrediction, RequestQueue, ServeConfig, ServeError, ServeReport};
use crate::session::Session;

/// Reply code: the requested row is not in the serving feature store
/// (or does not fit the `u32` Support payload).
pub const GW_BAD_ROW: u64 = 0x6A7E_0BAD;
/// Reply code: every shard is full and the gateway is shedding load
/// ([`GatewayConfig::shed_load`]).
pub const GW_OVERLOADED: u64 = 0x6A7E_0F11;
/// Reply code: no live replica can take the request (pool died).
pub const GW_UNAVAILABLE: u64 = 0x6A7E_0DED;

/// Derive replica `r`'s session seed from the deployment's base
/// serving seed. Replica 0 keeps the base seed, so a 1-replica
/// gateway reproduces the single-session serving deployment's bits
/// exactly; other replicas get decorrelated (but deterministic)
/// seeds. Pair it with [`crate::session::party_seed`] /
/// [`crate::session::multi_party_seed`] exactly as in single-session
/// serving.
pub fn gateway_replica_seed(base: u64, replica: usize) -> u64 {
    base ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Gateway sizing and admission-control knobs.
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// Per-replica micro-batch ceiling
    /// ([`crate::serve::ServeConfig::max_batch`]).
    pub max_batch: usize,
    /// Per-shard queue capacity: at most this many requests may be
    /// outstanding on one replica (queued + in its current batch).
    pub shard_depth: usize,
    /// Most requests one connection may have outstanding; reads from
    /// a connection at its window are deferred (per-client fairness
    /// and memory bound).
    pub conn_window: usize,
    /// `false` (default): when every shard is full, stop reading —
    /// requests queue in kernel buffers and clients feel backpressure.
    /// `true`: read anyway and answer [`GW_OVERLOADED`] immediately.
    pub shed_load: bool,
    /// Event-loop sleep when a full scan makes no progress.
    pub poll_interval: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_batch: 32,
            shard_depth: 256,
            conn_window: 256,
            shed_load: false,
            poll_interval: Duration::from_micros(200),
        }
    }
}

/// One member of the replica pool: a complete Party B serving stack
/// (session(s) + model) that a gateway thread drives with the
/// unmodified serve loop.
// A pool holds a handful of replicas, each consumed once at spawn —
// the size asymmetry between the variants is irrelevant here.
#[allow(clippy::large_enum_variant)]
pub enum GatewayReplica {
    /// A two-party replica: one guest link.
    TwoParty {
        /// The replica's session with its guest.
        sess: Session,
        /// The replica's Party B model half (typically loaded from
        /// one shared persisted blob).
        model: PartyBModel,
    },
    /// A multi-guest replica: one link per guest, `Appendix C` style.
    MultiGuest {
        /// One session per guest link, in link order.
        sessions: Vec<Session>,
        /// The replica's multi-guest Party B model half.
        model: MultiPartyBModel,
    },
}

impl GatewayReplica {
    /// Drive this replica's serve loop to queue exhaustion (the
    /// gateway drops the shard's client handle to stop it).
    pub fn serve(
        self,
        store: &Dataset,
        cfg: &ServeConfig,
        queue: RequestQueue,
    ) -> TransportResult<ServeReport> {
        match self {
            GatewayReplica::TwoParty {
                mut sess,
                mut model,
            } => serve::serve_party_b(&mut sess, &mut model, store, cfg, queue),
            GatewayReplica::MultiGuest {
                mut sessions,
                mut model,
            } => serve::serve_party_b_multi(&mut sessions, &mut model, store, cfg, queue),
        }
    }
}

/// What a gateway run produced, with the per-replica serve reports
/// (whose [`ServeReport::batch_rows`] make the parity contract
/// replayable).
#[derive(Debug, Default)]
pub struct GatewayReport {
    /// Prediction replies delivered to clients.
    pub answered: u64,
    /// Requests answered with a reject code (bad row, overloaded,
    /// pool unavailable).
    pub rejected: u64,
    /// Requests whose replica answer arrived after the client was
    /// gone (churn); executed but undeliverable.
    pub orphaned: u64,
    /// Connections accepted over the run.
    pub clients: u64,
    /// Peak requests resident in the gateway at once (accepted, not
    /// yet replied) — the memory bound admission control enforces.
    pub peak_in_flight: u64,
    /// Gateway wall-clock from entry to drain, in seconds.
    pub wall_secs: f64,
    /// Per-replica serve reports, in replica order. Failed replicas
    /// are absent here and reported in
    /// [`GatewayReport::replica_failures`].
    pub replicas: Vec<ServeReport>,
    /// Errors from replicas whose serve loop failed, as
    /// `"replica <i>: <error>"` strings, in replica order.
    pub replica_failures: Vec<String>,
    /// Lazily-sorted merge of every replica's latencies, populated on
    /// the first quantile query so repeated `p50`/`p99` calls merge and
    /// sort once. Public only for functional-record-update
    /// construction; leave it empty (see
    /// [`ServeReport::sorted_latencies`]).
    #[doc(hidden)]
    pub sorted_latencies: std::sync::OnceLock<Vec<f64>>,
}

impl GatewayReport {
    /// Requests the replica pool actually forwarded (sum of replica
    /// `requests`; includes orphaned ones).
    pub fn requests(&self) -> u64 {
        self.replicas.iter().map(|r| r.requests).sum()
    }

    /// Answered replies per wall-clock second.
    pub fn sustained_qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.answered as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The `q`-quantile of per-request latency across every replica,
    /// in seconds, ceil-based nearest rank over the merged sample
    /// (0 when nothing served). Identical by definition to recomputing
    /// the quantile over the concatenation of all per-replica latency
    /// vectors (`tests/quantiles.rs` proves it).
    pub fn latency_quantile_secs(&self, q: f64) -> f64 {
        let sorted = self.sorted_latencies.get_or_init(|| {
            let mut all: Vec<f64> = self
                .replicas
                .iter()
                .flat_map(|r| r.latencies_secs.iter().copied())
                .collect();
            all.sort_by(f64::total_cmp);
            all
        });
        crate::serve::quantile_ceil(sorted, q)
    }

    /// Median per-request latency in seconds, pool-wide.
    pub fn p50_latency_secs(&self) -> f64 {
        self.latency_quantile_secs(0.50)
    }

    /// 99th-percentile per-request latency in seconds, pool-wide.
    pub fn p99_latency_secs(&self) -> f64 {
        self.latency_quantile_secs(0.99)
    }
}

/// One shard: the client half of a replica's request queue plus the
/// dispatcher's view of its load and health.
struct Shard {
    client: serve::PredictClient,
    outstanding: usize,
    live: bool,
}

/// One slot in a connection's FIFO reply pipeline.
enum Slot {
    /// Submitted to shard `shard`; the replica will answer.
    Waiting {
        shard: usize,
        pending: PendingPrediction,
    },
    /// Answered at admission time (reject codes) — ready to send as
    /// soon as every earlier slot has been.
    Ready(Msg),
}

/// One client connection: its socket plus the FIFO of not-yet-replied
/// requests.
struct Conn {
    io: FrameConn,
    pending: VecDeque<Slot>,
    alive: bool,
}

/// Run the gateway event loop until `stop` is set **and** every
/// accepted request has been replied to and flushed. `stop` is the
/// orchestrator's drain signal — set it once the client fleet is done
/// submitting (new connections are refused from then on).
///
/// Every replica serves the same `store` (Party B's feature slice) —
/// the deployment shape is N identical replicas loaded from one
/// persisted blob, each with its own guest link(s) and a seed from
/// [`gateway_replica_seed`].
///
/// Returns `Err` only when the gateway itself cannot run (no
/// replicas, acceptor failure) or the whole pool failed; individual
/// replica failures degrade capacity and land in
/// [`GatewayReport::replica_failures`].
pub fn run_gateway(
    listener: TcpListener,
    replicas: Vec<GatewayReplica>,
    store: &Dataset,
    cfg: &GatewayConfig,
    stop: &AtomicBool,
) -> TransportResult<GatewayReport> {
    if replicas.is_empty() {
        return Err(TransportError::Setup(
            "run_gateway needs at least one replica".into(),
        ));
    }
    let acceptor = FrameAcceptor::from_listener(listener)?;
    let serve_cfg = ServeConfig {
        max_batch: cfg.max_batch.max(1),
    };
    let shard_depth = cfg.shard_depth.max(1);
    let conn_window = cfg.conn_window.max(1);
    let store_rows = store.rows();
    let started = Instant::now();

    std::thread::scope(|scope| {
        let mut shards = Vec::with_capacity(replicas.len());
        let mut handles = Vec::with_capacity(replicas.len());
        for (i, replica) in replicas.into_iter().enumerate() {
            let (client, queue) = serve::queue(shard_depth);
            shards.push(Shard {
                client,
                outstanding: 0,
                live: true,
            });
            let serve_cfg = &serve_cfg;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gw-replica-{i}"))
                    .stack_size(16 << 20)
                    .spawn_scoped(scope, move || replica.serve(store, serve_cfg, queue))
                    .expect("spawn replica thread"),
            );
        }

        let mut conns: Vec<Conn> = Vec::new();
        let mut orphans: Vec<(usize, PendingPrediction)> = Vec::new();
        let mut answered = 0u64;
        let mut rejected = 0u64;
        let mut orphaned = 0u64;
        let mut clients = 0u64;
        let mut peak_in_flight = 0u64;

        loop {
            let mut progress = false;

            // 1. Accept (refused once draining).
            if !stop.load(Ordering::Relaxed) {
                while let Some(io) = acceptor.try_accept()? {
                    conns.push(Conn {
                        io,
                        pending: VecDeque::new(),
                        alive: true,
                    });
                    clients += 1;
                    progress = true;
                }
            }

            // 2. Read + dispatch, bounded by the connection window and
            //    (in backpressure mode) by pool capacity.
            for conn in conns.iter_mut() {
                while conn.alive && conn.pending.len() < conn_window {
                    let any_live = shards.iter().any(|s| s.live);
                    let has_room = shards.iter().any(|s| s.live && s.outstanding < shard_depth);
                    if any_live && !has_room && !cfg.shed_load {
                        // Backpressure: leave the request in the
                        // socket until a shard frees up.
                        break;
                    }
                    match conn.io.try_recv() {
                        Ok(None) => break,
                        Ok(Some(Msg::U64(row))) => {
                            progress = true;
                            let slot =
                                dispatch(&mut shards, row, store_rows, shard_depth, &mut rejected);
                            conn.pending.push_back(slot);
                        }
                        // Any other frame kind is a protocol
                        // violation; a read error is a disconnect.
                        // Either way the read side is done (in-flight
                        // replies still flush below).
                        Ok(Some(_)) | Err(_) => {
                            conn.alive = false;
                        }
                    }
                }
            }

            // 3. Completions, strictly FIFO per connection.
            for conn in conns.iter_mut() {
                while let Some(front) = conn.pending.front_mut() {
                    let msg = match front {
                        Slot::Ready(_) => {
                            let Some(Slot::Ready(msg)) = conn.pending.pop_front() else {
                                unreachable!("front was Ready");
                            };
                            msg
                        }
                        Slot::Waiting { shard, pending } => {
                            let shard = *shard;
                            let Some(result) = pending.try_wait() else {
                                break; // head still in flight; FIFO waits
                            };
                            shards[shard].outstanding -= 1;
                            conn.pending.pop_front();
                            match result {
                                Ok(pred) => {
                                    answered += 1;
                                    let n = pred.logits.len();
                                    Msg::Mat(Dense::from_vec(1, n, pred.logits))
                                }
                                Err(ServeError::Closed) => {
                                    shards[shard].live = false;
                                    rejected += 1;
                                    Msg::U64(GW_UNAVAILABLE)
                                }
                                Err(ServeError::BadRow { .. }) => {
                                    rejected += 1;
                                    Msg::U64(GW_BAD_ROW)
                                }
                                Err(ServeError::Overloaded) => {
                                    rejected += 1;
                                    Msg::U64(GW_OVERLOADED)
                                }
                            }
                        }
                    };
                    conn.io.enqueue(&msg);
                    progress = true;
                }
            }

            // 4. Flush, then reap dead connections — their in-flight
            //    requests become orphans (the replica still answers;
            //    the answer is undeliverable).
            conns.retain_mut(|conn| {
                if conn.io.try_flush().is_err() {
                    conn.alive = false;
                }
                if conn.alive {
                    return true;
                }
                for slot in conn.pending.drain(..) {
                    if let Slot::Waiting { shard, pending } = slot {
                        orphans.push((shard, pending));
                    }
                }
                progress = true;
                false
            });

            // 5. Drain orphans so shard accounting stays exact.
            orphans.retain(|(shard, pending)| match pending.try_wait() {
                None => true,
                Some(result) => {
                    shards[*shard].outstanding -= 1;
                    orphaned += 1;
                    if matches!(result, Err(ServeError::Closed)) {
                        shards[*shard].live = false;
                    }
                    progress = true;
                    false
                }
            });

            let in_flight =
                conns.iter().map(|c| c.pending.len()).sum::<usize>() as u64 + orphans.len() as u64;
            peak_in_flight = peak_in_flight.max(in_flight);

            // 6. Drained? (Only after `stop`: every reply delivered
            //    and flushed, every orphan resolved.)
            if stop.load(Ordering::Relaxed)
                && orphans.is_empty()
                && conns
                    .iter()
                    .all(|c| c.pending.is_empty() && c.io.pending_out() == 0)
            {
                break;
            }
            if !progress {
                std::thread::sleep(cfg.poll_interval);
            }
        }

        // Dropping the shard clients closes every queue; the replica
        // serve loops drain and send SERVE_SHUTDOWN to their guests.
        drop(conns);
        drop(shards);
        let mut reports = Vec::new();
        let mut replica_failures = Vec::new();
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join().expect("replica thread panicked") {
                Ok(r) => reports.push(r),
                Err(e) => replica_failures.push(format!("replica {i}: {e}")),
            }
        }
        if reports.is_empty() {
            return Err(TransportError::Setup(format!(
                "every gateway replica failed: {}",
                replica_failures.join("; ")
            )));
        }
        Ok(GatewayReport {
            answered,
            rejected,
            orphaned,
            clients,
            peak_in_flight,
            wall_secs: started.elapsed().as_secs_f64(),
            replicas: reports,
            replica_failures,
            sorted_latencies: std::sync::OnceLock::new(),
        })
    })
}

/// Admit one request: validate the row, then submit it to the live
/// shard with the fewest outstanding requests (failing over past dead
/// shards). Requests that cannot be admitted become immediate reject
/// replies.
fn dispatch(
    shards: &mut [Shard],
    row: u64,
    store_rows: usize,
    shard_depth: usize,
    rejected: &mut u64,
) -> Slot {
    // Row indices travel as u32 in the Support payload; anything that
    // would truncate is as bad as out-of-range (mirrors the serve
    // loop's own check, but fails fast at the front door).
    if row >= store_rows as u64 || u32::try_from(row).is_err() {
        *rejected += 1;
        return Slot::Ready(Msg::U64(GW_BAD_ROW));
    }
    loop {
        let best = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live && s.outstanding < shard_depth)
            .min_by_key(|(_, s)| s.outstanding)
            .map(|(i, _)| i);
        let Some(i) = best else {
            *rejected += 1;
            let code = if shards.iter().any(|s| s.live) {
                GW_OVERLOADED // every live shard full (shed_load mode)
            } else {
                GW_UNAVAILABLE // the whole pool is dead
            };
            return Slot::Ready(Msg::U64(code));
        };
        match shards[i].client.try_submit(row as usize) {
            Ok(pending) => {
                shards[i].outstanding += 1;
                return Slot::Waiting { shard: i, pending };
            }
            // `outstanding < shard_depth` bounds the queue, so Full
            // here means our accounting raced a dying replica — treat
            // both failures as "this shard is unusable" and fail over.
            Err(_) => {
                shards[i].live = false;
            }
        }
    }
}

/// Why a gateway rejected a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatewayReject {
    /// The row is not in the serving store ([`GW_BAD_ROW`]).
    BadRow,
    /// Every shard was full and the gateway sheds load
    /// ([`GW_OVERLOADED`]).
    Overloaded,
    /// No live replica remained ([`GW_UNAVAILABLE`]).
    Unavailable,
}

/// A blocking gateway client: pipeline any number of [`submit`]s,
/// then [`recv`] replies in submission order (the gateway's FIFO
/// reply contract makes the correlation exact). One TCP connection
/// per client.
///
/// [`submit`]: GatewayClient::submit
/// [`recv`]: GatewayClient::recv
pub struct GatewayClient {
    ep: Endpoint,
    inflight: VecDeque<u64>,
}

impl GatewayClient {
    /// Connect to a gateway, retrying until `timeout` (the gateway
    /// may still be binding).
    pub fn connect<A: std::net::ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> TransportResult<GatewayClient> {
        Ok(GatewayClient {
            ep: Endpoint::tcp_connect_retry(addr, timeout)?,
            inflight: VecDeque::new(),
        })
    }

    /// Send a prediction request for `row` without waiting — the
    /// pipelined form that lets one client keep many requests in
    /// flight.
    pub fn submit(&mut self, row: u64) -> TransportResult<()> {
        self.ep.send(Msg::U64(row))?;
        self.inflight.push_back(row);
        Ok(())
    }

    /// Receive the oldest in-flight request's reply: the requested
    /// row plus its logits (or the reject reason).
    pub fn recv(&mut self) -> TransportResult<(u64, Result<Vec<f64>, GatewayReject>)> {
        let row = self.inflight.pop_front().ok_or_else(|| {
            TransportError::Setup("GatewayClient::recv with no request in flight".into())
        })?;
        match self.ep.recv()? {
            Msg::Mat(m) => Ok((row, Ok(m.row(0).to_vec()))),
            Msg::U64(GW_BAD_ROW) => Ok((row, Err(GatewayReject::BadRow))),
            Msg::U64(GW_OVERLOADED) => Ok((row, Err(GatewayReject::Overloaded))),
            Msg::U64(GW_UNAVAILABLE) => Ok((row, Err(GatewayReject::Unavailable))),
            Msg::U64(v) => Err(TransportError::Setup(format!(
                "unknown gateway reply code {v:#x}"
            ))),
            other => Err(TransportError::TypeMismatch {
                expected: "Mat",
                got: other.kind(),
            }),
        }
    }

    /// Submit and wait — the closed-loop form.
    pub fn predict(&mut self, row: u64) -> TransportResult<Result<Vec<f64>, GatewayReject>> {
        self.submit(row)?;
        Ok(self.recv()?.1)
    }

    /// Requests submitted but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirror of the `ServeReport` regression: the pool-wide quantile
    /// uses ceil-based nearest rank over the *merged* sample.
    #[test]
    fn merged_quantile_uses_ceil_nearest_rank() {
        // 67 samples split unevenly across two replicas.
        let all: Vec<f64> = (1..=67).map(|i| i as f64).collect();
        let report = GatewayReport {
            replicas: vec![
                ServeReport {
                    latencies_secs: all[..20].to_vec(),
                    ..Default::default()
                },
                ServeReport {
                    latencies_secs: all[20..].to_vec(),
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(report.latency_quantile_secs(0.99), 67.0);
        assert_eq!(report.latency_quantile_secs(0.0), 1.0);
        // No replicas at all: still 0, no panic.
        assert_eq!(GatewayReport::default().p99_latency_secs(), 0.0);
    }

    #[test]
    fn replica_zero_keeps_the_base_seed() {
        // A 1-replica gateway must reproduce the single-session
        // serving deployment's session seeds (and therefore its bits).
        assert_eq!(gateway_replica_seed(0x0D15_EA5E, 0), 0x0D15_EA5E);
        // Other replicas decorrelate deterministically.
        let s1 = gateway_replica_seed(7, 1);
        let s2 = gateway_replica_seed(7, 2);
        assert_ne!(s1, 7);
        assert_ne!(s2, 7);
        assert_ne!(s1, s2);
        assert_eq!(s1, gateway_replica_seed(7, 1));
    }

    #[test]
    fn reject_codes_are_distinct() {
        assert_ne!(GW_BAD_ROW, GW_OVERLOADED);
        assert_ne!(GW_BAD_ROW, GW_UNAVAILABLE);
        assert_ne!(GW_OVERLOADED, GW_UNAVAILABLE);
        // And none collides with the serve shutdown sentinel (they
        // share the U64 kind on different links; keep them disjoint
        // anyway so logs stay unambiguous).
        assert_ne!(GW_BAD_ROW, serve::SERVE_SHUTDOWN);
        assert_ne!(GW_OVERLOADED, serve::SERVE_SHUTDOWN);
        assert_ne!(GW_UNAVAILABLE, serve::SERVE_SHUTDOWN);
    }

    #[test]
    fn run_gateway_refuses_an_empty_pool() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let store = Dataset {
            num: None,
            cat: None,
            labels: None,
        };
        let stop = AtomicBool::new(true);
        let err = run_gateway(
            listener,
            Vec::new(),
            &store,
            &GatewayConfig::default(),
            &stop,
        )
        .unwrap_err();
        assert!(matches!(err, TransportError::Setup(_)));
    }
}
