//! Share-inspection helpers for the privacy experiments.
//!
//! Figure 11 of the paper plots, coordinate by coordinate, a party's
//! secret-share piece against the hidden true value, showing that the
//! piece reveals neither sign nor magnitude. These helpers reconstruct
//! that comparison from a trained [`FedOutcome`](crate::train::FedOutcome)
//! — something only the *experimenter* can do, since it requires both
//! parties' pieces.

use bf_tensor::Dense;

use crate::models::{PartyAModel, PartyBModel};

/// `(share_piece, true_value)` pairs for Party A's MatMul weights:
/// `U_A[i]` against `W_A[i] = U_A[i] + V_A[i]`.
pub fn matmul_share_vs_weight(a: &PartyAModel, b: &PartyBModel) -> Vec<(f64, f64)> {
    let mm_a = a.matmul().expect("model has no MatMul source");
    let mm_b = b.matmul().expect("model has no MatMul source");
    let u = mm_a.u_own();
    let w = u.add(mm_b.v_peer());
    zip_coords(u, &w)
}

/// `(share_piece, true_value)` pairs for Party A's embedding table:
/// `S_A[i]` against `Q_A[i] = S_A[i] + T_A[i]`.
pub fn embed_share_vs_table(a: &PartyAModel, b: &PartyBModel) -> Vec<(f64, f64)> {
    let em_a = a.embed().expect("model has no Embed source");
    let em_b = b.embed().expect("model has no Embed source");
    let s = em_a.s_own();
    let q = s.add(em_b.t_peer());
    zip_coords(s, &q)
}

fn zip_coords(piece: &Dense, truth: &Dense) -> Vec<(f64, f64)> {
    piece
        .data()
        .iter()
        .zip(truth.data())
        .map(|(&p, &t)| (p, t))
        .collect()
}

/// Summary of how (un)informative a share piece is about the truth:
/// `(pearson correlation, sign-agreement rate)`.
///
/// For a protective sharing both should be ≈0 correlation and ≈0.5
/// sign agreement.
pub fn share_informativeness(pairs: &[(f64, f64)]) -> (f64, f64) {
    let pieces: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let truths: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let corr = bf_util::stats::pearson(&pieces, &truths);
    let agree = pairs
        .iter()
        .filter(|(p, t)| (p > &0.0) == (t > &0.0))
        .count() as f64
        / pairs.len().max(1) as f64;
    (corr, agree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn informativeness_detects_identity() {
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64 - 50.0, i as f64 - 50.0))
            .collect();
        let (corr, agree) = share_informativeness(&pairs);
        assert!(corr > 0.99);
        assert!(agree > 0.97);
    }

    #[test]
    fn informativeness_detects_noise() {
        // Piece unrelated to truth.
        let pairs: Vec<(f64, f64)> = (0..1000)
            .map(|i| {
                let x = (i as f64 * 0.7368).sin() * 50.0;
                let t = ((i * 37 + 11) % 13) as f64 - 6.0;
                (x, t)
            })
            .collect();
        let (corr, agree) = share_informativeness(&pairs);
        assert!(corr.abs() < 0.15, "corr={corr}");
        assert!((agree - 0.5).abs() < 0.12, "agree={agree}");
    }
}
