//! **blindfl** — a from-scratch Rust reproduction of
//! *BlindFL: Vertical Federated Machine Learning without Peeking into
//! Your Data* (Fu, Xue, Cheng, Tao, Cui — SIGMOD 2022).
//!
//! Two parties own disjoint feature sets over the same instances;
//! Party B additionally owns the labels. BlindFL trains models over the
//! virtually-joint data through **federated source layers**: the first
//! layer of the network is computed jointly under Paillier encryption
//! and two-party additive secret sharing, so that
//!
//! * Party A never observes any forward activation, backward
//!   derivative, model weight, or model gradient (⇒ no label leakage),
//! * Party B never observes `X_A·W_A` / `E_A` / any weight in plaintext
//!   (⇒ no feature leakage),
//! * the outputs and updates are **lossless** — identical to
//!   non-federated training up to fixed-point quantisation.
//!
//! # Paper-section correspondence / crate layout
//!
//! This crate is the paper's **§4 (federated source layers)** and the
//! protocol flows of **§5 (secure aggregation)**; the §5 primitives
//! themselves (`HE2SS`/`SS2HE`, sharing, transport) live in `bf-mpc`
//! and the §7.1 cryptography in `bf-paillier`.
//!
//! * [`config`] / [`session`] — protocol parameters and the per-party
//!   cryptographic session (key handshake, transport, RNG). Sessions
//!   are transport-agnostic: the same code runs over in-process
//!   channels or TCP (see `docs/ARCHITECTURE.md` for the seam).
//! * [`privacy`] — the paper's Tables 2 & 3 as data: the restricted
//!   observables per party, consumed by the security tests.
//! * [`align`] — the sample-alignment (PSI) phase: salted-digest
//!   private set intersection over sample-ID columns right after the
//!   handshake, relaxing the paper's pre-aligned-instances assumption,
//!   plus the limited-overlap regime (guest-local StandardScaler+PCA
//!   encoders fitted on unaligned rows). Bit-identity with pre-aligned
//!   runs is proven by `tests/alignment_parity.rs`.
//! * [`source::matmul`] — the MatMul federated source layer
//!   (§4.2, Figure 6).
//! * [`source::embed`] — the Embed-MatMul federated source layer
//!   (§4.3, Figure 7).
//! * [`source::ss_top`] — the secret-shared-top-model variants
//!   (Appendix B, Figures 13–14).
//! * [`multiparty`] — the multi-guest extension (Appendix C):
//!   [`multiparty::MultiMatMulB`] (Algorithm 3's `M+1`-way weight
//!   split), [`multiparty::MultiEmbedB`] (per-link pairwise submodels
//!   for the bilinear embedding), and the `Hello` link fan-in for
//!   one-process-per-guest TCP deployments.
//! * [`models`] / [`train`] — the federated model zoo (LR, MLR, MLP,
//!   WDL, DLRM) and the training/inference runtime
//!   ([`train::run_party_a`] / [`train::run_party_b`] per party,
//!   [`train::train_federated`] as the two-thread harness;
//!   [`train::run_party_b_multi`] / [`train::train_federated_multi`]
//!   for `M` guests — every guest still runs [`train::run_party_a`]).
//! * [`engine`] — the pipelined mini-batch engine:
//!   [`engine::TrainMode`] selects between the lock-step loop and the
//!   queue-decoupled, double-buffered pipeline (bit-identical results;
//!   see the module docs for the determinism contract).
//! * [`persist`] — byte-exact model-state persistence (export/import
//!   of the trained party halves, momentum buffers and ciphertext
//!   caches included, so a reloaded model resumes training
//!   bit-identically; format spec in `docs/SERVING.md`).
//! * [`serve`] — the federated inference serving runtime: Party B
//!   hosts a micro-batching request queue that coalesces concurrent
//!   single-row prediction requests into one federated forward pass
//!   ([`serve::serve_party_b`] / [`serve::serve_party_a`], plus the
//!   multi-guest [`serve::serve_party_b_multi`]), completing the
//!   train → persist → serve model life cycle.
//! * [`gateway`] — the multi-client serving front door: a
//!   nonblocking TCP acceptor + event loop ([`bf_mpc::reactor`])
//!   multiplexing many concurrent client connections onto a pool of
//!   serving replicas (each its own session(s) + model over its own
//!   guest link(s)) through sharded micro-batch queues, with
//!   admission control and backpressure. Served bits stay identical
//!   to the direct forward — each replica records its batch
//!   partitions so the parity contract is replayable.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the repository root: generate a
//! vertically-split dataset, call [`train::train_federated`] with a
//! [`models::FedSpec`], and compare against the collocated baseline.
//! For the two-process TCP deployment, see
//! `examples/tcp_federated_lr.rs`; for the serving deployment
//! (train, persist, then serve predictions over TCP), see
//! `examples/tcp_serving.rs`.

#![warn(missing_docs)]
#![allow(clippy::too_many_arguments)] // protocol functions mirror the paper's parameter lists
pub mod align;
pub mod config;
pub mod engine;
pub mod gateway;
pub mod inspect;
pub mod models;
pub mod multiparty;
pub mod persist;
pub mod privacy;
pub mod serve;
pub mod session;
pub mod source;
pub mod train;
pub mod trees;

pub use align::{
    align_guest, align_host, align_host_multi, psi_salt, train_federated_aligned,
    train_federated_multi_aligned, AlignedFedOutcome, Alignment, LimitedOverlapConfig,
    MultiAlignedFedOutcome,
};
pub use config::{Backend, FedConfig, GradMode};
pub use engine::TrainMode;
pub use gateway::{
    gateway_replica_seed, run_gateway, GatewayClient, GatewayConfig, GatewayReject, GatewayReplica,
    GatewayReport,
};
pub use models::FedSpec;
pub use persist::{
    export_checkpoint_a, export_checkpoint_b, export_checkpoint_multi_b, export_gbdt_guest,
    export_gbdt_host, export_multi_party_b, export_party_a, export_party_b, import_checkpoint_a,
    import_checkpoint_b, import_checkpoint_multi_b, import_gbdt_guest, import_gbdt_host,
    import_multi_party_b, import_party_a, import_party_b, AlignCursor, CheckpointA, CheckpointB,
    LinkCursor, MultiCheckpointB, PersistError,
};
pub use serve::{
    queue as serve_queue, serve_party_a, serve_party_b, serve_party_b_multi, PendingPrediction,
    PredictClient, Prediction, ServeConfig, ServeError, ServeGuestReport, ServeReport,
};
pub use session::Session;
pub use train::{
    run_party_a_aligned, run_party_a_aligned_resume, run_party_b_aligned,
    run_party_b_aligned_resume, run_party_b_multi_aligned, run_party_b_multi_aligned_resume,
};
pub use train::{
    train_federated, train_federated_multi, CheckpointCadence, FedOutcome, FedReport,
    FedTrainConfig, MultiFedOutcome, MultiFedReport, FAULT_KILL_MARKER,
};
pub use trees::{
    predict_gbdt_host, run_gbdt_guest, run_gbdt_host, serve_gbdt_guest, serve_gbdt_host,
    train_gbdt, GbdtFedOutcome, GbdtGuestModel, GbdtGuestRun, GbdtHostModel, GbdtHostRun,
};
