//! The federated model zoo: LR, MLR, MLP, WDL and DLRM with federated
//! source layers and a local (Party B) top model.
//!
//! A model is described by a [`FedSpec`]; both parties instantiate
//! their halves from the same spec ([`PartyAModel`] /
//! [`PartyBModel`]) and execute forward/backward in lock-step. The top
//! model (bias, activations, hidden towers, loss) lives entirely at
//! Party B and reuses the plaintext `bf-ml` layers — exactly the
//! paper's architecture (Figure 4).

use bf_ml::data::{Dataset, Labels};
use bf_ml::layers::{ActKind, Activation, Bias, Mlp};
use bf_ml::models::loss_and_grad;
use bf_mpc::transport::TransportResult;
use bf_tensor::Dense;

use crate::engine::Stage;
use crate::multiparty::{MultiEmbedB, MultiMatMulB};
use crate::session::Session;
use crate::source::matmul::{aggregate_a, aggregate_b};
use crate::source::{EmbedSource, MatMulSource};

/// Architecture of a federated model (shared by both parties).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FedSpec {
    /// Logistic / multinomial logistic regression: MatMul source +
    /// bias top. `out = 1` for LR, `C` for MLR.
    Glm {
        /// Output width.
        out: usize,
    },
    /// MLP: MatMul source into a ReLU tower at Party B.
    Mlp {
        /// Hidden widths then output width (e.g. `[64, 16, 3]`).
        widths: Vec<usize>,
    },
    /// Wide & Deep (paper Figure 5): MatMul source (wide) + Embed-MatMul
    /// source (deep, projecting to `deep_hidden[0]`) + hidden tower.
    Wdl {
        /// Embedding dimension.
        emb_dim: usize,
        /// Deep-tower hidden widths.
        deep_hidden: Vec<usize>,
        /// Output width.
        out: usize,
    },
    /// DLRM-style: Embed-MatMul source producing a joint categorical
    /// vector, MatMul source producing a joint numerical vector, dot
    /// interaction, top tower at Party B.
    Dlrm {
        /// Embedding dimension.
        emb_dim: usize,
        /// Width of the two source vectors.
        vec_dim: usize,
        /// Top-tower hidden widths.
        top_hidden: Vec<usize>,
    },
}

impl FedSpec {
    /// Does this architecture use an Embed-MatMul source layer?
    pub fn uses_categorical(&self) -> bool {
        matches!(self, FedSpec::Wdl { .. } | FedSpec::Dlrm { .. })
    }

    /// Output width of a model built from this spec.
    pub fn out_dim(&self) -> usize {
        match self {
            FedSpec::Glm { out } | FedSpec::Wdl { out, .. } => *out,
            FedSpec::Mlp { widths } => *widths.last().unwrap(),
            FedSpec::Dlrm { .. } => 1,
        }
    }

    /// Persist the spec (tag byte + per-variant fields).
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        let widths = |w: &mut crate::persist::Writer, v: &[usize]| {
            w.u64(v.len() as u64);
            for &x in v {
                w.u64(x as u64);
            }
        };
        match self {
            FedSpec::Glm { out } => {
                w.u8(1);
                w.u64(*out as u64);
            }
            FedSpec::Mlp { widths: v } => {
                w.u8(2);
                widths(w, v);
            }
            FedSpec::Wdl {
                emb_dim,
                deep_hidden,
                out,
            } => {
                w.u8(3);
                w.u64(*emb_dim as u64);
                widths(w, deep_hidden);
                w.u64(*out as u64);
            }
            FedSpec::Dlrm {
                emb_dim,
                vec_dim,
                top_hidden,
            } => {
                w.u8(4);
                w.u64(*emb_dim as u64);
                w.u64(*vec_dim as u64);
                widths(w, top_hidden);
            }
        }
    }

    /// Rebuild the spec from persisted state.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
    ) -> crate::persist::PersistResult<FedSpec> {
        use crate::persist::PersistError;
        let widths = |r: &mut crate::persist::Reader| -> crate::persist::PersistResult<Vec<usize>> {
            let n = r.len_u64()?;
            // A corrupted count must not drive an allocation: every
            // entry costs 8 bytes, so the blob bounds the count.
            if n > 1 << 20 {
                return Err(PersistError::Malformed(format!(
                    "implausible width count {n}"
                )));
            }
            (0..n).map(|_| r.len_u64()).collect()
        };
        match r.u8()? {
            1 => Ok(FedSpec::Glm { out: r.len_u64()? }),
            2 => {
                let v = widths(r)?;
                if v.len() < 2 {
                    return Err(PersistError::Malformed(
                        "Mlp spec needs at least input and output widths".into(),
                    ));
                }
                Ok(FedSpec::Mlp { widths: v })
            }
            3 => Ok(FedSpec::Wdl {
                emb_dim: r.len_u64()?,
                deep_hidden: widths(r)?,
                out: r.len_u64()?,
            }),
            4 => Ok(FedSpec::Dlrm {
                emb_dim: r.len_u64()?,
                vec_dim: r.len_u64()?,
                top_hidden: widths(r)?,
            }),
            tag => Err(PersistError::Malformed(format!("unknown spec tag {tag}"))),
        }
    }
}

/// Party A's half: the A-sides of the source layers plus the fixed
/// execution order.
pub struct PartyAModel {
    matmul: Option<MatMulSource>,
    embed: Option<EmbedSource>,
}

impl PartyAModel {
    /// Initialise from the spec and Party A's data view.
    pub fn init(
        sess: &mut Session,
        spec: &FedSpec,
        data: &Dataset,
    ) -> TransportResult<PartyAModel> {
        let num_dim = data.num_dim();
        let (matmul, embed) = match spec {
            FedSpec::Glm { out } => (Some(MatMulSource::init(sess, num_dim, *out)?), None),
            FedSpec::Mlp { widths } => (Some(MatMulSource::init(sess, num_dim, widths[0])?), None),
            FedSpec::Wdl {
                emb_dim,
                deep_hidden,
                out,
            } => {
                let mm = MatMulSource::init(sess, num_dim, *out)?;
                let cat = data.cat.as_ref().expect("WDL needs categorical features");
                let proj = deep_hidden.first().copied().unwrap_or(*out);
                let em = EmbedSource::init(sess, cat.vocab(), cat.fields(), *emb_dim, proj)?;
                (Some(mm), Some(em))
            }
            FedSpec::Dlrm {
                emb_dim, vec_dim, ..
            } => {
                let mm = MatMulSource::init(sess, num_dim, *vec_dim)?;
                let cat = data.cat.as_ref().expect("DLRM needs categorical features");
                let em = EmbedSource::init(sess, cat.vocab(), cat.fields(), *emb_dim, *vec_dim)?;
                (Some(mm), Some(em))
            }
        };
        Ok(PartyAModel { matmul, embed })
    }

    /// One forward pass over a batch view (A's side of every source
    /// layer, in the canonical order: MatMul first, then Embed).
    pub fn forward(
        &mut self,
        sess: &mut Session,
        batch: &Dataset,
        train: bool,
    ) -> TransportResult<()> {
        if let Some(mm) = &mut self.matmul {
            let x = batch.num.as_ref().expect("missing numerical block");
            let z = mm.forward(sess, x, train)?;
            aggregate_a(sess, z)?;
        }
        if let Some(em) = &mut self.embed {
            let x = batch.cat.as_ref().expect("missing categorical block");
            let z = em.forward(sess, x, train)?;
            aggregate_a(sess, z)?;
        }
        Ok(())
    }

    /// One backward pass (reverse order: Embed first, then MatMul).
    pub fn backward(&mut self, sess: &mut Session) -> TransportResult<()> {
        if let Some(em) = &mut self.embed {
            em.backward_a(sess)?;
        }
        if let Some(mm) = &mut self.matmul {
            mm.backward_a(sess)?;
        }
        Ok(())
    }

    /// The forward-only prediction path: one federated forward pass
    /// over a batch view with **no gradient caches** — the A-side
    /// counterpart of [`PartyBModel::predict_batch`]. This is what the
    /// serving loop ([`crate::serve::serve_party_a`]) drives for a
    /// model loaded via [`crate::persist`].
    pub fn predict_batch(&mut self, sess: &mut Session, batch: &Dataset) -> TransportResult<()> {
        self.forward(sess, batch, false)
    }

    /// The MatMul source half (inspection).
    pub fn matmul(&self) -> Option<&MatMulSource> {
        self.matmul.as_ref()
    }

    /// The Embed source half (inspection).
    pub fn embed(&self) -> Option<&EmbedSource> {
        self.embed.as_ref()
    }

    /// Persist the model half: presence flags + per-layer state.
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        write_opt(w, self.matmul.as_ref(), MatMulSource::write_state);
        write_opt(w, self.embed.as_ref(), EmbedSource::write_state);
    }

    /// Rebuild the model half from persisted state.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
    ) -> crate::persist::PersistResult<PartyAModel> {
        let matmul = read_opt(r, MatMulSource::read_state)?;
        let embed = read_opt(r, EmbedSource::read_state)?;
        if matmul.is_none() && embed.is_none() {
            return Err(crate::persist::PersistError::Malformed(
                "PartyAModel with no source layers".into(),
            ));
        }
        Ok(PartyAModel { matmul, embed })
    }
}

/// Encode an optional component as a presence byte + state.
fn write_opt<T>(
    w: &mut crate::persist::Writer,
    v: Option<&T>,
    enc: impl FnOnce(&T, &mut crate::persist::Writer),
) {
    match v {
        Some(t) => {
            w.u8(1);
            enc(t, w);
        }
        None => w.u8(0),
    }
}

/// Decode an optional component (presence byte + state).
fn read_opt<T>(
    r: &mut crate::persist::Reader,
    dec: impl FnOnce(&mut crate::persist::Reader) -> crate::persist::PersistResult<T>,
) -> crate::persist::PersistResult<Option<T>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(dec(r)?)),
        tag => Err(crate::persist::PersistError::Malformed(format!(
            "bad presence byte {tag}"
        ))),
    }
}

/// Party B's half: B-sides of the source layers plus the local top
/// model and loss.
pub struct PartyBModel {
    spec: FedSpec,
    matmul: Option<MatMulSource>,
    embed: Option<EmbedSource>,
    top: Top,
}

/// Party B's local top model — shared by the two-party
/// [`PartyBModel`] and the multi-guest [`MultiPartyBModel`] (the top
/// is purely local to B, so it is identical in both topologies).
enum Top {
    /// Bias only (GLM).
    Bias(Bias),
    /// Bias + ReLU + tower (MLP).
    Tower {
        bias: Bias,
        act: Activation,
        tower: Mlp,
    },
    /// WDL: wide Z + deep(Z_cat → bias+relu+tower), summed, plus bias.
    Wdl {
        deep_bias: Bias,
        deep_act: Activation,
        deep_tower: Mlp,
        out_bias: Bias,
    },
    /// DLRM: interaction of the two source vectors + top tower.
    Dlrm { tower: Mlp },
}

impl Top {
    /// Build the top for a spec. Draws tower weights from `rng` in the
    /// same order as the source-layer initialisation that precedes it,
    /// so two-party and multi-guest runs share the derivation.
    fn init(spec: &FedSpec, rng: &mut rand::rngs::StdRng) -> Top {
        match spec {
            FedSpec::Glm { out } => Top::Bias(Bias::new(*out)),
            FedSpec::Mlp { widths } => Top::Tower {
                bias: Bias::new(widths[0]),
                act: Activation::new(ActKind::Relu),
                tower: Mlp::new(rng, widths),
            },
            FedSpec::Wdl {
                deep_hidden, out, ..
            } => {
                let proj = deep_hidden.first().copied().unwrap_or(*out);
                let mut widths = deep_hidden.clone();
                widths.push(*out);
                Top::Wdl {
                    deep_bias: Bias::new(proj),
                    deep_act: Activation::new(ActKind::Relu),
                    deep_tower: Mlp::new(rng, &widths),
                    out_bias: Bias::new(*out),
                }
            }
            FedSpec::Dlrm {
                vec_dim,
                top_hidden,
                ..
            } => {
                let mut widths = vec![2 * vec_dim + 1];
                widths.extend_from_slice(top_hidden);
                widths.push(1);
                Top::Dlrm {
                    tower: Mlp::new(rng, &widths),
                }
            }
        }
    }

    /// Forward through the local top: aggregated source outputs in,
    /// logits out. Fills `cache` with whatever the matching backward
    /// needs.
    fn forward(
        &mut self,
        z_num: Option<&Dense>,
        z_cat: Option<&Dense>,
        cache: &mut FwdCache,
    ) -> Dense {
        match self {
            Top::Bias(bias) => bias.forward(z_num.unwrap()),
            Top::Tower { bias, act, tower } => {
                let h = act.forward(&bias.forward(z_num.unwrap()));
                tower.forward(&h)
            }
            Top::Wdl {
                deep_bias,
                deep_act,
                deep_tower,
                out_bias,
            } => {
                let h = deep_act.forward(&deep_bias.forward(z_cat.unwrap()));
                let deep = deep_tower.forward(&h);
                out_bias.forward(&z_num.unwrap().add(&deep))
            }
            Top::Dlrm { tower } => {
                let zn = z_num.unwrap();
                let zc = z_cat.unwrap();
                let inter = dlrm_interact(zn, zc);
                cache.z_num = Some(zn.clone());
                cache.z_cat = Some(zc.clone());
                tower.forward(&inter)
            }
        }
    }

    /// Backward through the local top (and apply its SGD step):
    /// returns `(∇Z_num, ∇Z_cat)` for the federated source layers.
    fn backward(
        &mut self,
        grad_logits: &Dense,
        cache: &FwdCache,
        opt: &bf_ml::Sgd,
    ) -> (Option<Dense>, Option<Dense>) {
        match self {
            Top::Bias(bias) => {
                bias.backward(grad_logits);
                bias.step(opt);
                (Some(grad_logits.clone()), None)
            }
            Top::Tower { bias, act, tower } => {
                let gh = tower.backward(grad_logits);
                let gz = act.backward(&gh);
                bias.backward(&gz);
                tower.step(opt);
                bias.step(opt);
                (Some(gz), None)
            }
            Top::Wdl {
                deep_bias,
                deep_act,
                deep_tower,
                out_bias,
            } => {
                out_bias.backward(grad_logits);
                let g_deep = deep_tower.backward(grad_logits);
                let gz_cat = deep_act.backward(&g_deep);
                deep_bias.backward(&gz_cat);
                out_bias.step(opt);
                deep_tower.step(opt);
                deep_bias.step(opt);
                (Some(grad_logits.clone()), Some(gz_cat))
            }
            Top::Dlrm { tower } => {
                let g_inter = tower.backward(grad_logits);
                tower.step(opt);
                let zn = cache.z_num.as_ref().expect("DLRM cache");
                let zc = cache.z_cat.as_ref().expect("DLRM cache");
                let (gn, gc) = dlrm_interact_backward(zn, zc, &g_inter);
                (Some(gn), Some(gc))
            }
        }
    }

    /// Persist the top model (tag byte + per-variant layer states;
    /// the activations are implied by the variant).
    fn write_state(&self, w: &mut crate::persist::Writer) {
        match self {
            Top::Bias(bias) => {
                w.u8(1);
                write_bias(w, bias);
            }
            Top::Tower { bias, tower, .. } => {
                w.u8(2);
                write_bias(w, bias);
                write_mlp(w, tower);
            }
            Top::Wdl {
                deep_bias,
                deep_tower,
                out_bias,
                ..
            } => {
                w.u8(3);
                write_bias(w, deep_bias);
                write_mlp(w, deep_tower);
                write_bias(w, out_bias);
            }
            Top::Dlrm { tower } => {
                w.u8(4);
                write_mlp(w, tower);
            }
        }
    }

    /// Rebuild the top model from persisted state, checking it matches
    /// the spec's variant (a `Glm` blob must carry a `Bias` top, …).
    fn read_state(
        r: &mut crate::persist::Reader,
        spec: &FedSpec,
    ) -> crate::persist::PersistResult<Top> {
        use crate::persist::PersistError;
        let tag = r.u8()?;
        let want = match spec {
            FedSpec::Glm { .. } => 1,
            FedSpec::Mlp { .. } => 2,
            FedSpec::Wdl { .. } => 3,
            FedSpec::Dlrm { .. } => 4,
        };
        if tag != want {
            return Err(PersistError::Malformed(format!(
                "top-model tag {tag} does not match spec ({spec:?} expects {want})"
            )));
        }
        Ok(match tag {
            1 => Top::Bias(read_bias(r)?),
            2 => Top::Tower {
                bias: read_bias(r)?,
                act: Activation::new(ActKind::Relu),
                tower: read_mlp(r)?,
            },
            3 => Top::Wdl {
                deep_bias: read_bias(r)?,
                deep_act: Activation::new(ActKind::Relu),
                deep_tower: read_mlp(r)?,
                out_bias: read_bias(r)?,
            },
            4 => Top::Dlrm {
                tower: read_mlp(r)?,
            },
            _ => unreachable!("tag validated against spec above"),
        })
    }
}

/// Encode a [`Bias`] layer (bias row + momentum buffer).
fn write_bias(w: &mut crate::persist::Writer, b: &Bias) {
    w.dense(&b.b);
    w.dense(b.velocity());
}

/// Decode a [`Bias`] layer, validating shapes before construction.
fn read_bias(r: &mut crate::persist::Reader) -> crate::persist::PersistResult<Bias> {
    let b = r.dense()?;
    let vel = r.dense()?;
    crate::persist::check_vel(&b, &vel, "Bias")?;
    if b.rows() != 1 {
        return Err(crate::persist::PersistError::Malformed(format!(
            "bias must be a row vector, got {}×{}",
            b.rows(),
            b.cols()
        )));
    }
    Ok(Bias::from_state(b, vel))
}

/// Encode an [`Mlp`] tower (depth + per-layer weights, bias, momentum
/// buffers and a ReLU-follows flag).
fn write_mlp(w: &mut crate::persist::Writer, mlp: &Mlp) {
    w.u64(mlp.depth() as u64);
    for (lin, has_act) in mlp.layers() {
        let (wt, b, vel_w, vel_b) = lin.state();
        w.dense(wt);
        w.dense(b);
        w.dense(vel_w);
        w.dense(vel_b);
        w.u8(u8::from(has_act));
    }
}

/// Decode an [`Mlp`] tower, validating every layer's shapes.
fn read_mlp(r: &mut crate::persist::Reader) -> crate::persist::PersistResult<Mlp> {
    use crate::persist::PersistError;
    let depth = r.len_u64()?;
    if depth == 0 || depth > 1 << 16 {
        return Err(PersistError::Malformed(format!(
            "implausible tower depth {depth}"
        )));
    }
    let mut layers = Vec::with_capacity(depth);
    for i in 0..depth {
        let w = r.dense()?;
        let b = r.dense()?;
        let vel_w = r.dense()?;
        let vel_b = r.dense()?;
        crate::persist::check_vel(&w, &vel_w, "Linear W")?;
        crate::persist::check_vel(&b, &vel_b, "Linear b")?;
        if b.rows() != 1 || b.cols() != w.cols() {
            return Err(PersistError::Malformed(format!(
                "tower layer {i}: bias {}×{} does not match weights {}×{}",
                b.rows(),
                b.cols(),
                w.rows(),
                w.cols()
            )));
        }
        let has_act = match r.u8()? {
            0 => false,
            1 => true,
            tag => {
                return Err(PersistError::Malformed(format!(
                    "bad activation flag {tag}"
                )))
            }
        };
        layers.push((
            bf_ml::layers::Linear::from_state(w, b, vel_w, vel_b),
            has_act,
        ));
    }
    // Consecutive layers must chain (a break here would only surface
    // as a matmul shape panic on the first forward pass).
    for (i, win) in layers.windows(2).enumerate() {
        let (prev, next) = (win[0].0.state().0, win[1].0.state().0);
        if prev.cols() != next.rows() {
            return Err(PersistError::Malformed(format!(
                "tower layers {i}/{}: widths {} → {} do not chain",
                i + 1,
                prev.cols(),
                next.rows()
            )));
        }
    }
    Ok(Mlp::from_layers(layers))
}

/// Input/output widths of a decoded tower (`read_mlp` guarantees it is
/// non-empty and chained).
fn mlp_io(mlp: &Mlp) -> (usize, usize) {
    let first = mlp.layers().next().expect("non-empty tower").0.state().0;
    let last = mlp.layers().last().expect("non-empty tower").0.state().0;
    (first.rows(), last.cols())
}

/// Validate the cross-component dimensions of an imported Party B
/// model: the spec's widths, the source layers' output widths, and the
/// top model's layer shapes must all agree — otherwise a corrupted
/// blob would import cleanly and then panic inside the first forward
/// pass (the serving loop) rather than being refused at load time.
fn check_model_widths(
    spec: &FedSpec,
    matmul_out: Option<usize>,
    embed_out: Option<usize>,
    top: &Top,
) -> crate::persist::PersistResult<()> {
    use crate::persist::PersistError;
    let check = |ok: bool, why: String| {
        if ok {
            Ok(())
        } else {
            Err(PersistError::Malformed(why))
        }
    };
    // check_spec_layers has already run, so the layer set matches the
    // spec shape; here we pin the widths at every connection point.
    let mm = matmul_out.expect("layer set validated against spec");
    match (spec, top) {
        (FedSpec::Glm { out }, Top::Bias(bias)) => check(
            mm == *out && bias.b.cols() == *out,
            format!(
                "Glm widths disagree: spec out {out}, MatMul out {mm}, bias {}",
                bias.b.cols()
            ),
        ),
        (FedSpec::Mlp { widths }, Top::Tower { bias, tower, .. }) => {
            let (t_in, t_out) = mlp_io(tower);
            check(
                mm == widths[0]
                    && bias.b.cols() == widths[0]
                    && t_in == widths[0]
                    && t_out == *widths.last().unwrap(),
                format!(
                    "Mlp widths disagree: spec {widths:?}, MatMul out {mm}, bias {}, tower {t_in}→{t_out}",
                    bias.b.cols()
                ),
            )
        }
        (
            FedSpec::Wdl {
                deep_hidden, out, ..
            },
            Top::Wdl {
                deep_bias,
                deep_tower,
                out_bias,
                ..
            },
        ) => {
            let proj = deep_hidden.first().copied().unwrap_or(*out);
            let em = embed_out.expect("layer set validated against spec");
            let (t_in, t_out) = mlp_io(deep_tower);
            check(
                mm == *out
                    && em == proj
                    && deep_bias.b.cols() == proj
                    && t_in == proj
                    && t_out == *out
                    && out_bias.b.cols() == *out,
                format!(
                    "Wdl widths disagree: spec (proj {proj}, out {out}), MatMul out {mm}, \
                     Embed out {em}, deep bias {}, tower {t_in}→{t_out}, out bias {}",
                    deep_bias.b.cols(),
                    out_bias.b.cols()
                ),
            )
        }
        (FedSpec::Dlrm { vec_dim, .. }, Top::Dlrm { tower }) => {
            let em = embed_out.expect("layer set validated against spec");
            let (t_in, t_out) = mlp_io(tower);
            check(
                mm == *vec_dim && em == *vec_dim && t_in == 2 * vec_dim + 1 && t_out == 1,
                format!(
                    "Dlrm widths disagree: spec vec_dim {vec_dim}, MatMul out {mm}, \
                     Embed out {em}, tower {t_in}→{t_out}"
                ),
            )
        }
        // Top::read_state already rejects a tag/spec mismatch.
        _ => unreachable!("top variant validated against spec"),
    }
}

impl PartyBModel {
    /// Initialise from the spec and Party B's data view.
    pub fn init(
        sess: &mut Session,
        spec: &FedSpec,
        data: &Dataset,
    ) -> TransportResult<PartyBModel> {
        let num_dim = data.num_dim();
        let (matmul, embed) = match spec {
            FedSpec::Glm { out } => (Some(MatMulSource::init(sess, num_dim, *out)?), None),
            FedSpec::Mlp { widths } => (Some(MatMulSource::init(sess, num_dim, widths[0])?), None),
            FedSpec::Wdl {
                emb_dim,
                deep_hidden,
                out,
            } => {
                let mm = MatMulSource::init(sess, num_dim, *out)?;
                let cat = data.cat.as_ref().expect("WDL needs categorical features");
                let proj = deep_hidden.first().copied().unwrap_or(*out);
                let em = EmbedSource::init(sess, cat.vocab(), cat.fields(), *emb_dim, proj)?;
                (Some(mm), Some(em))
            }
            FedSpec::Dlrm {
                emb_dim, vec_dim, ..
            } => {
                let mm = MatMulSource::init(sess, num_dim, *vec_dim)?;
                let cat = data.cat.as_ref().expect("DLRM needs categorical features");
                let em = EmbedSource::init(sess, cat.vocab(), cat.fields(), *emb_dim, *vec_dim)?;
                (Some(mm), Some(em))
            }
        };
        // Top init draws *after* the source layers, preserving the
        // session RNG stream layout.
        let top = Top::init(spec, &mut sess.rng);
        Ok(PartyBModel {
            spec: spec.clone(),
            matmul,
            embed,
            top,
        })
    }

    /// Output width of the model.
    pub fn out_dim(&self) -> usize {
        self.spec.out_dim()
    }

    /// Forward over a batch view: returns the logits plus the caches
    /// needed by the matching backward call.
    pub fn forward(
        &mut self,
        sess: &mut Session,
        batch: &Dataset,
        train: bool,
    ) -> TransportResult<(Dense, FwdCache)> {
        let z_num = match &mut self.matmul {
            Some(mm) => {
                let x = batch.num.as_ref().expect("missing numerical block");
                let z_own = mm.forward(sess, x, train)?;
                Some(aggregate_b(sess, z_own)?)
            }
            None => None,
        };
        let z_cat = match &mut self.embed {
            Some(em) => {
                let x = batch.cat.as_ref().expect("missing categorical block");
                let z_own = em.forward(sess, x, train)?;
                Some(aggregate_b(sess, z_own)?)
            }
            None => None,
        };
        let mut cache = FwdCache::default();
        let _t = sess.stages.timer(Stage::TopLocal);
        let logits = self.top.forward(z_num.as_ref(), z_cat.as_ref(), &mut cache);
        Ok((logits, cache))
    }

    /// Backward from a loss gradient w.r.t. the logits; drives the
    /// federated source-layer updates (Embed first, then MatMul —
    /// mirroring Party A).
    pub fn backward(
        &mut self,
        sess: &mut Session,
        grad_logits: &Dense,
        cache: &FwdCache,
    ) -> TransportResult<()> {
        let top_timer = sess.stages.timer(Stage::TopLocal);
        let (grad_z_num, grad_z_cat) = self.top.backward(grad_logits, cache, &sess.sgd());
        drop(top_timer);
        // Reverse order (Embed then MatMul) to mirror Party A.
        if let Some(em) = &mut self.embed {
            em.backward_b(sess, grad_z_cat.as_ref().expect("missing ∇Z_cat"))?;
        }
        if let Some(mm) = &mut self.matmul {
            mm.backward_b(sess, grad_z_num.as_ref().expect("missing ∇Z_num"))?;
        }
        Ok(())
    }

    /// One full training step: forward, loss, backward. Returns the
    /// batch loss.
    pub fn train_batch(&mut self, sess: &mut Session, batch: &Dataset) -> TransportResult<f64> {
        let labels = batch.labels.as_ref().expect("Party B holds the labels");
        let (logits, cache) = self.forward(sess, batch, true)?;
        let (loss, grad) = loss_and_grad(&logits, labels);
        self.backward(sess, &grad, &cache)?;
        Ok(loss)
    }

    /// Inference logits for a batch view.
    pub fn predict_batch(&mut self, sess: &mut Session, batch: &Dataset) -> TransportResult<Dense> {
        Ok(self.forward(sess, batch, false)?.0)
    }

    /// Loss/metric helper reused by the trainer.
    pub fn loss_for(&self, logits: &Dense, labels: &Labels) -> f64 {
        loss_and_grad(logits, labels).0
    }

    /// The MatMul source half (inspection).
    pub fn matmul(&self) -> Option<&MatMulSource> {
        self.matmul.as_ref()
    }

    /// The Embed source half (inspection).
    pub fn embed(&self) -> Option<&EmbedSource> {
        self.embed.as_ref()
    }

    /// Persist the model half: spec, source layers, top model.
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        self.spec.write_state(w);
        write_opt(w, self.matmul.as_ref(), MatMulSource::write_state);
        write_opt(w, self.embed.as_ref(), EmbedSource::write_state);
        self.top.write_state(w);
    }

    /// Rebuild the model half from persisted state.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
    ) -> crate::persist::PersistResult<PartyBModel> {
        let spec = FedSpec::read_state(r)?;
        let matmul = read_opt(r, MatMulSource::read_state)?;
        let embed = read_opt(r, EmbedSource::read_state)?;
        check_spec_layers(&spec, matmul.is_some(), embed.is_some())?;
        let top = Top::read_state(r, &spec)?;
        check_model_widths(
            &spec,
            matmul.as_ref().map(MatMulSource::out_dim),
            embed.as_ref().map(EmbedSource::out_dim),
            &top,
        )?;
        Ok(PartyBModel {
            spec,
            matmul,
            embed,
            top,
        })
    }
}

/// Validate that a persisted layer set matches its spec: every zoo
/// member has a MatMul source, and exactly the categorical specs also
/// have an Embed-MatMul source.
fn check_spec_layers(
    spec: &FedSpec,
    has_matmul: bool,
    has_embed: bool,
) -> crate::persist::PersistResult<()> {
    if has_matmul && has_embed == spec.uses_categorical() {
        Ok(())
    } else {
        Err(crate::persist::PersistError::Malformed(format!(
            "layer set (matmul: {has_matmul}, embed: {has_embed}) does not match spec {spec:?}"
        )))
    }
}

/// Party B's half of a **multi-guest** federated model (paper
/// Appendix C): the same spec and the same local top model as
/// [`PartyBModel`], but the source layers fan out over `M` guest
/// sessions — [`MultiMatMulB`] for the numerical block (Algorithm 3's
/// `M+1`-way weight split) and [`MultiEmbedB`] for the categorical
/// block (per-link pairwise submodels, outputs summed; see
/// [`crate::multiparty`] for the exact semantics). Every guest runs
/// the unmodified two-party [`PartyAModel`] routines; with one guest
/// this model is bit-for-bit the two-party [`PartyBModel`].
pub struct MultiPartyBModel {
    spec: FedSpec,
    matmul: Option<MultiMatMulB>,
    embed: Option<MultiEmbedB>,
    top: Top,
}

impl MultiPartyBModel {
    /// Initialise from the spec and Party B's data view, against one
    /// session per guest (all `Role::B`; typed
    /// [`bf_mpc::transport::TransportError::Setup`] on an empty or
    /// wrong-role slice).
    pub fn init(
        sessions: &mut [Session],
        spec: &FedSpec,
        data: &Dataset,
    ) -> TransportResult<MultiPartyBModel> {
        let num_dim = data.num_dim();
        let (matmul, embed) = match spec {
            FedSpec::Glm { out } => (Some(MultiMatMulB::init(sessions, num_dim, *out)?), None),
            FedSpec::Mlp { widths } => (
                Some(MultiMatMulB::init(sessions, num_dim, widths[0])?),
                None,
            ),
            FedSpec::Wdl {
                emb_dim,
                deep_hidden,
                out,
            } => {
                let mm = MultiMatMulB::init(sessions, num_dim, *out)?;
                let cat = data.cat.as_ref().expect("WDL needs categorical features");
                let proj = deep_hidden.first().copied().unwrap_or(*out);
                let em = MultiEmbedB::init(sessions, cat.vocab(), cat.fields(), *emb_dim, proj)?;
                (Some(mm), Some(em))
            }
            FedSpec::Dlrm {
                emb_dim, vec_dim, ..
            } => {
                let mm = MultiMatMulB::init(sessions, num_dim, *vec_dim)?;
                let cat = data.cat.as_ref().expect("DLRM needs categorical features");
                let em =
                    MultiEmbedB::init(sessions, cat.vocab(), cat.fields(), *emb_dim, *vec_dim)?;
                (Some(mm), Some(em))
            }
        };
        // Top init draws from the first link's session RNG, after the
        // source layers — the same stream layout as the two-party
        // model, so an M = 1 run reproduces it exactly.
        let top = Top::init(spec, &mut sessions[0].rng);
        Ok(MultiPartyBModel {
            spec: spec.clone(),
            matmul,
            embed,
            top,
        })
    }

    /// Output width of the model.
    pub fn out_dim(&self) -> usize {
        self.spec.out_dim()
    }

    /// Forward over a batch view: returns the logits plus the caches
    /// needed by the matching backward call. The source layers
    /// aggregate over every guest link internally.
    pub fn forward(
        &mut self,
        sessions: &mut [Session],
        batch: &Dataset,
        train: bool,
    ) -> TransportResult<(Dense, FwdCache)> {
        let z_num = match &mut self.matmul {
            Some(mm) => {
                let x = batch.num.as_ref().expect("missing numerical block");
                Some(mm.forward(sessions, x, train)?)
            }
            None => None,
        };
        let z_cat = match &mut self.embed {
            Some(em) => {
                let x = batch.cat.as_ref().expect("missing categorical block");
                Some(em.forward(sessions, x, train)?)
            }
            None => None,
        };
        let mut cache = FwdCache::default();
        let stages = std::sync::Arc::clone(&sessions[0].stages);
        let _t = stages.timer(Stage::TopLocal);
        let logits = self.top.forward(z_num.as_ref(), z_cat.as_ref(), &mut cache);
        Ok((logits, cache))
    }

    /// Backward from a loss gradient w.r.t. the logits; drives the
    /// multi-guest source-layer updates (Embed first, then MatMul —
    /// mirroring every guest's [`PartyAModel::backward`]).
    pub fn backward(
        &mut self,
        sessions: &mut [Session],
        grad_logits: &Dense,
        cache: &FwdCache,
    ) -> TransportResult<()> {
        let stages = std::sync::Arc::clone(&sessions[0].stages);
        let opt = sessions[0].sgd();
        let top_timer = stages.timer(Stage::TopLocal);
        let (grad_z_num, grad_z_cat) = self.top.backward(grad_logits, cache, &opt);
        drop(top_timer);
        if let Some(em) = &mut self.embed {
            em.backward(sessions, grad_z_cat.as_ref().expect("missing ∇Z_cat"))?;
        }
        if let Some(mm) = &mut self.matmul {
            mm.backward(sessions, grad_z_num.as_ref().expect("missing ∇Z_num"))?;
        }
        Ok(())
    }

    /// One full training step: forward, loss, backward. Returns the
    /// batch loss.
    pub fn train_batch(
        &mut self,
        sessions: &mut [Session],
        batch: &Dataset,
    ) -> TransportResult<f64> {
        let labels = batch.labels.as_ref().expect("Party B holds the labels");
        let (logits, cache) = self.forward(sessions, batch, true)?;
        let (loss, grad) = loss_and_grad(&logits, labels);
        self.backward(sessions, &grad, &cache)?;
        Ok(loss)
    }

    /// Inference logits for a batch view.
    pub fn predict_batch(
        &mut self,
        sessions: &mut [Session],
        batch: &Dataset,
    ) -> TransportResult<Dense> {
        Ok(self.forward(sessions, batch, false)?.0)
    }

    /// The multi-guest MatMul source half (inspection: the parity
    /// tests reconstruct `W_B = U_B + Σ_i V_B(i)` through this).
    pub fn matmul(&self) -> Option<&MultiMatMulB> {
        self.matmul.as_ref()
    }

    /// The multi-guest Embed source half (inspection).
    pub fn embed(&self) -> Option<&MultiEmbedB> {
        self.embed.as_ref()
    }

    /// Number of guest links this model fans out over.
    pub fn num_links(&self) -> usize {
        self.matmul
            .as_ref()
            .map(MultiMatMulB::parties)
            .or_else(|| self.embed.as_ref().map(MultiEmbedB::parties))
            .expect("a model has at least one source layer")
    }

    /// Persist the model half: spec, guest count, fanned-out source
    /// layers, top model.
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        self.spec.write_state(w);
        let m = self.num_links();
        w.u64(m as u64);
        write_opt(w, self.matmul.as_ref(), MultiMatMulB::write_state);
        write_opt(w, self.embed.as_ref(), MultiEmbedB::write_state);
        self.top.write_state(w);
    }

    /// Rebuild the model half from persisted state.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
    ) -> crate::persist::PersistResult<MultiPartyBModel> {
        use crate::persist::PersistError;
        let spec = FedSpec::read_state(r)?;
        let m = r.len_u64()?;
        if m == 0 || m > 1 << 16 {
            return Err(PersistError::Malformed(format!(
                "implausible guest count {m}"
            )));
        }
        let matmul = read_opt(r, |r| MultiMatMulB::read_state(r, m))?;
        let embed = read_opt(r, |r| MultiEmbedB::read_state(r, m))?;
        check_spec_layers(&spec, matmul.is_some(), embed.is_some())?;
        let top = Top::read_state(r, &spec)?;
        check_model_widths(
            &spec,
            matmul.as_ref().map(|mm| mm.u_own().cols()),
            embed.as_ref().map(|em| em.link(0).out_dim()),
            &top,
        )?;
        Ok(MultiPartyBModel {
            spec,
            matmul,
            embed,
            top,
        })
    }
}

/// Forward-pass caches Party B's top model needs for backward.
#[derive(Default)]
pub struct FwdCache {
    z_num: Option<Dense>,
    z_cat: Option<Dense>,
}

/// DLRM-lite interaction: `[z_num | z_cat | rowwise dot]`.
fn dlrm_interact(zn: &Dense, zc: &Dense) -> Dense {
    let bs = zn.rows();
    let d = zn.cols();
    let mut out = Dense::zeros(bs, 2 * d + 1);
    for r in 0..bs {
        out.row_mut(r)[..d].copy_from_slice(zn.row(r));
        out.row_mut(r)[d..2 * d].copy_from_slice(zc.row(r));
        let dot: f64 = zn.row(r).iter().zip(zc.row(r)).map(|(a, b)| a * b).sum();
        out.row_mut(r)[2 * d] = dot;
    }
    out
}

/// Backward of [`dlrm_interact`].
fn dlrm_interact_backward(zn: &Dense, zc: &Dense, g: &Dense) -> (Dense, Dense) {
    let bs = zn.rows();
    let d = zn.cols();
    let mut gn = Dense::zeros(bs, d);
    let mut gc = Dense::zeros(bs, d);
    for r in 0..bs {
        let grow = g.row(r);
        let gdot = grow[2 * d];
        for k in 0..d {
            gn.set(r, k, grow[k] + gdot * zc.get(r, k));
            gc.set(r, k, grow[d + k] + gdot * zn.get(r, k));
        }
    }
    (gn, gc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interact_backward_finite_difference() {
        let zn = Dense::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        let zc = Dense::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, 1.0, 0.25]);
        let out = dlrm_interact(&zn, &zc);
        assert_eq!(out.cols(), 7);
        let g = Dense::from_vec(2, 7, vec![1.0; 14]);
        let (gn, gc) = dlrm_interact_backward(&zn, &zc, &g);
        let eps = 1e-6;
        for (r, k) in [(0usize, 0usize), (1, 2)] {
            let mut zp = zn.clone();
            zp.set(r, k, zn.get(r, k) + eps);
            let fp: f64 = dlrm_interact(&zp, &zc).data().iter().sum();
            zp.set(r, k, zn.get(r, k) - eps);
            let fm: f64 = dlrm_interact(&zp, &zc).data().iter().sum();
            assert!(((fp - fm) / (2.0 * eps) - gn.get(r, k)).abs() < 1e-5);
            let mut cp = zc.clone();
            cp.set(r, k, zc.get(r, k) + eps);
            let fp: f64 = dlrm_interact(&zn, &cp).data().iter().sum();
            cp.set(r, k, zc.get(r, k) - eps);
            let fm: f64 = dlrm_interact(&zn, &cp).data().iter().sum();
            assert!(((fp - fm) / (2.0 * eps) - gc.get(r, k)).abs() < 1e-5);
        }
    }

    #[test]
    fn spec_categorical_flag() {
        assert!(!FedSpec::Glm { out: 1 }.uses_categorical());
        assert!(FedSpec::Wdl {
            emb_dim: 8,
            deep_hidden: vec![16],
            out: 1
        }
        .uses_categorical());
    }
}
