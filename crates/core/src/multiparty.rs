//! Multi-party source layers (paper Appendix C, Algorithm 3).
//!
//! With `M` Party A's ("guests"), Party B secret-shares its MatMul
//! weights into `M+1` pieces — `W_B = U_B + Σ_i V_B(i)` with `V_B(i)`
//! created by the `i`-th Party A — and runs the pairwise MatMul
//! routine with every A(i) using `U_B/M` as its local piece. Each
//! Party A's code path is **exactly** the two-party
//! [`MatMulSource`](crate::source::MatMulSource): "let all Party A's
//! execute the same routines". [`MultiMatMulB`] is Party B's side.
//!
//! [`MultiEmbedB`] extends the same fan-out to categorical features.
//! The embedding output `lkup(Q_B)·W_B` is *bilinear* in `(Q_B, W_B)`,
//! so Algorithm 3's additive split of a single `W_B` does not carry
//! over (pairwise runs would drop the `T_B(i)·V_B(j), i≠j` cross
//! terms). Instead Party B trains one **independent pairwise
//! Embed-MatMul submodel per link** — per-link parameters
//! `Q_B(i) = S_B(i) + T_B(i)`, `W_B(i) = U_B(i) + V_B(i)` — and the
//! layer output is the sum of the per-link outputs. Every submodel is
//! individually lossless, each guest still runs the unmodified
//! [`EmbedSource`] routines, and `M = 1` reduces bit-for-bit to the
//! two-party layer.
//!
//! Setup faults (zero guests, a session with the wrong role, a
//! mis-sized session slice, a bad [`Msg::Hello`]) surface as typed
//! [`TransportError::Setup`] errors, never panics — a host facing a
//! mis-configured guest refuses the link and stays up.

use std::sync::Arc;

use bf_mpc::convert::he2ss_peer;
use bf_mpc::transport::{Endpoint, Msg, TransportError, TransportResult};
use bf_paillier::CtMat;
use bf_tensor::{CatBlock, Dense, Features};

use crate::engine::Stage;
use crate::session::{Role, Session};
use crate::source::matmul::shared_matmul_fw;
use crate::source::{step_piece, EmbedSource};

/// Validate a Party-B session slice for multi-party layer setup.
fn check_roles(sessions: &[Session], layer: &str) -> TransportResult<()> {
    if sessions.is_empty() {
        return Err(TransportError::Setup(format!(
            "{layer} needs at least one guest session (M = 0)"
        )));
    }
    for (i, sess) in sessions.iter().enumerate() {
        if sess.role != Role::B {
            return Err(TransportError::Setup(format!(
                "{layer} drives Role::B sessions, but session {i} is Role::A"
            )));
        }
    }
    Ok(())
}

/// Validate that a call-site session slice matches the layer's links.
fn check_link_count(got: usize, want: usize, layer: &str) -> TransportResult<()> {
    if got != want {
        return Err(TransportError::Setup(format!(
            "{layer} was initialised with {want} guest links but called with {got} sessions"
        )));
    }
    Ok(())
}

/// Party B's half of a multi-party MatMul source layer, linked to `M`
/// Party A sessions.
pub struct MultiMatMulB {
    /// `U_B` (B's own piece of `W_B`).
    u_own: Dense,
    vel_u: Dense,
    links: Vec<Link>,
    out: usize,
    cached_x: Option<Features>,
    cached_support: Vec<u32>,
}

/// Per-Party-A state at B.
struct Link {
    /// `V_A(i)`: B's piece of A(i)'s weights.
    v_a: Dense,
    vel_v_a: Dense,
    /// `⟦V_B(i)⟧` under A(i)'s key.
    enc_v_b: CtMat,
}

impl MultiMatMulB {
    /// Initialise against `sessions` (one per Party A). Each session
    /// must be a `Role::B` session whose peer runs
    /// `MatMulSource::init`.
    pub fn init(
        sessions: &mut [Session],
        in_own: usize,
        out: usize,
    ) -> TransportResult<MultiMatMulB> {
        check_roles(sessions, "MultiMatMulB")?;
        let mut links = Vec::with_capacity(sessions.len());
        let mut u_own = None;
        for sess in sessions.iter_mut() {
            sess.ep.send(Msg::U64(in_own as u64))?;
            let in_a = sess.ep.recv_u64()? as usize;
            if u_own.is_none() {
                u_own = Some(bf_tensor::init::xavier(&mut sess.rng, in_own, out));
            }
            let bound = (6.0 / (in_a + out) as f64).sqrt() * 0.5;
            let v_a = bf_mpc::shares::random_mask(&mut sess.rng, in_a, out, bound);
            sess.ep
                .send(Msg::Ct(sess.own_pk.encrypt(&v_a, &sess.obf)))?;
            let enc_v_b = sess.ep.recv_ct()?;
            links.push(Link {
                vel_v_a: Dense::zeros(in_a, out),
                v_a,
                enc_v_b,
            });
        }
        let u_own = u_own.expect("at least one Party A");
        Ok(MultiMatMulB {
            vel_u: Dense::zeros(in_own, out),
            u_own,
            links,
            out,
            cached_x: None,
            cached_support: Vec::new(),
        })
    }

    /// Number of linked Party A's.
    pub fn parties(&self) -> usize {
        self.links.len()
    }

    /// `U_B` (inspection).
    pub fn u_own(&self) -> &Dense {
        &self.u_own
    }

    /// B's piece of A(i)'s weights (inspection).
    pub fn v_a(&self, i: usize) -> &Dense {
        &self.links[i].v_a
    }

    /// Forward: runs the pairwise shared matmul with every A(i) using
    /// `U_B/M` as the local piece (Algorithm 3, lines 12–16), receives
    /// each A(i)'s share, and returns the aggregated
    /// `Z = Σ_i X_A(i)·W_A(i) + X_B·W_B`.
    pub fn forward(
        &mut self,
        sessions: &mut [Session],
        x: &Features,
        train: bool,
    ) -> TransportResult<Dense> {
        check_link_count(sessions.len(), self.links.len(), "MultiMatMulB")?;
        let stages = Arc::clone(&sessions[0].stages);
        let _t = stages.timer(Stage::FedMatmul);
        let m = self.links.len() as f64;
        let u_frac = self.u_own.scale(1.0 / m);
        let mut z = Dense::zeros(x.rows(), self.out);
        for (link, sess) in self.links.iter().zip(sessions.iter_mut()) {
            let z_b = shared_matmul_fw(sess, x, &u_frac, &link.enc_v_b)?;
            let z_a = sess.ep.recv_mat()?;
            z.add_assign(&z_b);
            z.add_assign(&z_a);
        }
        if train {
            self.cached_support = x.col_support();
            self.cached_x = Some(x.clone());
        }
        Ok(z)
    }

    /// Persist the layer state: `U_B`, its momentum buffer, and every
    /// link's `(V_A(i), vel, ⟦V_B(i)⟧)` triple in link order.
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        w.u64(self.out as u64);
        w.dense(&self.u_own);
        w.dense(&self.vel_u);
        for link in &self.links {
            w.dense(&link.v_a);
            w.dense(&link.vel_v_a);
            w.ctmat(&link.enc_v_b);
        }
    }

    /// Rebuild the layer from persisted state for `m` links,
    /// validating shapes.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
        m: usize,
    ) -> crate::persist::PersistResult<MultiMatMulB> {
        use crate::persist::{check_vel, PersistError};
        let out = r.len_u64()?;
        let u_own = r.dense()?;
        let vel_u = r.dense()?;
        check_vel(&u_own, &vel_u, "MultiMatMulB U_B")?;
        if u_own.cols() != out {
            return Err(PersistError::Malformed(format!(
                "MultiMatMulB: U_B width {} does not match out = {out}",
                u_own.cols()
            )));
        }
        let mut links = Vec::with_capacity(m);
        for i in 0..m {
            let v_a = r.dense()?;
            let vel_v_a = r.dense()?;
            let enc_v_b = r.ctmat()?;
            check_vel(&v_a, &vel_v_a, "MultiMatMulB V_A")?;
            if v_a.cols() != out {
                return Err(PersistError::Malformed(format!(
                    "MultiMatMulB link {i}: V_A width {} does not match out = {out}",
                    v_a.cols()
                )));
            }
            if enc_v_b.shape() != u_own.shape() {
                return Err(PersistError::Malformed(format!(
                    "MultiMatMulB link {i}: ⟦V_B⟧ shape {:?} does not match U_B shape {:?}",
                    enc_v_b.shape(),
                    u_own.shape()
                )));
            }
            links.push(Link {
                v_a,
                vel_v_a,
                enc_v_b,
            });
        }
        Ok(MultiMatMulB {
            u_own,
            vel_u,
            links,
            out,
            cached_x: None,
            cached_support: Vec::new(),
        })
    }

    /// Backward (Algorithm 3, lines 20–31): update `U_B` locally, then
    /// assist every A(i) exactly as in the two-party protocol.
    pub fn backward(&mut self, sessions: &mut [Session], grad_z: &Dense) -> TransportResult<()> {
        check_link_count(sessions.len(), self.links.len(), "MultiMatMulB")?;
        let stages = Arc::clone(&sessions[0].stages);
        let x = self.cached_x.take().expect("backward before forward");
        let support = std::mem::take(&mut self.cached_support);
        let local_timer = stages.timer(Stage::DecryptUpdate);
        let g = x.t_matmul_support(grad_z, &support);
        let rows: Vec<usize> = support.iter().map(|&c| c as usize).collect();
        // Local ∇W_B (line 27). Use the first session's hyper-params.
        let (lr, mu) = (sessions[0].cfg.lr, sessions[0].cfg.momentum);
        let _ = step_piece(&mut self.u_own, &mut self.vel_u, &g, &rows, lr, mu);
        drop(local_timer);

        for (link, sess) in self.links.iter_mut().zip(sessions.iter_mut()) {
            // Lines 22–26 per Party A(i).
            let ct_gz = {
                let _t = stages.timer(Stage::EncryptUpload);
                sess.own_pk.encrypt(grad_z, &sess.obf)
            };
            sess.ep.send(Msg::Ct(ct_gz))?;
            let _t = stages.timer(Stage::DecryptUpdate);
            let support_a = sess.ep.recv_support()?;
            let rows_a: Vec<usize> = support_a.iter().map(|&c| c as usize).collect();
            let piece = he2ss_peer(&sess.ep, &sess.own_sk)?;
            let delta = step_piece(&mut link.v_a, &mut link.vel_v_a, &piece, &rows_a, lr, mu);
            sess.ep
                .send(Msg::Ct(sess.own_pk.encrypt(&delta, &sess.obf)))?;
        }
        Ok(())
    }
}

/// Party B's half of a multi-party Embed-MatMul source layer: one
/// independent pairwise [`EmbedSource`] submodel per linked Party A,
/// outputs summed (see the module docs for why the bilinear embedding
/// cannot reuse Algorithm 3's additive split, and the exact per-link
/// semantics). Every guest runs the unmodified two-party
/// [`EmbedSource`] routines; `M = 1` reduces bit-for-bit to the
/// two-party layer.
pub struct MultiEmbedB {
    links: Vec<EmbedSource>,
    out: usize,
}

impl MultiEmbedB {
    /// Initialise against `sessions` (one per Party A). Each session
    /// must be a `Role::B` session whose peer runs
    /// [`EmbedSource::init`] with the same `dim`/`out`.
    pub fn init(
        sessions: &mut [Session],
        vocab_own: usize,
        fields_own: usize,
        dim: usize,
        out: usize,
    ) -> TransportResult<MultiEmbedB> {
        check_roles(sessions, "MultiEmbedB")?;
        let links = sessions
            .iter_mut()
            .map(|sess| EmbedSource::init(sess, vocab_own, fields_own, dim, out))
            .collect::<TransportResult<Vec<_>>>()?;
        Ok(MultiEmbedB { links, out })
    }

    /// Number of linked Party A's.
    pub fn parties(&self) -> usize {
        self.links.len()
    }

    /// Party B's half of the `i`-th pairwise submodel (inspection: the
    /// per-link parameters reconstruct as `Q_B(i) = S_B(i) + T_B(i)`,
    /// `W_B(i) = U_B(i) + V_B(i)` against the `i`-th guest's pieces).
    pub fn link(&self, i: usize) -> &EmbedSource {
        &self.links[i]
    }

    /// Persist the layer state: the output width and every per-link
    /// pairwise [`EmbedSource`] submodel in link order.
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        w.u64(self.out as u64);
        for link in &self.links {
            link.write_state(w);
        }
    }

    /// Rebuild the layer from persisted state for `m` links.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
        m: usize,
    ) -> crate::persist::PersistResult<MultiEmbedB> {
        use crate::persist::PersistError;
        let out = r.len_u64()?;
        let links = (0..m)
            .map(|_| EmbedSource::read_state(r))
            .collect::<crate::persist::PersistResult<Vec<_>>>()?;
        for (i, link) in links.iter().enumerate() {
            if link.out_dim() != out {
                return Err(PersistError::Malformed(format!(
                    "MultiEmbedB link {i}: submodel width {} does not match out = {out}",
                    link.out_dim()
                )));
            }
        }
        Ok(MultiEmbedB { links, out })
    }

    /// Forward: runs the pairwise Embed-MatMul forward with every
    /// A(i), receives each A(i)'s aggregated share, and returns
    /// `Z = Σ_i [E_A(i)·W_A(i) + lkup(Q_B(i), X_B)·W_B(i)]`.
    pub fn forward(
        &mut self,
        sessions: &mut [Session],
        x: &CatBlock,
        train: bool,
    ) -> TransportResult<Dense> {
        check_link_count(sessions.len(), self.links.len(), "MultiEmbedB")?;
        let mut z = Dense::zeros(x.rows(), self.out);
        for (link, sess) in self.links.iter_mut().zip(sessions.iter_mut()) {
            let z_b = link.forward(sess, x, train)?;
            let z_a = sess.ep.recv_mat()?;
            z.add_assign(&z_b);
            z.add_assign(&z_a);
        }
        Ok(z)
    }

    /// Backward: every pairwise submodel receives the same `∇Z` (the
    /// outputs add, so the gradient distributes) and runs the
    /// unmodified two-party backward against its guest.
    pub fn backward(&mut self, sessions: &mut [Session], grad_z: &Dense) -> TransportResult<()> {
        check_link_count(sessions.len(), self.links.len(), "MultiEmbedB")?;
        for (link, sess) in self.links.iter_mut().zip(sessions.iter_mut()) {
            link.backward_b(sess, grad_z)?;
        }
        Ok(())
    }
}

/// Announce this guest's link slot to the host: the very first frame
/// on a fresh multi-guest connection, *before* the key handshake (see
/// `docs/WIRE_PROTOCOL.md`, kind 7). The in-process harness sends it
/// too, so per-link traffic accounting is backend-independent.
pub fn send_hello(ep: &Endpoint, index: usize, total: usize) -> TransportResult<()> {
    ep.send(Msg::Hello {
        index: index as u32,
        total: total as u32,
    })
}

/// Host-side fan-in: receive one [`Msg::Hello`] from each accepted
/// endpoint and permute the endpoints into link order. Rejects a
/// wrong-sized endpoint set and duplicate / out-of-range /
/// inconsistent-total hellos with [`TransportError::Setup`] — an
/// arbitrary TCP accept order maps back onto the deterministic link
/// order or the job refuses to start.
pub fn collect_guests(endpoints: Vec<Endpoint>, total: usize) -> TransportResult<Vec<Endpoint>> {
    if endpoints.len() != total {
        return Err(TransportError::Setup(format!(
            "expected {total} guest connections, got {}",
            endpoints.len()
        )));
    }
    let mut slots: Vec<Option<Endpoint>> = (0..total).map(|_| None).collect();
    for ep in endpoints {
        let (index, claimed_total) = ep.recv_hello()?;
        if claimed_total as usize != total {
            return Err(TransportError::Setup(format!(
                "guest {index} was configured for {claimed_total} guests, host expects {total}"
            )));
        }
        let i = index as usize;
        if i >= total {
            return Err(TransportError::Setup(format!(
                "guest index {index} out of range for {total} guests"
            )));
        }
        if slots[i].is_some() {
            return Err(TransportError::Setup(format!(
                "two guests both claimed link index {index}"
            )));
        }
        slots[i] = Some(ep);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FedConfig;
    use crate::session::{Role, Session};
    use crate::source::matmul::{aggregate_a, MatMulSource};
    use rand::SeedableRng;

    /// Run an M-party training round: M Party-A threads + B inline.
    fn run_multi(
        cfg: &FedConfig,
        xs_a: Vec<Features>,
        x_b: Features,
        out: usize,
        grad_z: Option<Dense>,
        steps: usize,
    ) -> (Vec<MatMulSource>, MultiMatMulB, Dense) {
        let m = xs_a.len();
        let mut eps_b = Vec::new();
        let mut handles = Vec::new();
        for (i, x_a) in xs_a.into_iter().enumerate() {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            eps_b.push(ep_b);
            let cfg_a = cfg.clone();
            let gz = grad_z.clone();
            handles.push(std::thread::spawn(move || {
                let mut sess = Session::handshake(ep_a, cfg_a, Role::A, 1000 + i as u64).unwrap();
                let mut layer = MatMulSource::init(&mut sess, x_a.cols(), out).unwrap();
                for _ in 0..steps {
                    let z = layer.forward(&mut sess, &x_a, gz.is_some()).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    if gz.is_some() {
                        layer.backward_a(&mut sess).unwrap();
                    }
                }
                let z = layer.forward(&mut sess, &x_a, false).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer
            }));
        }
        let mut sessions: Vec<Session> = eps_b
            .into_iter()
            .enumerate()
            .map(|(i, ep)| Session::handshake(ep, cfg.clone(), Role::B, 2000 + i as u64).unwrap())
            .collect();
        let mut layer_b = MultiMatMulB::init(&mut sessions, x_b.cols(), out).unwrap();
        for _ in 0..steps {
            let _z = layer_b
                .forward(&mut sessions, &x_b, grad_z.is_some())
                .unwrap();
            if let Some(g) = &grad_z {
                layer_b.backward(&mut sessions, g).unwrap();
            }
        }
        let z = layer_b.forward(&mut sessions, &x_b, false).unwrap();
        let layers_a: Vec<MatMulSource> = handles
            .into_iter()
            .map(|h| h.join().expect("party A panicked"))
            .collect();
        assert_eq!(layers_a.len(), m);
        (layers_a, layer_b, z)
    }

    fn rand_dense(rows: usize, cols: usize, seed: u64) -> Dense {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        bf_tensor::init::uniform(&mut rng, rows, cols, 1.0)
    }

    #[test]
    fn three_party_forward_is_lossless() {
        let cfg = FedConfig::plain();
        let xs_a = vec![
            Features::Dense(rand_dense(5, 3, 1)),
            Features::Dense(rand_dense(5, 4, 2)),
        ];
        let x_b = Features::Dense(rand_dense(5, 2, 3));
        let (layers_a, layer_b, z) = run_multi(&cfg, xs_a.clone(), x_b.clone(), 2, None, 1);
        // Reconstruct: W_A(i) = U_A(i) + V_A(i); W_B = U_B + Σ V_B(i).
        let mut want = Dense::zeros(5, 2);
        let mut w_b = layer_b.u_own().clone();
        for (i, la) in layers_a.iter().enumerate() {
            let w_a = la.u_own().add(layer_b.v_a(i));
            want.add_assign(&xs_a[i].matmul(&w_a));
            w_b.add_assign(la.v_peer());
        }
        want.add_assign(&x_b.matmul(&w_b));
        assert!(
            z.approx_eq(&want, 1e-4),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn three_party_backward_stays_synchronized() {
        let cfg = FedConfig::paillier_test();
        let xs_a = vec![
            Features::Dense(rand_dense(4, 2, 4)),
            Features::Dense(rand_dense(4, 3, 5)),
        ];
        let x_b = Features::Dense(rand_dense(4, 2, 6));
        let grad_z = rand_dense(4, 1, 7).scale(0.1);
        let (layers_a, layer_b, z) = run_multi(&cfg, xs_a.clone(), x_b.clone(), 1, Some(grad_z), 2);
        let mut want = Dense::zeros(4, 1);
        let mut w_b = layer_b.u_own().clone();
        for (i, la) in layers_a.iter().enumerate() {
            let w_a = la.u_own().add(layer_b.v_a(i));
            want.add_assign(&xs_a[i].matmul(&w_a));
            w_b.add_assign(la.v_peer());
        }
        want.add_assign(&x_b.matmul(&w_b));
        assert!(
            z.approx_eq(&want, 1e-3),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn single_party_reduces_to_two_party() {
        let cfg = FedConfig::plain();
        let xs_a = vec![Features::Dense(rand_dense(3, 2, 8))];
        let x_b = Features::Dense(rand_dense(3, 2, 9));
        let (layers_a, layer_b, z) = run_multi(&cfg, xs_a.clone(), x_b.clone(), 2, None, 1);
        let w_a = layers_a[0].u_own().add(layer_b.v_a(0));
        let w_b = layer_b.u_own().add(layers_a[0].v_peer());
        let want = xs_a[0].matmul(&w_a).add(&x_b.matmul(&w_b));
        assert!(z.approx_eq(&want, 1e-4));
    }

    // ---- typed setup-error regressions (the former panic paths) ----

    fn setup_err<T>(res: TransportResult<T>) -> String {
        match res {
            Err(TransportError::Setup(why)) => why,
            Err(other) => panic!("expected TransportError::Setup, got {other:?}"),
            Ok(_) => panic!("expected TransportError::Setup, got Ok"),
        }
    }

    #[test]
    fn zero_guests_is_a_typed_error_not_a_panic() {
        let why = setup_err(MultiMatMulB::init(&mut [], 3, 2));
        assert!(why.contains("M = 0"), "unexpected message: {why}");
        let why = setup_err(MultiEmbedB::init(&mut [], 4, 2, 2, 1));
        assert!(why.contains("M = 0"), "unexpected message: {why}");
    }

    #[test]
    fn wrong_role_session_is_a_typed_error_not_a_panic() {
        let cfg = FedConfig::plain();
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        let cfg_b = cfg.clone();
        let peer = std::thread::spawn(move || {
            Session::handshake(ep_b, cfg_b, Role::B, 2).unwrap();
        });
        // A Role::A session handed to the B-side driver must be
        // refused before any protocol message goes out.
        let mut sessions = vec![Session::handshake(ep_a, cfg, Role::A, 1).unwrap()];
        let why = setup_err(MultiMatMulB::init(&mut sessions, 3, 2));
        assert!(why.contains("Role::A"), "unexpected message: {why}");
        let why = setup_err(MultiEmbedB::init(&mut sessions, 4, 2, 2, 1));
        assert!(why.contains("Role::A"), "unexpected message: {why}");
        peer.join().unwrap();
    }

    #[test]
    fn mismatched_session_slice_is_a_typed_error() {
        let cfg = FedConfig::plain();
        let xs_a = vec![Features::Dense(rand_dense(3, 2, 40))];
        let x_b = Features::Dense(rand_dense(3, 2, 41));
        let (_, mut layer_b, _) = run_multi(&cfg, xs_a, x_b.clone(), 2, None, 1);
        // The layer has one link; an empty session slice must refuse.
        let why = setup_err(layer_b.forward(&mut [], &x_b, false));
        assert!(why.contains("1 guest links"), "unexpected message: {why}");
        let why = setup_err(layer_b.backward(&mut [], &Dense::zeros(3, 2)));
        assert!(why.contains("1 guest links"), "unexpected message: {why}");
    }

    // ---- guest fan-in (hello) ----

    #[test]
    fn collect_guests_reorders_by_hello_index() {
        // Guests arrive in scrambled order; after collection, slot i
        // must be the guest that claimed index i (verified by a marker
        // message each guest sends after its hello).
        let m = 3;
        let mut host_eps = Vec::new();
        let mut guest_eps = Vec::new();
        for arrival in [2u64, 0, 1] {
            let (guest, host) = bf_mpc::channel_pair();
            send_hello(&guest, arrival as usize, m).unwrap();
            guest.send(Msg::U64(100 + arrival)).unwrap();
            host_eps.push(host);
            guest_eps.push(guest);
        }
        let ordered = collect_guests(host_eps, m).unwrap();
        for (i, ep) in ordered.iter().enumerate() {
            assert_eq!(ep.recv_u64().unwrap(), 100 + i as u64);
        }
    }

    #[test]
    fn collect_guests_rejects_bad_hellos() {
        let mut guest_eps = Vec::new();
        let mut pair_with_hello = |index: usize, total: usize| {
            let (guest, host) = bf_mpc::channel_pair();
            send_hello(&guest, index, total).unwrap();
            guest_eps.push(guest);
            host
        };
        // Duplicate index.
        let eps = vec![pair_with_hello(0, 2), pair_with_hello(0, 2)];
        let why = setup_err(collect_guests(eps, 2));
        assert!(why.contains("both claimed"), "unexpected message: {why}");
        // Out-of-range index.
        let eps = vec![pair_with_hello(5, 1)];
        let why = setup_err(collect_guests(eps, 1));
        assert!(why.contains("out of range"), "unexpected message: {why}");
        // Guest configured for a different job size.
        let eps = vec![pair_with_hello(0, 7)];
        let why = setup_err(collect_guests(eps, 1));
        assert!(why.contains("host expects 1"), "unexpected message: {why}");
        // Wrong connection count.
        let eps = vec![pair_with_hello(0, 2)];
        let why = setup_err(collect_guests(eps, 2));
        assert!(
            why.contains("expected 2 guest"),
            "unexpected message: {why}"
        );
    }

    // ---- MultiEmbedB ----

    fn cat_block(rows: usize, vocabs: &[u32], seed: u64) -> CatBlock {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let local: Vec<u32> = (0..rows * vocabs.len())
            .map(|i| rng.random_range(0..vocabs[i % vocabs.len()]))
            .collect();
        CatBlock::from_local(rows, vocabs, local)
    }

    /// Run an M-party Embed-MatMul training round: M Party-A threads
    /// (unmodified `EmbedSource`) + `MultiEmbedB` inline at B.
    fn run_multi_embed(
        cfg: &FedConfig,
        xs_a: Vec<CatBlock>,
        x_b: CatBlock,
        dim: usize,
        out: usize,
        grad_z: Option<Dense>,
        steps: usize,
    ) -> (Vec<EmbedSource>, MultiEmbedB, Dense) {
        let mut eps_b = Vec::new();
        let mut handles = Vec::new();
        for (i, x_a) in xs_a.into_iter().enumerate() {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            eps_b.push(ep_b);
            let cfg_a = cfg.clone();
            let gz = grad_z.clone();
            handles.push(std::thread::spawn(move || {
                let mut sess = Session::handshake(ep_a, cfg_a, Role::A, 3000 + i as u64).unwrap();
                let mut layer =
                    EmbedSource::init(&mut sess, x_a.vocab(), x_a.fields(), dim, out).unwrap();
                for _ in 0..steps {
                    let z = layer.forward(&mut sess, &x_a, gz.is_some()).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    if gz.is_some() {
                        layer.backward_a(&mut sess).unwrap();
                    }
                }
                let z = layer.forward(&mut sess, &x_a, false).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer
            }));
        }
        let mut sessions: Vec<Session> = eps_b
            .into_iter()
            .enumerate()
            .map(|(i, ep)| Session::handshake(ep, cfg.clone(), Role::B, 4000 + i as u64).unwrap())
            .collect();
        let mut layer_b =
            MultiEmbedB::init(&mut sessions, x_b.vocab(), x_b.fields(), dim, out).unwrap();
        for _ in 0..steps {
            let _z = layer_b
                .forward(&mut sessions, &x_b, grad_z.is_some())
                .unwrap();
            if let Some(g) = &grad_z {
                layer_b.backward(&mut sessions, g).unwrap();
            }
        }
        let z = layer_b.forward(&mut sessions, &x_b, false).unwrap();
        let layers_a: Vec<EmbedSource> = handles
            .into_iter()
            .map(|h| h.join().expect("party A panicked"))
            .collect();
        (layers_a, layer_b, z)
    }

    /// Reference output under the documented per-link-sum semantics:
    /// `Σ_i [lkup(Q_A(i))·W_A(i) + lkup(Q_B(i))·W_B(i)]`.
    fn embed_reference(
        layers_a: &[EmbedSource],
        layer_b: &MultiEmbedB,
        xs_a: &[CatBlock],
        x_b: &CatBlock,
        out: usize,
    ) -> Dense {
        use crate::source::embed::lookup;
        let mut want = Dense::zeros(x_b.rows(), out);
        for (i, la) in layers_a.iter().enumerate() {
            let lb = layer_b.link(i);
            let q_a = la.s_own().add(lb.t_peer());
            let w_a = la.u_own().add(lb.v_peer());
            want.add_assign(&lookup(&q_a, &xs_a[i]).matmul(&w_a));
            let q_b = lb.s_own().add(la.t_peer());
            let w_b = lb.u_own().add(la.v_peer());
            want.add_assign(&lookup(&q_b, x_b).matmul(&w_b));
        }
        want
    }

    #[test]
    fn three_party_embed_forward_is_lossless() {
        let cfg = FedConfig::plain();
        let xs_a = vec![cat_block(4, &[5, 3], 50), cat_block(4, &[4], 51)];
        let x_b = cat_block(4, &[6], 52);
        let (layers_a, layer_b, z) =
            run_multi_embed(&cfg, xs_a.clone(), x_b.clone(), 2, 2, None, 1);
        assert_eq!(layer_b.parties(), 2);
        let want = embed_reference(&layers_a, &layer_b, &xs_a, &x_b, 2);
        assert!(
            z.approx_eq(&want, 1e-4),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn three_party_embed_backward_stays_synchronized() {
        // After training steps, a fresh forward must still equal the
        // reference on the reconstructed per-link parameters — i.e.
        // every link's six ciphertext caches track their plaintext
        // twins (exercised under real Paillier ciphertexts).
        let cfg = FedConfig::paillier_test();
        let xs_a = vec![cat_block(3, &[4], 53), cat_block(3, &[3, 3], 54)];
        let x_b = cat_block(3, &[5], 55);
        let grad_z = rand_dense(3, 2, 56).scale(0.1);
        let (layers_a, layer_b, z) =
            run_multi_embed(&cfg, xs_a.clone(), x_b.clone(), 2, 2, Some(grad_z), 2);
        let want = embed_reference(&layers_a, &layer_b, &xs_a, &x_b, 2);
        assert!(
            z.approx_eq(&want, 1e-2),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }
}
