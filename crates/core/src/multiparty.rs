//! Multi-party MatMul source layer (paper Appendix C, Algorithm 3).
//!
//! With `M` Party A's, Party B secret-shares its weights into `M+1`
//! pieces — `W_B = U_B + Σ_i V_B(i)` with `V_B(i)` created by the
//! `i`-th Party A — and runs the pairwise MatMul routine with every
//! A(i) using `U_B/M` as its local piece. Each Party A's code path is
//! **exactly** the two-party [`MatMulSource`](crate::source::MatMulSource):
//! "let all Party A's execute the same routines".

use bf_mpc::convert::he2ss_peer;
use bf_mpc::transport::{Msg, TransportResult};
use bf_paillier::CtMat;
use bf_tensor::{Dense, Features};

use crate::session::{Role, Session};
use crate::source::matmul::shared_matmul_fw;
use crate::source::step_piece;

/// Party B's half of a multi-party MatMul source layer, linked to `M`
/// Party A sessions.
pub struct MultiMatMulB {
    /// `U_B` (B's own piece of `W_B`).
    u_own: Dense,
    vel_u: Dense,
    links: Vec<Link>,
    out: usize,
    cached_x: Option<Features>,
    cached_support: Vec<u32>,
}

/// Per-Party-A state at B.
struct Link {
    /// `V_A(i)`: B's piece of A(i)'s weights.
    v_a: Dense,
    vel_v_a: Dense,
    /// `⟦V_B(i)⟧` under A(i)'s key.
    enc_v_b: CtMat,
}

impl MultiMatMulB {
    /// Initialise against `sessions` (one per Party A). Each session
    /// must be a `Role::B` session whose peer runs
    /// `MatMulSource::init`.
    pub fn init(
        sessions: &mut [Session],
        in_own: usize,
        out: usize,
    ) -> TransportResult<MultiMatMulB> {
        let mut links = Vec::with_capacity(sessions.len());
        let mut u_own = None;
        for sess in sessions.iter_mut() {
            assert_eq!(sess.role, Role::B, "MultiMatMulB drives Role::B sessions");
            sess.ep.send(Msg::U64(in_own as u64))?;
            let in_a = sess.ep.recv_u64()? as usize;
            if u_own.is_none() {
                u_own = Some(bf_tensor::init::xavier(&mut sess.rng, in_own, out));
            }
            let bound = (6.0 / (in_a + out) as f64).sqrt() * 0.5;
            let v_a = bf_mpc::shares::random_mask(&mut sess.rng, in_a, out, bound);
            sess.ep
                .send(Msg::Ct(sess.own_pk.encrypt(&v_a, &sess.obf)))?;
            let enc_v_b = sess.ep.recv_ct()?;
            links.push(Link {
                vel_v_a: Dense::zeros(in_a, out),
                v_a,
                enc_v_b,
            });
        }
        let u_own = u_own.expect("at least one Party A");
        Ok(MultiMatMulB {
            vel_u: Dense::zeros(in_own, out),
            u_own,
            links,
            out,
            cached_x: None,
            cached_support: Vec::new(),
        })
    }

    /// Number of linked Party A's.
    pub fn parties(&self) -> usize {
        self.links.len()
    }

    /// `U_B` (inspection).
    pub fn u_own(&self) -> &Dense {
        &self.u_own
    }

    /// B's piece of A(i)'s weights (inspection).
    pub fn v_a(&self, i: usize) -> &Dense {
        &self.links[i].v_a
    }

    /// Forward: runs the pairwise shared matmul with every A(i) using
    /// `U_B/M` as the local piece (Algorithm 3, lines 12–16), receives
    /// each A(i)'s share, and returns the aggregated
    /// `Z = Σ_i X_A(i)·W_A(i) + X_B·W_B`.
    pub fn forward(
        &mut self,
        sessions: &mut [Session],
        x: &Features,
        train: bool,
    ) -> TransportResult<Dense> {
        let m = self.links.len() as f64;
        let u_frac = self.u_own.scale(1.0 / m);
        let mut z = Dense::zeros(x.rows(), self.out);
        for (link, sess) in self.links.iter().zip(sessions.iter_mut()) {
            let z_b = shared_matmul_fw(sess, x, &u_frac, &link.enc_v_b)?;
            let z_a = sess.ep.recv_mat()?;
            z.add_assign(&z_b);
            z.add_assign(&z_a);
        }
        if train {
            self.cached_support = x.col_support();
            self.cached_x = Some(x.clone());
        }
        Ok(z)
    }

    /// Backward (Algorithm 3, lines 20–31): update `U_B` locally, then
    /// assist every A(i) exactly as in the two-party protocol.
    pub fn backward(&mut self, sessions: &mut [Session], grad_z: &Dense) -> TransportResult<()> {
        let x = self.cached_x.take().expect("backward before forward");
        let support = std::mem::take(&mut self.cached_support);
        let g = x.t_matmul_support(grad_z, &support);
        let rows: Vec<usize> = support.iter().map(|&c| c as usize).collect();
        // Local ∇W_B (line 27). Use the first session's hyper-params.
        let (lr, mu) = (sessions[0].cfg.lr, sessions[0].cfg.momentum);
        let _ = step_piece(&mut self.u_own, &mut self.vel_u, &g, &rows, lr, mu);

        for (link, sess) in self.links.iter_mut().zip(sessions.iter_mut()) {
            // Lines 22–26 per Party A(i).
            sess.ep
                .send(Msg::Ct(sess.own_pk.encrypt(grad_z, &sess.obf)))?;
            let support_a = sess.ep.recv_support()?;
            let rows_a: Vec<usize> = support_a.iter().map(|&c| c as usize).collect();
            let piece = he2ss_peer(&sess.ep, &sess.own_sk)?;
            let delta = step_piece(&mut link.v_a, &mut link.vel_v_a, &piece, &rows_a, lr, mu);
            sess.ep
                .send(Msg::Ct(sess.own_pk.encrypt(&delta, &sess.obf)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FedConfig;
    use crate::session::{Role, Session};
    use crate::source::matmul::{aggregate_a, MatMulSource};
    use rand::SeedableRng;

    /// Run an M-party training round: M Party-A threads + B inline.
    fn run_multi(
        cfg: &FedConfig,
        xs_a: Vec<Features>,
        x_b: Features,
        out: usize,
        grad_z: Option<Dense>,
        steps: usize,
    ) -> (Vec<MatMulSource>, MultiMatMulB, Dense) {
        let m = xs_a.len();
        let mut eps_b = Vec::new();
        let mut handles = Vec::new();
        for (i, x_a) in xs_a.into_iter().enumerate() {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            eps_b.push(ep_b);
            let cfg_a = cfg.clone();
            let gz = grad_z.clone();
            handles.push(std::thread::spawn(move || {
                let mut sess = Session::handshake(ep_a, cfg_a, Role::A, 1000 + i as u64).unwrap();
                let mut layer = MatMulSource::init(&mut sess, x_a.cols(), out).unwrap();
                for _ in 0..steps {
                    let z = layer.forward(&mut sess, &x_a, gz.is_some()).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    if gz.is_some() {
                        layer.backward_a(&mut sess).unwrap();
                    }
                }
                let z = layer.forward(&mut sess, &x_a, false).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer
            }));
        }
        let mut sessions: Vec<Session> = eps_b
            .into_iter()
            .enumerate()
            .map(|(i, ep)| Session::handshake(ep, cfg.clone(), Role::B, 2000 + i as u64).unwrap())
            .collect();
        let mut layer_b = MultiMatMulB::init(&mut sessions, x_b.cols(), out).unwrap();
        for _ in 0..steps {
            let _z = layer_b
                .forward(&mut sessions, &x_b, grad_z.is_some())
                .unwrap();
            if let Some(g) = &grad_z {
                layer_b.backward(&mut sessions, g).unwrap();
            }
        }
        let z = layer_b.forward(&mut sessions, &x_b, false).unwrap();
        let layers_a: Vec<MatMulSource> = handles
            .into_iter()
            .map(|h| h.join().expect("party A panicked"))
            .collect();
        assert_eq!(layers_a.len(), m);
        (layers_a, layer_b, z)
    }

    fn rand_dense(rows: usize, cols: usize, seed: u64) -> Dense {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        bf_tensor::init::uniform(&mut rng, rows, cols, 1.0)
    }

    #[test]
    fn three_party_forward_is_lossless() {
        let cfg = FedConfig::plain();
        let xs_a = vec![
            Features::Dense(rand_dense(5, 3, 1)),
            Features::Dense(rand_dense(5, 4, 2)),
        ];
        let x_b = Features::Dense(rand_dense(5, 2, 3));
        let (layers_a, layer_b, z) = run_multi(&cfg, xs_a.clone(), x_b.clone(), 2, None, 1);
        // Reconstruct: W_A(i) = U_A(i) + V_A(i); W_B = U_B + Σ V_B(i).
        let mut want = Dense::zeros(5, 2);
        let mut w_b = layer_b.u_own().clone();
        for (i, la) in layers_a.iter().enumerate() {
            let w_a = la.u_own().add(layer_b.v_a(i));
            want.add_assign(&xs_a[i].matmul(&w_a));
            w_b.add_assign(la.v_peer());
        }
        want.add_assign(&x_b.matmul(&w_b));
        assert!(
            z.approx_eq(&want, 1e-4),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn three_party_backward_stays_synchronized() {
        let cfg = FedConfig::paillier_test();
        let xs_a = vec![
            Features::Dense(rand_dense(4, 2, 4)),
            Features::Dense(rand_dense(4, 3, 5)),
        ];
        let x_b = Features::Dense(rand_dense(4, 2, 6));
        let grad_z = rand_dense(4, 1, 7).scale(0.1);
        let (layers_a, layer_b, z) = run_multi(&cfg, xs_a.clone(), x_b.clone(), 1, Some(grad_z), 2);
        let mut want = Dense::zeros(4, 1);
        let mut w_b = layer_b.u_own().clone();
        for (i, la) in layers_a.iter().enumerate() {
            let w_a = la.u_own().add(layer_b.v_a(i));
            want.add_assign(&xs_a[i].matmul(&w_a));
            w_b.add_assign(la.v_peer());
        }
        want.add_assign(&x_b.matmul(&w_b));
        assert!(
            z.approx_eq(&want, 1e-3),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn single_party_reduces_to_two_party() {
        let cfg = FedConfig::plain();
        let xs_a = vec![Features::Dense(rand_dense(3, 2, 8))];
        let x_b = Features::Dense(rand_dense(3, 2, 9));
        let (layers_a, layer_b, z) = run_multi(&cfg, xs_a.clone(), x_b.clone(), 2, None, 1);
        let w_a = layers_a[0].u_own().add(layer_b.v_a(0));
        let w_b = layer_b.u_own().add(layers_a[0].v_peer());
        let want = xs_a[0].matmul(&w_a).add(&x_b.matmul(&w_b));
        assert!(z.approx_eq(&want, 1e-4));
    }
}
