//! Model-state persistence: byte-exact export/import of the trained
//! party models, closing the paper's train → persist → serve life
//! cycle (a production VFL deployment trains once and serves many
//! predictions; see `docs/SERVING.md` for the full format spec).
//!
//! Every persisted model is one self-describing byte blob:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   0x42 0x46 0x4D 0x44  ("BFMD")
//! 4       1     version 0x01
//! 5       1     kind    (1 = PartyA, 2 = PartyB, 3 = MultiPartyB,
//!                        4 = CheckpointA, 5 = CheckpointB,
//!                        6 = MultiCheckpointB, 7 = GbdtHost,
//!                        8 = GbdtGuest, 9–11 = PSI-aligned
//!                        checkpoints)
//! 6       n     payload (per-kind encoding; see docs/SERVING.md)
//! ```
//!
//! Kinds 4–6 are **mid-epoch training checkpoints**: a model blob plus
//! the training cursor (epoch, batch) and the per-link determinism
//! cursor ([`LinkCursor`]: mask-RNG state, obfuscation draws consumed,
//! traffic counters). Restoring one puts a fresh process back on the
//! *bit-identical* loss curve — see `docs/ARCHITECTURE.md` ("Fault
//! tolerance") and `tests/chaos_parity.rs`. Adding these kinds did not
//! bump [`VERSION`]: the layout of existing kinds is unchanged, and
//! pre-checkpoint decoders reject the new kind bytes via
//! [`PersistError::WrongKind`] (the version byte only moves when a
//! *shared* layout rule changes).
//!
//! Kinds 9–11 are the PSI-**aligned** variants of kinds 4–6: the same
//! checkpoint payload, prefixed with an [`AlignCursor`] (PSI salt plus
//! the intersection's sample IDs) so a restarted process can rebuild
//! its aligned row selection from its local ID column with **zero**
//! wire traffic — re-running PSI on resume would double-count PSI
//! bytes in [`LinkCursor`]'s preloaded traffic totals. A checkpoint
//! taken in an unaligned run still exports as kinds 4–6, byte-for-byte
//! as before (same non-bump rationale as kinds 4–8).
//!
//! All multi-byte integers are little-endian; `f64`s travel as
//! IEEE-754 bits; ciphertext caches reuse the canonical
//! [`bf_paillier::export_ctmat`] wire encoding (Montgomery limbs
//! verbatim), length-prefixed. The versioning rule mirrors
//! `docs/WIRE_PROTOCOL.md`: **any** layout change bumps the version
//! byte, and decoders reject every version they do not know.
//!
//! The contract is **byte-exact round-tripping**:
//! `export(import(export(m))) == export(m)` bit for bit, and a
//! reloaded model resumes training with a bit-identical loss curve —
//! so the momentum buffers and the encrypted peer-piece caches are
//! part of the persisted state, while per-batch caches (forward
//! activations, gradient supports) are transient and excluded.
//! `crates/core/tests/persist_prop.rs` enforces both properties.
//!
//! Key material is deliberately **not** part of a model file: the
//! ciphertext caches decrypt only under the training session's keys,
//! which travel separately (via [`bf_paillier::export_secret`] /
//! [`bf_paillier::export_public`], or by regenerating them
//! deterministically from the session seed — see
//! [`crate::session::Session::handshake`]).

use bf_paillier::{export_ctmat, import_ctmat, CtMat};
use bf_tensor::Dense;

use crate::models::{MultiPartyBModel, PartyAModel, PartyBModel};
use crate::trees::{GbRecord, GbdtGuestModel, GbdtHostModel};
use bf_ml::gbdt::{Node, Tree};

/// Persistence magic: ASCII `"BFMD"` (BlindFL MoDel).
pub const MAGIC: [u8; 4] = *b"BFMD";
/// Current persistence-format version. Decoders reject every other
/// value (the versioning rule of `docs/WIRE_PROTOCOL.md`).
pub const VERSION: u8 = 1;
/// Kind byte for a [`PartyAModel`] blob.
pub const KIND_PARTY_A: u8 = 1;
/// Kind byte for a [`PartyBModel`] blob.
pub const KIND_PARTY_B: u8 = 2;
/// Kind byte for a [`MultiPartyBModel`] blob.
pub const KIND_MULTI_PARTY_B: u8 = 3;
/// Kind byte for a Party A mid-epoch training checkpoint.
pub const KIND_CHECKPOINT_A: u8 = 4;
/// Kind byte for a Party B mid-epoch training checkpoint.
pub const KIND_CHECKPOINT_B: u8 = 5;
/// Kind byte for a multi-guest Party B mid-epoch training checkpoint.
pub const KIND_CHECKPOINT_MULTI_B: u8 = 6;
/// Kind byte for a [`GbdtHostModel`] blob (federated forest, host
/// share).
pub const KIND_GBDT_HOST: u8 = 7;
/// Kind byte for a [`GbdtGuestModel`] blob (federated forest, guest
/// share).
pub const KIND_GBDT_GUEST: u8 = 8;
/// Kind byte for a PSI-aligned Party A checkpoint ([`AlignCursor`]
/// prefix + the [`KIND_CHECKPOINT_A`] payload).
pub const KIND_CHECKPOINT_A_ALIGNED: u8 = 9;
/// Kind byte for a PSI-aligned Party B checkpoint.
pub const KIND_CHECKPOINT_B_ALIGNED: u8 = 10;
/// Kind byte for a PSI-aligned multi-guest Party B checkpoint.
pub const KIND_CHECKPOINT_MULTI_B_ALIGNED: u8 = 11;
/// Fixed header length (magic + version + kind).
pub const HEADER_LEN: usize = 6;

/// A persistence decode failure. Malformed input yields an `Err`,
/// never a panic or an unbounded allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte does not match the requested model type.
    WrongKind {
        /// The kind the importer was asked for.
        expected: u8,
        /// The kind byte actually present.
        got: u8,
    },
    /// The buffer ended before the encoding said it would.
    Truncated,
    /// A structurally invalid payload (inconsistent shapes, bad
    /// enum tags, trailing bytes, …).
    Malformed(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic(m) => write!(f, "bad model magic {m:02x?}"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported model-format version {v}")
            }
            PersistError::WrongKind { expected, got } => {
                write!(f, "model kind {got} where kind {expected} was expected")
            }
            PersistError::Truncated => write!(f, "truncated model blob"),
            PersistError::Malformed(why) => write!(f, "malformed model blob: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Shorthand for persistence-fallible results.
pub type PersistResult<T> = Result<T, PersistError>;

/// Append-only byte sink the model modules encode their state into.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8) -> Writer {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(kind);
        Writer { buf }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `rows u64 | cols u64 | rows·cols f64` — the `Mat` wire layout.
    pub(crate) fn dense(&mut self, m: &Dense) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for v in m.data() {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed canonical [`export_ctmat`] bytes.
    pub(crate) fn ctmat(&mut self, ct: &CtMat) {
        let bytes = export_ctmat(ct);
        self.u64(bytes.len() as u64);
        self.buf.extend_from_slice(&bytes);
    }
}

/// Validating cursor over a persisted byte blob.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], expected_kind: u8) -> PersistResult<Reader<'a>> {
        Self::new_either(bytes, expected_kind, expected_kind).map(|(r, _)| r)
    }

    /// Accept either of two kind bytes (a checkpoint kind and its
    /// PSI-aligned variant); returns the reader and whether the
    /// `aligned` kind was present. `WrongKind` reports `plain` as the
    /// expected kind — the base type the caller asked for.
    fn new_either(bytes: &'a [u8], plain: u8, aligned: u8) -> PersistResult<(Reader<'a>, bool)> {
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(PersistError::BadMagic([
                bytes[0], bytes[1], bytes[2], bytes[3],
            ]));
        }
        if bytes[4] != VERSION {
            return Err(PersistError::UnsupportedVersion(bytes[4]));
        }
        if bytes[5] != plain && bytes[5] != aligned {
            return Err(PersistError::WrongKind {
                expected: plain,
                got: bytes[5],
            });
        }
        Ok((
            Reader {
                bytes,
                pos: HEADER_LEN,
            },
            bytes[5] == aligned && aligned != plain,
        ))
    }

    fn take(&mut self, n: usize) -> PersistResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(PersistError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> PersistResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u64(&mut self) -> PersistResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> PersistResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u64` that must fit in `usize` (length / dimension fields).
    pub(crate) fn len_u64(&mut self) -> PersistResult<usize> {
        usize::try_from(self.u64()?)
            .map_err(|_| PersistError::Malformed("length field overflows usize".into()))
    }

    /// A length-prefixed `f64` vector with the usual
    /// reject-before-allocating guard on the claimed length.
    pub(crate) fn f64_vec(&mut self) -> PersistResult<Vec<f64>> {
        let n = self.len_u64()?;
        let want = n
            .checked_mul(8)
            .ok_or_else(|| PersistError::Malformed("f64 vector byte length overflow".into()))?;
        if self.bytes.len() - self.pos < want {
            return Err(PersistError::Truncated);
        }
        Ok(self
            .take(want)?
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub(crate) fn dense(&mut self) -> PersistResult<Dense> {
        let rows = self.len_u64()?;
        let cols = self.len_u64()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| PersistError::Malformed("rows*cols overflow".into()))?;
        let want = n
            .checked_mul(8)
            .ok_or_else(|| PersistError::Malformed("matrix byte length overflow".into()))?;
        // Reject the claimed size before allocating: a corrupted
        // length field must not drive an allocation larger than the
        // blob it arrived in.
        if self.bytes.len() - self.pos < want {
            return Err(PersistError::Truncated);
        }
        let data: Vec<f64> = self
            .take(want)?
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Dense::from_vec(rows, cols, data))
    }

    pub(crate) fn ctmat(&mut self) -> PersistResult<CtMat> {
        let len = self.len_u64()?;
        if self.bytes.len() - self.pos < len {
            return Err(PersistError::Truncated);
        }
        import_ctmat(self.take(len)?).map_err(PersistError::Malformed)
    }

    /// Error unless every byte has been consumed.
    fn finish(self) -> PersistResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(PersistError::Malformed(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Check that a momentum buffer matches its weight matrix — every
/// persisted `(piece, velocity)` pair goes through this on import.
pub(crate) fn check_vel(w: &Dense, vel: &Dense, what: &str) -> PersistResult<()> {
    if w.shape() != vel.shape() {
        return Err(PersistError::Malformed(format!(
            "{what}: velocity shape {:?} does not match weight shape {:?}",
            vel.shape(),
            w.shape()
        )));
    }
    Ok(())
}

/// Serialize a trained [`PartyAModel`] (guest half) to bytes.
pub fn export_party_a(model: &PartyAModel) -> Vec<u8> {
    let mut w = Writer::new(KIND_PARTY_A);
    model.write_state(&mut w);
    w.buf
}

/// Deserialize a [`PartyAModel`], validating every field.
pub fn import_party_a(bytes: &[u8]) -> PersistResult<PartyAModel> {
    let mut r = Reader::new(bytes, KIND_PARTY_A)?;
    let model = PartyAModel::read_state(&mut r)?;
    r.finish()?;
    Ok(model)
}

/// Serialize a trained [`PartyBModel`] (host half, including the
/// local top model) to bytes.
pub fn export_party_b(model: &PartyBModel) -> Vec<u8> {
    let mut w = Writer::new(KIND_PARTY_B);
    model.write_state(&mut w);
    w.buf
}

/// Deserialize a [`PartyBModel`], validating every field.
pub fn import_party_b(bytes: &[u8]) -> PersistResult<PartyBModel> {
    let mut r = Reader::new(bytes, KIND_PARTY_B)?;
    let model = PartyBModel::read_state(&mut r)?;
    r.finish()?;
    Ok(model)
}

/// Serialize a trained [`MultiPartyBModel`] (multi-guest host half) to
/// bytes.
pub fn export_multi_party_b(model: &MultiPartyBModel) -> Vec<u8> {
    let mut w = Writer::new(KIND_MULTI_PARTY_B);
    model.write_state(&mut w);
    w.buf
}

/// Deserialize a [`MultiPartyBModel`], validating every field.
pub fn import_multi_party_b(bytes: &[u8]) -> PersistResult<MultiPartyBModel> {
    let mut r = Reader::new(bytes, KIND_MULTI_PARTY_B)?;
    let model = MultiPartyBModel::read_state(&mut r)?;
    r.finish()?;
    Ok(model)
}

/// The per-link determinism cursor captured alongside a checkpoint:
/// everything a fresh process needs (beyond the model state) to rejoin
/// one peer link on the *bit-identical* instruction stream.
///
/// Captured by [`crate::session::Session::capture_cursor`] and applied
/// by [`crate::session::Session::restore_cursor`] *after* the resumed
/// session's handshake, so the re-handshake itself never perturbs the
/// logical traffic totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkCursor {
    /// The session mask RNG's full internal state
    /// ([`rand::rngs::StdRng::state`]).
    pub rng: [u64; 4],
    /// Obfuscation-randomness draws consumed so far
    /// ([`bf_paillier::Obfuscator::drawn`]) — draw `i` is a pure
    /// function of `(seed, i)`, so this one counter pins the stream.
    pub obf_drawn: u64,
    /// Bytes this party had sent on the link at capture time.
    pub bytes_sent: u64,
    /// Messages this party had sent on the link at capture time.
    pub msgs_sent: u64,
}

/// `wire layout: rng[0..4] | obf_drawn | bytes_sent | msgs_sent`, all
/// `u64` LE (56 bytes).
const LINK_CURSOR_LEN: usize = 56;

fn write_cursor(w: &mut Writer, c: &LinkCursor) {
    for limb in c.rng {
        w.u64(limb);
    }
    w.u64(c.obf_drawn);
    w.u64(c.bytes_sent);
    w.u64(c.msgs_sent);
}

fn read_cursor(r: &mut Reader<'_>) -> PersistResult<LinkCursor> {
    let mut rng = [0u64; 4];
    for limb in &mut rng {
        *limb = r.u64()?;
    }
    Ok(LinkCursor {
        rng,
        obf_drawn: r.u64()?,
        bytes_sent: r.u64()?,
        msgs_sent: r.u64()?,
    })
}

/// The alignment cursor persisted inside a PSI-aligned checkpoint:
/// everything a restarted party needs to rebuild its aligned row
/// selection from its *local* ID column without touching the wire.
///
/// `ids` is the intersection in canonical (ascending) order — the
/// same list on every party of a run, which is what
/// `tests/chaos_parity.rs`'s PSI cell asserts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignCursor {
    /// The PSI salt of the aligned run.
    pub salt: u64,
    /// The intersection's sample IDs, strictly ascending.
    pub ids: Vec<u64>,
}

/// `wire layout: salt u64 | n u64 | ids`, all `u64` LE.
fn write_align(w: &mut Writer, a: &AlignCursor) {
    debug_assert!(
        a.ids.windows(2).all(|x| x[0] < x[1]),
        "AlignCursor ids must be strictly ascending"
    );
    w.u64(a.salt);
    w.u64(a.ids.len() as u64);
    for &id in &a.ids {
        w.u64(id);
    }
}

fn read_align(r: &mut Reader<'_>) -> PersistResult<AlignCursor> {
    let salt = r.u64()?;
    let n = r.len_u64()?;
    let want = n
        .checked_mul(8)
        .ok_or_else(|| PersistError::Malformed("aligned id count overflow".into()))?;
    if r.bytes.len() - r.pos < want {
        return Err(PersistError::Truncated);
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64()?);
    }
    if !ids.windows(2).all(|x| x[0] < x[1]) {
        return Err(PersistError::Malformed(
            "aligned ids not strictly ascending".into(),
        ));
    }
    Ok(AlignCursor { salt, ids })
}

/// Kind byte + optional align prefix shared by the three checkpoint
/// exporters: `None` keeps the pre-PSI kind and byte layout.
fn checkpoint_writer(plain: u8, aligned_kind: u8, aligned: Option<&AlignCursor>) -> Writer {
    match aligned {
        None => Writer::new(plain),
        Some(a) => {
            let mut w = Writer::new(aligned_kind);
            write_align(&mut w, a);
            w
        }
    }
}

/// A Party A mid-epoch checkpoint (kind [`KIND_CHECKPOINT_A`], or
/// [`KIND_CHECKPOINT_A_ALIGNED`] when taken in a PSI-aligned run).
pub struct CheckpointA {
    /// Epoch the cursor points into.
    pub epoch: u64,
    /// Batches already completed within that epoch.
    pub batch: u64,
    /// The peer-link determinism cursor.
    pub link: LinkCursor,
    /// The PSI alignment cursor, when the run was aligned.
    pub aligned: Option<AlignCursor>,
    /// The model half exactly as of `(epoch, batch)`.
    pub model: PartyAModel,
}

/// A Party B mid-epoch checkpoint (kind [`KIND_CHECKPOINT_B`], or
/// [`KIND_CHECKPOINT_B_ALIGNED`] when taken in a PSI-aligned run).
pub struct CheckpointB {
    /// Epoch the cursor points into.
    pub epoch: u64,
    /// Batches already completed within that epoch.
    pub batch: u64,
    /// The peer-link determinism cursor.
    pub link: LinkCursor,
    /// The PSI alignment cursor, when the run was aligned.
    pub aligned: Option<AlignCursor>,
    /// The loss curve accumulated so far (B is the label holder; the
    /// resumed run appends to this so the final curve is seamless).
    pub losses: Vec<f64>,
    /// The model half exactly as of `(epoch, batch)`.
    pub model: PartyBModel,
}

/// A multi-guest Party B mid-epoch checkpoint (kind
/// [`KIND_CHECKPOINT_MULTI_B`] /
/// [`KIND_CHECKPOINT_MULTI_B_ALIGNED`]): one [`LinkCursor`] per guest
/// link, in link order.
pub struct MultiCheckpointB {
    /// Epoch the cursor points into.
    pub epoch: u64,
    /// Batches already completed within that epoch.
    pub batch: u64,
    /// One determinism cursor per guest link, in link order.
    pub links: Vec<LinkCursor>,
    /// The PSI alignment cursor, when the run was aligned.
    pub aligned: Option<AlignCursor>,
    /// The loss curve accumulated so far.
    pub losses: Vec<f64>,
    /// The model half exactly as of `(epoch, batch)`.
    pub model: MultiPartyBModel,
}

/// Serialize a Party A checkpoint:
/// `[align cursor |] epoch u64 | batch u64 | cursor | model state`
/// (kind 9 with the align prefix when `aligned` is set, kind 4 —
/// byte-identical to pre-PSI blobs — otherwise).
pub fn export_checkpoint_a(
    epoch: u64,
    batch: u64,
    link: &LinkCursor,
    aligned: Option<&AlignCursor>,
    model: &PartyAModel,
) -> Vec<u8> {
    let mut w = checkpoint_writer(KIND_CHECKPOINT_A, KIND_CHECKPOINT_A_ALIGNED, aligned);
    w.u64(epoch);
    w.u64(batch);
    write_cursor(&mut w, link);
    model.write_state(&mut w);
    w.buf
}

/// Deserialize a [`CheckpointA`] (plain or aligned kind), validating
/// every field.
pub fn import_checkpoint_a(bytes: &[u8]) -> PersistResult<CheckpointA> {
    let (mut r, is_aligned) =
        Reader::new_either(bytes, KIND_CHECKPOINT_A, KIND_CHECKPOINT_A_ALIGNED)?;
    let aligned = if is_aligned {
        Some(read_align(&mut r)?)
    } else {
        None
    };
    let epoch = r.u64()?;
    let batch = r.u64()?;
    let link = read_cursor(&mut r)?;
    let model = PartyAModel::read_state(&mut r)?;
    r.finish()?;
    Ok(CheckpointA {
        epoch,
        batch,
        link,
        aligned,
        model,
    })
}

/// Serialize a Party B checkpoint:
/// `[align cursor |] epoch u64 | batch u64 | cursor | n_losses u64 |
/// losses | model`.
pub fn export_checkpoint_b(
    epoch: u64,
    batch: u64,
    link: &LinkCursor,
    aligned: Option<&AlignCursor>,
    losses: &[f64],
    model: &PartyBModel,
) -> Vec<u8> {
    let mut w = checkpoint_writer(KIND_CHECKPOINT_B, KIND_CHECKPOINT_B_ALIGNED, aligned);
    w.u64(epoch);
    w.u64(batch);
    write_cursor(&mut w, link);
    w.u64(losses.len() as u64);
    for &l in losses {
        w.f64(l);
    }
    model.write_state(&mut w);
    w.buf
}

/// Deserialize a [`CheckpointB`] (plain or aligned kind), validating
/// every field.
pub fn import_checkpoint_b(bytes: &[u8]) -> PersistResult<CheckpointB> {
    let (mut r, is_aligned) =
        Reader::new_either(bytes, KIND_CHECKPOINT_B, KIND_CHECKPOINT_B_ALIGNED)?;
    let aligned = if is_aligned {
        Some(read_align(&mut r)?)
    } else {
        None
    };
    let epoch = r.u64()?;
    let batch = r.u64()?;
    let link = read_cursor(&mut r)?;
    let losses = r.f64_vec()?;
    let model = PartyBModel::read_state(&mut r)?;
    r.finish()?;
    Ok(CheckpointB {
        epoch,
        batch,
        link,
        aligned,
        losses,
        model,
    })
}

/// Serialize a multi-guest Party B checkpoint:
/// `[align cursor |] epoch u64 | batch u64 | n_links u64 | cursors |
/// n_losses u64 | losses | model`.
pub fn export_checkpoint_multi_b(
    epoch: u64,
    batch: u64,
    links: &[LinkCursor],
    aligned: Option<&AlignCursor>,
    losses: &[f64],
    model: &MultiPartyBModel,
) -> Vec<u8> {
    let mut w = checkpoint_writer(
        KIND_CHECKPOINT_MULTI_B,
        KIND_CHECKPOINT_MULTI_B_ALIGNED,
        aligned,
    );
    w.u64(epoch);
    w.u64(batch);
    w.u64(links.len() as u64);
    for c in links {
        write_cursor(&mut w, c);
    }
    w.u64(losses.len() as u64);
    for &l in losses {
        w.f64(l);
    }
    model.write_state(&mut w);
    w.buf
}

/// Deserialize a [`MultiCheckpointB`] (plain or aligned kind),
/// validating every field.
pub fn import_checkpoint_multi_b(bytes: &[u8]) -> PersistResult<MultiCheckpointB> {
    let (mut r, is_aligned) = Reader::new_either(
        bytes,
        KIND_CHECKPOINT_MULTI_B,
        KIND_CHECKPOINT_MULTI_B_ALIGNED,
    )?;
    let aligned = if is_aligned {
        Some(read_align(&mut r)?)
    } else {
        None
    };
    let epoch = r.u64()?;
    let batch = r.u64()?;
    let n_links = r.len_u64()?;
    let want = n_links
        .checked_mul(LINK_CURSOR_LEN)
        .ok_or_else(|| PersistError::Malformed("link count overflow".into()))?;
    if r.bytes.len() - r.pos < want {
        return Err(PersistError::Truncated);
    }
    let mut links = Vec::with_capacity(n_links);
    for _ in 0..n_links {
        links.push(read_cursor(&mut r)?);
    }
    let losses = r.f64_vec()?;
    let model = MultiPartyBModel::read_state(&mut r)?;
    r.finish()?;
    if links.len() != model.num_links() {
        return Err(PersistError::Malformed(format!(
            "checkpoint has {} link cursors but the model has {} links",
            links.len(),
            model.num_links()
        )));
    }
    Ok(MultiCheckpointB {
        epoch,
        batch,
        links,
        aligned,
        losses,
        model,
    })
}

const NODE_LEAF: u8 = 0;
const NODE_SPLIT: u8 = 1;

/// Serialize the host share of a federated forest. Guest-owned split
/// thresholds are not here (and never were on the host): only global
/// feature ids, buckets and the host's own edges.
pub fn export_gbdt_host(model: &GbdtHostModel) -> Vec<u8> {
    let mut w = Writer::new(KIND_GBDT_HOST);
    w.f64(model.base_score);
    w.u64(model.guest_widths.len() as u64);
    for &width in &model.guest_widths {
        w.u64(width as u64);
    }
    w.u64(model.host_edges.len() as u64);
    for edges in &model.host_edges {
        w.u64(edges.len() as u64);
        for &e in edges {
            w.f64(e);
        }
    }
    w.u64(model.trees.len() as u64);
    for tree in &model.trees {
        w.u64(tree.nodes.len() as u64);
        for node in &tree.nodes {
            match node {
                Node::Leaf { weight } => {
                    w.u8(NODE_LEAF);
                    w.f64(*weight);
                }
                Node::Split {
                    feature,
                    bucket,
                    left,
                    right,
                } => {
                    w.u8(NODE_SPLIT);
                    w.u64(*feature as u64);
                    w.u64(*bucket as u64);
                    w.u64(*left as u64);
                    w.u64(*right as u64);
                }
            }
        }
    }
    w.buf
}

/// Deserialize a [`GbdtHostModel`], validating tree topology (children
/// in bounds and forward-pointing, the BFS invariant), feature ids
/// against the recorded feature layout, and host-split buckets against
/// the host's edge lists.
pub fn import_gbdt_host(bytes: &[u8]) -> PersistResult<GbdtHostModel> {
    let mut r = Reader::new(bytes, KIND_GBDT_HOST)?;
    let base_score = r.f64()?;
    let n_links = r.len_u64()?;
    if r.bytes.len() - r.pos < n_links.saturating_mul(8) {
        return Err(PersistError::Truncated);
    }
    let mut guest_widths = Vec::with_capacity(n_links);
    for _ in 0..n_links {
        guest_widths.push(r.len_u64()?);
    }
    let guest_width_sum: usize = guest_widths.iter().sum();
    let host_features = r.len_u64()?;
    if r.bytes.len() - r.pos < host_features.saturating_mul(8) {
        return Err(PersistError::Truncated);
    }
    let mut host_edges = Vec::with_capacity(host_features);
    for _ in 0..host_features {
        host_edges.push(r.f64_vec()?);
    }
    let total_features = guest_width_sum
        .checked_add(host_features)
        .ok_or_else(|| PersistError::Malformed("feature count overflow".into()))?;
    let n_trees = r.len_u64()?;
    let mut trees = Vec::with_capacity(n_trees.min(1024));
    for t in 0..n_trees {
        let n_nodes = r.len_u64()?;
        // A node is at least 2 bytes (tag + smallest body is 8, but
        // guard cheaply): reject a fabricated count before allocating.
        if r.bytes.len() - r.pos < n_nodes.saturating_mul(9) {
            return Err(PersistError::Truncated);
        }
        if n_nodes == 0 {
            return Err(PersistError::Malformed(format!("tree {t} has no nodes")));
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            match r.u8()? {
                NODE_LEAF => nodes.push(Node::Leaf { weight: r.f64()? }),
                NODE_SPLIT => {
                    let feature = r.u64()?;
                    let bucket = r.u64()?;
                    let left = r.u64()?;
                    let right = r.u64()?;
                    if feature >= total_features as u64 {
                        return Err(PersistError::Malformed(format!(
                            "tree {t} node {i} splits feature {feature} of {total_features}"
                        )));
                    }
                    let hf = feature as usize;
                    if hf >= guest_width_sum
                        && bucket >= host_edges[hf - guest_width_sum].len() as u64
                    {
                        return Err(PersistError::Malformed(format!(
                            "tree {t} node {i} references host bucket {bucket} out of range"
                        )));
                    }
                    // BFS growth means children always point forward.
                    if left <= i as u64 || right <= i as u64 || left.max(right) >= n_nodes as u64 {
                        return Err(PersistError::Malformed(format!(
                            "tree {t} node {i} has out-of-range children ({left}, {right})"
                        )));
                    }
                    nodes.push(Node::Split {
                        feature: u32::try_from(feature).map_err(|_| {
                            PersistError::Malformed("feature id overflows u32".into())
                        })?,
                        bucket: u32::try_from(bucket).map_err(|_| {
                            PersistError::Malformed("bucket id overflows u32".into())
                        })?,
                        left: left as u32,
                        right: right as u32,
                    });
                }
                tag => {
                    return Err(PersistError::Malformed(format!(
                        "unknown tree-node tag {tag}"
                    )))
                }
            }
        }
        trees.push(Tree { nodes });
    }
    r.finish()?;
    Ok(GbdtHostModel {
        trees,
        guest_widths,
        host_edges,
        base_score,
    })
}

/// Serialize the guest share of a federated forest: its recorded split
/// predicates, in host split-decision order.
pub fn export_gbdt_guest(model: &GbdtGuestModel) -> Vec<u8> {
    let mut w = Writer::new(KIND_GBDT_GUEST);
    w.u64(model.width as u64);
    w.u64(model.records.len() as u64);
    for rec in &model.records {
        w.u64(rec.feature as u64);
        w.f64(rec.threshold);
    }
    w.buf
}

/// Deserialize a [`GbdtGuestModel`], validating every record's feature
/// index against the recorded store width.
pub fn import_gbdt_guest(bytes: &[u8]) -> PersistResult<GbdtGuestModel> {
    let mut r = Reader::new(bytes, KIND_GBDT_GUEST)?;
    let width = r.len_u64()?;
    let n_records = r.len_u64()?;
    if r.bytes.len() - r.pos < n_records.saturating_mul(16) {
        return Err(PersistError::Truncated);
    }
    let mut records = Vec::with_capacity(n_records);
    for i in 0..n_records {
        let feature = r.u64()?;
        let threshold = r.f64()?;
        if feature >= width as u64 {
            return Err(PersistError::Malformed(format!(
                "record {i} references feature {feature} of a {width}-feature store"
            )));
        }
        records.push(GbRecord {
            feature: feature as u32,
            threshold,
        });
    }
    r.finish()?;
    Ok(GbdtGuestModel { width, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_host_model() -> GbdtHostModel {
        GbdtHostModel {
            trees: vec![
                Tree {
                    nodes: vec![
                        Node::Split {
                            feature: 1, // guest link 1, local 0
                            bucket: 2,
                            left: 1,
                            right: 2,
                        },
                        Node::Leaf { weight: -0.25 },
                        Node::Split {
                            feature: 2, // host local 0
                            bucket: 1,
                            left: 3,
                            right: 4,
                        },
                        Node::Leaf { weight: 0.5 },
                        Node::Leaf { weight: 0.125 },
                    ],
                },
                Tree {
                    nodes: vec![Node::Leaf { weight: 1.5 }],
                },
            ],
            guest_widths: vec![1, 1],
            host_edges: vec![vec![-0.5, 0.0, 0.75]],
            base_score: 0.0,
        }
    }

    #[test]
    fn gbdt_host_roundtrips_byte_exact() {
        let model = sample_host_model();
        let blob = export_gbdt_host(&model);
        let back = import_gbdt_host(&blob).unwrap();
        assert_eq!(back, model);
        // Byte-exact: re-export of the import reproduces the blob.
        assert_eq!(export_gbdt_host(&back), blob);
    }

    #[test]
    fn gbdt_guest_roundtrips_byte_exact() {
        let model = GbdtGuestModel {
            width: 3,
            records: vec![
                GbRecord {
                    feature: 0,
                    threshold: -1.25,
                },
                GbRecord {
                    feature: 2,
                    threshold: 0.0,
                },
            ],
        };
        let blob = export_gbdt_guest(&model);
        let back = import_gbdt_guest(&blob).unwrap();
        assert_eq!(back, model);
        assert_eq!(export_gbdt_guest(&back), blob);
    }

    #[test]
    fn gbdt_blobs_reject_cross_kind() {
        let host_blob = export_gbdt_host(&sample_host_model());
        assert_eq!(
            import_gbdt_guest(&host_blob).err().unwrap(),
            PersistError::WrongKind {
                expected: KIND_GBDT_GUEST,
                got: KIND_GBDT_HOST
            }
        );
        let guest_blob = export_gbdt_guest(&GbdtGuestModel {
            width: 1,
            records: vec![],
        });
        assert_eq!(
            import_gbdt_host(&guest_blob).err().unwrap(),
            PersistError::WrongKind {
                expected: KIND_GBDT_HOST,
                got: KIND_GBDT_GUEST
            }
        );
        // An MLP-family importer refuses a forest blob (typed, no
        // panic) — the WrongKind seam old decoders rely on.
        assert!(matches!(
            import_party_b(&host_blob).err().unwrap(),
            PersistError::WrongKind { .. }
        ));
    }

    #[test]
    fn gbdt_host_rejects_malformed() {
        let model = sample_host_model();
        let blob = export_gbdt_host(&model);
        // Every strict prefix is Truncated or Malformed, never a panic.
        for cut in 0..blob.len() {
            assert!(import_gbdt_host(&blob[..cut]).is_err(), "prefix {cut}");
        }
        // Backward-pointing child (breaks the BFS invariant).
        let mut bad = sample_host_model();
        bad.trees[0].nodes[0] = Node::Split {
            feature: 1,
            bucket: 2,
            left: 0,
            right: 2,
        };
        assert!(matches!(
            import_gbdt_host(&export_gbdt_host(&bad)).err().unwrap(),
            PersistError::Malformed(_)
        ));
        // Feature id beyond the recorded layout.
        let mut bad = sample_host_model();
        bad.trees[0].nodes[2] = Node::Split {
            feature: 9,
            bucket: 0,
            left: 3,
            right: 4,
        };
        assert!(matches!(
            import_gbdt_host(&export_gbdt_host(&bad)).err().unwrap(),
            PersistError::Malformed(_)
        ));
        // Host bucket beyond the stored edge list.
        let mut bad = sample_host_model();
        bad.trees[0].nodes[2] = Node::Split {
            feature: 2,
            bucket: 3,
            left: 3,
            right: 4,
        };
        assert!(matches!(
            import_gbdt_host(&export_gbdt_host(&bad)).err().unwrap(),
            PersistError::Malformed(_)
        ));
        // Unknown node tag.
        let mut corrupt = blob.clone();
        let tag_pos = blob.len() - 9; // last tree ends [tag:1][weight:8]
        assert_eq!(corrupt[tag_pos], NODE_LEAF);
        corrupt[tag_pos] = 7;
        assert!(matches!(
            import_gbdt_host(&corrupt).err().unwrap(),
            PersistError::Malformed(_)
        ));
        // Trailing bytes.
        let mut long = blob;
        long.push(0);
        assert!(matches!(
            import_gbdt_host(&long).err().unwrap(),
            PersistError::Malformed(_)
        ));
    }

    #[test]
    fn gbdt_guest_rejects_malformed() {
        let model = GbdtGuestModel {
            width: 2,
            records: vec![GbRecord {
                feature: 1,
                threshold: 0.5,
            }],
        };
        let blob = export_gbdt_guest(&model);
        for cut in 0..blob.len() {
            assert!(import_gbdt_guest(&blob[..cut]).is_err(), "prefix {cut}");
        }
        // Record referencing a feature outside the recorded width.
        let bad = GbdtGuestModel {
            width: 1,
            records: vec![GbRecord {
                feature: 1,
                threshold: 0.5,
            }],
        };
        assert!(matches!(
            import_gbdt_guest(&export_gbdt_guest(&bad)).err().unwrap(),
            PersistError::Malformed(_)
        ));
        // A fabricated record count larger than the blob must be
        // rejected before allocating.
        let mut huge = export_gbdt_guest(&model);
        let count_at = HEADER_LEN + 8;
        huge[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(import_gbdt_guest(&huge).is_err());
    }

    #[test]
    fn header_rejections() {
        // Too short.
        assert_eq!(import_party_a(&[]).err().unwrap(), PersistError::Truncated);
        // Bad magic.
        let mut blob = b"XXMD\x01\x01".to_vec();
        assert!(matches!(
            import_party_a(&blob).err().unwrap(),
            PersistError::BadMagic(_)
        ));
        // Bad version.
        blob[..4].copy_from_slice(&MAGIC);
        blob[4] = 9;
        assert_eq!(
            import_party_a(&blob).err().unwrap(),
            PersistError::UnsupportedVersion(9)
        );
        // Wrong kind: a Party B blob fed to the Party A importer.
        blob[4] = VERSION;
        blob[5] = KIND_PARTY_B;
        assert_eq!(
            import_party_a(&blob).err().unwrap(),
            PersistError::WrongKind {
                expected: KIND_PARTY_A,
                got: KIND_PARTY_B
            }
        );
    }

    /// Hand-build a PartyB blob prefix: Glm/Mlp spec + a MatMul source
    /// of the given shape + no embed layer.
    fn party_b_prefix(spec_bytes: &[u8], mm_in: usize, mm_out: usize) -> Writer {
        use bf_paillier::{keys::plain_keys, ObfMode, Obfuscator};
        let (pk, _) = plain_keys(20);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(2), 0);
        let mut w = Writer::new(KIND_PARTY_B);
        w.buf.extend_from_slice(spec_bytes);
        w.u8(1); // matmul present
        w.u64(mm_out as u64);
        let piece = Dense::zeros(mm_in, mm_out);
        for _ in 0..4 {
            w.dense(&piece);
        }
        w.ctmat(&pk.encrypt(&piece, &obf));
        w.u8(0); // no embed
        w
    }

    #[test]
    fn cross_component_width_mismatch_is_rejected() {
        // Spec Glm{out: 1} + MatMul out 1, but a width-3 bias top:
        // each component is internally consistent, so only the
        // cross-component check can catch it — without it, the blob
        // imports and the first forward pass panics mid-protocol.
        let mut spec = vec![1u8];
        spec.extend_from_slice(&1u64.to_le_bytes());
        let mut w = party_b_prefix(&spec, 2, 1);
        w.u8(1); // Top::Bias
        let bad = Dense::zeros(1, 3);
        w.dense(&bad);
        w.dense(&bad);
        match import_party_b(&w.buf).err() {
            Some(PersistError::Malformed(why)) => {
                assert!(why.contains("Glm widths disagree"), "{why}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn unchained_tower_layers_are_rejected() {
        // Spec Mlp[2, 1] + MatMul out 2, tower layers 2×3 then 4×1:
        // every layer is internally consistent but 3 → 4 do not chain.
        let mut spec = vec![2u8];
        for v in [2u64, 2, 1] {
            spec.extend_from_slice(&v.to_le_bytes());
        }
        let mut w = party_b_prefix(&spec, 3, 2);
        w.u8(2); // Top::Tower
        let bias = Dense::zeros(1, 2);
        w.dense(&bias);
        w.dense(&bias);
        w.u64(2); // tower depth
        for (rows, cols, act) in [(2usize, 3usize, 1u8), (4, 1, 0)] {
            let wt = Dense::zeros(rows, cols);
            let b = Dense::zeros(1, cols);
            w.dense(&wt);
            w.dense(&b);
            w.dense(&wt);
            w.dense(&b);
            w.u8(act);
        }
        match import_party_b(&w.buf).err() {
            Some(PersistError::Malformed(why)) => {
                assert!(why.contains("do not chain"), "{why}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_fields_do_not_allocate() {
        // A dense header claiming u64::MAX rows must fail before any
        // allocation happens.
        let mut blob = Vec::new();
        blob.extend_from_slice(&MAGIC);
        blob.push(VERSION);
        blob.push(KIND_PARTY_A);
        blob.push(1); // has_matmul
        blob.extend_from_slice(&1u64.to_le_bytes()); // out
        blob.extend_from_slice(&u64::MAX.to_le_bytes()); // rows
        blob.extend_from_slice(&u64::MAX.to_le_bytes()); // cols
        assert!(import_party_a(&blob).is_err());
    }
}
