//! The paper's privacy requirements (Section 4.2) and per-layer
//! restriction tables (Tables 2 & 3), expressed as data.
//!
//! These are consumed by the security tests in `tests/` — every value a
//! protocol run exposes to a party is checked against the restriction
//! set for that party — and serve as the normative reference for
//! reviewers of the protocol implementations.

/// The values generated during federated execution, classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Observable {
    /// Aggregated forward output `Z = X_A·W_A + X_B·W_B` (or the
    /// Embed-MatMul analogue).
    Z,
    /// Party A's partial activation `X_A·W_A` / `E_A·W_A`.
    PartialActivationA,
    /// Party B's partial activation `X_B·W_B` / `E_B·W_B`.
    PartialActivationB,
    /// Party A's embedding rows `E_A`.
    EmbeddingA,
    /// Party B's embedding rows `E_B`.
    EmbeddingB,
    /// Backward derivative of the source output, `∇Z`.
    GradZ,
    /// `∇E_A`.
    GradEmbeddingA,
    /// `∇E_B`.
    GradEmbeddingB,
    /// Weights `W_A` (reconstructed plaintext).
    WeightsA,
    /// Weights `W_B`.
    WeightsB,
    /// Embedding table `Q_A`.
    TableA,
    /// Embedding table `Q_B`.
    TableB,
    /// Gradient `∇W_A`.
    GradWeightsA,
    /// Gradient `∇W_B`.
    GradWeightsB,
    /// Gradient `∇Q_A`.
    GradTableA,
    /// Gradient `∇Q_B`.
    GradTableB,
}

/// Table 2: observables Party A must never obtain in the MatMul layer.
pub fn matmul_forbidden_for_a() -> Vec<Observable> {
    use Observable::*;
    vec![
        Z,
        PartialActivationA,
        PartialActivationB,
        GradZ,
        WeightsA,
        WeightsB,
        GradWeightsA,
        GradWeightsB,
    ]
}

/// Table 2: observables Party B must never obtain in the MatMul layer.
pub fn matmul_forbidden_for_b() -> Vec<Observable> {
    use Observable::*;
    vec![
        PartialActivationA,
        PartialActivationB,
        WeightsA,
        WeightsB,
        GradWeightsA,
    ]
}

/// Table 3: observables Party A must never obtain in the Embed-MatMul
/// layer.
pub fn embed_forbidden_for_a() -> Vec<Observable> {
    use Observable::*;
    vec![
        Z,
        EmbeddingA,
        EmbeddingB,
        PartialActivationA,
        PartialActivationB,
        GradZ,
        GradEmbeddingA,
        GradEmbeddingB,
        WeightsA,
        WeightsB,
        TableA,
        TableB,
        GradWeightsA,
        GradWeightsB,
        GradTableA,
        GradTableB,
    ]
}

/// Table 3: observables Party B must never obtain in the Embed-MatMul
/// layer.
pub fn embed_forbidden_for_b() -> Vec<Observable> {
    use Observable::*;
    vec![
        EmbeddingA,
        EmbeddingB,
        PartialActivationA,
        PartialActivationB,
        WeightsA,
        WeightsB,
        TableA,
        TableB,
        GradWeightsA,
        GradTableA,
        GradTableB,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_b_may_see_z_and_grad_z_with_local_top() {
        // With a non-federated top model, Z and ∇Z are Party B's
        // working values (Theorems 5.2 / 6.2 bound what they reveal).
        assert!(!matmul_forbidden_for_b().contains(&Observable::Z));
        assert!(!matmul_forbidden_for_b().contains(&Observable::GradZ));
        assert!(!embed_forbidden_for_b().contains(&Observable::GradZ));
    }

    #[test]
    fn party_a_sees_nothing_informative() {
        let forbidden = matmul_forbidden_for_a();
        for o in [
            Observable::Z,
            Observable::GradZ,
            Observable::WeightsA,
            Observable::GradWeightsA,
        ] {
            assert!(forbidden.contains(&o));
        }
    }

    #[test]
    fn embed_restrictions_superset_matmul() {
        // Table 3 inherits every Table 2 restriction.
        let emb = embed_forbidden_for_a();
        for o in matmul_forbidden_for_a() {
            assert!(emb.contains(&o), "{o:?} missing from embed restrictions");
        }
    }

    #[test]
    fn party_b_restricted_from_own_embedding_values() {
        // The paper's strong restriction: B must not see E_B / ∇E_B /
        // Q_B, because ∇E_B = ∇Z·W_Bᵀ would let B infer W_B.
        let f = embed_forbidden_for_b();
        assert!(f.contains(&Observable::EmbeddingB));
        assert!(f.contains(&Observable::TableB));
        assert!(f.contains(&Observable::GradTableB));
    }
}
