//! Federated inference serving: Party B hosts a **micro-batching
//! request queue** that coalesces concurrent single-row prediction
//! requests into one federated forward pass per batch, amortizing the
//! per-pass Paillier work and round trips across every rider (see
//! `docs/SERVING.md` for the architecture and the equivalence
//! contract; `crates/bench/src/bin/serving.rs` measures the
//! throughput win).
//!
//! ```text
//!  clients            Party B (host)                  Party A (guest)
//!  ───────            ──────────────                  ───────────────
//!  predict(row) ──┐
//!  predict(row) ──┼─▶ queue ─▶ coalesce ≤ max_batch
//!  predict(row) ──┘      │
//!                        ▼
//!                 Support(rows)  ────────────────▶  select(rows)
//!                 forward (B half)  ◀── protocol ──▶  forward (A half)
//!                        │
//!                 logits per rider ──▶ reply with latency + batch size
//! ```
//!
//! The wire protocol needs **no new frame kinds**: a request batch is
//! one [`Msg::Support`] carrying the PSI-aligned row indices (both
//! parties index their local feature store with them), followed by the
//! source layers' ordinary forward-pass messages; a [`Msg::U64`]
//! sentinel ([`SERVE_SHUTDOWN`]) ends the serve session.
//!
//! **Equivalence contract**: a served prediction is bit-identical to
//! the in-process prediction forward pass
//! ([`PartyBModel::predict_batch`]) on the same rows under the same
//! session state and batch partition — serving changes *where* the
//! forward runs, never its bytes (`tests/serving_parity.rs` enforces
//! this for 2-party and multi-guest, Plain and Paillier, both
//! transports).

use std::sync::mpsc as std_mpsc;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bf_ml::data::Dataset;
use bf_mpc::transport::{Msg, TransportError, TransportResult};
use bf_tensor::Dense;

use crate::models::{MultiPartyBModel, PartyAModel, PartyBModel};
use crate::session::Session;

/// The `U64` sentinel Party B sends on every link to end a serve
/// session (any other `U64` in serve mode is a protocol fault).
pub const SERVE_SHUTDOWN: u64 = 0x5E12_FD0E;

/// Micro-batching options for the Party B serving loop.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Most riders coalesced into one federated forward pass. `1`
    /// degenerates to sequential single-row serving (the bench
    /// baseline).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 32 }
    }
}

/// Why a prediction request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server is gone (loop exited or transport failed) — the
    /// request will never be answered.
    Closed,
    /// The requested row does not exist in the serving feature store.
    BadRow {
        /// The requested row index.
        row: usize,
        /// The store's row count.
        rows: usize,
    },
    /// The queue is full right now — admission control turned the
    /// request away instead of blocking the caller
    /// ([`PredictClient::try_submit`]).
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "prediction server is gone"),
            ServeError::BadRow { row, rows } => {
                write!(f, "row {row} out of range for a {rows}-row feature store")
            }
            ServeError::Overloaded => write!(f, "prediction queue is full"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered prediction.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// The model's logits row for the requested instance.
    pub logits: Vec<f64>,
    /// Enqueue-to-reply latency of this request.
    pub latency: Duration,
    /// How many riders shared this request's federated forward pass.
    pub batch_rows: usize,
}

/// An in-flight prediction request.
struct Request {
    row: usize,
    enqueued: Instant,
    reply: std_mpsc::SyncSender<Result<Prediction, ServeError>>,
}

/// A client handle onto a serving queue. Cheap to clone; one handle
/// per client thread is the intended shape. The serving loop exits
/// (and shuts the guests down) once every client handle is dropped
/// and the queue has drained.
#[derive(Clone)]
pub struct PredictClient {
    tx: SyncSender<Request>,
}

/// A submitted request whose reply can be awaited later —
/// [`PredictClient::submit`] + [`PendingPrediction::wait`] is the
/// asynchronous form of [`PredictClient::predict`].
pub struct PendingPrediction {
    rx: std_mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PendingPrediction {
    /// Block until the server answers (or dies).
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Poll for the answer without blocking: `None` while the request
    /// is still in flight, `Some` once answered (or once the server
    /// is known dead). The nonblocking form the gateway's event loop
    /// uses.
    pub fn try_wait(&self) -> Option<Result<Prediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(std_mpsc::TryRecvError::Empty) => None,
            Err(std_mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

impl PredictClient {
    /// Enqueue a prediction request for `row` of the serving store
    /// without waiting for the answer.
    pub fn submit(&self, row: usize) -> Result<PendingPrediction, ServeError> {
        let (reply, rx) = std_mpsc::sync_channel(1);
        self.tx
            .send(Request {
                row,
                enqueued: Instant::now(),
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        Ok(PendingPrediction { rx })
    }

    /// Enqueue a prediction request without blocking: a full queue
    /// answers [`ServeError::Overloaded`] immediately instead of
    /// parking the caller. Admission control for the gateway's event
    /// loop, which must never block on a shard.
    pub fn try_submit(&self, row: usize) -> Result<PendingPrediction, ServeError> {
        let (reply, rx) = std_mpsc::sync_channel(1);
        match self.tx.try_send(Request {
            row,
            enqueued: Instant::now(),
            reply,
        }) {
            Ok(()) => Ok(PendingPrediction { rx }),
            Err(std_mpsc::TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(std_mpsc::TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    /// Request a prediction for `row` and block until it is answered —
    /// the closed-loop client call the bench drives from many threads.
    pub fn predict(&self, row: usize) -> Result<Prediction, ServeError> {
        self.submit(row)?.wait()
    }
}

/// The server side of a serving queue (consumed by
/// [`serve_party_b`] / [`serve_party_b_multi`]).
pub struct RequestQueue {
    rx: Receiver<Request>,
}

/// Create a serving queue of the given capacity: the client half
/// (clonable, one per client thread) and the server half. Submissions
/// beyond `capacity` block — backpressure, bounding server memory.
pub fn queue(capacity: usize) -> (PredictClient, RequestQueue) {
    let (tx, rx) = std_mpsc::sync_channel(capacity.max(1));
    (PredictClient { tx }, RequestQueue { rx })
}

/// What a Party B serving loop produces: request/batch counts plus
/// per-request latency and per-batch traffic accounting.
#[derive(Debug, Default)]
pub struct ServeReport {
    /// Requests answered (excluding bad-row rejections).
    pub requests: u64,
    /// Requests rejected before any federated work (bad rows). Every
    /// submission is accounted: `requests + rejected` equals the
    /// number of requests the loop drained.
    pub rejected: u64,
    /// Federated forward passes executed.
    pub batches: u64,
    /// Bytes this party sent during the serve phase only (B→A, summed
    /// across links in the multi-guest case) — counters are
    /// snapshotted at serve entry, so training traffic on a reused
    /// session never pollutes the serve report.
    pub bytes_sent: u64,
    /// Wall-clock duration of the serve loop in seconds (first drain
    /// to queue exhaustion), the denominator of
    /// [`ServeReport::sustained_qps`].
    pub wall_secs: f64,
    /// Enqueue-to-reply latency of every answered request, in seconds,
    /// in answer order.
    pub latencies_secs: Vec<f64>,
    /// Rider count of every executed batch, in order.
    pub batch_sizes: Vec<usize>,
    /// Bytes this party sent per executed batch, in order (the
    /// per-batch traffic a rider's upload amortizes over).
    pub bytes_per_batch: Vec<u64>,
    /// The exact row partition of every executed batch, in order.
    /// This is the serving determinism contract made replayable:
    /// feeding these partitions to the direct `predict_batch` forward
    /// on an identically-seeded session reproduces every served logit
    /// bit for bit (`tests/gateway.rs` does exactly that).
    pub batch_rows: Vec<Vec<u32>>,
    /// Lazily-sorted copy of `latencies_secs`, populated on the first
    /// quantile query so repeated `p50`/`p99` calls sort once. Public
    /// only so external constructors can use functional-record-update
    /// (`..Default::default()`); never set it to anything but an empty
    /// cell — mutating `latencies_secs` after a quantile query would
    /// otherwise serve stale quantiles.
    #[doc(hidden)]
    pub sorted_latencies: std::sync::OnceLock<Vec<f64>>,
}

/// Ceil-based nearest-rank quantile over an ascending-sorted sample:
/// rank `⌈q·n⌉` (clamped to `[1, n]`), i.e. the smallest sample value
/// such that at least a `q` fraction of the sample is ≤ it. The
/// previous `.round()`-based index could select *below* the true
/// nearest rank (67 samples, q = 0.99: 0.99·66 = 65.34 rounds to index
/// 65 where nearest-rank is 66).
pub(crate) fn quantile_ceil(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

impl ServeReport {
    /// Mean per-request latency in seconds (0 when nothing served).
    pub fn mean_latency_secs(&self) -> f64 {
        if self.latencies_secs.is_empty() {
            0.0
        } else {
            self.latencies_secs.iter().sum::<f64>() / self.latencies_secs.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-request latency in seconds,
    /// ceil-based nearest rank (0 when nothing served).
    pub fn latency_quantile_secs(&self, q: f64) -> f64 {
        let sorted = self.sorted_latencies.get_or_init(|| {
            let mut v = self.latencies_secs.clone();
            v.sort_by(f64::total_cmp);
            v
        });
        quantile_ceil(sorted, q)
    }

    /// Largest coalesced batch (0 when nothing served).
    pub fn max_batch(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Median per-request latency in seconds.
    pub fn p50_latency_secs(&self) -> f64 {
        self.latency_quantile_secs(0.50)
    }

    /// 99th-percentile per-request latency in seconds.
    pub fn p99_latency_secs(&self) -> f64 {
        self.latency_quantile_secs(0.99)
    }

    /// Answered requests per wall-clock second over the serve phase
    /// (0 when nothing served).
    pub fn sustained_qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.requests as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// What a Party A serving loop produces.
#[derive(Debug)]
pub struct ServeGuestReport {
    /// Federated forward passes answered.
    pub batches: u64,
    /// Instance rows predicted across all batches.
    pub rows: u64,
    /// Bytes this party sent during the serve phase only (A→B) —
    /// snapshotted at serve entry, so training traffic on a reused
    /// session is excluded.
    pub bytes_sent: u64,
}

/// Party A's serving loop: answer federated prediction passes against
/// the local feature-store slice until the host sends
/// [`SERVE_SHUTDOWN`]. Works unchanged for two-party and multi-guest
/// serving (each guest serves its own link), over any transport, with
/// a model freshly trained or loaded via [`crate::persist`].
///
/// Out-of-range row indices and unexpected message kinds surface as
/// typed [`TransportError`]s — a guest facing a faulty host refuses
/// the request instead of panicking.
pub fn serve_party_a(
    sess: &mut Session,
    model: &mut PartyAModel,
    store: &Dataset,
) -> TransportResult<ServeGuestReport> {
    // Serve-phase traffic only: a session that trained first must not
    // leak its training bytes into the serve report.
    let bytes_base = sess.ep.stats().bytes();
    let mut batches = 0u64;
    let mut rows_served = 0u64;
    loop {
        match sess.ep.recv()? {
            Msg::Support(rows) => {
                let idx = check_rows(&rows, store.rows())?;
                let batch = store.select(&idx);
                model.predict_batch(sess, &batch)?;
                batches += 1;
                rows_served += rows.len() as u64;
            }
            Msg::U64(v) if v == SERVE_SHUTDOWN => break,
            Msg::U64(v) => {
                return Err(TransportError::Setup(format!(
                    "unexpected U64 {v:#x} in serve mode (not the shutdown sentinel)"
                )))
            }
            other => {
                return Err(TransportError::TypeMismatch {
                    expected: "Support",
                    got: other.kind(),
                })
            }
        }
    }
    Ok(ServeGuestReport {
        batches,
        rows: rows_served,
        bytes_sent: sess.ep.stats().bytes() - bytes_base,
    })
}

/// Validate a request batch's row indices against the store size.
fn check_rows(rows: &[u32], store_rows: usize) -> TransportResult<Vec<usize>> {
    rows.iter()
        .map(|&r| {
            let i = r as usize;
            if i < store_rows {
                Ok(i)
            } else {
                Err(TransportError::Setup(format!(
                    "prediction request for row {i} of a {store_rows}-row store"
                )))
            }
        })
        .collect()
}

/// Party B's serving loop (two-party): drain the request queue,
/// coalescing up to [`ServeConfig::max_batch`] concurrent requests
/// per federated forward pass, until every [`PredictClient`] is
/// dropped and the queue is empty; then shut the guest down.
///
/// Bad-row requests are rejected to their own caller
/// ([`ServeError::BadRow`]) without disturbing the batch they arrived
/// in; a transport failure aborts the loop with the error (pending
/// callers observe [`ServeError::Closed`]) — but the shutdown
/// sentinel is still sent best-effort so the guest's serve loop can
/// exit instead of blocking in `recv()` forever.
pub fn serve_party_b(
    sess: &mut Session,
    model: &mut PartyBModel,
    store: &Dataset,
    cfg: &ServeConfig,
    queue: RequestQueue,
) -> TransportResult<ServeReport> {
    let stats = Arc::clone(sess.ep.stats());
    // Serve-phase traffic only (see `ServeReport::bytes_sent`).
    let bytes_base = stats.bytes();
    let loop_result = run_server_loop(
        cfg,
        store.rows(),
        queue,
        &mut || stats.bytes() - bytes_base,
        &mut |rows| {
            sess.ep.send(Msg::Support(rows.to_vec()))?;
            let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
            let batch = store.select(&idx);
            model.predict_batch(sess, &batch)
        },
    );
    let mut report = match loop_result {
        Ok(r) => r,
        Err(e) => {
            // The forward failed mid-protocol; the guest may still be
            // healthy and parked in `recv()`. Best-effort shutdown so
            // it exits; its own error (if the link is what died) wins.
            let _ = sess.ep.send(Msg::U64(SERVE_SHUTDOWN));
            return Err(e);
        }
    };
    sess.ep.send(Msg::U64(SERVE_SHUTDOWN))?;
    report.bytes_sent = stats.bytes() - bytes_base;
    Ok(report)
}

/// Party B's serving loop, multi-guest: identical micro-batching, but
/// each batch's row indices are broadcast to every guest link before
/// the fanned-out forward pass, and the shutdown sentinel goes to
/// every link. Each guest runs the unmodified [`serve_party_a`].
pub fn serve_party_b_multi(
    sessions: &mut [Session],
    model: &mut MultiPartyBModel,
    store: &Dataset,
    cfg: &ServeConfig,
    queue: RequestQueue,
) -> TransportResult<ServeReport> {
    if sessions.is_empty() {
        return Err(TransportError::Setup(
            "serve_party_b_multi needs at least one guest session (M = 0)".into(),
        ));
    }
    let stats: Vec<_> = sessions.iter().map(|s| Arc::clone(s.ep.stats())).collect();
    // Serve-phase traffic only, summed across links.
    let bytes_base: u64 = stats.iter().map(|s| s.bytes()).sum();
    let loop_result = run_server_loop(
        cfg,
        store.rows(),
        queue,
        &mut || stats.iter().map(|s| s.bytes()).sum::<u64>() - bytes_base,
        &mut |rows| {
            for sess in sessions.iter() {
                sess.ep.send(Msg::Support(rows.to_vec()))?;
            }
            let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
            let batch = store.select(&idx);
            model.predict_batch(sessions, &batch)
        },
    );
    let mut report = match loop_result {
        Ok(r) => r,
        Err(e) => {
            // One failed link must not strand the surviving guests in
            // `recv()` forever: best-effort shutdown on every link
            // (the dead one just errors again, which we ignore).
            for sess in sessions.iter() {
                let _ = sess.ep.send(Msg::U64(SERVE_SHUTDOWN));
            }
            return Err(e);
        }
    };
    for sess in sessions.iter() {
        sess.ep.send(Msg::U64(SERVE_SHUTDOWN))?;
    }
    report.bytes_sent = stats.iter().map(|s| s.bytes()).sum::<u64>() - bytes_base;
    Ok(report)
}

/// The shared micro-batching drain: recv one request (blocking), ride
/// up to `max_batch − 1` more already-queued requests on the same
/// pass, predict, reply. `predict_rows` runs the federated forward
/// for one coalesced batch; `bytes_now` samples this party's sent-byte
/// counter for the per-batch traffic attribution.
pub(crate) fn run_server_loop(
    cfg: &ServeConfig,
    store_rows: usize,
    queue: RequestQueue,
    bytes_now: &mut dyn FnMut() -> u64,
    predict_rows: &mut dyn FnMut(&[u32]) -> TransportResult<Dense>,
) -> TransportResult<ServeReport> {
    let mut report = ServeReport {
        requests: 0,
        rejected: 0,
        batches: 0,
        bytes_sent: 0,
        wall_secs: 0.0,
        latencies_secs: Vec::new(),
        batch_sizes: Vec::new(),
        bytes_per_batch: Vec::new(),
        batch_rows: Vec::new(),
        sorted_latencies: std::sync::OnceLock::new(),
    };
    let started = Instant::now();
    let max_batch = cfg.max_batch.max(1);
    loop {
        // Block for the first rider; every request already queued
        // behind it rides the same federated pass.
        let first = match queue.rx.recv() {
            Ok(r) => r,
            Err(_) => break, // every client handle dropped, queue drained
        };
        let mut pending = vec![first];
        while pending.len() < max_batch {
            match queue.rx.try_recv() {
                Ok(r) => pending.push(r),
                Err(_) => break,
            }
        }
        // Reject bad rows to their own callers; the rest still ride.
        // Row indices travel as u32 (the `Support` wire payload), so a
        // row that would truncate is as bad as one past the store —
        // serving the wrong row silently is the one unacceptable
        // outcome.
        let mut riders = Vec::with_capacity(pending.len());
        for req in pending {
            if req.row < store_rows && u32::try_from(req.row).is_ok() {
                riders.push(req);
            } else {
                report.rejected += 1;
                let _ = req.reply.send(Err(ServeError::BadRow {
                    row: req.row,
                    rows: store_rows,
                }));
            }
        }
        if riders.is_empty() {
            continue;
        }
        let rows: Vec<u32> = riders.iter().map(|r| r.row as u32).collect();
        let bytes_before = bytes_now();
        let logits = predict_rows(&rows)?;
        let batch_bytes = bytes_now() - bytes_before;
        let answered = Instant::now();
        for (k, req) in riders.iter().enumerate() {
            // A rider that gave up waiting is fine to skip.
            let _ = req.reply.send(Ok(Prediction {
                logits: logits.row(k).to_vec(),
                latency: answered.duration_since(req.enqueued),
                batch_rows: rows.len(),
            }));
            report
                .latencies_secs
                .push(answered.duration_since(req.enqueued).as_secs_f64());
        }
        report.requests += rows.len() as u64;
        report.batches += 1;
        report.batch_sizes.push(rows.len());
        report.bytes_per_batch.push(batch_bytes);
        report.batch_rows.push(rows);
    }
    report.wall_secs = started.elapsed().as_secs_f64();
    report.bytes_sent = bytes_now();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FedConfig;

    /// Regression for the `.round()` nearest-rank bug: with 67 samples
    /// the old index `round(0.99·66) = 65` under-selects; ceil-based
    /// nearest rank is `⌈0.99·67⌉ = 67`, i.e. the maximum. The two
    /// definitions disagree on this vector, so this test fails against
    /// the old implementation.
    #[test]
    fn quantile_uses_ceil_nearest_rank() {
        let report = ServeReport {
            latencies_secs: (1..=67).map(|i| i as f64).collect(),
            ..Default::default()
        };
        let old_round_answer = 66.0; // sorted[round(0.99 * 66)] = sorted[65]
        assert_eq!(report.latency_quantile_secs(0.99), 67.0);
        assert_ne!(report.latency_quantile_secs(0.99), old_round_answer);
        // Boundary ranks: q=0 is the minimum, q=1 the maximum, and the
        // median of an even-length sample is the lower-middle value.
        assert_eq!(report.latency_quantile_secs(0.0), 1.0);
        assert_eq!(report.latency_quantile_secs(1.0), 67.0);
        let even = ServeReport {
            latencies_secs: vec![4.0, 2.0, 3.0, 1.0],
            ..Default::default()
        };
        assert_eq!(even.latency_quantile_secs(0.5), 2.0);
    }

    /// A zero-request report answers 0 for every quantile, no panic.
    #[test]
    fn empty_report_quantiles_are_zero() {
        let report = ServeReport::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(report.latency_quantile_secs(q), 0.0);
        }
        assert_eq!(report.mean_latency_secs(), 0.0);
    }
    use crate::models::FedSpec;
    use crate::session::run_pair;
    use bf_ml::data::Labels;
    use bf_tensor::Features;
    use rand::SeedableRng;

    fn toy_data(rows: usize, dim: usize, seed: u64, labelled: bool) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let num = bf_tensor::init::uniform(&mut rng, rows, dim, 1.0);
        let labels = labelled.then(|| Labels::Binary((0..rows).map(|r| (r % 2) as f64).collect()));
        Dataset {
            num: Some(Features::Dense(num)),
            cat: None,
            labels,
        }
    }

    /// Serve `n` pre-enqueued requests end to end over the in-process
    /// pair; returns (report, per-request logits).
    fn serve_n(
        cfg: &FedConfig,
        max_batch: usize,
        n: usize,
        extra_bad_row: bool,
    ) -> (ServeReport, Vec<Vec<f64>>) {
        let store_a = toy_data(n, 3, 1, false);
        let store_b = toy_data(n, 4, 2, true);
        let spec = FedSpec::Glm { out: 1 };
        let (_, out) = run_pair(
            cfg,
            5,
            {
                let store_a = store_a.clone();
                let spec = spec.clone();
                move |mut sess| {
                    let mut model = PartyAModel::init(&mut sess, &spec, &store_a).unwrap();
                    serve_party_a(&mut sess, &mut model, &store_a).unwrap()
                }
            },
            move |mut sess| {
                let mut model = PartyBModel::init(&mut sess, &spec, &store_b).unwrap();
                let (client, q) = queue(n + 1);
                let mut pending: Vec<_> = (0..n).map(|r| client.submit(r).unwrap()).collect();
                let bad = extra_bad_row.then(|| client.submit(n + 7).unwrap());
                drop(client);
                let report = serve_party_b(
                    &mut sess,
                    &mut model,
                    &store_b,
                    &ServeConfig { max_batch },
                    q,
                )
                .unwrap();
                if let Some(b) = bad {
                    assert_eq!(
                        b.wait().unwrap_err(),
                        ServeError::BadRow {
                            row: n + 7,
                            rows: n
                        }
                    );
                }
                let logits: Vec<Vec<f64>> = pending
                    .drain(..)
                    .map(|p| p.wait().unwrap().logits)
                    .collect();
                (report, logits)
            },
        );
        out
    }

    #[test]
    fn preenqueued_requests_coalesce_deterministically() {
        let (report, logits) = serve_n(&FedConfig::plain(), 4, 8, false);
        assert_eq!(report.requests, 8);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.batches, 2);
        assert_eq!(report.batch_sizes, vec![4, 4]);
        assert_eq!(
            report.batch_rows,
            vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
            "batch partitions are recorded for replay"
        );
        assert_eq!(report.latencies_secs.len(), 8);
        assert_eq!(report.bytes_per_batch.len(), 2);
        assert!(report.bytes_per_batch.iter().all(|&b| b > 0));
        assert_eq!(logits.len(), 8);
        assert!(logits.iter().all(|l| l.len() == 1 && l[0].is_finite()));
        assert!(report.max_batch() == 4);
        assert!(report.mean_latency_secs() > 0.0);
        assert!(report.latency_quantile_secs(0.95) >= report.latency_quantile_secs(0.0));
        assert!(report.p99_latency_secs() >= report.p50_latency_secs());
        assert!(report.wall_secs > 0.0);
        assert!(report.sustained_qps() > 0.0);
    }

    #[test]
    fn single_row_serving_answers_every_request() {
        let (report, logits) = serve_n(&FedConfig::plain(), 1, 5, false);
        assert_eq!(report.batches, 5);
        assert_eq!(report.batch_sizes, vec![1; 5]);
        assert_eq!(logits.len(), 5);
    }

    #[test]
    fn bad_rows_are_rejected_without_killing_the_batch() {
        let (report, logits) = serve_n(&FedConfig::plain(), 16, 6, true);
        // The bad row was rejected to its caller; the 6 good riders
        // were all answered — and the rejection is accounted, so
        // requests + rejected equals the 7 submissions.
        assert_eq!(report.requests, 6);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.requests + report.rejected, 7);
        assert_eq!(logits.len(), 6);
    }

    /// Serve `n` pre-enqueued requests after `train_batches` training
    /// steps on the same session; returns (guest, host) serve-phase
    /// bytes_sent.
    fn serve_bytes_after_training(train_batches: usize) -> (u64, u64) {
        let n = 6;
        let store_a = toy_data(n, 3, 11, false);
        let store_b = toy_data(n, 4, 12, true);
        let spec = FedSpec::Glm { out: 1 };
        let all_rows: Vec<usize> = (0..n).collect();
        run_pair(
            &FedConfig::plain(),
            21,
            {
                let store_a = store_a.clone();
                let spec = spec.clone();
                let all_rows = all_rows.clone();
                move |mut sess| {
                    let mut model = PartyAModel::init(&mut sess, &spec, &store_a).unwrap();
                    let batch = store_a.select(&all_rows);
                    for _ in 0..train_batches {
                        model.forward(&mut sess, &batch, true).unwrap();
                        model.backward(&mut sess).unwrap();
                    }
                    serve_party_a(&mut sess, &mut model, &store_a)
                        .unwrap()
                        .bytes_sent
                }
            },
            move |mut sess| {
                let mut model = PartyBModel::init(&mut sess, &spec, &store_b).unwrap();
                let batch = store_b.select(&all_rows);
                for _ in 0..train_batches {
                    model.train_batch(&mut sess, &batch).unwrap();
                }
                let (client, q) = queue(n + 1);
                let pending: Vec<_> = (0..n).map(|r| client.submit(r).unwrap()).collect();
                drop(client);
                let report = serve_party_b(
                    &mut sess,
                    &mut model,
                    &store_b,
                    &ServeConfig { max_batch: 4 },
                    q,
                )
                .unwrap();
                for p in pending {
                    p.wait().unwrap();
                }
                report.bytes_sent
            },
        )
    }

    #[test]
    fn serve_bytes_exclude_training_traffic() {
        // Serve-phase byte counts depend only on message shapes, so a
        // session that trained first must report the same serve bytes
        // as a fresh session serving the identical request sequence —
        // the old lifetime-total accounting folded every training
        // byte in.
        let fresh = serve_bytes_after_training(0);
        let trained = serve_bytes_after_training(2);
        assert!(fresh.0 > 0 && fresh.1 > 0);
        assert_eq!(
            fresh, trained,
            "training traffic leaked into the serve-phase byte report"
        );
    }

    #[test]
    fn host_failure_still_shuts_down_surviving_guests() {
        use crate::models::MultiPartyBModel;
        use crate::session::{multi_party_seed, Role};

        // M = 2: guest 0 dies after model init; the host's first
        // broadcast fails on link 0 and must still send the shutdown
        // sentinel to guest 1, whose serve loop would otherwise block
        // in recv() forever (this test hangs on the old code).
        let rows = 4;
        let cfg = FedConfig::plain();
        let spec = FedSpec::Glm { out: 1 };
        let store_b = toy_data(rows, 3, 75, true);
        let (drop_tx, drop_rx) = std_mpsc::channel();
        let mut host_eps = Vec::new();
        let mut handles = Vec::new();
        for i in 0..2usize {
            let store = toy_data(rows, 2 + i, 70 + i as u64, false);
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            host_eps.push(ep_b);
            let cfg_a = cfg.clone();
            let spec_a = spec.clone();
            let drop_tx = drop_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-guest-{i}"))
                    .stack_size(16 << 20)
                    .spawn(move || {
                        let mut sess = Session::handshake(
                            ep_a,
                            cfg_a,
                            Role::A,
                            multi_party_seed(Role::A, i, 80),
                        )
                        .unwrap();
                        let mut model = PartyAModel::init(&mut sess, &spec_a, &store).unwrap();
                        if i == 0 {
                            drop(sess);
                            drop_tx.send(()).unwrap();
                            None
                        } else {
                            Some(serve_party_a(&mut sess, &mut model, &store).unwrap())
                        }
                    })
                    .unwrap(),
            );
        }
        let mut sessions: Vec<Session> = host_eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, 80))
                    .unwrap()
            })
            .collect();
        let mut model = MultiPartyBModel::init(&mut sessions, &spec, &store_b).unwrap();
        drop_rx.recv().unwrap();
        let (client, q) = queue(2);
        let pending = client.submit(0).unwrap();
        drop(client);
        let err = serve_party_b_multi(
            &mut sessions,
            &mut model,
            &store_b,
            &ServeConfig::default(),
            q,
        )
        .unwrap_err();
        assert!(matches!(err, TransportError::Disconnected));
        assert_eq!(pending.wait().unwrap_err(), ServeError::Closed);
        let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(reports[0].is_none());
        let survivor = reports[1].as_ref().expect("guest 1 served");
        assert_eq!(survivor.batches, 0, "no batch ever completed");
    }

    #[test]
    fn try_submit_applies_backpressure_and_try_wait_polls() {
        let (client, q) = queue(2);
        let a = client.try_submit(0).unwrap();
        let _b = client.try_submit(1).unwrap();
        // Queue capacity 2 is exhausted: admission control rejects
        // instead of blocking.
        assert!(matches!(client.try_submit(2), Err(ServeError::Overloaded)));
        assert!(a.try_wait().is_none(), "still in flight");
        drop(q);
        assert_eq!(a.try_wait().unwrap().unwrap_err(), ServeError::Closed);
    }

    #[test]
    fn guest_refuses_out_of_range_rows_and_bad_sentinels() {
        let cfg = FedConfig::plain();
        let store_a = toy_data(4, 3, 3, false);
        let spec = FedSpec::Glm { out: 1 };
        let (guest_err, _) = run_pair(
            &cfg,
            9,
            {
                let store_a = store_a.clone();
                move |mut sess| {
                    let mut model = PartyAModel::init(&mut sess, &spec, &store_a).unwrap();
                    serve_party_a(&mut sess, &mut model, &store_a).unwrap_err()
                }
            },
            |sess| {
                // Mirror the guest's init without building a model: the
                // MatMul init handshake is one U64 + one Ct exchange.
                sess.ep.send(Msg::U64(3)).unwrap();
                let _ = sess.ep.recv_u64().unwrap();
                let v = bf_tensor::Dense::zeros(3, 1);
                sess.ep
                    .send(Msg::Ct(sess.own_pk.encrypt(&v, &sess.obf)))
                    .unwrap();
                let _ = sess.ep.recv_ct().unwrap();
                // Out-of-range row: the guest must refuse with Setup.
                sess.ep.send(Msg::Support(vec![99])).unwrap();
            },
        );
        assert!(matches!(guest_err, TransportError::Setup(_)));
    }

    #[test]
    fn client_observes_closed_when_server_never_runs() {
        let (client, q) = queue(4);
        let pending = client.submit(0).unwrap();
        drop(q);
        assert_eq!(pending.wait().unwrap_err(), ServeError::Closed);
        assert!(matches!(client.submit(1), Err(ServeError::Closed)));
    }
}
