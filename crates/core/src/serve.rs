//! Federated inference serving: Party B hosts a **micro-batching
//! request queue** that coalesces concurrent single-row prediction
//! requests into one federated forward pass per batch, amortizing the
//! per-pass Paillier work and round trips across every rider (see
//! `docs/SERVING.md` for the architecture and the equivalence
//! contract; `crates/bench/src/bin/serving.rs` measures the
//! throughput win).
//!
//! ```text
//!  clients            Party B (host)                  Party A (guest)
//!  ───────            ──────────────                  ───────────────
//!  predict(row) ──┐
//!  predict(row) ──┼─▶ queue ─▶ coalesce ≤ max_batch
//!  predict(row) ──┘      │
//!                        ▼
//!                 Support(rows)  ────────────────▶  select(rows)
//!                 forward (B half)  ◀── protocol ──▶  forward (A half)
//!                        │
//!                 logits per rider ──▶ reply with latency + batch size
//! ```
//!
//! The wire protocol needs **no new frame kinds**: a request batch is
//! one [`Msg::Support`] carrying the PSI-aligned row indices (both
//! parties index their local feature store with them), followed by the
//! source layers' ordinary forward-pass messages; a [`Msg::U64`]
//! sentinel ([`SERVE_SHUTDOWN`]) ends the serve session.
//!
//! **Equivalence contract**: a served prediction is bit-identical to
//! the in-process prediction forward pass
//! ([`PartyBModel::predict_batch`]) on the same rows under the same
//! session state and batch partition — serving changes *where* the
//! forward runs, never its bytes (`tests/serving_parity.rs` enforces
//! this for 2-party and multi-guest, Plain and Paillier, both
//! transports).

use std::sync::mpsc as std_mpsc;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bf_ml::data::Dataset;
use bf_mpc::transport::{Msg, TransportError, TransportResult};
use bf_tensor::Dense;

use crate::models::{MultiPartyBModel, PartyAModel, PartyBModel};
use crate::session::Session;

/// The `U64` sentinel Party B sends on every link to end a serve
/// session (any other `U64` in serve mode is a protocol fault).
pub const SERVE_SHUTDOWN: u64 = 0x5E12_FD0E;

/// Micro-batching options for the Party B serving loop.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Most riders coalesced into one federated forward pass. `1`
    /// degenerates to sequential single-row serving (the bench
    /// baseline).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 32 }
    }
}

/// Why a prediction request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server is gone (loop exited or transport failed) — the
    /// request will never be answered.
    Closed,
    /// The requested row does not exist in the serving feature store.
    BadRow {
        /// The requested row index.
        row: usize,
        /// The store's row count.
        rows: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "prediction server is gone"),
            ServeError::BadRow { row, rows } => {
                write!(f, "row {row} out of range for a {rows}-row feature store")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered prediction.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// The model's logits row for the requested instance.
    pub logits: Vec<f64>,
    /// Enqueue-to-reply latency of this request.
    pub latency: Duration,
    /// How many riders shared this request's federated forward pass.
    pub batch_rows: usize,
}

/// An in-flight prediction request.
struct Request {
    row: usize,
    enqueued: Instant,
    reply: std_mpsc::SyncSender<Result<Prediction, ServeError>>,
}

/// A client handle onto a serving queue. Cheap to clone; one handle
/// per client thread is the intended shape. The serving loop exits
/// (and shuts the guests down) once every client handle is dropped
/// and the queue has drained.
#[derive(Clone)]
pub struct PredictClient {
    tx: SyncSender<Request>,
}

/// A submitted request whose reply can be awaited later —
/// [`PredictClient::submit`] + [`PendingPrediction::wait`] is the
/// asynchronous form of [`PredictClient::predict`].
pub struct PendingPrediction {
    rx: std_mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PendingPrediction {
    /// Block until the server answers (or dies).
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)?
    }
}

impl PredictClient {
    /// Enqueue a prediction request for `row` of the serving store
    /// without waiting for the answer.
    pub fn submit(&self, row: usize) -> Result<PendingPrediction, ServeError> {
        let (reply, rx) = std_mpsc::sync_channel(1);
        self.tx
            .send(Request {
                row,
                enqueued: Instant::now(),
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        Ok(PendingPrediction { rx })
    }

    /// Request a prediction for `row` and block until it is answered —
    /// the closed-loop client call the bench drives from many threads.
    pub fn predict(&self, row: usize) -> Result<Prediction, ServeError> {
        self.submit(row)?.wait()
    }
}

/// The server side of a serving queue (consumed by
/// [`serve_party_b`] / [`serve_party_b_multi`]).
pub struct RequestQueue {
    rx: Receiver<Request>,
}

/// Create a serving queue of the given capacity: the client half
/// (clonable, one per client thread) and the server half. Submissions
/// beyond `capacity` block — backpressure, bounding server memory.
pub fn queue(capacity: usize) -> (PredictClient, RequestQueue) {
    let (tx, rx) = std_mpsc::sync_channel(capacity.max(1));
    (PredictClient { tx }, RequestQueue { rx })
}

/// What a Party B serving loop produces: request/batch counts plus
/// per-request latency and per-batch traffic accounting.
#[derive(Debug)]
pub struct ServeReport {
    /// Requests answered (excluding bad-row rejections).
    pub requests: u64,
    /// Federated forward passes executed.
    pub batches: u64,
    /// Total bytes this party sent over the serve session (B→A,
    /// summed across links in the multi-guest case).
    pub bytes_sent: u64,
    /// Enqueue-to-reply latency of every answered request, in seconds,
    /// in answer order.
    pub latencies_secs: Vec<f64>,
    /// Rider count of every executed batch, in order.
    pub batch_sizes: Vec<usize>,
    /// Bytes this party sent per executed batch, in order (the
    /// per-batch traffic a rider's upload amortizes over).
    pub bytes_per_batch: Vec<u64>,
}

impl ServeReport {
    /// Mean per-request latency in seconds (0 when nothing served).
    pub fn mean_latency_secs(&self) -> f64 {
        if self.latencies_secs.is_empty() {
            0.0
        } else {
            self.latencies_secs.iter().sum::<f64>() / self.latencies_secs.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-request latency in seconds
    /// (0 when nothing served).
    pub fn latency_quantile_secs(&self, q: f64) -> f64 {
        if self.latencies_secs.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_secs.clone();
        sorted.sort_by(f64::total_cmp);
        let i = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[i]
    }

    /// Largest coalesced batch (0 when nothing served).
    pub fn max_batch(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }
}

/// What a Party A serving loop produces.
#[derive(Debug)]
pub struct ServeGuestReport {
    /// Federated forward passes answered.
    pub batches: u64,
    /// Instance rows predicted across all batches.
    pub rows: u64,
    /// Total bytes this party sent over the serve session (A→B).
    pub bytes_sent: u64,
}

/// Party A's serving loop: answer federated prediction passes against
/// the local feature-store slice until the host sends
/// [`SERVE_SHUTDOWN`]. Works unchanged for two-party and multi-guest
/// serving (each guest serves its own link), over any transport, with
/// a model freshly trained or loaded via [`crate::persist`].
///
/// Out-of-range row indices and unexpected message kinds surface as
/// typed [`TransportError`]s — a guest facing a faulty host refuses
/// the request instead of panicking.
pub fn serve_party_a(
    sess: &mut Session,
    model: &mut PartyAModel,
    store: &Dataset,
) -> TransportResult<ServeGuestReport> {
    let mut batches = 0u64;
    let mut rows_served = 0u64;
    loop {
        match sess.ep.recv()? {
            Msg::Support(rows) => {
                let idx = check_rows(&rows, store.rows())?;
                let batch = store.select(&idx);
                model.predict_batch(sess, &batch)?;
                batches += 1;
                rows_served += rows.len() as u64;
            }
            Msg::U64(v) if v == SERVE_SHUTDOWN => break,
            Msg::U64(v) => {
                return Err(TransportError::Setup(format!(
                    "unexpected U64 {v:#x} in serve mode (not the shutdown sentinel)"
                )))
            }
            other => {
                return Err(TransportError::TypeMismatch {
                    expected: "Support",
                    got: other.kind(),
                })
            }
        }
    }
    Ok(ServeGuestReport {
        batches,
        rows: rows_served,
        bytes_sent: sess.ep.stats().bytes(),
    })
}

/// Validate a request batch's row indices against the store size.
fn check_rows(rows: &[u32], store_rows: usize) -> TransportResult<Vec<usize>> {
    rows.iter()
        .map(|&r| {
            let i = r as usize;
            if i < store_rows {
                Ok(i)
            } else {
                Err(TransportError::Setup(format!(
                    "prediction request for row {i} of a {store_rows}-row store"
                )))
            }
        })
        .collect()
}

/// Party B's serving loop (two-party): drain the request queue,
/// coalescing up to [`ServeConfig::max_batch`] concurrent requests
/// per federated forward pass, until every [`PredictClient`] is
/// dropped and the queue is empty; then shut the guest down.
///
/// Bad-row requests are rejected to their own caller
/// ([`ServeError::BadRow`]) without disturbing the batch they arrived
/// in; a transport failure aborts the loop with the error (pending
/// callers observe [`ServeError::Closed`]).
pub fn serve_party_b(
    sess: &mut Session,
    model: &mut PartyBModel,
    store: &Dataset,
    cfg: &ServeConfig,
    queue: RequestQueue,
) -> TransportResult<ServeReport> {
    let stats = Arc::clone(sess.ep.stats());
    let mut report = run_server_loop(
        cfg,
        store.rows(),
        queue,
        &mut || stats.bytes(),
        &mut |rows| {
            sess.ep.send(Msg::Support(rows.to_vec()))?;
            let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
            let batch = store.select(&idx);
            model.predict_batch(sess, &batch)
        },
    )?;
    sess.ep.send(Msg::U64(SERVE_SHUTDOWN))?;
    report.bytes_sent = stats.bytes();
    Ok(report)
}

/// Party B's serving loop, multi-guest: identical micro-batching, but
/// each batch's row indices are broadcast to every guest link before
/// the fanned-out forward pass, and the shutdown sentinel goes to
/// every link. Each guest runs the unmodified [`serve_party_a`].
pub fn serve_party_b_multi(
    sessions: &mut [Session],
    model: &mut MultiPartyBModel,
    store: &Dataset,
    cfg: &ServeConfig,
    queue: RequestQueue,
) -> TransportResult<ServeReport> {
    if sessions.is_empty() {
        return Err(TransportError::Setup(
            "serve_party_b_multi needs at least one guest session (M = 0)".into(),
        ));
    }
    let stats: Vec<_> = sessions.iter().map(|s| Arc::clone(s.ep.stats())).collect();
    let mut report = run_server_loop(
        cfg,
        store.rows(),
        queue,
        &mut || stats.iter().map(|s| s.bytes()).sum(),
        &mut |rows| {
            for sess in sessions.iter() {
                sess.ep.send(Msg::Support(rows.to_vec()))?;
            }
            let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
            let batch = store.select(&idx);
            model.predict_batch(sessions, &batch)
        },
    )?;
    for sess in sessions.iter() {
        sess.ep.send(Msg::U64(SERVE_SHUTDOWN))?;
    }
    report.bytes_sent = stats.iter().map(|s| s.bytes()).sum();
    Ok(report)
}

/// The shared micro-batching drain: recv one request (blocking), ride
/// up to `max_batch − 1` more already-queued requests on the same
/// pass, predict, reply. `predict_rows` runs the federated forward
/// for one coalesced batch; `bytes_now` samples this party's sent-byte
/// counter for the per-batch traffic attribution.
fn run_server_loop(
    cfg: &ServeConfig,
    store_rows: usize,
    queue: RequestQueue,
    bytes_now: &mut dyn FnMut() -> u64,
    predict_rows: &mut dyn FnMut(&[u32]) -> TransportResult<Dense>,
) -> TransportResult<ServeReport> {
    let mut report = ServeReport {
        requests: 0,
        batches: 0,
        bytes_sent: 0,
        latencies_secs: Vec::new(),
        batch_sizes: Vec::new(),
        bytes_per_batch: Vec::new(),
    };
    let max_batch = cfg.max_batch.max(1);
    loop {
        // Block for the first rider; every request already queued
        // behind it rides the same federated pass.
        let first = match queue.rx.recv() {
            Ok(r) => r,
            Err(_) => break, // every client handle dropped, queue drained
        };
        let mut pending = vec![first];
        while pending.len() < max_batch {
            match queue.rx.try_recv() {
                Ok(r) => pending.push(r),
                Err(_) => break,
            }
        }
        // Reject bad rows to their own callers; the rest still ride.
        // Row indices travel as u32 (the `Support` wire payload), so a
        // row that would truncate is as bad as one past the store —
        // serving the wrong row silently is the one unacceptable
        // outcome.
        let mut riders = Vec::with_capacity(pending.len());
        for req in pending {
            if req.row < store_rows && u32::try_from(req.row).is_ok() {
                riders.push(req);
            } else {
                let _ = req.reply.send(Err(ServeError::BadRow {
                    row: req.row,
                    rows: store_rows,
                }));
            }
        }
        if riders.is_empty() {
            continue;
        }
        let rows: Vec<u32> = riders.iter().map(|r| r.row as u32).collect();
        let bytes_before = bytes_now();
        let logits = predict_rows(&rows)?;
        let batch_bytes = bytes_now() - bytes_before;
        let answered = Instant::now();
        for (k, req) in riders.iter().enumerate() {
            // A rider that gave up waiting is fine to skip.
            let _ = req.reply.send(Ok(Prediction {
                logits: logits.row(k).to_vec(),
                latency: answered.duration_since(req.enqueued),
                batch_rows: rows.len(),
            }));
            report
                .latencies_secs
                .push(answered.duration_since(req.enqueued).as_secs_f64());
        }
        report.requests += rows.len() as u64;
        report.batches += 1;
        report.batch_sizes.push(rows.len());
        report.bytes_per_batch.push(batch_bytes);
    }
    report.bytes_sent = bytes_now();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FedConfig;
    use crate::models::FedSpec;
    use crate::session::run_pair;
    use bf_ml::data::Labels;
    use bf_tensor::Features;
    use rand::SeedableRng;

    fn toy_data(rows: usize, dim: usize, seed: u64, labelled: bool) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let num = bf_tensor::init::uniform(&mut rng, rows, dim, 1.0);
        let labels = labelled.then(|| Labels::Binary((0..rows).map(|r| (r % 2) as f64).collect()));
        Dataset {
            num: Some(Features::Dense(num)),
            cat: None,
            labels,
        }
    }

    /// Serve `n` pre-enqueued requests end to end over the in-process
    /// pair; returns (report, per-request logits).
    fn serve_n(
        cfg: &FedConfig,
        max_batch: usize,
        n: usize,
        extra_bad_row: bool,
    ) -> (ServeReport, Vec<Vec<f64>>) {
        let store_a = toy_data(n, 3, 1, false);
        let store_b = toy_data(n, 4, 2, true);
        let spec = FedSpec::Glm { out: 1 };
        let (_, out) = run_pair(
            cfg,
            5,
            {
                let store_a = store_a.clone();
                let spec = spec.clone();
                move |mut sess| {
                    let mut model = PartyAModel::init(&mut sess, &spec, &store_a).unwrap();
                    serve_party_a(&mut sess, &mut model, &store_a).unwrap()
                }
            },
            move |mut sess| {
                let mut model = PartyBModel::init(&mut sess, &spec, &store_b).unwrap();
                let (client, q) = queue(n + 1);
                let mut pending: Vec<_> = (0..n).map(|r| client.submit(r).unwrap()).collect();
                let bad = extra_bad_row.then(|| client.submit(n + 7).unwrap());
                drop(client);
                let report = serve_party_b(
                    &mut sess,
                    &mut model,
                    &store_b,
                    &ServeConfig { max_batch },
                    q,
                )
                .unwrap();
                if let Some(b) = bad {
                    assert_eq!(
                        b.wait().unwrap_err(),
                        ServeError::BadRow {
                            row: n + 7,
                            rows: n
                        }
                    );
                }
                let logits: Vec<Vec<f64>> = pending
                    .drain(..)
                    .map(|p| p.wait().unwrap().logits)
                    .collect();
                (report, logits)
            },
        );
        out
    }

    #[test]
    fn preenqueued_requests_coalesce_deterministically() {
        let (report, logits) = serve_n(&FedConfig::plain(), 4, 8, false);
        assert_eq!(report.requests, 8);
        assert_eq!(report.batches, 2);
        assert_eq!(report.batch_sizes, vec![4, 4]);
        assert_eq!(report.latencies_secs.len(), 8);
        assert_eq!(report.bytes_per_batch.len(), 2);
        assert!(report.bytes_per_batch.iter().all(|&b| b > 0));
        assert_eq!(logits.len(), 8);
        assert!(logits.iter().all(|l| l.len() == 1 && l[0].is_finite()));
        assert!(report.max_batch() == 4);
        assert!(report.mean_latency_secs() > 0.0);
        assert!(report.latency_quantile_secs(0.95) >= report.latency_quantile_secs(0.0));
    }

    #[test]
    fn single_row_serving_answers_every_request() {
        let (report, logits) = serve_n(&FedConfig::plain(), 1, 5, false);
        assert_eq!(report.batches, 5);
        assert_eq!(report.batch_sizes, vec![1; 5]);
        assert_eq!(logits.len(), 5);
    }

    #[test]
    fn bad_rows_are_rejected_without_killing_the_batch() {
        let (report, logits) = serve_n(&FedConfig::plain(), 16, 6, true);
        // The bad row was rejected to its caller; the 6 good riders
        // were all answered.
        assert_eq!(report.requests, 6);
        assert_eq!(logits.len(), 6);
    }

    #[test]
    fn guest_refuses_out_of_range_rows_and_bad_sentinels() {
        let cfg = FedConfig::plain();
        let store_a = toy_data(4, 3, 3, false);
        let spec = FedSpec::Glm { out: 1 };
        let (guest_err, _) = run_pair(
            &cfg,
            9,
            {
                let store_a = store_a.clone();
                move |mut sess| {
                    let mut model = PartyAModel::init(&mut sess, &spec, &store_a).unwrap();
                    serve_party_a(&mut sess, &mut model, &store_a).unwrap_err()
                }
            },
            |sess| {
                // Mirror the guest's init without building a model: the
                // MatMul init handshake is one U64 + one Ct exchange.
                sess.ep.send(Msg::U64(3)).unwrap();
                let _ = sess.ep.recv_u64().unwrap();
                let v = bf_tensor::Dense::zeros(3, 1);
                sess.ep
                    .send(Msg::Ct(sess.own_pk.encrypt(&v, &sess.obf)))
                    .unwrap();
                let _ = sess.ep.recv_ct().unwrap();
                // Out-of-range row: the guest must refuse with Setup.
                sess.ep.send(Msg::Support(vec![99])).unwrap();
            },
        );
        assert!(matches!(guest_err, TransportError::Setup(_)));
    }

    #[test]
    fn client_observes_closed_when_server_never_runs() {
        let (client, q) = queue(4);
        let pending = client.submit(0).unwrap();
        drop(q);
        assert_eq!(pending.wait().unwrap_err(), ServeError::Closed);
        assert!(matches!(client.submit(1), Err(ServeError::Closed)));
    }
}
