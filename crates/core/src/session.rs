//! Per-party cryptographic session: own key pair, the peer's public
//! key, encryption randomness, the transport endpoint, and a seeded RNG
//! for the secret-sharing masks.
//!
//! A [`Session`] is transport-agnostic: hand [`Session::handshake`] an
//! in-process endpoint (via [`run_pair`]) for single-machine runs, or a
//! TCP endpoint ([`bf_mpc::Endpoint::tcp_connect`] /
//! [`bf_mpc::Endpoint::tcp_accept`]) to run the party as its own
//! process — see `examples/tcp_federated_lr.rs`.

use std::sync::Arc;

use bf_mpc::transport::{Endpoint, Msg, TransportResult};
use bf_paillier::{keygen, keys::plain_keys, Obfuscator, PublicKey, SecretKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Backend, FedConfig};
use crate::engine::StageTimes;

/// Which role this party plays. Party B holds the labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Feature-only party.
    A,
    /// Label-holding party.
    B,
}

/// Derive a party's private seed from the shared run seed.
///
/// Both the in-process harness ([`run_pair`]) and any cross-process
/// runner must use this exact derivation: it is what makes a TCP run
/// reproduce an in-process run coordinate for coordinate (each party's
/// mask RNG stream depends only on `(role, seed)`).
pub fn party_seed(role: Role, seed: u64) -> u64 {
    match role {
        Role::A => seed.wrapping_mul(2).wrapping_add(1),
        Role::B => seed.wrapping_mul(2).wrapping_add(2),
    }
}

/// Derive the private seed for one end of the `link`-th guest link in
/// a multi-guest run (see [`crate::multiparty`]).
///
/// Like [`party_seed`], this derivation is part of the determinism
/// contract: an M-guest TCP deployment (one process per guest) and the
/// in-process harness must both use it so their runs are bit-identical.
/// Link 0 reduces to `party_seed(role, seed)` — an `M = 1` multi-guest
/// run reproduces the two-party run exactly.
pub fn multi_party_seed(role: Role, link: usize, seed: u64) -> u64 {
    party_seed(
        role,
        seed ^ (link as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// One party's protocol session.
pub struct Session {
    /// Protocol configuration (identical on both sides).
    pub cfg: FedConfig,
    /// This party's role.
    pub role: Role,
    /// Own public key.
    pub own_pk: PublicKey,
    /// Own secret key.
    pub own_sk: SecretKey,
    /// Encryption randomness for the own key.
    pub obf: Obfuscator,
    /// The peer's public key (received in the handshake).
    pub peer_pk: PublicKey,
    /// Duplex channel to the peer.
    pub ep: Endpoint,
    /// Mask RNG (each party's masks must be private to it, so the two
    /// sessions use independent seeds).
    pub rng: StdRng,
    /// Per-stage wall-clock attribution (see [`crate::engine`]); the
    /// source layers time themselves into this, the trainers report it.
    pub stages: Arc<StageTimes>,
}

impl Session {
    /// Generate keys and exchange public keys with the peer. `seed` is
    /// this party's *private* seed — derive it with [`party_seed`].
    pub fn handshake(
        ep: Endpoint,
        cfg: FedConfig,
        role: Role,
        seed: u64,
    ) -> TransportResult<Session> {
        // Key generation uses a *separate* RNG stream so the protocol
        // RNG (mask/initialisation draws) is identical across crypto
        // backends — this is what makes the Plain and Paillier runs
        // coordinate-for-coordinate comparable in the lossless tests.
        // It also means the key pair is a pure function of
        // `(backend, frac_bits, seed)`: a later session with the same
        // inputs regenerates the identical keys, which is what lets a
        // persisted model's ciphertext caches (`crate::persist`) be
        // served without shipping key material alongside the model.
        let mut key_rng = StdRng::seed_from_u64(seed ^ 0x5EED_07E7);
        let (own_pk, own_sk) = match cfg.backend {
            Backend::Paillier { key_bits } => keygen(key_bits, cfg.frac_bits, &mut key_rng),
            Backend::Plain => plain_keys(cfg.frac_bits),
        };
        Session::handshake_with_keys(ep, cfg, role, own_pk, own_sk, seed)
    }

    /// [`Session::handshake`] with externally supplied key material —
    /// the production serving path, where the training keys were
    /// persisted ([`bf_paillier::export_secret`] /
    /// [`bf_paillier::export_public`]) instead of being regenerated
    /// from the seed. `seed` still drives the mask RNG and the
    /// encryption-randomness stream, so two runs with the same keys
    /// and seed are bit-identical.
    pub fn handshake_with_keys(
        ep: Endpoint,
        cfg: FedConfig,
        role: Role,
        own_pk: PublicKey,
        own_sk: SecretKey,
        seed: u64,
    ) -> TransportResult<Session> {
        let rng = StdRng::seed_from_u64(seed);
        let obf = Obfuscator::new(&own_pk, cfg.obf_mode, seed ^ 0x0bf);
        ep.send(Msg::Key(own_pk.clone()))?;
        let peer_pk = ep.recv_key()?;
        Ok(Session {
            cfg,
            role,
            own_pk,
            own_sk,
            obf,
            peer_pk,
            ep,
            rng,
            stages: Arc::new(StageTimes::default()),
        })
    }

    /// Capture this link's determinism cursor for a mid-epoch
    /// checkpoint: mask-RNG state, obfuscation draws consumed, and the
    /// traffic counters (see [`crate::persist::LinkCursor`]).
    pub fn capture_cursor(&self) -> crate::persist::LinkCursor {
        crate::persist::LinkCursor {
            rng: self.rng.state(),
            obf_drawn: self.obf.drawn(),
            bytes_sent: self.ep.stats().bytes(),
            msgs_sent: self.ep.stats().msgs(),
        }
    }

    /// Restore a captured cursor into this (freshly handshaken)
    /// session: the mask RNG resumes its exact stream, the obfuscator
    /// fast-forwards to the captured draw position, and the traffic
    /// counters are preloaded so post-resume totals equal an
    /// uninterrupted run's (the re-handshake bytes are deliberately
    /// discarded — they are recovery overhead, not protocol traffic).
    pub fn restore_cursor(&mut self, c: &crate::persist::LinkCursor) {
        self.rng = StdRng::from_state(c.rng);
        self.obf.set_drawn(c.obf_drawn);
        self.ep.stats().preload(c.bytes_sent, c.msgs_sent);
    }

    /// The learning rate as an [`bf_ml::Sgd`] for piecewise updates.
    pub fn sgd(&self) -> bf_ml::Sgd {
        bf_ml::Sgd {
            lr: self.cfg.lr,
            momentum: self.cfg.momentum,
        }
    }

    /// True if this session runs the Plain (identity) backend.
    pub fn is_plain(&self) -> bool {
        matches!(self.cfg.backend, Backend::Plain)
    }

    /// Encrypt an upload under this party's own key in the session's
    /// configured ciphertext layout ([`FedConfig::paillier_mode`]).
    /// Packed layouts fall back to scalar per shape/key, so every
    /// upload site can route through here unconditionally.
    pub fn encrypt_upload(&self, m: &bf_tensor::Dense) -> bf_paillier::CtMat {
        self.own_pk
            .encrypt_mode(m, self.cfg.paillier_mode, &self.obf)
    }

    /// [`Session::encrypt_upload`] with an explicit segment width —
    /// embedding tables pack with `seg = dim` so gathered rows stay
    /// chunk-aligned after concatenation.
    pub fn encrypt_upload_seg(&self, m: &bf_tensor::Dense, seg: usize) -> bf_paillier::CtMat {
        self.own_pk
            .encrypt_mode_seg(m, seg, self.cfg.paillier_mode, &self.obf)
    }
}

/// Spawn a Party A thread and run `f_b` as Party B on the current
/// thread; returns `(A's result, B's result)`. The standard in-process
/// harness for every two-party protocol in this crate; transport
/// failures are impossible here by construction, so they surface as
/// panics rather than `Result`s.
pub fn run_pair<RA, RB>(
    cfg: &FedConfig,
    seed: u64,
    f_a: impl FnOnce(Session) -> RA + Send + 'static,
    f_b: impl FnOnce(Session) -> RB,
) -> (RA, RB)
where
    RA: Send + 'static,
{
    let (ep_a, ep_b) = bf_mpc::channel_pair();
    let cfg_a = cfg.clone();
    let handle = std::thread::Builder::new()
        .name("party-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, seed))
                .expect("in-process handshake");
            f_a(sess)
        })
        .expect("spawn party A");
    let sess_b = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, seed))
        .expect("in-process handshake");
    let rb = f_b(sess_b);
    let ra = handle.join().expect("party A panicked");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_paillier::CtMat;
    use bf_tensor::Dense;

    #[test]
    fn handshake_exchanges_keys() {
        // B encrypts under its own key; A operates homomorphically on
        // the ciphertext (no secret key needed) and returns it; B
        // decrypts the masked value — a miniature HE2SS round.
        let cfg = FedConfig::paillier_test();
        run_pair(
            &cfg,
            7,
            |sess| {
                let ct: CtMat = sess.ep.recv_ct().unwrap();
                let phi = Dense::from_vec(1, 2, vec![10.0, -20.0]);
                sess.ep
                    .send(bf_mpc::Msg::Ct(sess.peer_pk.sub_plain(&ct, &phi)))
                    .unwrap();
            },
            |sess| {
                let m = Dense::from_vec(1, 2, vec![1.5, -2.5]);
                sess.ep
                    .send(bf_mpc::Msg::Ct(sess.own_pk.encrypt(&m, &sess.obf)))
                    .unwrap();
                let masked = sess.own_sk.decrypt(&sess.ep.recv_ct().unwrap());
                let want = Dense::from_vec(1, 2, vec![1.5 - 10.0, -2.5 + 20.0]);
                assert!(masked.approx_eq(&want, 1e-5));
            },
        );
    }

    #[test]
    fn handshake_with_persisted_keys_interoperates() {
        // Round-trip the key material through the serialized form (the
        // production persistence path) and handshake with it: the
        // session must decrypt what the peer encrypts under its pk.
        use bf_paillier::{export_public, export_secret, import_public, import_secret};
        let cfg = FedConfig::paillier_test();
        let mut key_rng = StdRng::seed_from_u64(7 ^ 0x5EED_07E7);
        let (pk, sk) = bf_paillier::keygen(256, cfg.frac_bits, &mut key_rng);
        let pk = import_public(&export_public(&pk)).unwrap();
        let sk = import_secret(&export_secret(&sk)).unwrap();
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        let cfg_a = cfg.clone();
        let peer = std::thread::spawn(move || {
            let sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, 7)).unwrap();
            // What the peer observes of B's identity: the key B loaded.
            export_public(&sess.peer_pk)
        });
        let want_pk = export_public(&pk);
        let sess = Session::handshake_with_keys(ep_b, cfg, Role::B, pk, sk, party_seed(Role::B, 7))
            .unwrap();
        // The reloaded pair must still work as a pair (the session obf
        // stream was rebuilt for the imported public key).
        let m = Dense::from_vec(1, 2, vec![2.5, -4.0]);
        let ct = sess.own_pk.encrypt(&m, &sess.obf);
        assert!(sess.own_sk.decrypt(&ct).approx_eq(&m, 1e-5));
        assert_eq!(peer.join().unwrap(), want_pk);
    }

    #[test]
    fn plain_backend_handshake() {
        let cfg = FedConfig::plain();
        run_pair(
            &cfg,
            1,
            |sess| {
                assert!(sess.is_plain());
                assert!(sess.peer_pk.is_plain());
            },
            |sess| assert!(sess.is_plain()),
        );
    }

    #[test]
    fn party_seeds_are_distinct_and_stable() {
        assert_ne!(party_seed(Role::A, 9), party_seed(Role::B, 9));
        assert_eq!(party_seed(Role::A, 9), 19);
        assert_eq!(party_seed(Role::B, 9), 20);
    }

    #[test]
    fn multi_party_seed_link0_matches_two_party() {
        for seed in [0u64, 9, u64::MAX] {
            for role in [Role::A, Role::B] {
                assert_eq!(multi_party_seed(role, 0, seed), party_seed(role, seed));
            }
        }
        // Distinct links get distinct streams for both roles.
        let mut seen = std::collections::HashSet::new();
        for link in 0..8 {
            for role in [Role::A, Role::B] {
                assert!(seen.insert(multi_party_seed(role, link, 9)));
            }
        }
    }
}
