//! The Embed-MatMul federated source layer (paper Figure 7).
//!
//! Categorical features require an embedding lookup — impossible over
//! outsourced data, and label/feature-leaking with local bottom tables.
//! BlindFL secret-shares both the embedding table (`Q_⋄ = S_⋄ + T_⋄`)
//! and the projection (`W_⋄ = U_⋄ + V_⋄`):
//!
//! * the owner performs the lookup over the **encrypted** peer piece
//!   `⟦T_⋄⟧` — categorical indices never leave their owner — and the
//!   result is HE2SS-split into `⟨ψ_⋄, E_⋄ − ψ_⋄⟩`,
//! * the projection runs as two invocations of the shared MatMul
//!   forward over the embedding *shares* (Figure 7, lines 8–11),
//! * the backward pass secret-shares `∇W_⋄ = E_⋄ᵀ∇Z` and scatters
//!   `⟦∇Q_⋄⟧ = lkup_bw(⟦∇E_⋄⟧, X_⋄)` over ciphertexts, touching only
//!   the batch's embedding-row support,
//! * all four weight caches (`⟦U_A⟧, ⟦V_A⟧, ⟦U_B⟧, ⟦V_B⟧`) and both
//!   table caches (`⟦T_A⟧, ⟦T_B⟧`) are refreshed with freshly encrypted
//!   deltas each step, keeping plaintext pieces and ciphertext copies
//!   in lock-step.

use bf_mpc::convert::{he2ss_holder, he2ss_peer};
use bf_mpc::shares::random_mask;
use bf_mpc::transport::{Msg, TransportResult};
use bf_paillier::CtMat;
use bf_tensor::{CatBlock, Dense, Features};

use crate::engine::Stage;
use crate::session::{Role, Session};
use crate::source::matmul::shared_matmul_fw;
use crate::source::step_piece;

/// One party's half of an Embed-MatMul federated source layer.
pub struct EmbedSource {
    /// `S_own`: this party's piece of its own embedding table
    /// (`vocab_own × dim`).
    s_own: Dense,
    /// `T_peer`: this party's piece of the *peer's* table.
    t_peer: Dense,
    /// `⟦T_own⟧` under the peer's key (lookup target).
    enc_t_own: CtMat,
    /// `U_own`: this party's piece of its own projection
    /// (`fields_own·dim × out`).
    u_own: Dense,
    /// `V_peer`: this party's piece of the peer's projection.
    v_peer: Dense,
    /// `⟦V_own⟧` under the peer's key.
    enc_v_own: CtMat,
    /// `⟦U_peer⟧` under the peer's key — needed because the stage-2
    /// matmul runs over the *peer's* weights with *this* party holding
    /// the peer-embedding share.
    enc_u_peer: CtMat,
    vel_s: Dense,
    vel_t_peer: Dense,
    vel_u: Dense,
    vel_v_peer: Dense,
    dim: usize,
    out: usize,
    cached_x: Option<CatBlock>,
    /// `ψ_own` — this party's share of its own embeddings.
    cached_psi: Option<Dense>,
    /// `E_peer − ψ_peer` — this party's share of the peer's embeddings.
    cached_e_peer: Option<Dense>,
}

/// Plaintext embedding lookup: `rows × fields·dim`.
pub(crate) fn lookup(table: &Dense, x: &CatBlock) -> Dense {
    let dim = table.cols();
    let mut e = Dense::zeros(x.rows(), x.fields() * dim);
    for r in 0..x.rows() {
        for (f, &g) in x.row(r).iter().enumerate() {
            e.row_mut(r)[f * dim..(f + 1) * dim].copy_from_slice(table.row(g as usize));
        }
    }
    e
}

impl EmbedSource {
    /// Joint initialisation (Figure 7, lines 1–4).
    pub fn init(
        sess: &mut Session,
        vocab_own: usize,
        fields_own: usize,
        dim: usize,
        out: usize,
    ) -> TransportResult<EmbedSource> {
        // Exchange table dimensions.
        sess.ep.send(Msg::U64(vocab_own as u64))?;
        sess.ep.send(Msg::U64(fields_own as u64))?;
        let vocab_peer = sess.ep.recv_u64()? as usize;
        let fields_peer = sess.ep.recv_u64()? as usize;

        let d_own = fields_own * dim;
        let d_peer = fields_peer * dim;
        let s_own = bf_tensor::init::uniform(&mut sess.rng, vocab_own, dim, 0.05);
        let t_peer = random_mask(&mut sess.rng, vocab_peer, dim, 0.025);
        let u_own = bf_tensor::init::xavier(&mut sess.rng, d_own, out);
        let vbound = (6.0 / (d_peer + out) as f64).sqrt() * 0.5;
        let v_peer = random_mask(&mut sess.rng, d_peer, out, vbound);

        // Send our three encrypted pieces (⟦T_peer⟧, ⟦V_peer⟧, ⟦U_own⟧,
        // all under our own key); receive the symmetric three. The
        // table packs with seg = dim so lkup's row concatenation stays
        // chunk-aligned; ⟦V⟧/⟦U⟧ stay scalar — the projection backward
        // transposes them (`enc_v_own.transpose()`, `matmul_ct_wt`),
        // which contracts over the packed axis.
        sess.ep
            .send(Msg::Ct(sess.encrypt_upload_seg(&t_peer, dim)))?;
        sess.ep
            .send(Msg::Ct(sess.own_pk.encrypt(&v_peer, &sess.obf)))?;
        sess.ep
            .send(Msg::Ct(sess.own_pk.encrypt(&u_own, &sess.obf)))?;
        let enc_t_own = sess.ep.recv_ct()?;
        let enc_v_own = sess.ep.recv_ct()?;
        let enc_u_peer = sess.ep.recv_ct()?;

        Ok(EmbedSource {
            vel_s: Dense::zeros(vocab_own, dim),
            vel_t_peer: Dense::zeros(vocab_peer, dim),
            vel_u: Dense::zeros(d_own, out),
            vel_v_peer: Dense::zeros(d_peer, out),
            s_own,
            t_peer,
            enc_t_own,
            u_own,
            v_peer,
            enc_v_own,
            enc_u_peer,
            dim,
            out,
            cached_x: None,
            cached_psi: None,
            cached_e_peer: None,
        })
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out
    }

    /// This party's `S` table piece (inspection — Figure 11 plots it).
    pub fn s_own(&self) -> &Dense {
        &self.s_own
    }

    /// This party's piece of the peer's table (inspection/tests).
    pub fn t_peer(&self) -> &Dense {
        &self.t_peer
    }

    /// This party's `U` projection piece (inspection/tests).
    pub fn u_own(&self) -> &Dense {
        &self.u_own
    }

    /// This party's piece of the peer's projection (inspection/tests).
    pub fn v_peer(&self) -> &Dense {
        &self.v_peer
    }

    /// Persist the layer state (see `docs/SERVING.md` §persistence):
    /// all four plaintext pieces and their momentum buffers, plus the
    /// three ciphertext caches (`⟦T_own⟧`, `⟦V_own⟧`, `⟦U_peer⟧`).
    /// Per-batch caches are transient and excluded.
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        w.u64(self.dim as u64);
        w.u64(self.out as u64);
        w.dense(&self.s_own);
        w.dense(&self.vel_s);
        w.dense(&self.t_peer);
        w.dense(&self.vel_t_peer);
        w.dense(&self.u_own);
        w.dense(&self.vel_u);
        w.dense(&self.v_peer);
        w.dense(&self.vel_v_peer);
        w.ctmat(&self.enc_t_own);
        w.ctmat(&self.enc_v_own);
        w.ctmat(&self.enc_u_peer);
    }

    /// Rebuild the layer from persisted state, validating shapes.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
    ) -> crate::persist::PersistResult<EmbedSource> {
        use crate::persist::{check_vel, PersistError};
        let dim = r.len_u64()?;
        let out = r.len_u64()?;
        let s_own = r.dense()?;
        let vel_s = r.dense()?;
        let t_peer = r.dense()?;
        let vel_t_peer = r.dense()?;
        let u_own = r.dense()?;
        let vel_u = r.dense()?;
        let v_peer = r.dense()?;
        let vel_v_peer = r.dense()?;
        let enc_t_own = r.ctmat()?;
        let enc_v_own = r.ctmat()?;
        let enc_u_peer = r.ctmat()?;
        check_vel(&s_own, &vel_s, "EmbedSource S")?;
        check_vel(&t_peer, &vel_t_peer, "EmbedSource T")?;
        check_vel(&u_own, &vel_u, "EmbedSource U")?;
        check_vel(&v_peer, &vel_v_peer, "EmbedSource V")?;
        let malformed = |why: String| Err(PersistError::Malformed(why));
        if s_own.cols() != dim || t_peer.cols() != dim {
            return malformed(format!(
                "EmbedSource: table widths {} / {} do not match dim = {dim}",
                s_own.cols(),
                t_peer.cols()
            ));
        }
        if u_own.cols() != out || v_peer.cols() != out {
            return malformed(format!(
                "EmbedSource: projection widths {} / {} do not match out = {out}",
                u_own.cols(),
                v_peer.cols()
            ));
        }
        if enc_t_own.shape() != s_own.shape() {
            return malformed(format!(
                "EmbedSource: ⟦T_own⟧ shape {:?} does not match S_own shape {:?}",
                enc_t_own.shape(),
                s_own.shape()
            ));
        }
        if enc_v_own.shape() != u_own.shape() {
            return malformed(format!(
                "EmbedSource: ⟦V_own⟧ shape {:?} does not match U_own shape {:?}",
                enc_v_own.shape(),
                u_own.shape()
            ));
        }
        if enc_u_peer.shape() != v_peer.shape() {
            return malformed(format!(
                "EmbedSource: ⟦U_peer⟧ shape {:?} does not match V_peer shape {:?}",
                enc_u_peer.shape(),
                v_peer.shape()
            ));
        }
        Ok(EmbedSource {
            s_own,
            t_peer,
            enc_t_own,
            u_own,
            v_peer,
            enc_v_own,
            enc_u_peer,
            vel_s,
            vel_t_peer,
            vel_u,
            vel_v_peer,
            dim,
            out,
            cached_x: None,
            cached_psi: None,
            cached_e_peer: None,
        })
    }

    /// Forward propagation (Figure 7, lines 5–11): returns this party's
    /// share `Z'_⋄ = Z'_{1,⋄} + Z'_{2,⋄}`.
    pub fn forward(
        &mut self,
        sess: &mut Session,
        x: &CatBlock,
        train: bool,
    ) -> TransportResult<Dense> {
        let _t = sess.stages.timer(Stage::FedEmbed);
        // Stage 1 — secret-shared embeddings (lines 5–7): lookup over
        // the encrypted peer piece, HE2SS, add the plaintext piece.
        let lk = sess.peer_pk.lkup(&self.enc_t_own, x);
        let eps = he2ss_holder(
            &sess.ep,
            &sess.peer_pk,
            &lk,
            sess.cfg.he_mask,
            &mut sess.rng,
        )?;
        let e_peer = he2ss_peer(&sess.ep, &sess.own_sk)?; // E_peer − ψ_peer
        let psi = eps.add(&lookup(&self.s_own, x)); // ψ_own

        // Stage 2 — two shared matmuls (lines 8–9).
        let z1 = shared_matmul_fw(
            sess,
            &Features::Dense(psi.clone()),
            &self.u_own,
            &self.enc_v_own,
        )?;
        let z2 = shared_matmul_fw(
            sess,
            &Features::Dense(e_peer.clone()),
            &self.v_peer,
            &self.enc_u_peer,
        )?;
        let z_own = z1.add(&z2);

        if train {
            self.cached_x = Some(x.clone());
            self.cached_psi = Some(psi);
            self.cached_e_peer = Some(e_peer);
        }
        Ok(z_own)
    }

    /// Backward propagation, Party B side (Figure 7, lines 12–26).
    pub fn backward_b(&mut self, sess: &mut Session, grad_z: &Dense) -> TransportResult<()> {
        assert_eq!(sess.role, Role::B, "backward_b on Party A");
        let x = self.cached_x.take().expect("backward before forward");
        let psi = self.cached_psi.take().expect("backward before forward");
        let e_peer = self.cached_e_peer.take().expect("backward before forward");

        // Line 12: send ⟦∇Z⟧ and ⟦∇Z·V_Aᵀ⟧ (V_A is B's piece of A's W).
        let (ct_gz, ct_gzva) = {
            let _t = sess.stages.timer(Stage::EncryptUpload);
            let gzva = grad_z.matmul_t(&self.v_peer);
            (
                sess.own_pk.encrypt(grad_z, &sess.obf),
                sess.own_pk.encrypt_at_scale(&gzva, 2, &sess.obf),
            )
        };
        sess.ep.send(Msg::Ct(ct_gz))?;
        sess.ep.send(Msg::Ct(ct_gzva))?;
        let _t = sess.stages.timer(Stage::DecryptUpdate);

        // ⟦∇E_B⟧ must use the *forward-pass* weights, so compute it now,
        // before any weight piece or cache is updated below:
        // ⟦∇E_B⟧_A = ∇Z·U_Bᵀ (plain) + ∇Z·⟦V_Bᵀ⟧ (homomorphic).
        let t1 = sess.peer_pk.matmul(
            &Features::Dense(grad_z.clone()),
            &self.enc_v_own.transpose(),
        );
        let grad_e_ct = sess.peer_pk.add_plain(&t1, &grad_z.matmul_t(&self.u_own));

        // ∇W_A (lines 13–14): receive A's HE2SS piece, add our local
        // part (E_A − ψ_A)ᵀ∇Z, update V_A, refresh ⟦V_A⟧ at A.
        let d_a = e_peer.cols();
        let piece1 = he2ss_peer(&sess.ep, &sess.own_sk)?; // ψ_Aᵀ∇Z − φ
        let own_part = e_peer.t_matmul(grad_z);
        let piece_wa = piece1.add(&own_part); // ∇W_A − φ
        let rows_a: Vec<usize> = (0..d_a).collect();
        let delta = step_piece(
            &mut self.v_peer,
            &mut self.vel_v_peer,
            &piece_wa,
            &rows_a,
            sess.cfg.lr,
            sess.cfg.momentum,
        );
        sess.ep
            .send(Msg::Ct(sess.own_pk.encrypt(&delta, &sess.obf)))?;

        // ∇W_B (lines 15–16): A supplies ⟨(E_B−ψ_B)ᵀ∇Z − ξ⟩; we add
        // ψ_Bᵀ∇Z, update U_B, refresh ⟦U_B⟧ at A.
        let piece2 = he2ss_peer(&sess.ep, &sess.own_sk)?;
        let piece_wb = piece2.add(&psi.t_matmul(grad_z)); // ∇W_B − ξ
        let rows_b: Vec<usize> = (0..piece_wb.rows()).collect();
        let delta = step_piece(
            &mut self.u_own,
            &mut self.vel_u,
            &piece_wb,
            &rows_b,
            sess.cfg.lr,
            sess.cfg.momentum,
        );
        sess.ep
            .send(Msg::Ct(sess.own_pk.encrypt(&delta, &sess.obf)))?;

        // A's refreshes of our caches: ⟦V_B⟧ (A updated V_B by ξ) and
        // ⟦U_A⟧ (A updated U_A by φ).
        let delta_vb = sess.ep.recv_ct()?;
        let all_vb: Vec<usize> = (0..self.enc_v_own.rows()).collect();
        sess.peer_pk
            .rows_add_assign(&mut self.enc_v_own, &all_vb, &delta_vb);
        let delta_ua = sess.ep.recv_ct()?;
        let all_ua: Vec<usize> = (0..self.enc_u_peer.rows()).collect();
        sess.peer_pk
            .rows_add_assign(&mut self.enc_u_peer, &all_ua, &delta_ua);

        // Embed part, own table (lines 21–26, B's half), using the
        // pre-update ⟦∇E_B⟧ computed above.
        let support_b = x.support();
        let grad_q_ct = sess.peer_pk.lkup_bw(&grad_e_ct, &x, &support_b, self.dim);
        sess.ep.send(Msg::Support(support_b.clone()))?;
        let rho = he2ss_holder(
            &sess.ep,
            &sess.peer_pk,
            &grad_q_ct,
            sess.cfg.he_mask,
            &mut sess.rng,
        )?;
        // Update S_B by ρ_B (lazy momentum on the support rows).
        let rows: Vec<usize> = support_b.iter().map(|&c| c as usize).collect();
        let _ = step_piece(
            &mut self.s_own,
            &mut self.vel_s,
            &rho,
            &rows,
            sess.cfg.lr,
            sess.cfg.momentum,
        );
        // A updates T_B and sends the encrypted delta for our ⟦T_B⟧.
        let delta_tb = sess.ep.recv_ct()?;
        sess.peer_pk
            .rows_add_assign(&mut self.enc_t_own, &rows, &delta_tb);

        // Embed part, peer table: we hold T_A — receive A's support and
        // the HE2SS piece of ∇Q_A, update T_A, refresh A's ⟦T_A⟧.
        let support_a = sess.ep.recv_support()?;
        let piece_qa = he2ss_peer(&sess.ep, &sess.own_sk)?; // ∇Q_A − ρ_A
        let rows_a: Vec<usize> = support_a.iter().map(|&c| c as usize).collect();
        let delta = step_piece(
            &mut self.t_peer,
            &mut self.vel_t_peer,
            &piece_qa,
            &rows_a,
            sess.cfg.lr,
            sess.cfg.momentum,
        );
        // Matches the packed (seg = dim) layout of A's ⟦T_A⟧ cache.
        sess.ep
            .send(Msg::Ct(sess.encrypt_upload_seg(&delta, self.dim)))?;
        Ok(())
    }

    /// Backward propagation, Party A side (Figure 7, lines 12–26).
    pub fn backward_a(&mut self, sess: &mut Session) -> TransportResult<()> {
        assert_eq!(sess.role, Role::A, "backward_a on Party B");
        let _t = sess.stages.timer(Stage::DecryptUpdate);
        let x = self.cached_x.take().expect("backward before forward");
        let psi = self.cached_psi.take().expect("backward before forward");
        let e_peer = self.cached_e_peer.take().expect("backward before forward");

        let ct_gz = sess.ep.recv_ct()?;
        let ct_gzva = sess.ep.recv_ct()?;

        // ⟦∇E_A⟧ must use the forward-pass weights: compute the U_A
        // part now, before φ updates U_A below.
        // ⟦∇E_A⟧_B = ⟦∇Z⟧·U_Aᵀ + ⟦∇Z·V_Aᵀ⟧ (both under B's key).
        let t1 = sess.peer_pk.matmul_ct_wt(&ct_gz, &self.u_own);
        let grad_e_ct = sess.peer_pk.add(&t1, &ct_gzva);

        // ∇W_A (line 13): ⟦ψ_Aᵀ∇Z⟧ on the full projection rows, HE2SS.
        let d_a = psi.cols();
        let full_a: Vec<u32> = (0..d_a as u32).collect();
        let prod = sess
            .peer_pk
            .t_matmul_support(&Features::Dense(psi), &ct_gz, &full_a);
        let phi = he2ss_holder(
            &sess.ep,
            &sess.peer_pk,
            &prod,
            sess.cfg.he_mask,
            &mut sess.rng,
        )?;
        // Update U_A by φ and remember the delta for B's ⟦U_A⟧ cache.
        let rows_a: Vec<usize> = (0..d_a).collect();
        let delta_ua = step_piece(
            &mut self.u_own,
            &mut self.vel_u,
            &phi,
            &rows_a,
            sess.cfg.lr,
            sess.cfg.momentum,
        );

        // ∇W_B (line 15): ⟦(E_B−ψ_B)ᵀ∇Z⟧, HE2SS; update V_B by ξ.
        let d_b = e_peer.cols();
        let full_b: Vec<u32> = (0..d_b as u32).collect();
        let prod = sess
            .peer_pk
            .t_matmul_support(&Features::Dense(e_peer), &ct_gz, &full_b);
        let xi = he2ss_holder(
            &sess.ep,
            &sess.peer_pk,
            &prod,
            sess.cfg.he_mask,
            &mut sess.rng,
        )?;
        let rows_b: Vec<usize> = (0..d_b).collect();
        let delta_vb = step_piece(
            &mut self.v_peer,
            &mut self.vel_v_peer,
            &xi,
            &rows_b,
            sess.cfg.lr,
            sess.cfg.momentum,
        );

        // Receive B's refreshes for our caches (⟦V_A⟧ then ⟦U_B⟧)...
        let delta_va = sess.ep.recv_ct()?;
        let all_va: Vec<usize> = (0..self.enc_v_own.rows()).collect();
        sess.peer_pk
            .rows_add_assign(&mut self.enc_v_own, &all_va, &delta_va);
        let delta_ub = sess.ep.recv_ct()?;
        let all_ub: Vec<usize> = (0..self.enc_u_peer.rows()).collect();
        sess.peer_pk
            .rows_add_assign(&mut self.enc_u_peer, &all_ub, &delta_ub);
        // ...and send ours (⟦V_B⟧ at B, then ⟦U_A⟧ at B).
        sess.ep
            .send(Msg::Ct(sess.own_pk.encrypt(&delta_vb, &sess.obf)))?;
        sess.ep
            .send(Msg::Ct(sess.own_pk.encrypt(&delta_ua, &sess.obf)))?;

        // Embed part, peer table (B's table): receive support + piece,
        // update T_B, refresh B's ⟦T_B⟧.
        let support_b = sess.ep.recv_support()?;
        let piece_qb = he2ss_peer(&sess.ep, &sess.own_sk)?; // ∇Q_B − ρ_B
        let rows: Vec<usize> = support_b.iter().map(|&c| c as usize).collect();
        let delta = step_piece(
            &mut self.t_peer,
            &mut self.vel_t_peer,
            &piece_qb,
            &rows,
            sess.cfg.lr,
            sess.cfg.momentum,
        );
        // Matches the packed (seg = dim) layout of B's ⟦T_B⟧ cache.
        sess.ep
            .send(Msg::Ct(sess.encrypt_upload_seg(&delta, self.dim)))?;

        // Embed part, own table (line 21 for A), using the pre-update
        // ⟦∇E_A⟧ computed above.
        let support_a = x.support();
        let grad_q_ct = sess.peer_pk.lkup_bw(&grad_e_ct, &x, &support_a, self.dim);
        sess.ep.send(Msg::Support(support_a.clone()))?;
        let rho = he2ss_holder(
            &sess.ep,
            &sess.peer_pk,
            &grad_q_ct,
            sess.cfg.he_mask,
            &mut sess.rng,
        )?;
        let rows: Vec<usize> = support_a.iter().map(|&c| c as usize).collect();
        let _ = step_piece(
            &mut self.s_own,
            &mut self.vel_s,
            &rho,
            &rows,
            sess.cfg.lr,
            sess.cfg.momentum,
        );
        // B updates T_A and refreshes our ⟦T_A⟧.
        let delta_ta = sess.ep.recv_ct()?;
        sess.peer_pk
            .rows_add_assign(&mut self.enc_t_own, &rows, &delta_ta);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FedConfig;
    use crate::session::run_pair;
    use crate::source::matmul::{aggregate_a, aggregate_b};
    use bf_ml::layers::Embedding;
    use bf_ml::Sgd;
    use rand::Rng;
    use rand::SeedableRng;

    fn cat_block(rows: usize, vocabs: &[u32], seed: u64) -> CatBlock {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let local: Vec<u32> = (0..rows * vocabs.len())
            .map(|i| rng.random_range(0..vocabs[i % vocabs.len()]))
            .collect();
        CatBlock::from_local(rows, vocabs, local)
    }

    fn roundtrip(
        cfg: &FedConfig,
        x_a: CatBlock,
        x_b: CatBlock,
        dim: usize,
        out: usize,
        grad_z: Option<Dense>,
        steps: usize,
    ) -> (EmbedSource, EmbedSource, Dense) {
        let gz_a = grad_z.clone();
        let xa2 = x_a.clone();
        let xb2 = x_b.clone();
        let (a, (b, z)) = run_pair(
            cfg,
            123,
            move |mut sess| {
                let mut layer =
                    EmbedSource::init(&mut sess, xa2.vocab(), xa2.fields(), dim, out).unwrap();
                for _ in 0..steps {
                    let z = layer.forward(&mut sess, &xa2, gz_a.is_some()).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    if gz_a.is_some() {
                        layer.backward_a(&mut sess).unwrap();
                    }
                }
                let z = layer.forward(&mut sess, &xa2, false).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer
            },
            move |mut sess| {
                let mut layer =
                    EmbedSource::init(&mut sess, xb2.vocab(), xb2.fields(), dim, out).unwrap();
                for _ in 0..steps {
                    let z_own = layer.forward(&mut sess, &xb2, grad_z.is_some()).unwrap();
                    let _ = aggregate_b(&sess, z_own).unwrap();
                    if let Some(g) = &grad_z {
                        layer.backward_b(&mut sess, g).unwrap();
                    }
                }
                let z_own = layer.forward(&mut sess, &xb2, false).unwrap();
                let z = aggregate_b(&sess, z_own).unwrap();
                (layer, z)
            },
        );
        (a, b, z)
    }

    /// Reference: plaintext embedding + matmul on the reconstructed
    /// tables/weights.
    fn reference_z(a: &EmbedSource, b: &EmbedSource, x_a: &CatBlock, x_b: &CatBlock) -> Dense {
        let q_a = a.s_own().add(b.t_peer());
        let q_b = b.s_own().add(a.t_peer());
        let w_a = a.u_own().add(b.v_peer());
        let w_b = b.u_own().add(a.v_peer());
        let e_a = lookup(&q_a, x_a);
        let e_b = lookup(&q_b, x_b);
        e_a.matmul(&w_a).add(&e_b.matmul(&w_b))
    }

    #[test]
    fn forward_is_lossless_paillier() {
        let cfg = FedConfig::paillier_test();
        let x_a = cat_block(3, &[4, 3], 1);
        let x_b = cat_block(3, &[5], 2);
        let (a, b, z) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 2, 2, None, 1);
        let want = reference_z(&a, &b, &x_a, &x_b);
        assert!(
            z.approx_eq(&want, 1e-3),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn forward_is_lossless_plain() {
        let cfg = FedConfig::plain();
        let x_a = cat_block(4, &[6, 4], 3);
        let x_b = cat_block(4, &[8, 3], 4);
        let (a, b, z) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 3, 2, None, 1);
        let want = reference_z(&a, &b, &x_a, &x_b);
        assert!(
            z.approx_eq(&want, 1e-4),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn backward_keeps_shares_synchronized() {
        // After training steps, a fresh forward must equal the
        // plaintext forward on the reconstructed parameters — i.e. all
        // six ciphertext caches track their plaintext twins.
        let cfg = FedConfig::paillier_test();
        let x_a = cat_block(3, &[4], 5);
        let x_b = cat_block(3, &[3, 3], 6);
        let grad_z = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            bf_tensor::init::uniform(&mut rng, 3, 2, 0.1)
        };
        let (a, b, z) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 2, 2, Some(grad_z), 3);
        let want = reference_z(&a, &b, &x_a, &x_b);
        assert!(
            z.approx_eq(&want, 1e-2),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn backward_matches_plaintext_embedding_update() {
        // One federated step equals plaintext Embedding/LinearF updates
        // on the reconstructed parameters (Party A's table and weights).
        let cfg = FedConfig::plain();
        let x_a = cat_block(4, &[5, 3], 8);
        let x_b = cat_block(4, &[4], 9);
        let grad_z = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(10);
            bf_tensor::init::uniform(&mut rng, 4, 2, 0.2)
        };

        let (a0, b0, _) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 2, 2, None, 1);
        let (a1, b1, _) = roundtrip(
            &cfg,
            x_a.clone(),
            x_b.clone(),
            2,
            2,
            Some(grad_z.clone()),
            1,
        );

        let q_a0 = a0.s_own().add(b0.t_peer());
        let w_a0 = a0.u_own().add(b0.v_peer());
        let opt = Sgd {
            lr: cfg.lr,
            momentum: cfg.momentum,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(&mut rng, q_a0.rows(), 2);
        emb.table = q_a0.clone();
        let e_a = emb.forward(&x_a);
        let grad_e = grad_z.matmul_t(&w_a0); // ∇E_A = ∇Z · W_Aᵀ
        emb.backward(&grad_e);
        emb.step(&opt);
        let mut lin = bf_ml::layers::LinearF::from_weights(w_a0.clone());
        lin.forward(&Features::Dense(e_a));
        lin.backward(&grad_z);
        lin.step(&opt);

        let q_a1 = a1.s_own().add(b1.t_peer());
        let w_a1 = a1.u_own().add(b1.v_peer());
        assert!(
            q_a1.approx_eq(&emb.table, 1e-6),
            "Q_A err {}",
            q_a1.sub(&emb.table).max_abs()
        );
        assert!(
            w_a1.approx_eq(&lin.w, 1e-6),
            "W_A err {}",
            w_a1.sub(&lin.w).max_abs()
        );
    }
}
