//! The MatMul federated source layer (paper Figure 6).
//!
//! Weights are secret-shared as `W_⋄ = U_⋄ + V_⋄`: `U_⋄` lives at the
//! owner, `V_⋄` at the peer, and the owner additionally caches the
//! *encrypted* peer piece `⟦V_⋄⟧` (under the peer's key) so the forward
//! pass costs one HE2SS round instead of an extra communication round.
//!
//! **Forward** (symmetric): each party computes `⟦X_⋄·V_⋄⟧` over the
//! cached encrypted piece, splits it via HE2SS into `⟨ε_⋄, X_⋄V_⋄−ε_⋄⟩`,
//! and assembles `Z'_⋄ = X_⋄U_⋄ + ε_⋄ + (X_~⋄V_~⋄ − ε_~⋄)`. The masks
//! cancel in `Z = Z'_A + Z'_B = X_A·W_A + X_B·W_B` — lossless.
//!
//! **Backward**: Party B encrypts `∇Z`; Party A computes
//! `⟦∇W_A⟧ = X_Aᵀ⟦∇Z⟧` *on the batch's feature support only* (the
//! sparse-efficiency core of Table 5) and HE2SS-splits it. Neither
//! party ever reconstructs `∇W_A`: A updates `U_A` with its piece, B
//! updates `V_A` with the other, and B refreshes A's encrypted cache
//! with the (freshly encrypted) delta. `∇W_B = X_Bᵀ∇Z` is computed by B
//! locally (B owns the labels; Table 2 permits it).

use bf_mpc::convert::{he2ss_holder, he2ss_peer};
use bf_mpc::shares::random_mask;
use bf_mpc::transport::{Msg, TransportResult};
use bf_paillier::CtMat;
use bf_tensor::{Dense, Features};

use crate::config::GradMode;
use crate::engine::Stage;
use crate::session::{Role, Session};

/// One party's half of a MatMul federated source layer.
pub struct MatMulSource {
    /// `U_own`: this party's piece of its own weight matrix
    /// (`in_own × out`). Never reconstructable into `W` by either side.
    u_own: Dense,
    /// `V_peer`: this party's piece of the *peer's* weight matrix
    /// (`in_peer × out`).
    v_peer: Dense,
    /// `⟦V_own⟧` under the peer's key — the encrypted copy of the piece
    /// of this party's weights that the peer holds.
    enc_v_own: CtMat,
    vel_u: Dense,
    vel_v_peer: Dense,
    out: usize,
    cached_x: Option<Features>,
    cached_support: Vec<u32>,
}

impl MatMulSource {
    /// Joint initialisation (Figure 6, lines 1–4). Both parties invoke
    /// this simultaneously with their own input width.
    pub fn init(sess: &mut Session, in_own: usize, out: usize) -> TransportResult<MatMulSource> {
        // Exchange input widths so each side can create the peer piece.
        sess.ep.send(Msg::U64(in_own as u64))?;
        let in_peer = sess.ep.recv_u64()? as usize;

        let u_own = bf_tensor::init::xavier(&mut sess.rng, in_own, out);
        // The peer piece this party creates (of the peer's weights).
        let bound = (6.0 / (in_peer + out) as f64).sqrt();
        let v_scale = match (sess.role, sess.cfg.grad_mode) {
            // Figure 9 ablation: B freezes an amplified V_A.
            (Role::B, GradMode::PlainGradToA { v_scale }) => v_scale,
            _ => 0.5,
        };
        let v_peer = random_mask(&mut sess.rng, in_peer, out, bound * v_scale);

        // Send ⟦V_peer⟧ under our own key; receive ⟦V_own⟧ under the
        // peer's key. Uploads take the session's ciphertext layout —
        // one packed ciphertext can carry a whole row of `out` columns.
        let enc = sess.encrypt_upload(&v_peer);
        sess.ep.send(Msg::Ct(enc))?;
        let enc_v_own = sess.ep.recv_ct()?;

        Ok(MatMulSource {
            vel_u: Dense::zeros(in_own, out),
            vel_v_peer: Dense::zeros(in_peer, out),
            u_own,
            v_peer,
            enc_v_own,
            out,
            cached_x: None,
            cached_support: Vec::new(),
        })
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out
    }

    /// This party's `U` piece (inspection: Figure 9's `X_A·U_A` attack
    /// and Figure 11's share plot read this).
    pub fn u_own(&self) -> &Dense {
        &self.u_own
    }

    /// This party's piece of the peer's weights (inspection).
    pub fn v_peer(&self) -> &Dense {
        &self.v_peer
    }

    // Internal accessors for the SS-top extension (ss_top.rs).
    pub(crate) fn cached_x_mut(&mut self) -> &mut Option<Features> {
        &mut self.cached_x
    }

    pub(crate) fn cached_support_mut(&mut self) -> &mut Vec<u32> {
        &mut self.cached_support
    }

    pub(crate) fn u_own_and_vel_mut(&mut self) -> (&mut Dense, &mut Dense) {
        (&mut self.u_own, &mut self.vel_u)
    }

    pub(crate) fn v_peer_and_vel_mut(&mut self) -> (&mut Dense, &mut Dense) {
        (&mut self.v_peer, &mut self.vel_v_peer)
    }

    pub(crate) fn enc_v_own_mut(&mut self) -> &mut CtMat {
        &mut self.enc_v_own
    }

    /// Persist the layer state (see `docs/SERVING.md` §persistence):
    /// both weight pieces, their momentum buffers and the encrypted
    /// peer-piece cache. Per-batch caches are transient and excluded.
    pub(crate) fn write_state(&self, w: &mut crate::persist::Writer) {
        w.u64(self.out as u64);
        w.dense(&self.u_own);
        w.dense(&self.vel_u);
        w.dense(&self.v_peer);
        w.dense(&self.vel_v_peer);
        w.ctmat(&self.enc_v_own);
    }

    /// Rebuild the layer from persisted state, validating shapes.
    pub(crate) fn read_state(
        r: &mut crate::persist::Reader,
    ) -> crate::persist::PersistResult<MatMulSource> {
        use crate::persist::{check_vel, PersistError};
        let out = r.len_u64()?;
        let u_own = r.dense()?;
        let vel_u = r.dense()?;
        let v_peer = r.dense()?;
        let vel_v_peer = r.dense()?;
        let enc_v_own = r.ctmat()?;
        check_vel(&u_own, &vel_u, "MatMulSource U")?;
        check_vel(&v_peer, &vel_v_peer, "MatMulSource V")?;
        if u_own.cols() != out || v_peer.cols() != out {
            return Err(PersistError::Malformed(format!(
                "MatMulSource: pieces {}×{} / {}×{} do not match out = {out}",
                u_own.rows(),
                u_own.cols(),
                v_peer.rows(),
                v_peer.cols()
            )));
        }
        if enc_v_own.shape() != u_own.shape() {
            return Err(PersistError::Malformed(format!(
                "MatMulSource: ⟦V_own⟧ shape {:?} does not match U_own shape {:?}",
                enc_v_own.shape(),
                u_own.shape()
            )));
        }
        Ok(MatMulSource {
            u_own,
            v_peer,
            enc_v_own,
            vel_u,
            vel_v_peer,
            out,
            cached_x: None,
            cached_support: Vec::new(),
        })
    }

    /// Forward propagation (Figure 6, lines 5–7): returns this party's
    /// share `Z'_⋄`. The model layer aggregates shares via
    /// [`aggregate_a`] / [`aggregate_b`].
    pub fn forward(
        &mut self,
        sess: &mut Session,
        x: &Features,
        train: bool,
    ) -> TransportResult<Dense> {
        let _t = sess.stages.timer(Stage::FedMatmul);
        let z_own = shared_matmul_fw(sess, x, &self.u_own, &self.enc_v_own)?;
        if train {
            self.cached_support = x.col_support();
            self.cached_x = Some(x.clone());
        }
        Ok(z_own)
    }

    /// Backward propagation, Party B side (Figure 6, lines 9–12).
    /// Consumes `∇Z` (which B owns, having run the local top model).
    pub fn backward_b(&mut self, sess: &mut Session, grad_z: &Dense) -> TransportResult<()> {
        assert_eq!(sess.role, Role::B, "backward_b on Party A");
        // Line 9: encrypt ∇Z for Party A.
        let ct_gz = {
            let _t = sess.stages.timer(Stage::EncryptUpload);
            sess.encrypt_upload(grad_z)
        };
        sess.ep.send(Msg::Ct(ct_gz))?;
        let _t = sess.stages.timer(Stage::DecryptUpdate);

        // Line 11 (right): ∇W_B = X_Bᵀ∇Z locally, lazy momentum on the
        // batch support.
        let x = self.cached_x.take().expect("backward before forward");
        let support = std::mem::take(&mut self.cached_support);
        let g = x.t_matmul_support(grad_z, &support);
        let rows: Vec<usize> = support.iter().map(|&c| c as usize).collect();
        sess.sgd()
            .step_sparse_rows(&mut self.u_own, &g, &mut self.vel_u, &rows);

        // Lines 10–12 (assisting A): receive A's support and gradient
        // piece, update V_A, and refresh A's encrypted cache.
        let support_a = sess.ep.recv_support()?;
        let rows_a: Vec<usize> = support_a.iter().map(|&c| c as usize).collect();
        let piece = he2ss_peer(&sess.ep, &sess.own_sk)?; // ∇W_A − φ rows
        match sess.cfg.grad_mode {
            GradMode::SecretShared => {
                let delta = self.step_v_peer(sess, &piece, &rows_a);
                // Same layout decision as the ⟦V_A⟧ cache this refreshes
                // (same key, same `out` columns), so rows_add_assign on
                // A's side sees matching bodies.
                sess.ep.send(Msg::Ct(sess.encrypt_upload(&delta)))?;
            }
            GradMode::PlainGradToA { .. } => {
                // Ablation: hand A its gradient piece in plaintext; V_A
                // stays frozen.
                sess.ep.send(Msg::Mat(piece))?;
            }
        }
        Ok(())
    }

    /// Apply this party's piece of a peer-weight gradient with lazy
    /// momentum; returns the applied delta rows (`−η·vel`).
    fn step_v_peer(&mut self, sess: &Session, piece_rows: &Dense, rows: &[usize]) -> Dense {
        super::step_piece(
            &mut self.v_peer,
            &mut self.vel_v_peer,
            piece_rows,
            rows,
            sess.cfg.lr,
            sess.cfg.momentum,
        )
    }

    /// Backward propagation, Party A side (Figure 6, lines 9–12).
    pub fn backward_a(&mut self, sess: &mut Session) -> TransportResult<()> {
        assert_eq!(sess.role, Role::A, "backward_a on Party B");
        let _t = sess.stages.timer(Stage::DecryptUpdate);
        let ct_gz = sess.ep.recv_ct()?;
        let x = self.cached_x.take().expect("backward before forward");
        let support = std::mem::take(&mut self.cached_support);
        sess.ep.send(Msg::Support(support.clone()))?;

        // Line 10: ⟦∇W_A⟧ = X_Aᵀ⟦∇Z⟧ on the support, then HE2SS.
        let prod = sess.peer_pk.t_matmul_support(&x, &ct_gz, &support);
        let phi = he2ss_holder(
            &sess.ep,
            &sess.peer_pk,
            &prod,
            sess.cfg.he_mask,
            &mut sess.rng,
        )?;
        let rows: Vec<usize> = support.iter().map(|&c| c as usize).collect();

        match sess.cfg.grad_mode {
            GradMode::SecretShared => {
                // Line 11: update U_A by φ (lazy momentum on support).
                sess.sgd()
                    .step_sparse_rows(&mut self.u_own, &phi, &mut self.vel_u, &rows);
                // Line 12: refresh ⟦V_A⟧ with B's encrypted delta.
                let delta = sess.ep.recv_ct()?;
                sess.peer_pk
                    .rows_add_assign(&mut self.enc_v_own, &rows, &delta);
            }
            GradMode::PlainGradToA { .. } => {
                // Ablation: reconstruct ∇W_A in plaintext (insecure by
                // design — this is the attack surface Figure 9 probes).
                let piece = sess.ep.recv_mat()?;
                let full = phi.add(&piece);
                sess.sgd()
                    .step_sparse_rows(&mut self.u_own, &full, &mut self.vel_u, &rows);
            }
        }
        Ok(())
    }
}

/// The reusable shared-input matmul forward (Figure 6, lines 5–7),
/// symmetric in both parties: this party holds `x` (its plaintext
/// block), `w_plain` (its piece of the weights) and `w_enc_peer` (the
/// encrypted peer piece, under the peer's key); returns this party's
/// share of `x_A·W_A + x_B·W_B`.
///
/// The Embed-MatMul layer reuses this twice per forward pass, once with
/// `x := ψ_⋄` against `(U_⋄, ⟦V_⋄⟧)` and once with `x := E_~⋄ − ψ_~⋄`
/// against `(V_~⋄, ⟦U_~⋄⟧)` — Figure 7, lines 8–9.
pub(crate) fn shared_matmul_fw(
    sess: &mut Session,
    x: &Features,
    w_plain: &Dense,
    w_enc_peer: &CtMat,
) -> TransportResult<Dense> {
    let prod = sess.peer_pk.matmul(x, w_enc_peer);
    let eps = he2ss_holder(
        &sess.ep,
        &sess.peer_pk,
        &prod,
        sess.cfg.he_mask,
        &mut sess.rng,
    )?;
    let piece = he2ss_peer(&sess.ep, &sess.own_sk)?;
    Ok(x.matmul(w_plain).add(&eps).add(&piece))
}

/// Party A's final forward step: ship `Z'_A` to Party B.
pub fn aggregate_a(sess: &Session, z_own: Dense) -> TransportResult<()> {
    sess.ep.send(Msg::Mat(z_own))
}

/// Party B's final forward step (Figure 6, line 8): `Z = Z'_A + Z'_B`.
pub fn aggregate_b(sess: &Session, z_own: Dense) -> TransportResult<Dense> {
    let z_a = sess.ep.recv_mat()?;
    Ok(z_own.add(&z_a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FedConfig;
    use crate::session::run_pair;
    use bf_ml::layers::LinearF;
    use bf_ml::Sgd;
    use bf_tensor::Csr;
    use rand::Rng;
    use rand::SeedableRng;

    fn rand_dense(rows: usize, cols: usize, seed: u64) -> Dense {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        bf_tensor::init::uniform(&mut rng, rows, cols, 1.0)
    }

    fn sparse_features(rows: usize, cols: usize, seed: u64) -> Features {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if rng.random::<f64>() < 0.4 {
                    triplets.push((r, c as u32, rng.random::<f64>() * 2.0 - 1.0));
                }
            }
        }
        Features::Sparse(Csr::from_triplets(rows, cols, triplets))
    }

    /// Drive `steps` forward (+ optional backward with the given ∇Z)
    /// rounds on both parties; returns (A's layer, B's layer, last Z).
    fn roundtrip(
        cfg: &FedConfig,
        x_a: Features,
        x_b: Features,
        out: usize,
        grad_z: Option<Dense>,
        steps: usize,
    ) -> (MatMulSource, MatMulSource, Dense) {
        let ina = x_a.cols();
        let inb = x_b.cols();
        let gz_a = grad_z.clone();
        let (a, (b, z)) = run_pair(
            cfg,
            99,
            move |mut sess| {
                let mut layer = MatMulSource::init(&mut sess, ina, out).unwrap();
                for _ in 0..steps {
                    let z = layer.forward(&mut sess, &x_a, gz_a.is_some()).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    if gz_a.is_some() {
                        layer.backward_a(&mut sess).unwrap();
                    }
                }
                // Final forward so the returned Z reflects all updates.
                let z = layer.forward(&mut sess, &x_a, false).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer
            },
            move |mut sess| {
                let mut layer = MatMulSource::init(&mut sess, inb, out).unwrap();
                for _ in 0..steps {
                    let z_own = layer.forward(&mut sess, &x_b, grad_z.is_some()).unwrap();
                    let _ = aggregate_b(&sess, z_own).unwrap();
                    if let Some(g) = &grad_z {
                        layer.backward_b(&mut sess, g).unwrap();
                    }
                }
                let z_own = layer.forward(&mut sess, &x_b, false).unwrap();
                let z = aggregate_b(&sess, z_own).unwrap();
                (layer, z)
            },
        );
        (a, b, z)
    }

    #[test]
    fn forward_is_lossless_paillier() {
        let cfg = FedConfig::paillier_test();
        let x_a = Features::Dense(rand_dense(4, 3, 1));
        let x_b = Features::Dense(rand_dense(4, 5, 2));
        let (a, b, z) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 2, None, 1);
        // Reconstruct W_A = U_A(at A) + V_A(at B), W_B = U_B(at B) + V_B(at A).
        let w_a = a.u_own().add(b.v_peer());
        let w_b = b.u_own().add(a.v_peer());
        let want = x_a.matmul(&w_a).add(&x_b.matmul(&w_b));
        assert!(
            z.approx_eq(&want, 1e-4),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn forward_is_lossless_sparse_plain() {
        let cfg = FedConfig::plain();
        let x_a = sparse_features(6, 10, 3);
        let x_b = sparse_features(6, 8, 4);
        let (a, b, z) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 3, None, 1);
        let w_a = a.u_own().add(b.v_peer());
        let w_b = b.u_own().add(a.v_peer());
        let want = x_a.matmul(&w_a).add(&x_b.matmul(&w_b));
        assert!(z.approx_eq(&want, 1e-4));
    }

    #[test]
    fn backward_updates_match_plaintext_sgd() {
        // One federated step must equal the plaintext LinearF step on
        // the reconstructed weights.
        let cfg = FedConfig::paillier_test();
        let x_a = sparse_features(5, 6, 5);
        let x_b = Features::Dense(rand_dense(5, 4, 6));
        let grad_z = rand_dense(5, 2, 7).scale(0.1);

        // Capture initial reconstructed weights from an identical run
        // with zero steps... instead run once with no backward:
        let (a0, b0, _) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 2, None, 1);
        let w_a0 = a0.u_own().add(b0.v_peer());
        let w_b0 = b0.u_own().add(a0.v_peer());

        let (a1, b1, _) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 2, Some(grad_z.clone()), 1);
        let w_a1 = a1.u_own().add(b1.v_peer());
        let w_b1 = b1.u_own().add(a1.v_peer());

        // Plaintext reference (same init because run_pair seeds match).
        let opt = Sgd {
            lr: cfg.lr,
            momentum: cfg.momentum,
        };
        let mut ref_a = LinearF::from_weights(w_a0.clone());
        ref_a.forward(&x_a);
        ref_a.backward(&grad_z);
        ref_a.step(&opt);
        let mut ref_b = LinearF::from_weights(w_b0.clone());
        ref_b.forward(&x_b);
        ref_b.backward(&grad_z);
        ref_b.step(&opt);

        assert!(
            w_a1.approx_eq(&ref_a.w, 1e-3),
            "W_A err {}",
            w_a1.sub(&ref_a.w).max_abs()
        );
        assert!(
            w_b1.approx_eq(&ref_b.w, 1e-3),
            "W_B err {}",
            w_b1.sub(&ref_b.w).max_abs()
        );
    }

    #[test]
    fn cached_ciphertext_stays_in_sync() {
        // After several backward steps, A's ⟦V_A⟧ must still decrypt to
        // B's plaintext V_A. We verify indirectly: a forward pass after
        // updates is still lossless.
        let cfg = FedConfig::paillier_test();
        let x_a = Features::Dense(rand_dense(4, 3, 8));
        let x_b = Features::Dense(rand_dense(4, 3, 9));
        let grad_z = rand_dense(4, 2, 10).scale(0.05);
        let (a, b, z) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 2, Some(grad_z), 3);
        let w_a = a.u_own().add(b.v_peer());
        let w_b = b.u_own().add(a.v_peer());
        let want = x_a.matmul(&w_a).add(&x_b.matmul(&w_b));
        assert!(
            z.approx_eq(&want, 1e-3),
            "max err {}",
            z.sub(&want).max_abs()
        );
    }

    #[test]
    fn ablation_mode_freezes_v_and_reconstructs_grad() {
        let cfg = FedConfig::plain().with_grad_mode(GradMode::PlainGradToA { v_scale: 5.0 });
        let x_a = Features::Dense(rand_dense(4, 3, 11));
        let x_b = Features::Dense(rand_dense(4, 3, 12));
        let grad_z = rand_dense(4, 1, 13).scale(0.1);
        let (_, b1, _) = roundtrip(&cfg, x_a.clone(), x_b.clone(), 1, Some(grad_z), 2);
        // V_A frozen: velocity never applied, piece magnitudes large.
        assert!(b1.v_peer().max_abs() > 1.0, "V_A should be amplified");
    }
}
