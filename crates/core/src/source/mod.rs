//! Federated source layers — the paper's core contribution.
//!
//! A source layer is the first layer of a VFL model, computed *jointly*
//! so that neither party can evaluate it alone (unlike split learning's
//! local bottom models). Two kinds are provided, mirroring Figures 6
//! and 7:
//!
//! * [`matmul::MatMulSource`] for numerical (dense or sparse) features,
//! * [`embed::EmbedSource`] for categorical features (secret-shared
//!   embedding table + secret-shared projection).
//!
//! Both support the standard non-federated-top flow (Party B receives
//! the aggregated `Z` and supplies `∇Z`) and, via [`ss_top`], the
//! secret-shared-top flow of Appendix B where even `Z` and `∇Z` stay
//! shared.

pub mod embed;
pub mod matmul;
pub mod ss_top;

pub use embed::EmbedSource;
pub use matmul::MatMulSource;

use bf_tensor::Dense;

/// Apply one party's gradient piece to its weight piece with lazy
/// momentum on the given rows; returns the applied delta (`−η·vel`)
/// rows, which the caller freshly encrypts to refresh the peer's
/// cached ciphertext copy.
///
/// Momentum distributes over the secret sharing: with both parties
/// applying `v ← μv + g_piece; w ← w − ηv` to their pieces, the hidden
/// sum follows exact (lazy) momentum SGD.
pub(crate) fn step_piece(
    param: &mut Dense,
    vel: &mut Dense,
    piece_rows: &Dense,
    rows: &[usize],
    lr: f64,
    momentum: f64,
) -> Dense {
    debug_assert_eq!(piece_rows.rows(), rows.len());
    let cols = param.cols();
    let mut delta = Dense::zeros(rows.len(), cols);
    for (i, &r) in rows.iter().enumerate() {
        let g = piece_rows.row(i);
        let v = vel.row_mut(r);
        for (vv, &gg) in v.iter_mut().zip(g) {
            *vv = momentum * *vv + gg;
        }
        let v = vel.row(r);
        let p = param.row_mut(r);
        let d = delta.row_mut(i);
        for ((pp, dd), &vv) in p.iter_mut().zip(d.iter_mut()).zip(v) {
            *pp -= lr * vv;
            *dd = -lr * vv;
        }
    }
    delta
}
