//! Federated source layers feeding a *secret-shared* top model
//! (paper Appendix B, Figures 13–14).
//!
//! With an SS-based top model, Party B no longer sees `Z` or `∇Z`:
//! the source layer's outputs stay as the sharing `⟨Z'_A, Z'_B⟩` the
//! forward pass already produces, and the backward pass takes a
//! sharing `⟨ε, ∇Z − ε⟩` as input. The gradient path then converts the
//! sharing to ciphertexts with `SS2HE` (Algorithm 2), after which both
//! parties run the *same* symmetric routine: each computes the
//! encrypted gradient of its own weight piece, HE2SS-splits it, and
//! both pieces are updated in the SS manner.
//!
//! As a concrete SS-computable top model this module ships
//! [`SquareLossSsTop`], a linear-output square-loss head whose
//! derivative `∇Z = (Z − y)/bs` is an affine function of the shares —
//! each party computes its derivative piece locally, with the labels
//! folded into Party B's piece only. (Nonlinear SS tops would use
//! SecureML-style piecewise approximations; they plug into the same
//! [`MatMulSource::backward_ss`] interface.)

use bf_mpc::convert::{he2ss_holder, he2ss_peer, ss2he_mode};
use bf_mpc::transport::{Msg, TransportResult};
use bf_tensor::{Dense, Features};

use crate::engine::Stage;
use crate::session::Session;
use crate::source::matmul::MatMulSource;
use crate::source::step_piece;

impl MatMulSource {
    /// Forward pass for an SS top model (Figure 13, line 1): identical
    /// joint computation, but this party's share `Z'_⋄` is *returned*
    /// instead of aggregated at B.
    pub fn forward_ss(
        &mut self,
        sess: &mut Session,
        x: &Features,
        train: bool,
    ) -> TransportResult<Dense> {
        // The shares produced by the standard forward already form an
        // additive sharing of Z; simply don't aggregate.
        self.forward(sess, x, train)
    }

    /// Backward pass for an SS top model (Figure 13, lines 2–8),
    /// symmetric in both parties: `grad_piece` is this party's share of
    /// `∇Z`.
    pub fn backward_ss(&mut self, sess: &mut Session, grad_piece: &Dense) -> TransportResult<()> {
        let _t = sess.stages.timer(Stage::SsTop);
        // Line 3: ⟨ε, ∇Z−ε⟩ → ⟦∇Z⟧ under the *peer's* key at each side,
        // in the session's ciphertext layout (same on both parties).
        let ct_gz = ss2he_mode(
            &sess.ep,
            &sess.own_pk,
            &sess.obf,
            &sess.peer_pk,
            grad_piece,
            sess.cfg.paillier_mode,
        )?;

        let x = self.take_cached_x();
        let support = self.take_cached_support();
        sess.ep.send(Msg::Support(support.clone()))?;
        let peer_support = sess.ep.recv_support()?;

        // Lines 4–5: ⟦∇W_own⟧ = Xᵀ⟦∇Z⟧ on the support, HE2SS.
        let prod = sess.peer_pk.t_matmul_support(&x, &ct_gz, &support);
        let phi = he2ss_holder(
            &sess.ep,
            &sess.peer_pk,
            &prod,
            sess.cfg.he_mask,
            &mut sess.rng,
        )?;
        let piece = he2ss_peer(&sess.ep, &sess.own_sk)?; // ∇W_peer − φ_peer rows

        // Lines 6–8: update U_own by φ; update V_peer by the received
        // piece and refresh the peer's ⟦V_peer⟧ cache.
        let rows: Vec<usize> = support.iter().map(|&c| c as usize).collect();
        self.step_u_own(sess, &phi, &rows);
        let peer_rows: Vec<usize> = peer_support.iter().map(|&c| c as usize).collect();
        let delta = self.step_v_peer_pub(sess, &piece, &peer_rows);
        // Same layout decision as the ⟦V⟧ cache this refreshes.
        sess.ep.send(Msg::Ct(sess.encrypt_upload(&delta)))?;
        let delta_own = sess.ep.recv_ct()?;
        self.refresh_enc_v_own(sess, &rows, &delta_own);
        Ok(())
    }
}

/// A square-loss, linear-output top model computable over secret
/// shares: `loss = ‖Z − y‖² / (2·bs)`, `∇Z = (Z − y)/bs`.
pub struct SquareLossSsTop;

impl SquareLossSsTop {
    /// Party A's derivative share: `ε = Z'_A / bs`.
    pub fn grad_piece_a(z_share: &Dense) -> Dense {
        z_share.scale(1.0 / z_share.rows() as f64)
    }

    /// Party B's derivative share: `(Z'_B − y)/bs` (labels enter only
    /// here, so only B touches them).
    pub fn grad_piece_b(z_share: &Dense, y: &[f64]) -> Dense {
        assert_eq!(z_share.rows(), y.len());
        let bs = y.len() as f64;
        let mut g = z_share.clone();
        for (i, &t) in y.iter().enumerate() {
            let cur = g.get(i, 0);
            g.set(i, 0, (cur - t) / bs);
        }
        g
    }

    /// The (experimenter-side) reference loss given reconstructed Z.
    pub fn loss(z: &Dense, y: &[f64]) -> f64 {
        let bs = y.len() as f64;
        z.data()
            .iter()
            .zip(y)
            .map(|(&z, &t)| (z - t) * (z - t))
            .sum::<f64>()
            / (2.0 * bs)
    }
}

impl MatMulSource {
    pub(crate) fn take_cached_x(&mut self) -> Features {
        self.cached_x_mut().take().expect("backward before forward")
    }

    pub(crate) fn take_cached_support(&mut self) -> Vec<u32> {
        std::mem::take(self.cached_support_mut())
    }

    pub(crate) fn step_u_own(&mut self, sess: &Session, piece: &Dense, rows: &[usize]) {
        let (u, vel) = self.u_own_and_vel_mut();
        let _ = step_piece(u, vel, piece, rows, sess.cfg.lr, sess.cfg.momentum);
    }

    pub(crate) fn step_v_peer_pub(
        &mut self,
        sess: &Session,
        piece: &Dense,
        rows: &[usize],
    ) -> Dense {
        let (v, vel) = self.v_peer_and_vel_mut();
        step_piece(v, vel, piece, rows, sess.cfg.lr, sess.cfg.momentum)
    }

    pub(crate) fn refresh_enc_v_own(
        &mut self,
        sess: &Session,
        rows: &[usize],
        delta: &bf_paillier::CtMat,
    ) {
        let enc = self.enc_v_own_mut();
        sess.peer_pk.rows_add_assign(enc, rows, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FedConfig;
    use crate::session::run_pair;
    use rand::SeedableRng;

    fn rand_dense(rows: usize, cols: usize, seed: u64) -> Dense {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        bf_tensor::init::uniform(&mut rng, rows, cols, 1.0)
    }

    /// Train a 1-output least-squares model with the SS top: neither
    /// party ever sees Z or ∇Z in plaintext.
    fn train_ss(
        cfg: &FedConfig,
        x_a: Features,
        x_b: Features,
        y: Vec<f64>,
        steps: usize,
    ) -> (MatMulSource, MatMulSource, f64) {
        let ina = x_a.cols();
        let inb = x_b.cols();
        let y_b = y.clone();
        let (a, (b, final_loss)) = run_pair(
            cfg,
            55,
            move |mut sess| {
                let mut layer = MatMulSource::init(&mut sess, ina, 1).unwrap();
                for _ in 0..steps {
                    let z_share = layer.forward_ss(&mut sess, &x_a, true).unwrap();
                    let g = SquareLossSsTop::grad_piece_a(&z_share);
                    layer.backward_ss(&mut sess, &g).unwrap();
                }
                // Inference: reveal the final prediction share to B
                // (the model output is B's to learn).
                let z_share = layer.forward_ss(&mut sess, &x_a, false).unwrap();
                sess.ep.send(Msg::Mat(z_share)).unwrap();
                layer
            },
            move |mut sess| {
                let mut layer = MatMulSource::init(&mut sess, inb, 1).unwrap();
                for _ in 0..steps {
                    let z_share = layer.forward_ss(&mut sess, &x_b, true).unwrap();
                    let g = SquareLossSsTop::grad_piece_b(&z_share, &y_b);
                    layer.backward_ss(&mut sess, &g).unwrap();
                }
                let z_share = layer.forward_ss(&mut sess, &x_b, false).unwrap();
                let z = z_share.add(&sess.ep.recv_mat().unwrap());
                (layer, SquareLossSsTop::loss(&z, &y_b))
            },
        );
        (a, b, final_loss)
    }

    #[test]
    fn ss_top_training_reduces_square_loss() {
        let cfg = FedConfig::plain();
        let x_a = Features::Dense(rand_dense(32, 3, 1));
        let x_b = Features::Dense(rand_dense(32, 4, 2));
        // Linear target across both parties' features.
        let y: Vec<f64> = (0..32)
            .map(|i| {
                let xa = match &x_a {
                    Features::Dense(d) => d.row(i)[0] - 0.5 * d.row(i)[2],
                    _ => unreachable!(),
                };
                let xb = match &x_b {
                    Features::Dense(d) => 0.8 * d.row(i)[1],
                    _ => unreachable!(),
                };
                xa + xb
            })
            .collect();
        let (_, _, loss_short) = train_ss(&cfg, x_a.clone(), x_b.clone(), y.clone(), 5);
        let (_, _, loss_long) = train_ss(&cfg, x_a, x_b, y, 80);
        assert!(loss_long < loss_short * 0.5, "{loss_short} -> {loss_long}");
        assert!(loss_long < 0.05, "final loss {loss_long}");
    }

    #[test]
    fn ss_top_with_paillier_backend() {
        let cfg = FedConfig::paillier_test();
        let x_a = Features::Dense(rand_dense(8, 2, 3));
        let x_b = Features::Dense(rand_dense(8, 2, 4));
        let y: Vec<f64> = (0..8).map(|i| (i % 2) as f64).collect();
        let (_, _, loss) = train_ss(&cfg, x_a, x_b, y, 12);
        assert!(loss.is_finite());
        assert!(loss < 0.5, "loss {loss}");
    }
}
