//! Federated training and inference runtime.
//!
//! [`run_party_a`] and [`run_party_b`] drive one party each over any
//! [`Session`] — in-process or TCP (see `examples/tcp_federated_lr.rs`
//! for the two-process deployment). [`train_federated`] is the
//! single-machine convenience harness: Party A on its own thread,
//! Party B on the caller's. Both parties derive the identical
//! mini-batch schedule from a shared seed (the paper assumes
//! PSI-aligned instances, so a common ordering is free), so no control
//! messages are needed: the protocols' own message flow is the only
//! cross-party traffic.
//!
//! [`FedTrainConfig::mode`] selects the scheduling engine: the
//! lock-step loop ([`TrainMode::Sync`]) or the pipelined engine
//! ([`TrainMode::Pipelined`]) which queue-decouples the transport and
//! double-buffers batch preparation — bit-identical results, less
//! wall-clock (see [`crate::engine`] for the determinism contract).
//!
//! The multi-guest generalisation (paper Appendix C) keeps every
//! guest on the unmodified [`run_party_a`]; Party B fans out over one
//! session per guest via [`run_party_b_multi`], with
//! [`train_federated_multi`] as the `M+1`-thread harness and
//! `examples/multiparty_lr.rs` as the one-process-per-guest TCP
//! deployment. `tests/multiparty_parity.rs` proves the equivalence
//! contract (M-guest ≙ concatenated single-A, transports byte-equal).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bf_ml::data::{BatchIter, Dataset};
use bf_ml::train::metric_from_logits;
use bf_mpc::fault::{FaultAction, FaultPlan};
use bf_mpc::transport::{Endpoint, TransportError, TransportResult};
use bf_tensor::Dense;
use bf_util::Stopwatch;

use crate::align::{align_guest, align_host, align_host_multi, Alignment};
use crate::config::FedConfig;
use crate::engine::{run_epoch, TrainMode};
use crate::models::{FedSpec, MultiPartyBModel, PartyAModel, PartyBModel};
use crate::multiparty::{collect_guests, send_hello};
use crate::persist::{self, AlignCursor, CheckpointA, CheckpointB, MultiCheckpointB};
use crate::session::{multi_party_seed, run_pair, Role, Session};

/// Mid-epoch checkpoint cadence: both parties must configure the same
/// `every_batches` (checkpoints are purely local — zero wire traffic —
/// so the cadence is the only thing keeping the two parties' snapshots
/// at the same batch position).
#[derive(Clone, Debug)]
pub struct CheckpointCadence {
    /// Write a checkpoint after every this-many completed batches,
    /// counted run-wide across epochs (values < 1 are treated as 1).
    pub every_batches: u64,
    /// Where the latest checkpoint blob lands. Written atomically
    /// (tmp + rename), so a crash mid-write never corrupts the
    /// previous checkpoint.
    pub path: PathBuf,
}

/// Marker embedded in the [`TransportError::Setup`] message a
/// [`FaultAction::Kill`] surfaces as — the chaos harness matches on it
/// to tell an injected kill from a real transport failure.
pub const FAULT_KILL_MARKER: &str = "fault injection: killed";

/// Training-loop options for a federated run.
#[derive(Clone, Debug, Default)]
pub struct FedTrainConfig {
    /// Epoch / batch / shuffle parameters (shared with the plaintext
    /// trainer so runs are comparable).
    pub base: bf_ml::TrainConfig,
    /// Capture Party A's `U_A` after every epoch (used by the Figure 9
    /// activation-attack harness).
    pub snapshot_u_a: bool,
    /// Scheduling engine (defaults to the lock-step [`TrainMode::Sync`];
    /// both parties may choose independently — the modes are pure
    /// wall-clock scheduling and never change math or wire content).
    pub mode: TrainMode,
    /// Mid-epoch checkpoint cadence; `None` (the default) disables
    /// checkpointing. Checkpoint capture is local-only — it never adds
    /// a frame to the wire (`tests/chaos_parity.rs` asserts traffic
    /// parity with checkpointing on and off).
    pub checkpoint: Option<CheckpointCadence>,
    /// Scripted fault injection for the chaos harness (`None` runs
    /// fault-free; [`FaultPlan::from_env`] reads the `BF_FAULT` knob).
    pub fault: Option<FaultPlan>,
}

/// Atomic checkpoint write: to a `.tmp` sibling, then rename over the
/// target, so the latest complete checkpoint is always intact.
fn write_checkpoint(path: &Path, bytes: &[u8]) -> TransportResult<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| {
            TransportError::Setup(format!(
                "checkpoint write to {} failed: {e}",
                path.display()
            ))
        })
}

/// Fire the configured fault if it is scheduled after the run-wide
/// batch that just completed. Runs *after* the cadence checkpoint, so
/// a kill never outruns the snapshot that recovery needs.
fn apply_fault(fault: Option<FaultPlan>, batch: u64, eps: &[&Endpoint]) -> TransportResult<()> {
    let Some(plan) = fault else { return Ok(()) };
    if !plan.fires_after(batch) {
        return Ok(());
    }
    match plan.action {
        FaultAction::Kill => Err(TransportError::Setup(format!(
            "{FAULT_KILL_MARKER} after batch {batch}"
        ))),
        FaultAction::Drop => {
            for ep in eps {
                ep.sever();
            }
            Ok(())
        }
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// Outcome of a federated training run.
pub struct FedReport {
    /// Per-mini-batch training loss (Party B's view).
    pub losses: Vec<f64>,
    /// Test logits from the final federated inference pass.
    pub test_logits: Dense,
    /// Test metric (AUC for binary, accuracy for multi-class).
    pub test_metric: f64,
    /// Wall-clock seconds spent in the training loop.
    pub train_secs: f64,
    /// Bytes sent A→B during the whole run.
    pub bytes_a_to_b: u64,
    /// Bytes sent B→A during the whole run.
    pub bytes_b_to_a: u64,
    /// Party A's `U_A` snapshots per epoch, if requested.
    pub u_a_snapshots: Vec<Dense>,
    /// Party B's wall-clock per pipeline stage, `(label, secs)`.
    pub stage_secs: Vec<(&'static str, f64)>,
}

/// Everything a federated run returns: the report plus both trained
/// model halves (shares inspectable via their getters — used by the
/// privacy experiments).
pub struct FedOutcome {
    /// Metrics and curves.
    pub report: FedReport,
    /// Party A's trained half.
    pub party_a: PartyAModel,
    /// Party B's trained half (includes the top model).
    pub party_b: PartyBModel,
}

/// Sequential evaluation batches covering every row (the final short
/// batch is kept — federated inference handles any batch size).
fn eval_batches(n: usize, bs: usize) -> Vec<Vec<usize>> {
    (0..n)
        .collect::<Vec<_>>()
        .chunks(bs)
        .map(|c| c.to_vec())
        .collect()
}

/// Train a federated model and run federated inference on the test
/// split. `lr`/`momentum` are taken from `cfg` (the protocol applies
/// them inside the secret-shared updates); `tc.base.lr` is ignored.
pub fn train_federated(
    spec: &FedSpec,
    cfg: &FedConfig,
    tc: &FedTrainConfig,
    train_a: Dataset,
    train_b: Dataset,
    test_a: Dataset,
    test_b: Dataset,
    seed: u64,
) -> FedOutcome {
    let spec_a = spec.clone();
    let tc_a = tc.clone();
    let spec_b = spec.clone();
    let tc_b = tc.clone();

    let (party_a_res, party_b_res) = run_pair(
        cfg,
        seed,
        move |mut sess| {
            run_party_a(&mut sess, &spec_a, &tc_a, &train_a, &test_a).expect("party A transport")
        },
        move |mut sess| {
            run_party_b(&mut sess, &spec_b, &tc_b, &train_b, &test_b).expect("party B transport")
        },
    );
    FedOutcome {
        report: FedReport {
            losses: party_b_res.losses,
            test_logits: party_b_res.test_logits,
            test_metric: party_b_res.test_metric,
            train_secs: party_b_res.train_secs,
            bytes_a_to_b: party_a_res.bytes_sent,
            bytes_b_to_a: party_b_res.bytes_sent,
            u_a_snapshots: party_a_res.u_a_snapshots,
            stage_secs: party_b_res.stage_secs,
        },
        party_a: party_a_res.model,
        party_b: party_b_res.model,
    }
}

/// What [`run_party_a`] produces.
pub struct PartyARun {
    /// The trained Party A model half.
    pub model: PartyAModel,
    /// `U_A` snapshots per epoch, if requested.
    pub u_a_snapshots: Vec<Dense>,
    /// Bytes this party sent over the whole run.
    pub bytes_sent: u64,
    /// Wall-clock per pipeline stage, `(label, secs)` (see
    /// [`crate::engine::Stage`]).
    pub stage_secs: Vec<(&'static str, f64)>,
}

/// What [`run_party_b`] produces.
pub struct PartyBRun {
    /// The trained Party B model half (includes the top model).
    pub model: PartyBModel,
    /// Per-mini-batch training loss.
    pub losses: Vec<f64>,
    /// Test logits from the final federated inference pass.
    pub test_logits: Dense,
    /// Test metric (AUC for binary, accuracy for multi-class).
    pub test_metric: f64,
    /// Wall-clock seconds spent in the training loop.
    pub train_secs: f64,
    /// Bytes this party sent over the whole run.
    pub bytes_sent: u64,
    /// Wall-clock per pipeline stage, `(label, secs)` (see
    /// [`crate::engine::Stage`]).
    pub stage_secs: Vec<(&'static str, f64)>,
}

/// Switch the session's transport into pipelined mode if the training
/// mode calls for it (idempotent; the handshake already happened over
/// the blocking transport, which is fine — mode changes scheduling
/// only).
fn apply_mode(sess: &mut Session, mode: TrainMode) {
    if let TrainMode::Pipelined { queue_depth, .. } = mode {
        sess.ep.make_pipelined(queue_depth);
    }
}

/// Party A's side of a full training + federated-inference run. Works
/// over any transport; a transport failure aborts the loop cleanly
/// with the error instead of crashing the process.
pub fn run_party_a(
    sess: &mut Session,
    spec: &FedSpec,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
) -> TransportResult<PartyARun> {
    apply_mode(sess, tc.mode);
    let model = PartyAModel::init(sess, spec, train)?;
    drive_party_a(sess, tc, train, test, model, 0, 0, None)
}

/// Resume Party A from a mid-epoch checkpoint: the session must be
/// freshly handshaken with the *same* `(cfg, role, seed)` as the
/// original run (so keys and streams regenerate identically); this
/// restores the determinism cursor and fast-forwards the batch
/// schedule, landing the run on the bit-identical loss curve.
pub fn run_party_a_resume(
    sess: &mut Session,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    cp: CheckpointA,
) -> TransportResult<PartyARun> {
    if cp.aligned.is_some() {
        return Err(TransportError::Setup(
            "checkpoint is PSI-aligned; resume with run_party_a_aligned_resume".into(),
        ));
    }
    apply_mode(sess, tc.mode);
    sess.restore_cursor(&cp.link);
    drive_party_a(sess, tc, train, test, cp.model, cp.epoch, cp.batch, None)
}

/// Party A's side of a **PSI-aligned** run: after the handshake, run
/// the guest side of the alignment phase over the session's endpoint
/// (`ids[r]` = sample ID of local train row `r`), select the aligned
/// train view in canonical order, then train exactly as
/// [`run_party_a`] would. Checkpoints taken in this run embed the
/// alignment cursor (persist kind 9), so a resume rebuilds the same
/// selection wire-free. The test split must already be aligned across
/// the parties.
pub fn run_party_a_aligned(
    sess: &mut Session,
    spec: &FedSpec,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    ids: &[u64],
) -> TransportResult<(Alignment, PartyARun)> {
    let alignment = align_guest(sess, ids)?;
    apply_mode(sess, tc.mode);
    let train = alignment.select(train);
    let model = PartyAModel::init(sess, spec, &train)?;
    let run = drive_party_a(
        sess,
        tc,
        &train,
        test,
        model,
        0,
        0,
        Some(alignment.cursor()),
    )?;
    Ok((alignment, run))
}

/// Resume Party A from a PSI-aligned checkpoint: the selection is
/// rebuilt from the checkpointed ID list against the local column —
/// **zero wire traffic**, so the restored traffic totals (which
/// already include the original PSI phase) stay exact.
pub fn run_party_a_aligned_resume(
    sess: &mut Session,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    ids: &[u64],
    cp: CheckpointA,
) -> TransportResult<(Alignment, PartyARun)> {
    let cur = cp.aligned.ok_or_else(|| {
        TransportError::Setup("checkpoint is not PSI-aligned; use run_party_a_resume".into())
    })?;
    let alignment = Alignment::from_cursor(&cur, ids)?;
    apply_mode(sess, tc.mode);
    sess.restore_cursor(&cp.link);
    let train = alignment.select(train);
    let run = drive_party_a(
        sess,
        tc,
        &train,
        test,
        cp.model,
        cp.epoch,
        cp.batch,
        Some(cur),
    )?;
    Ok((alignment, run))
}

/// The shared Party A epoch loop: train from `(start_epoch,
/// start_batch)` to the end, then run federated inference. Checkpoint
/// cadence and fault injection hook the per-batch boundary.
fn drive_party_a(
    sess: &mut Session,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    mut model: PartyAModel,
    start_epoch: u64,
    start_batch: u64,
    aligned: Option<AlignCursor>,
) -> TransportResult<PartyARun> {
    let bpe = BatchIter::new(train.rows(), tc.base.batch_size, 0).batches_per_epoch() as u64;
    let mut snapshots = Vec::new();
    let mut global = start_epoch * bpe + start_batch;
    for epoch in (start_epoch as usize)..tc.base.epochs {
        let skip = if epoch as u64 == start_epoch {
            start_batch as usize
        } else {
            0
        };
        run_epoch(
            tc.mode,
            train,
            tc.base.batch_size,
            tc.base.seed ^ epoch as u64,
            skip,
            |batch| {
                model.forward(sess, &batch, true)?;
                model.backward(sess)?;
                if let Some(cad) = &tc.checkpoint {
                    if (global + 1) % cad.every_batches.max(1) == 0 {
                        let blob = persist::export_checkpoint_a(
                            epoch as u64,
                            global % bpe + 1,
                            &sess.capture_cursor(),
                            aligned.as_ref(),
                            &model,
                        );
                        write_checkpoint(&cad.path, &blob)?;
                    }
                }
                apply_fault(tc.fault, global, &[&sess.ep])?;
                global += 1;
                TransportResult::Ok(())
            },
        )?;
        if tc.snapshot_u_a {
            if let Some(mm) = model.matmul() {
                snapshots.push(mm.u_own().clone());
            }
        }
    }
    // Federated inference over the test split.
    for idx in eval_batches(test.rows(), tc.base.batch_size) {
        let batch = test.select(&idx);
        model.forward(sess, &batch, false)?;
    }
    let bytes = sess.ep.stats().bytes();
    Ok(PartyARun {
        model,
        u_a_snapshots: snapshots,
        bytes_sent: bytes,
        stage_secs: sess.stages.snapshot(),
    })
}

/// Party B's side of a full training + federated-inference run (the
/// label holder: computes losses, drives the top model, reports the
/// test metric).
pub fn run_party_b(
    sess: &mut Session,
    spec: &FedSpec,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
) -> TransportResult<PartyBRun> {
    apply_mode(sess, tc.mode);
    let model = PartyBModel::init(sess, spec, train)?;
    drive_party_b(sess, tc, train, test, model, Vec::new(), 0, 0, None)
}

/// Resume Party B from a mid-epoch checkpoint (see
/// [`run_party_a_resume`] for the session contract). The checkpointed
/// loss prefix carries over, so the final curve is seamless.
pub fn run_party_b_resume(
    sess: &mut Session,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    cp: CheckpointB,
) -> TransportResult<PartyBRun> {
    if cp.aligned.is_some() {
        return Err(TransportError::Setup(
            "checkpoint is PSI-aligned; resume with run_party_b_aligned_resume".into(),
        ));
    }
    apply_mode(sess, tc.mode);
    sess.restore_cursor(&cp.link);
    drive_party_b(
        sess, tc, train, test, cp.model, cp.losses, cp.epoch, cp.batch, None,
    )
}

/// Party B's side of a **PSI-aligned** run: draw no salt here — pass
/// [`crate::align::psi_salt`]`(seed)` so the salt derivation never
/// touches the session mask RNG. Runs the host side of the alignment
/// phase, selects the aligned train view, then trains exactly as
/// [`run_party_b`] would; checkpoints embed the alignment cursor
/// (persist kind 10).
pub fn run_party_b_aligned(
    sess: &mut Session,
    spec: &FedSpec,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    salt: u64,
    ids: &[u64],
) -> TransportResult<(Alignment, PartyBRun)> {
    let alignment = align_host(sess, salt, ids)?;
    apply_mode(sess, tc.mode);
    let train = alignment.select(train);
    let model = PartyBModel::init(sess, spec, &train)?;
    let run = drive_party_b(
        sess,
        tc,
        &train,
        test,
        model,
        Vec::new(),
        0,
        0,
        Some(alignment.cursor()),
    )?;
    Ok((alignment, run))
}

/// Resume Party B from a PSI-aligned checkpoint (wire-free selection
/// rebuild; see [`run_party_a_aligned_resume`]).
pub fn run_party_b_aligned_resume(
    sess: &mut Session,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    ids: &[u64],
    cp: CheckpointB,
) -> TransportResult<(Alignment, PartyBRun)> {
    let cur = cp.aligned.ok_or_else(|| {
        TransportError::Setup("checkpoint is not PSI-aligned; use run_party_b_resume".into())
    })?;
    let alignment = Alignment::from_cursor(&cur, ids)?;
    apply_mode(sess, tc.mode);
    sess.restore_cursor(&cp.link);
    let train = alignment.select(train);
    let run = drive_party_b(
        sess,
        tc,
        &train,
        test,
        cp.model,
        cp.losses,
        cp.epoch,
        cp.batch,
        Some(cur),
    )?;
    Ok((alignment, run))
}

/// The shared Party B epoch loop (see [`drive_party_a`]).
fn drive_party_b(
    sess: &mut Session,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    mut model: PartyBModel,
    mut losses: Vec<f64>,
    start_epoch: u64,
    start_batch: u64,
    aligned: Option<AlignCursor>,
) -> TransportResult<PartyBRun> {
    let bpe = BatchIter::new(train.rows(), tc.base.batch_size, 0).batches_per_epoch() as u64;
    let mut global = start_epoch * bpe + start_batch;
    let mut sw = Stopwatch::new();
    sw.start();
    for epoch in (start_epoch as usize)..tc.base.epochs {
        let skip = if epoch as u64 == start_epoch {
            start_batch as usize
        } else {
            0
        };
        run_epoch(
            tc.mode,
            train,
            tc.base.batch_size,
            tc.base.seed ^ epoch as u64,
            skip,
            |batch| {
                losses.push(model.train_batch(sess, &batch)?);
                if let Some(cad) = &tc.checkpoint {
                    if (global + 1) % cad.every_batches.max(1) == 0 {
                        let blob = persist::export_checkpoint_b(
                            epoch as u64,
                            global % bpe + 1,
                            &sess.capture_cursor(),
                            aligned.as_ref(),
                            &losses,
                            &model,
                        );
                        write_checkpoint(&cad.path, &blob)?;
                    }
                }
                apply_fault(tc.fault, global, &[&sess.ep])?;
                global += 1;
                TransportResult::Ok(())
            },
        )?;
    }
    sw.stop();

    // Federated inference.
    let mut logit_rows: Vec<f64> = Vec::new();
    let out = model.out_dim();
    for idx in eval_batches(test.rows(), tc.base.batch_size) {
        let batch = test.select(&idx);
        let logits = model.predict_batch(sess, &batch)?;
        logit_rows.extend_from_slice(logits.data());
    }
    let test_logits = Dense::from_vec(test.rows(), out, logit_rows);
    let labels = test.labels.as_ref().expect("test labels at Party B");
    let metric = metric_from_logits(&test_logits, labels);
    let bytes = sess.ep.stats().bytes();
    Ok(PartyBRun {
        model,
        losses,
        test_logits,
        test_metric: metric,
        train_secs: sw.secs(),
        bytes_sent: bytes,
        stage_secs: sess.stages.snapshot(),
    })
}

/// What [`run_party_b_multi`] produces: [`PartyBRun`] generalised to
/// `M` guest links (per-link traffic instead of a single peer).
pub struct MultiPartyBRun {
    /// The trained multi-guest Party B model half.
    pub model: MultiPartyBModel,
    /// Per-mini-batch training loss.
    pub losses: Vec<f64>,
    /// Test logits from the final federated inference pass.
    pub test_logits: Dense,
    /// Test metric (AUC for binary, accuracy for multi-class).
    pub test_metric: f64,
    /// Wall-clock seconds spent in the training loop.
    pub train_secs: f64,
    /// Bytes this party sent to each guest, per link (B→A(i)).
    pub bytes_sent_per_link: Vec<u64>,
    /// Wall-clock per pipeline stage, `(label, secs)`, aggregated
    /// across all links (the sessions share one accumulator).
    pub stage_secs: Vec<(&'static str, f64)>,
}

/// Party B's side of a full multi-guest training + federated-inference
/// run over one [`Session`] per guest (Appendix C fan-out). Each guest
/// runs the unmodified [`run_party_a`]; with one session this is
/// bit-identical to [`run_party_b`] (module tests and
/// `tests/multiparty_parity.rs` enforce it).
///
/// The sessions may ride on any transport — the in-process harness
/// ([`train_federated_multi`]) or one TCP connection per guest process
/// (`examples/multiparty_lr.rs`). All links share one stage-time
/// accumulator, and in pipelined mode every link gets its own
/// writer/reader (per-guest prefetch) from
/// [`bf_mpc::Endpoint::make_pipelined`].
pub fn run_party_b_multi(
    sessions: &mut [Session],
    spec: &FedSpec,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
) -> TransportResult<MultiPartyBRun> {
    if sessions.is_empty() {
        return Err(TransportError::Setup(
            "run_party_b_multi needs at least one guest session (M = 0)".into(),
        ));
    }
    // One wall-clock accumulator across every link: the stage table
    // reports the B process, not one link of it.
    let stages = Arc::clone(&sessions[0].stages);
    for sess in sessions.iter_mut().skip(1) {
        sess.stages = Arc::clone(&stages);
    }
    for sess in sessions.iter_mut() {
        apply_mode(sess, tc.mode);
    }
    let model = MultiPartyBModel::init(sessions, spec, train)?;
    drive_party_b_multi(
        sessions,
        tc,
        train,
        test,
        model,
        Vec::new(),
        0,
        0,
        stages,
        None,
    )
}

/// Multi-guest Party B's side of a **PSI-aligned** run: one global
/// intersection (host ∩ every guest) is computed over all links, every
/// party selects into the same canonical order, and training proceeds
/// as [`run_party_b_multi`]. Returns the host's alignment, the PSI
/// bytes sent per link, and the run. Checkpoints embed the alignment
/// cursor (persist kind 11).
pub fn run_party_b_multi_aligned(
    sessions: &mut [Session],
    spec: &FedSpec,
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    salt: u64,
    ids: &[u64],
) -> TransportResult<(Alignment, Vec<u64>, MultiPartyBRun)> {
    if sessions.is_empty() {
        return Err(TransportError::Setup(
            "run_party_b_multi_aligned needs at least one guest session (M = 0)".into(),
        ));
    }
    let stages = Arc::clone(&sessions[0].stages);
    for sess in sessions.iter_mut().skip(1) {
        sess.stages = Arc::clone(&stages);
    }
    let (alignment, psi_bytes_per_link) = align_host_multi(sessions, salt, ids)?;
    for sess in sessions.iter_mut() {
        apply_mode(sess, tc.mode);
    }
    let train = alignment.select(train);
    let model = MultiPartyBModel::init(sessions, spec, &train)?;
    let run = drive_party_b_multi(
        sessions,
        tc,
        &train,
        test,
        model,
        Vec::new(),
        0,
        0,
        stages,
        Some(alignment.cursor()),
    )?;
    Ok((alignment, psi_bytes_per_link, run))
}

/// Resume multi-guest Party B from a PSI-aligned checkpoint
/// (wire-free selection rebuild; see [`run_party_a_aligned_resume`]).
pub fn run_party_b_multi_aligned_resume(
    sessions: &mut [Session],
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    ids: &[u64],
    cp: MultiCheckpointB,
) -> TransportResult<(Alignment, MultiPartyBRun)> {
    if sessions.len() != cp.links.len() {
        return Err(TransportError::Setup(format!(
            "checkpoint has {} link cursors but {} sessions were supplied",
            cp.links.len(),
            sessions.len()
        )));
    }
    let cur = cp.aligned.ok_or_else(|| {
        TransportError::Setup("checkpoint is not PSI-aligned; use run_party_b_multi_resume".into())
    })?;
    let alignment = Alignment::from_cursor(&cur, ids)?;
    let stages = Arc::clone(&sessions[0].stages);
    for sess in sessions.iter_mut().skip(1) {
        sess.stages = Arc::clone(&stages);
    }
    for (sess, cursor) in sessions.iter_mut().zip(&cp.links) {
        apply_mode(sess, tc.mode);
        sess.restore_cursor(cursor);
    }
    let train = alignment.select(train);
    let run = drive_party_b_multi(
        sessions,
        tc,
        &train,
        test,
        cp.model,
        cp.losses,
        cp.epoch,
        cp.batch,
        stages,
        Some(cur),
    )?;
    Ok((alignment, run))
}

/// Resume multi-guest Party B from a mid-epoch checkpoint: one freshly
/// handshaken session per guest link, in the original link order (the
/// checkpoint carries one determinism cursor per link).
pub fn run_party_b_multi_resume(
    sessions: &mut [Session],
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    cp: MultiCheckpointB,
) -> TransportResult<MultiPartyBRun> {
    if sessions.len() != cp.links.len() {
        return Err(TransportError::Setup(format!(
            "checkpoint has {} link cursors but {} sessions were supplied",
            cp.links.len(),
            sessions.len()
        )));
    }
    if cp.aligned.is_some() {
        return Err(TransportError::Setup(
            "checkpoint is PSI-aligned; resume with run_party_b_multi_aligned_resume".into(),
        ));
    }
    let stages = Arc::clone(&sessions[0].stages);
    for sess in sessions.iter_mut().skip(1) {
        sess.stages = Arc::clone(&stages);
    }
    for (sess, cursor) in sessions.iter_mut().zip(&cp.links) {
        apply_mode(sess, tc.mode);
        sess.restore_cursor(cursor);
    }
    drive_party_b_multi(
        sessions, tc, train, test, cp.model, cp.losses, cp.epoch, cp.batch, stages, None,
    )
}

/// The shared multi-guest Party B epoch loop (see [`drive_party_a`]).
#[allow(clippy::too_many_arguments)]
fn drive_party_b_multi(
    sessions: &mut [Session],
    tc: &FedTrainConfig,
    train: &Dataset,
    test: &Dataset,
    mut model: MultiPartyBModel,
    mut losses: Vec<f64>,
    start_epoch: u64,
    start_batch: u64,
    stages: Arc<crate::engine::StageTimes>,
    aligned: Option<AlignCursor>,
) -> TransportResult<MultiPartyBRun> {
    let bpe = BatchIter::new(train.rows(), tc.base.batch_size, 0).batches_per_epoch() as u64;
    let mut global = start_epoch * bpe + start_batch;
    let mut sw = Stopwatch::new();
    sw.start();
    for epoch in (start_epoch as usize)..tc.base.epochs {
        let skip = if epoch as u64 == start_epoch {
            start_batch as usize
        } else {
            0
        };
        run_epoch(
            tc.mode,
            train,
            tc.base.batch_size,
            tc.base.seed ^ epoch as u64,
            skip,
            |batch| {
                losses.push(model.train_batch(sessions, &batch)?);
                if let Some(cad) = &tc.checkpoint {
                    if (global + 1) % cad.every_batches.max(1) == 0 {
                        let cursors: Vec<_> =
                            sessions.iter().map(Session::capture_cursor).collect();
                        let blob = persist::export_checkpoint_multi_b(
                            epoch as u64,
                            global % bpe + 1,
                            &cursors,
                            aligned.as_ref(),
                            &losses,
                            &model,
                        );
                        write_checkpoint(&cad.path, &blob)?;
                    }
                }
                let eps: Vec<&Endpoint> = sessions.iter().map(|s| &s.ep).collect();
                apply_fault(tc.fault, global, &eps)?;
                global += 1;
                TransportResult::Ok(())
            },
        )?;
    }
    sw.stop();

    // Federated inference.
    let mut logit_rows: Vec<f64> = Vec::new();
    let out = model.out_dim();
    for idx in eval_batches(test.rows(), tc.base.batch_size) {
        let batch = test.select(&idx);
        let logits = model.predict_batch(sessions, &batch)?;
        logit_rows.extend_from_slice(logits.data());
    }
    let test_logits = Dense::from_vec(test.rows(), out, logit_rows);
    let labels = test.labels.as_ref().expect("test labels at Party B");
    let metric = metric_from_logits(&test_logits, labels);
    let bytes = sessions.iter().map(|s| s.ep.stats().bytes()).collect();
    Ok(MultiPartyBRun {
        model,
        losses,
        test_logits,
        test_metric: metric,
        train_secs: sw.secs(),
        bytes_sent_per_link: bytes,
        stage_secs: stages.snapshot(),
    })
}

/// Outcome of a multi-guest federated run: metrics/curves plus every
/// trained model half (per-guest A halves and the multi B half).
pub struct MultiFedOutcome {
    /// Metrics and curves.
    pub report: MultiFedReport,
    /// One trained Party A half per guest, in link order.
    pub guests: Vec<PartyARun>,
    /// Party B's trained multi-guest run (model + per-link traffic).
    pub party_b: MultiPartyBRun,
}

/// The [`FedReport`] counterpart for a multi-guest run, with per-link
/// traffic accounting (the scaling bench plots these).
pub struct MultiFedReport {
    /// Per-mini-batch training loss (Party B's view).
    pub losses: Vec<f64>,
    /// Test metric (AUC for binary, accuracy for multi-class).
    pub test_metric: f64,
    /// Wall-clock seconds spent in Party B's training loop.
    pub train_secs: f64,
    /// Bytes sent A(i)→B per link.
    pub bytes_a_to_b_per_link: Vec<u64>,
    /// Bytes sent B→A(i) per link.
    pub bytes_b_to_a_per_link: Vec<u64>,
    /// Party B's wall-clock per pipeline stage, `(label, secs)`.
    pub stage_secs: Vec<(&'static str, f64)>,
}

/// Train an `M`-guest federated model in process: one thread per guest
/// (each running the unmodified [`run_party_a`] over its own channel
/// pair, exactly as a separate guest process would over TCP), Party B
/// on the caller's thread. `guests_train[i]` / `guests_test[i]` are
/// the `i`-th guest's vertical slices (see `bf_datagen::vsplit_multi`).
///
/// Every guest sends the [`bf_mpc::Msg::Hello`] link announcement
/// before its handshake — the same wire prologue as the TCP
/// deployment — so per-link traffic accounting is backend-independent.
///
/// # Panics
///
/// Panics if `guests_train` is empty or the train/test guest counts
/// differ (harness misuse), and on transport failure — in-process
/// channels cannot fail mid-run.
pub fn train_federated_multi(
    spec: &FedSpec,
    cfg: &FedConfig,
    tc: &FedTrainConfig,
    guests_train: Vec<Dataset>,
    train_b: Dataset,
    guests_test: Vec<Dataset>,
    test_b: Dataset,
    seed: u64,
) -> MultiFedOutcome {
    let m = guests_train.len();
    assert!(m >= 1, "train_federated_multi needs at least one guest");
    assert_eq!(m, guests_test.len(), "train/test guest slice counts differ");
    let mut host_eps = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for (i, (train_a, test_a)) in guests_train.into_iter().zip(guests_test).enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        host_eps.push(ep_b);
        let cfg_a = cfg.clone();
        let spec_a = spec.clone();
        let tc_a = tc.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    send_hello(&ep_a, i, m).expect("guest hello");
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, seed),
                    )
                    .expect("guest handshake");
                    run_party_a(&mut sess, &spec_a, &tc_a, &train_a, &test_a)
                        .expect("guest transport")
                })
                .expect("spawn guest"),
        );
    }
    let ordered = collect_guests(host_eps, m).expect("guest fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, seed))
                .expect("host handshake")
        })
        .collect();
    let party_b =
        run_party_b_multi(&mut sessions, spec, tc, &train_b, &test_b).expect("party B transport");
    let guests: Vec<PartyARun> = handles
        .into_iter()
        .map(|h| h.join().expect("guest panicked"))
        .collect();
    MultiFedOutcome {
        report: MultiFedReport {
            losses: party_b.losses.clone(),
            test_metric: party_b.test_metric,
            train_secs: party_b.train_secs,
            bytes_a_to_b_per_link: guests.iter().map(|g| g.bytes_sent).collect(),
            bytes_b_to_a_per_link: party_b.bytes_sent_per_link.clone(),
            stage_secs: party_b.stage_secs.clone(),
        },
        guests,
        party_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_datagen::{generate, spec as dataset_spec, vsplit};
    use rand::SeedableRng;

    #[test]
    fn federated_lr_learns_and_beats_party_b_only() {
        let ds_spec = dataset_spec("a9a").scaled(50, 1);
        let (train_ds, test_ds) = generate(&ds_spec, 42);
        let train_v = vsplit(&train_ds);
        let test_v = vsplit(&test_ds);

        let cfg = FedConfig::plain();
        let tc = FedTrainConfig {
            base: bf_ml::TrainConfig {
                epochs: 8,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        let outcome = train_federated(
            &FedSpec::Glm { out: 1 },
            &cfg,
            &tc,
            train_v.party_a.clone(),
            train_v.party_b.clone(),
            test_v.party_a.clone(),
            test_v.party_b.clone(),
            7,
        );
        let fed_auc = outcome.report.test_metric;

        // NonFed-Party B baseline.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut pb = bf_ml::GlmModel::new(&mut rng, train_v.party_b.num_dim(), 1);
        let base_cfg = bf_ml::TrainConfig {
            epochs: 8,
            ..Default::default()
        };
        let pb_report = bf_ml::train(&mut pb, &train_v.party_b, &test_v.party_b, &base_cfg);

        assert!(fed_auc > 0.75, "federated AUC {fed_auc}");
        assert!(
            fed_auc > pb_report.test_metric + 0.01,
            "federated {fed_auc} should beat Party-B-only {}",
            pb_report.test_metric
        );
        // Loss decreased.
        let l = &outcome.report.losses;
        assert!(l.last().unwrap() < &l[0]);
        // Traffic was recorded in both directions.
        assert!(outcome.report.bytes_a_to_b > 0);
        assert!(outcome.report.bytes_b_to_a > 0);
    }

    #[test]
    fn single_guest_multi_run_is_bit_identical_to_two_party() {
        // The multi-guest stack's reduction contract at unit-test
        // scale: with M = 1 the Appendix C fan-out must reproduce the
        // two-party run *bit for bit* — same losses, same metric, same
        // traffic (the guest's extra Hello prologue is the only wire
        // difference). The full matrix lives in
        // tests/multiparty_parity.rs.
        let ds_spec = dataset_spec("a9a").scaled(48, 1);
        let (train_ds, test_ds) = generate(&ds_spec, 23);
        let train_v = vsplit(&train_ds);
        let test_v = vsplit(&test_ds);
        let cfg = FedConfig::plain();
        let tc = FedTrainConfig {
            base: bf_ml::TrainConfig {
                epochs: 2,
                batch_size: 16,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        let seed = 77;
        let two = train_federated(
            &FedSpec::Glm { out: 1 },
            &cfg,
            &tc,
            train_v.party_a.clone(),
            train_v.party_b.clone(),
            test_v.party_a.clone(),
            test_v.party_b.clone(),
            seed,
        );
        let multi = train_federated_multi(
            &FedSpec::Glm { out: 1 },
            &cfg,
            &tc,
            vec![train_v.party_a.clone()],
            train_v.party_b.clone(),
            vec![test_v.party_a.clone()],
            test_v.party_b.clone(),
            seed,
        );
        assert_eq!(two.report.losses, multi.report.losses);
        assert_eq!(two.report.test_metric, multi.report.test_metric);
        assert_eq!(
            multi.report.bytes_b_to_a_per_link,
            vec![two.report.bytes_b_to_a]
        );
        let hello = bf_mpc::Msg::Hello { index: 0, total: 1 }.wire_size() as u64;
        assert_eq!(
            multi.report.bytes_a_to_b_per_link,
            vec![two.report.bytes_a_to_b + hello]
        );
        // The reconstructed weights agree too: U_B + Σ V_B(i) at B
        // matches the two-party U_B, and the single guest's half is
        // the unmodified PartyAModel.
        let mm_two = two.party_b.matmul().unwrap();
        let mm_multi = multi.party_b.model.matmul().unwrap();
        assert_eq!(mm_two.u_own().data(), mm_multi.u_own().data());
        assert_eq!(mm_two.v_peer().data(), mm_multi.v_a(0).data());
        assert_eq!(
            two.party_a.matmul().unwrap().u_own().data(),
            multi.guests[0].model.matmul().unwrap().u_own().data()
        );
    }

    #[test]
    fn pipelined_mode_is_bit_identical_to_sync() {
        // The engine's determinism contract, at unit-test scale: same
        // seed, Sync vs Pipelined → the exact same floats and the exact
        // same traffic totals (the full 4-way × backend matrix lives in
        // tests/pipeline_parity.rs).
        let ds_spec = dataset_spec("a9a").scaled(40, 1);
        let (train_ds, test_ds) = generate(&ds_spec, 19);
        let train_v = vsplit(&train_ds);
        let test_v = vsplit(&test_ds);
        let cfg = FedConfig::plain();
        let run = |mode: crate::engine::TrainMode| {
            let tc = FedTrainConfig {
                base: bf_ml::TrainConfig {
                    epochs: 3,
                    batch_size: 16,
                    ..Default::default()
                },
                snapshot_u_a: true,
                mode,
                ..Default::default()
            };
            train_federated(
                &FedSpec::Glm { out: 1 },
                &cfg,
                &tc,
                train_v.party_a.clone(),
                train_v.party_b.clone(),
                test_v.party_a.clone(),
                test_v.party_b.clone(),
                31,
            )
        };
        let sync = run(crate::engine::TrainMode::Sync);
        let pipe = run(crate::engine::TrainMode::pipelined());
        assert_eq!(sync.report.losses, pipe.report.losses);
        assert_eq!(sync.report.test_metric, pipe.report.test_metric);
        assert_eq!(sync.report.bytes_a_to_b, pipe.report.bytes_a_to_b);
        assert_eq!(sync.report.bytes_b_to_a, pipe.report.bytes_b_to_a);
        assert_eq!(
            sync.report.u_a_snapshots.len(),
            pipe.report.u_a_snapshots.len()
        );
        for (s, p) in sync
            .report
            .u_a_snapshots
            .iter()
            .zip(&pipe.report.u_a_snapshots)
        {
            assert_eq!(s.data(), p.data());
        }
    }

    #[test]
    fn federated_matches_collocated_lossless() {
        // The headline lossless property (Figure 12), verified exactly:
        // a plaintext model initialised with the *reconstructed*
        // federated initialisation and trained on the identical batch
        // schedule must end at (numerically) the same weights and test
        // logits as the federated run.
        let ds_spec = dataset_spec("a9a").scaled(100, 1);
        let (train_ds, test_ds) = generate(&ds_spec, 11);
        let train_v = vsplit(&train_ds);
        let test_v = vsplit(&test_ds);

        let cfg = FedConfig::plain();
        let seed = 3;
        let run = |epochs: usize| {
            let tc = FedTrainConfig {
                base: bf_ml::TrainConfig {
                    epochs,
                    ..Default::default()
                },
                snapshot_u_a: false,
                ..Default::default()
            };
            train_federated(
                &FedSpec::Glm { out: 1 },
                &cfg,
                &tc,
                train_v.party_a.clone(),
                train_v.party_b.clone(),
                test_v.party_a.clone(),
                test_v.party_b.clone(),
                seed,
            )
        };
        // Zero-epoch run captures the federated initialisation.
        let init = run(0);
        let w_a0 = init
            .party_a
            .matmul()
            .unwrap()
            .u_own()
            .add(init.party_b.matmul().unwrap().v_peer());
        let w_b0 = init
            .party_b
            .matmul()
            .unwrap()
            .u_own()
            .add(init.party_a.matmul().unwrap().v_peer());

        let epochs = 6;
        let outcome = run(epochs);
        let w_a1 = outcome
            .party_a
            .matmul()
            .unwrap()
            .u_own()
            .add(outcome.party_b.matmul().unwrap().v_peer());
        let w_b1 = outcome
            .party_b
            .matmul()
            .unwrap()
            .u_own()
            .add(outcome.party_a.matmul().unwrap().v_peer());

        // Plaintext twin on the collocated data: W = [W_A ; W_B].
        let mut w0_rows: Vec<f64> = w_a0.data().to_vec();
        w0_rows.extend_from_slice(w_b0.data());
        let w0 = bf_tensor::Dense::from_vec(w_a0.rows() + w_b0.rows(), 1, w0_rows);
        let mut col = bf_ml::GlmModel::from_weights(w0);
        let base_cfg = bf_ml::TrainConfig {
            epochs,
            ..Default::default()
        };
        let col_report = bf_ml::train(&mut col, &train_ds, &test_ds, &base_cfg);

        // Weights equal (up to f64 mask-cancellation noise).
        let w_col = col.weights();
        let w_col_a = w_col.select_rows(&(0..w_a1.rows()).collect::<Vec<_>>());
        let w_col_b =
            w_col.select_rows(&(w_a1.rows()..w_a1.rows() + w_b1.rows()).collect::<Vec<_>>());
        assert!(
            w_a1.approx_eq(&w_col_a, 1e-5),
            "W_A drift {}",
            w_a1.sub(&w_col_a).max_abs()
        );
        assert!(
            w_b1.approx_eq(&w_col_b, 1e-5),
            "W_B drift {}",
            w_b1.sub(&w_col_b).max_abs()
        );
        // Metrics equal.
        let gap = (outcome.report.test_metric - col_report.test_metric).abs();
        assert!(gap < 1e-6, "metric gap {gap}");
    }

    #[test]
    fn federated_wdl_trains_with_paillier() {
        // End-to-end Paillier run on a tiny WDL — exercises both source
        // layers with real ciphertexts.
        let ds_spec = dataset_spec("a9a").scaled(400, 2);
        let (train_ds, test_ds) = generate(&ds_spec, 13);
        let train_v = vsplit(&train_ds);
        let test_v = vsplit(&test_ds);

        let cfg = FedConfig::paillier_test();
        let tc = FedTrainConfig {
            base: bf_ml::TrainConfig {
                epochs: 2,
                batch_size: 64,
                ..Default::default()
            },
            snapshot_u_a: true,
            ..Default::default()
        };
        let outcome = train_federated(
            &FedSpec::Wdl {
                emb_dim: 4,
                deep_hidden: vec![8],
                out: 1,
            },
            &cfg,
            &tc,
            train_v.party_a.clone(),
            train_v.party_b.clone(),
            test_v.party_a,
            test_v.party_b,
            21,
        );
        // Smoke test for protocol mechanics at tiny scale: the metric is
        // a sanity bound, not a quality claim (losslessness is verified
        // exactly elsewhere).
        assert!(outcome.report.test_metric.is_finite());
        assert!(
            outcome.report.test_metric > 0.3,
            "AUC {}",
            outcome.report.test_metric
        );
        assert_eq!(outcome.report.u_a_snapshots.len(), 2);
        assert!(outcome.party_a.embed().is_some());
    }
}
