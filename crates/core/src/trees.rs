//! Federated gradient boosting (SecureBoost-style label scattering).
//!
//! Party B (the host) owns the labels and drives an XGBoost-style
//! second-order boosting loop; each guest owns a vertical slice of the
//! features and never sees a label or a gradient in the clear:
//!
//! ```text
//! host (B, labels)                       guest link l (features)
//! ────────────────                       ───────────────────────
//!                 ←  Support(bucket counts)      (setup, once)
//! OP_NEW_TREE, Ct(⟦g|h⟧)  →                      (per tree)
//! OP_HIST, Support(node rows) →
//!                 ←  Ct(Σ⟦g|h⟧ per (feature, bucket))   (per node)
//! OP_SPLIT, GbSplit(f, b), Support(rows) →
//!                 ←  Support(left rows)      (guest records f ≤ t)
//! OP_DONE →                                         (end of training)
//! ```
//!
//! The host encrypts per-row gradients/hessians under its own Paillier
//! key; guests compute per-(feature, bucket) aggregate sums
//! homomorphically (`t_matmul_support` over a 0/1 bucket-indicator
//! matrix) and return ciphertexts only the host can open. Winning
//! splits on guest features are named back to the guest by *local
//! feature index and bucket id* — the guest alone records the threshold
//! value, the host records only which guest and which record.
//!
//! **Equivalence contract** (`tests/trees_parity.rs`): every histogram
//! sum is recovered as an exact `i64` on the `2^-frac_bits` fixed-point
//! grid — the Paillier codec rounds onto that grid at encryption, the
//! plain backend quantizes onto it, and an indicator coefficient of 1.0
//! is exact — so the federated forest is *bit-identical* to the
//! collocated [`bf_ml::gbdt::CollocatedGbdt`] twin trained on the same
//! rows, for every backend and transport. No tolerance.
//!
//! Serving: the host resolves guest-owned split nodes through one
//! [`Msg::GbBits`] routing bitmap per guest per batch (one round trip,
//! all stored predicates × all batch rows), then walks the forest
//! locally. The batch rides the same [`crate::serve`] queue, coalescing
//! and accounting as the MLP-family servers.

use std::sync::Arc;
use std::time::Instant;

use bf_ml::data::Dataset;
use bf_ml::gbdt::{
    self, bucket_offsets, bucketize, grad_hess, logloss_mean, quantize_i64, FeatureBuckets,
    GbdtParams, Node, NodeHist, SplitOracle, Tree,
};
use bf_mpc::transport::{Msg, TransportError, TransportResult};
use bf_mpc::wire::{bit_at, bit_bytes, pack_bits};
use bf_mpc::Endpoint;
use bf_tensor::{Csr, Dense, Features};

use crate::config::FedConfig;
use crate::multiparty::{collect_guests, send_hello};
use crate::serve::{
    run_server_loop, RequestQueue, ServeConfig, ServeGuestReport, ServeReport, SERVE_SHUTDOWN,
};
use crate::session::{multi_party_seed, Role, Session};

/// Protocol op-codes (`U64` frames) for the boosting loop. Values are
/// outside the serve sentinel space so a mis-wired session fails with a
/// typed error instead of a silent misinterpretation.
pub const OP_NEW_TREE: u64 = 0x7E01;
/// Request a node histogram (follows: `Support` of node rows).
pub const OP_HIST: u64 = 0x7E02;
/// Commit a split (follows: `GbSplit`, `Support` of node rows).
pub const OP_SPLIT: u64 = 0x7E03;
/// End of training.
pub const OP_DONE: u64 = 0x7E04;

/// One guest-recorded split predicate: local feature index and the
/// threshold value (`x ≤ t` goes left). The host never sees this.
#[derive(Clone, Debug, PartialEq)]
pub struct GbRecord {
    /// Guest-local feature index.
    pub feature: u32,
    /// Threshold; rows with `x ≤ threshold` go left.
    pub threshold: f64,
}

/// A guest's share of a trained federated forest: its split predicates
/// in training order (the order the host replays at inference).
#[derive(Clone, Debug, PartialEq)]
pub struct GbdtGuestModel {
    /// Number of local features (bounds-checks `records`).
    pub width: usize,
    /// Recorded predicates, in host split-decision order.
    pub records: Vec<GbRecord>,
}

impl GbdtGuestModel {
    /// Answer a routing bitmap for `rows` of `vals` (the guest's
    /// feature store, dense): bit `record · rows.len() + p` says row
    /// `rows[p]` satisfies record's predicate.
    pub fn routing_bits(&self, vals: &Dense, rows: &[u32]) -> TransportResult<Msg> {
        let mut bools = Vec::with_capacity(self.records.len() * rows.len());
        for rec in &self.records {
            if rec.feature as usize >= vals.cols() {
                return Err(TransportError::Setup(format!(
                    "split record references feature {} of a {}-column store",
                    rec.feature,
                    vals.cols()
                )));
            }
            for &r in rows {
                if r as usize >= vals.rows() {
                    return Err(TransportError::Setup(format!(
                        "prediction request for row {r} of a {}-row store",
                        vals.rows()
                    )));
                }
                bools.push(vals.get(r as usize, rec.feature as usize) <= rec.threshold);
            }
        }
        Ok(Msg::GbBits {
            rows: rows.len() as u64,
            records: self.records.len() as u64,
            bits: pack_bits(&bools),
        })
    }
}

/// The host's share of a trained federated forest: tree topology with
/// global feature ids, its *own* feature thresholds, and the per-guest
/// feature widths that resolve global ids back to links. Thresholds of
/// guest-owned features are absent by design.
#[derive(Clone, Debug, PartialEq)]
pub struct GbdtHostModel {
    /// Boosted trees in training order (global feature indices).
    pub trees: Vec<Tree>,
    /// Features owned by each guest link, in link order.
    pub guest_widths: Vec<usize>,
    /// Host-feature bucket edges (local indexing); resolves thresholds
    /// for host-owned splits.
    pub host_edges: Vec<Vec<f64>>,
    /// Initial margin before any tree.
    pub base_score: f64,
}

/// Who owns a global feature index.
enum Owner {
    Guest { link: usize },
    Host { feature: usize },
}

/// `map[tree][node] = Some((link, record))` for guest-owned split
/// nodes (`None` otherwise), plus the per-link record totals.
type RecordMap = (Vec<Vec<Option<(usize, usize)>>>, Vec<usize>);

impl GbdtHostModel {
    fn owner(&self, global: u32) -> Owner {
        let mut f = global as usize;
        for (link, &w) in self.guest_widths.iter().enumerate() {
            if f < w {
                return Owner::Guest { link };
            }
            f -= w;
        }
        Owner::Host { feature: f }
    }

    /// Per-link record ids of every guest-owned split node, derived by
    /// walking trees and nodes in index order — the exact order the
    /// host committed splits during training, hence the order each
    /// guest appended to [`GbdtGuestModel::records`]. Returns, aligned
    /// with `trees`/`nodes`: `map[tree][node] = Some((link, record))`
    /// for guest splits, `None` otherwise; plus the per-link totals.
    fn record_map(&self) -> RecordMap {
        let mut counts = vec![0usize; self.guest_widths.len()];
        let mut map = Vec::with_capacity(self.trees.len());
        for tree in &self.trees {
            let mut per_node = Vec::with_capacity(tree.nodes.len());
            for node in &tree.nodes {
                per_node.push(match node {
                    Node::Split { feature, .. } => match self.owner(*feature) {
                        Owner::Guest { link, .. } => {
                            let id = counts[link];
                            counts[link] += 1;
                            Some((link, id))
                        }
                        Owner::Host { .. } => None,
                    },
                    Node::Leaf { .. } => None,
                });
            }
            map.push(per_node);
        }
        (map, counts)
    }

    /// Expected [`GbRecord`] count per guest link (for validating a
    /// loaded guest model or an inbound bitmap).
    pub fn records_per_link(&self) -> Vec<usize> {
        self.record_map().1
    }
}

/// Federated batch inference: broadcast the row set, collect one
/// routing bitmap per guest, then walk every tree locally. Returns the
/// served margins (logits) as an `n × 1` matrix. `host_vals` is the
/// host's own feature store as a dense block (possibly 0-column).
pub fn predict_gbdt_host(
    sessions: &[Session],
    model: &GbdtHostModel,
    host_vals: &Dense,
    rows: &[u32],
) -> TransportResult<Dense> {
    if sessions.len() != model.guest_widths.len() {
        return Err(TransportError::Setup(format!(
            "model spans {} guest links but {} sessions are connected",
            model.guest_widths.len(),
            sessions.len()
        )));
    }
    for sess in sessions {
        sess.ep.send(Msg::Support(rows.to_vec()))?;
    }
    let (map, want_records) = model.record_map();
    let mut link_bits: Vec<Vec<u8>> = Vec::with_capacity(sessions.len());
    for (l, sess) in sessions.iter().enumerate() {
        let (brows, brecords, bits) = sess.ep.recv_gb_bits()?;
        if brows != rows.len() as u64 || brecords != want_records[l] as u64 {
            return Err(TransportError::Setup(format!(
                "guest {l} answered a {brows}×{brecords} routing bitmap, \
                 expected {}×{}",
                rows.len(),
                want_records[l]
            )));
        }
        debug_assert_eq!(bits.len(), bit_bytes(brows * brecords));
        link_bits.push(bits);
    }
    let mut out = Dense::zeros(rows.len(), 1);
    for (p, &row) in rows.iter().enumerate() {
        let mut margin = model.base_score;
        for (t, tree) in model.trees.iter().enumerate() {
            let mut node = 0usize;
            loop {
                match &tree.nodes[node] {
                    Node::Leaf { weight } => {
                        margin += weight;
                        break;
                    }
                    Node::Split {
                        feature,
                        bucket,
                        left,
                        right,
                    } => {
                        let go_left = match map[t][node] {
                            Some((link, record)) => {
                                bit_at(&link_bits[link], record * rows.len() + p)
                            }
                            None => {
                                let Owner::Host { feature: hf } = model.owner(*feature) else {
                                    unreachable!("record map covers every guest split");
                                };
                                host_vals.get(row as usize, hf)
                                    <= model.host_edges[hf][*bucket as usize]
                            }
                        };
                        node = if go_left {
                            *left as usize
                        } else {
                            *right as usize
                        };
                    }
                }
            }
        }
        out.set(p, 0, margin);
    }
    Ok(out)
}

/// What the host's training run produced.
#[derive(Debug)]
pub struct GbdtHostRun {
    /// The host share of the forest.
    pub model: GbdtHostModel,
    /// Post-tree training logloss, one entry per boosting round.
    pub losses: Vec<f64>,
    /// Wall-clock seconds spent per tree (timing for the bench).
    pub tree_secs: Vec<f64>,
    /// Bytes the host sent per link over the whole training run.
    pub bytes_sent_per_link: Vec<u64>,
}

/// What a guest's training run produced.
#[derive(Debug)]
pub struct GbdtGuestRun {
    /// The guest share of the forest.
    pub model: GbdtGuestModel,
    /// Bytes this guest sent over the whole training run.
    pub bytes_sent: u64,
}

/// The oracle the host plugs into the shared grower: guest features are
/// answered over the wire, host features locally. Histogram regions are
/// assembled guests-first (link order) then host — the same global
/// feature order the collocated twin sees after `hstack`.
struct HostOracle<'a> {
    sessions: &'a [Session],
    guest_totals: Vec<usize>,
    link_widths: Vec<usize>,
    host_buckets: &'a FeatureBuckets,
    host_offsets: Vec<usize>,
    host_total: usize,
    guest_width_sum: usize,
    gq: &'a [i64],
    hq: &'a [i64],
    frac_bits: u32,
}

impl HostOracle<'_> {
    /// Re-quantize a decrypted aggregate onto the i64 grid. The ring
    /// value is `Σ round(v·2^fb) · 2^fb` at scale 2, so the decoded
    /// f64 is `Σ round(v·2^fb) / 2^fb` — exact until the sum needs
    /// more than 52 bits, far beyond any test or bench shape — and one
    /// rounding multiply recovers the integer.
    fn requantize(&self, v: f64) -> i64 {
        (v * (self.frac_bits as f64).exp2()).round() as i64
    }
}

impl SplitOracle for HostOracle<'_> {
    type Err = TransportError;

    fn hist(&mut self, rows: &[u32]) -> TransportResult<NodeHist> {
        for sess in self.sessions {
            sess.ep.send(Msg::U64(OP_HIST))?;
            sess.ep.send(Msg::Support(rows.to_vec()))?;
        }
        // Host region while the guests work.
        let host_hist = gbdt::local_hist(
            &self.host_buckets.ids,
            &self.host_offsets,
            self.host_total,
            rows,
            self.gq,
            self.hq,
        );
        let mut hist: NodeHist =
            Vec::with_capacity(self.guest_totals.iter().sum::<usize>() + self.host_total);
        for (l, sess) in self.sessions.iter().enumerate() {
            let ct = sess.ep.recv_ct()?;
            if ct.rows() != self.guest_totals[l] || ct.cols() != 2 {
                return Err(TransportError::Setup(format!(
                    "guest {l} answered a {}×{} histogram, expected {}×2",
                    ct.rows(),
                    ct.cols(),
                    self.guest_totals[l]
                )));
            }
            let agg = sess.own_sk.decrypt(&ct);
            for b in 0..agg.rows() {
                hist.push((
                    self.requantize(agg.get(b, 0)),
                    self.requantize(agg.get(b, 1)),
                ));
            }
        }
        hist.extend_from_slice(&host_hist);
        Ok(hist)
    }

    fn route_left(&mut self, feature: u32, bucket: u32, rows: &[u32]) -> TransportResult<Vec<u32>> {
        let mut f = feature as usize;
        // Resolve ownership against the global feature layout
        // (guest links in order, host last).
        if f < self.guest_width_sum {
            let mut link = 0usize;
            let mut local = f;
            while local >= self.link_widths[link] {
                local -= self.link_widths[link];
                link += 1;
            }
            let sess = &self.sessions[link];
            sess.ep.send(Msg::U64(OP_SPLIT))?;
            sess.ep.send(Msg::GbSplit {
                feature: local as u32,
                bucket,
            })?;
            sess.ep.send(Msg::Support(rows.to_vec()))?;
            let left = sess.ep.recv_support()?;
            validate_subset(&left, rows).map_err(|why| {
                TransportError::Setup(format!("guest {link} routing reply {why}"))
            })?;
            Ok(left)
        } else {
            f -= self.guest_width_sum;
            let col = &self.host_buckets.ids[f];
            Ok(rows
                .iter()
                .copied()
                .filter(|&r| col[r as usize] as u32 <= bucket)
                .collect())
        }
    }
}

/// `left` must be an order-preserving subset of `rows`.
fn validate_subset(left: &[u32], rows: &[u32]) -> Result<(), String> {
    let mut it = rows.iter();
    for &l in left {
        if !it.any(|&r| r == l) {
            return Err(format!(
                "contains row {l} outside (or out of order of) the node"
            ));
        }
    }
    Ok(())
}

/// Train the host side of a federated forest over already-handshaken
/// sessions (one per guest link, in link order). `store` holds the
/// host's labels and its own (possibly empty) feature slice.
pub fn run_gbdt_host(
    sessions: &mut [Session],
    store: &Dataset,
    params: &GbdtParams,
) -> TransportResult<GbdtHostRun> {
    let y = store
        .labels
        .as_ref()
        .ok_or_else(|| TransportError::Setup("gbdt host needs labels".into()))?
        .as_binary()
        .to_vec();
    let n = y.len();
    let bytes_base: Vec<u64> = sessions.iter().map(|s| s.ep.stats().bytes()).collect();

    // Setup: per-link bucket counts announce each guest's feature grid.
    let mut guest_nbuckets: Vec<Vec<usize>> = Vec::with_capacity(sessions.len());
    for sess in sessions.iter() {
        let counts = sess.ep.recv_support()?;
        if counts.contains(&0) {
            return Err(TransportError::Setup(
                "guest announced a zero-bucket feature".into(),
            ));
        }
        guest_nbuckets.push(counts.into_iter().map(|c| c as usize).collect());
    }
    let link_widths: Vec<usize> = guest_nbuckets.iter().map(|c| c.len()).collect();
    let guest_width_sum: usize = link_widths.iter().sum();
    let guest_totals: Vec<usize> = guest_nbuckets.iter().map(|c| c.iter().sum()).collect();

    // Host's own feature grid (guests-first global order, host last).
    let empty = Features::Dense(Dense::zeros(n, 0));
    let host_feats = store.num.as_ref().unwrap_or(&empty);
    let host_buckets = bucketize_or_empty(host_feats, params.max_bins);
    let host_nbuckets = host_buckets.nbuckets();
    let (host_offsets, host_total) = bucket_offsets(&host_nbuckets);
    let nbuckets: Vec<usize> = guest_nbuckets
        .iter()
        .flatten()
        .copied()
        .chain(host_nbuckets.iter().copied())
        .collect();

    let mut margins = vec![params.base_score; n];
    let mut trees = Vec::with_capacity(params.trees);
    let mut losses = Vec::with_capacity(params.trees);
    let mut tree_secs = Vec::with_capacity(params.trees);
    for _ in 0..params.trees {
        let started = Instant::now();
        let (g, h) = grad_hess(&margins, &y);
        let gq: Vec<i64> = g
            .iter()
            .map(|&v| quantize_i64(v, params.frac_bits))
            .collect();
        let hq: Vec<i64> = h
            .iter()
            .map(|&v| quantize_i64(v, params.frac_bits))
            .collect();
        // ⟦g|h⟧ under the host's key, per link (independent
        // obfuscation streams).
        let mut gh = Dense::zeros(n, 2);
        for i in 0..n {
            gh.set(i, 0, g[i]);
            gh.set(i, 1, h[i]);
        }
        for sess in sessions.iter() {
            sess.ep.send(Msg::U64(OP_NEW_TREE))?;
            sess.ep.send(Msg::Ct(sess.encrypt_upload(&gh)))?;
        }
        let mut oracle = HostOracle {
            sessions,
            guest_totals: guest_totals.clone(),
            link_widths: link_widths.clone(),
            host_buckets: &host_buckets,
            host_offsets: host_offsets.clone(),
            host_total,
            guest_width_sum,
            gq: &gq,
            hq: &hq,
            frac_bits: params.frac_bits,
        };
        let root: Vec<u32> = (0..n as u32).collect();
        let (tree, assign) = gbdt::grow_tree(params, &nbuckets, &gq, &hq, root, &mut oracle)?;
        for (r, w) in assign {
            margins[r as usize] += w;
        }
        losses.push(logloss_mean(&margins, &y));
        trees.push(tree);
        tree_secs.push(started.elapsed().as_secs_f64());
    }
    for sess in sessions.iter() {
        sess.ep.send(Msg::U64(OP_DONE))?;
    }
    Ok(GbdtHostRun {
        model: GbdtHostModel {
            trees,
            guest_widths: link_widths,
            host_edges: host_buckets.edges,
            base_score: params.base_score,
        },
        losses,
        tree_secs,
        bytes_sent_per_link: sessions
            .iter()
            .zip(&bytes_base)
            .map(|(s, &b)| s.ep.stats().bytes() - b)
            .collect(),
    })
}

/// Bucketize, accepting the 0-column host store.
fn bucketize_or_empty(x: &Features, max_bins: usize) -> FeatureBuckets {
    if x.cols() == 0 {
        FeatureBuckets {
            edges: Vec::new(),
            ids: Vec::new(),
        }
    } else {
        bucketize(x, max_bins)
    }
}

/// Train the guest side of a federated forest: announce bucket counts,
/// then answer encrypted histogram and routing requests until
/// [`OP_DONE`].
pub fn run_gbdt_guest(
    sess: &mut Session,
    store: &Dataset,
    params: &GbdtParams,
) -> TransportResult<GbdtGuestRun> {
    let x = store
        .num
        .as_ref()
        .ok_or_else(|| TransportError::Setup("gbdt guest needs numerical features".into()))?;
    let n = x.rows();
    let bytes_base = sess.ep.stats().bytes();
    let buckets = bucketize(x, params.max_bins);
    let nbuckets = buckets.nbuckets();
    let (offsets, total) = bucket_offsets(&nbuckets);
    sess.ep
        .send(Msg::Support(nbuckets.iter().map(|&c| c as u32).collect()))?;

    // 0/1 bucket-indicator matrix: row r has a single 1.0 per feature,
    // at flat bucket column `offsets[f] + id`. `t_matmul_support` over
    // it contracts ⟦g|h⟧ into per-bucket aggregate sums.
    let mut triplets = Vec::with_capacity(n * nbuckets.len());
    for (f, col) in buckets.ids.iter().enumerate() {
        for (r, &id) in col.iter().enumerate() {
            triplets.push((r, (offsets[f] + id as usize) as u32, 1.0));
        }
    }
    let indicator = Features::Sparse(Csr::from_triplets(n, total, triplets));
    let support: Vec<u32> = (0..total as u32).collect();

    let mut gh: Option<bf_paillier::CtMat> = None;
    let mut records: Vec<GbRecord> = Vec::new();
    loop {
        match sess.ep.recv_u64()? {
            OP_NEW_TREE => {
                let ct = sess.ep.recv_ct()?;
                if ct.rows() != n || ct.cols() != 2 {
                    return Err(TransportError::Setup(format!(
                        "host uploaded a {}×{} gradient tensor for a {n}-row store",
                        ct.rows(),
                        ct.cols()
                    )));
                }
                gh = Some(ct);
            }
            OP_HIST => {
                let rows = sess.ep.recv_support()?;
                let idx = check_node_rows(&rows, n)?;
                let gh = gh.as_ref().ok_or_else(|| {
                    TransportError::Setup("OP_HIST before any OP_NEW_TREE".into())
                })?;
                let agg = sess.peer_pk.t_matmul_support(
                    &indicator.select_rows(&idx),
                    &gh.select_rows(&idx),
                    &support,
                );
                sess.ep.send(Msg::Ct(agg))?;
            }
            OP_SPLIT => {
                let (feature, bucket) = sess.ep.recv_gb_split()?;
                let rows = sess.ep.recv_support()?;
                check_node_rows(&rows, n)?;
                let f = feature as usize;
                if f >= buckets.ids.len() || bucket as usize >= buckets.edges[f].len() {
                    return Err(TransportError::Setup(format!(
                        "host committed split ({feature}, {bucket}) outside \
                         this guest's announced grid"
                    )));
                }
                let col = &buckets.ids[f];
                let left: Vec<u32> = rows
                    .iter()
                    .copied()
                    .filter(|&r| col[r as usize] as u32 <= bucket)
                    .collect();
                sess.ep.send(Msg::Support(left))?;
                records.push(GbRecord {
                    feature,
                    threshold: buckets.edges[f][bucket as usize],
                });
            }
            OP_DONE => break,
            other => {
                return Err(TransportError::Setup(format!(
                    "unknown gbdt op-code {other:#x}"
                )))
            }
        }
    }
    Ok(GbdtGuestRun {
        model: GbdtGuestModel {
            width: x.cols(),
            records,
        },
        bytes_sent: sess.ep.stats().bytes() - bytes_base,
    })
}

/// Validate node-row indices against the store size.
fn check_node_rows(rows: &[u32], n: usize) -> TransportResult<Vec<usize>> {
    rows.iter()
        .map(|&r| {
            let i = r as usize;
            if i < n {
                Ok(i)
            } else {
                Err(TransportError::Setup(format!(
                    "node references row {i} of a {n}-row store"
                )))
            }
        })
        .collect()
}

/// Guest serving loop for a trained forest: answer routing bitmaps
/// against the local feature store until [`SERVE_SHUTDOWN`]. The tree
/// counterpart of [`crate::serve::serve_party_a`].
pub fn serve_gbdt_guest(
    sess: &mut Session,
    model: &GbdtGuestModel,
    store: &Dataset,
) -> TransportResult<ServeGuestReport> {
    let vals = store
        .num
        .as_ref()
        .ok_or_else(|| TransportError::Setup("gbdt guest needs numerical features".into()))?
        .to_dense();
    let bytes_base = sess.ep.stats().bytes();
    let mut batches = 0u64;
    let mut rows_served = 0u64;
    loop {
        match sess.ep.recv()? {
            Msg::Support(rows) => {
                let reply = model.routing_bits(&vals, &rows)?;
                sess.ep.send(reply)?;
                batches += 1;
                rows_served += rows.len() as u64;
            }
            Msg::U64(v) if v == SERVE_SHUTDOWN => break,
            Msg::U64(v) => {
                return Err(TransportError::Setup(format!(
                    "unexpected U64 {v:#x} in serve mode (not the shutdown sentinel)"
                )))
            }
            other => {
                return Err(TransportError::TypeMismatch {
                    expected: "Support",
                    got: other.kind(),
                })
            }
        }
    }
    Ok(ServeGuestReport {
        batches,
        rows: rows_served,
        bytes_sent: sess.ep.stats().bytes() - bytes_base,
    })
}

/// Host serving loop for a trained forest over the standard request
/// queue: identical coalescing, rejection and accounting semantics to
/// [`crate::serve::serve_party_b_multi`], with the federated forward
/// replaced by [`predict_gbdt_host`].
pub fn serve_gbdt_host(
    sessions: &mut [Session],
    model: &GbdtHostModel,
    store: &Dataset,
    cfg: &ServeConfig,
    queue: RequestQueue,
) -> TransportResult<ServeReport> {
    let n = store.rows();
    let empty = Features::Dense(Dense::zeros(n, 0));
    let host_vals = store.num.as_ref().unwrap_or(&empty).to_dense();
    let stats: Vec<_> = sessions.iter().map(|s| Arc::clone(s.ep.stats())).collect();
    let bytes_base: u64 = stats.iter().map(|s| s.bytes()).sum();
    let loop_result = run_server_loop(
        cfg,
        n,
        queue,
        &mut || stats.iter().map(|s| s.bytes()).sum::<u64>() - bytes_base,
        &mut |rows| predict_gbdt_host(sessions, model, &host_vals, rows),
    );
    let mut report = match loop_result {
        Ok(r) => r,
        Err(e) => {
            for sess in sessions.iter() {
                let _ = sess.ep.send(Msg::U64(SERVE_SHUTDOWN));
            }
            return Err(e);
        }
    };
    for sess in sessions.iter() {
        sess.ep.send(Msg::U64(SERVE_SHUTDOWN))?;
    }
    report.bytes_sent = stats.iter().map(|s| s.bytes()).sum::<u64>() - bytes_base;
    Ok(report)
}

/// Everything a federated boosting run produced, both sides.
#[derive(Debug)]
pub struct GbdtFedOutcome {
    /// The host's run (model share, losses, timing, per-link traffic).
    pub host: GbdtHostRun,
    /// Guest runs in link order.
    pub guests: Vec<GbdtGuestRun>,
}

/// In-process federated training harness over channel transports: one
/// host thread (the caller) and one spawned thread per guest, wired
/// exactly like the MLP-family `train_federated_multi` (hello fan-in,
/// per-link seeds). `guests` are the guest feature slices in link
/// order; `host_store` has the labels (and the host's feature slice).
pub fn train_gbdt(
    cfg: &FedConfig,
    params: &GbdtParams,
    guests: Vec<Dataset>,
    host_store: &Dataset,
    seed: u64,
) -> GbdtFedOutcome {
    let m = guests.len();
    assert!(m >= 1, "train_gbdt needs at least one guest");
    let mut host_eps = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for (i, store_a) in guests.into_iter().enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        host_eps.push(ep_b);
        let cfg_a = cfg.clone();
        let params_a = params.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("gbdt-guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    send_hello(&ep_a, i, m).expect("guest hello");
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, seed),
                    )
                    .expect("guest handshake");
                    run_gbdt_guest(&mut sess, &store_a, &params_a).expect("guest transport")
                })
                .expect("spawn guest"),
        );
    }
    let ordered = collect_guests(host_eps, m).expect("guest fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, seed))
                .expect("host handshake")
        })
        .collect();
    let host = run_gbdt_host(&mut sessions, host_store, params).expect("host transport");
    let guests = handles
        .into_iter()
        .map(|h| h.join().expect("guest panicked"))
        .collect();
    GbdtFedOutcome { host, guests }
}

/// Pre-handshaken guest runner for transports the caller sets up
/// (e.g. TCP): hello, handshake, train — the guest half of
/// [`train_gbdt`] as a standalone building block.
pub fn gbdt_guest_over(
    ep: Endpoint,
    cfg: FedConfig,
    params: &GbdtParams,
    link: usize,
    total: usize,
    store: &Dataset,
    seed: u64,
) -> TransportResult<GbdtGuestRun> {
    send_hello(&ep, link, total)?;
    let mut sess = Session::handshake(ep, cfg, Role::A, multi_party_seed(Role::A, link, seed))?;
    run_gbdt_guest(&mut sess, store, params)
}
