//! Property tests for the multi-party MatMul source layer (paper
//! Appendix C, Algorithm 3): for *arbitrary* guest counts, shapes and
//! gradient streams — including `M = 1`, 0-row batches and 1×1
//! matrices — the reconstruction `W_B = U_B + Σ_i V_B(i)`,
//! `W_A(i) = U_A(i) + V_A(i)` must match a reference dense matmul, and
//! `forward ∘ backward` must keep every share pair consistent after
//! SGD steps (verified by re-running a forward against the
//! reconstructed post-update weights).

use bf_tensor::{Dense, Features};
use blindfl::config::FedConfig;
use blindfl::multiparty::MultiMatMulB;
use blindfl::session::{Role, Session};
use blindfl::source::matmul::{aggregate_a, MatMulSource};
use proptest::prelude::*;

/// Drive `steps` train rounds (forward + backward) and one eval
/// forward through the real M-thread runtime; returns every trained
/// half plus the final aggregated output.
fn multi_roundtrip(
    xs_a: Vec<Features>,
    x_b: Features,
    out: usize,
    grads: Vec<Dense>,
) -> (Vec<MatMulSource>, MultiMatMulB, Dense) {
    let cfg = FedConfig::plain();
    let steps = grads.len();
    let mut eps_b = Vec::new();
    let mut handles = Vec::new();
    for (i, x_a) in xs_a.into_iter().enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        eps_b.push(ep_b);
        let cfg_a = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, 500 + i as u64).unwrap();
            let mut layer = MatMulSource::init(&mut sess, x_a.cols(), out).unwrap();
            for _ in 0..steps {
                let z = layer.forward(&mut sess, &x_a, true).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer.backward_a(&mut sess).unwrap();
            }
            let z = layer.forward(&mut sess, &x_a, false).unwrap();
            aggregate_a(&sess, z).unwrap();
            layer
        }));
    }
    let mut sessions: Vec<Session> = eps_b
        .into_iter()
        .enumerate()
        .map(|(i, ep)| Session::handshake(ep, cfg.clone(), Role::B, 900 + i as u64).unwrap())
        .collect();
    let mut layer_b = MultiMatMulB::init(&mut sessions, x_b.cols(), out).unwrap();
    for g in &grads {
        let _ = layer_b.forward(&mut sessions, &x_b, true).unwrap();
        layer_b.backward(&mut sessions, g).unwrap();
    }
    let z = layer_b.forward(&mut sessions, &x_b, false).unwrap();
    let layers_a = handles
        .into_iter()
        .map(|h| h.join().expect("guest thread"))
        .collect();
    (layers_a, layer_b, z)
}

/// Reference: plain dense matmul over the reconstructed weights.
fn reference(
    layers_a: &[MatMulSource],
    layer_b: &MultiMatMulB,
    xs_a: &[Features],
    x_b: &Features,
    rows: usize,
    out: usize,
) -> Dense {
    let mut want = Dense::zeros(rows, out);
    let mut w_b = layer_b.u_own().clone();
    for (i, la) in layers_a.iter().enumerate() {
        let w_a = la.u_own().add(layer_b.v_a(i));
        want.add_assign(&xs_a[i].matmul(&w_a));
        w_b.add_assign(la.v_peer());
    }
    want.add_assign(&x_b.matmul(&w_b));
    want
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Forward reconstruction across random shapes: `M ∈ {1, 2, 3}`
    /// guests, batch rows down to 0, dims down to 1×1.
    #[test]
    fn forward_matches_reference_matmul(
        ins in prop::collection::vec(1usize..=3, 1..=3),
        in_b in 1usize..=3,
        rows in 0usize..=4,
        out in 1usize..=2,
        seed in 0u64..1000,
    ) {
        let m = ins.len();
        let xs_a: Vec<Features> = (0..m)
            .map(|i| {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    seed * 31 + i as u64,
                );
                Features::Dense(bf_tensor::init::uniform(&mut rng, rows, ins[i], 1.5))
            })
            .collect();
        let mut rng =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed * 31 + 97);
        let x_b = Features::Dense(bf_tensor::init::uniform(&mut rng, rows, in_b, 1.5));
        let (layers_a, layer_b, z) = multi_roundtrip(xs_a.clone(), x_b.clone(), out, vec![]);
        prop_assert_eq!(layer_b.parties(), m);
        let want = reference(&layers_a, &layer_b, &xs_a, &x_b, rows, out);
        prop_assert!(
            z.approx_eq(&want, 1e-6),
            "forward err {} (m={}, rows={})", z.sub(&want).max_abs(), m, rows
        );
    }

    /// `forward ∘ backward` keeps shares consistent: after 1–2 SGD
    /// steps (including over 0-row batches), a fresh forward still
    /// equals the reference on the reconstructed *post-update* weights
    /// — i.e. every guest's encrypted cache tracked B's plaintext
    /// piece and vice versa.
    #[test]
    fn backward_keeps_shares_consistent(
        ins in prop::collection::vec(1usize..=3, 1..=3),
        in_b in 1usize..=3,
        rows in 0usize..=4,
        out in 1usize..=2,
        steps in 1usize..=2,
        seed in 0u64..1000,
    ) {
        let m = ins.len();
        let xs_a: Vec<Features> = (0..m)
            .map(|i| {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    seed * 37 + i as u64,
                );
                Features::Dense(bf_tensor::init::uniform(&mut rng, rows, ins[i], 1.5))
            })
            .collect();
        let mut rng =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed * 37 + 91);
        let x_b = Features::Dense(bf_tensor::init::uniform(&mut rng, rows, in_b, 1.5));
        let grads: Vec<Dense> = (0..steps)
            .map(|_| bf_tensor::init::uniform(&mut rng, rows, out, 0.2))
            .collect();
        let (layers_a, layer_b, z) = multi_roundtrip(xs_a.clone(), x_b.clone(), out, grads);
        let want = reference(&layers_a, &layer_b, &xs_a, &x_b, rows, out);
        prop_assert!(
            z.approx_eq(&want, 1e-6),
            "post-update forward err {} (m={}, rows={}, steps={})",
            z.sub(&want).max_abs(), m, rows, steps
        );
    }
}
