//! Persistence contracts (see `docs/SERVING.md` §persistence):
//!
//! 1. **Byte-exact round trip** — for arbitrary model shapes (dims
//!    down to 1×1 and 0-width feature blocks, trained over batches
//!    including 0-row ones), `export(import(export(m))) == export(m)`
//!    bit for bit, for both party halves and the multi-guest host
//!    half, under the Plain and Paillier backends.
//! 2. **Bit-identical resume** — a training run that round-trips both
//!    model halves through bytes mid-run produces the *exact* loss
//!    curve of the uninterrupted run: the blobs capture every piece,
//!    momentum buffer and ciphertext cache the optimizer needs.

use bf_ml::data::{BatchIter, Dataset, Labels};
use bf_tensor::Features;
use blindfl::config::FedConfig;
use blindfl::models::{FedSpec, MultiPartyBModel, PartyAModel, PartyBModel};
use blindfl::persist::{
    export_checkpoint_a, export_checkpoint_b, export_checkpoint_multi_b, export_multi_party_b,
    export_party_a, export_party_b, import_checkpoint_a, import_checkpoint_b,
    import_checkpoint_multi_b, import_multi_party_b, import_party_a, import_party_b, AlignCursor,
    LinkCursor,
};
use blindfl::session::{multi_party_seed, run_pair, Role, Session};
use proptest::prelude::*;
use rand::SeedableRng;

/// `label_classes`: 0 = unlabelled (a Party A view), 1 = binary,
/// `n > 1` = n-class (matches a width-`n` model output).
fn toy_data(
    rows: usize,
    num_dim: usize,
    cat_vocabs: &[u32],
    seed: u64,
    label_classes: usize,
) -> Dataset {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let num = Some(Features::Dense(bf_tensor::init::uniform(
        &mut rng, rows, num_dim, 1.0,
    )));
    let cat = (!cat_vocabs.is_empty()).then(|| {
        let local: Vec<u32> = (0..rows * cat_vocabs.len())
            .map(|i| rng.random_range(0..cat_vocabs[i % cat_vocabs.len()]))
            .collect();
        bf_tensor::CatBlock::from_local(rows, cat_vocabs, local)
    });
    let labels = match label_classes {
        0 => None,
        1 => Some(Labels::Binary((0..rows).map(|r| (r % 2) as f64).collect())),
        classes => Some(Labels::Multi {
            classes,
            y: (0..rows).map(|r| (r % classes) as u32).collect(),
        }),
    };
    Dataset { num, cat, labels }
}

/// Train a two-party model for `steps` mini-batches (so velocities,
/// piece updates and ciphertext-cache refreshes are all non-trivial),
/// then export both halves.
fn train_and_export(
    cfg: &FedConfig,
    spec: &FedSpec,
    data_a: Dataset,
    data_b: Dataset,
    batches: Vec<Vec<usize>>,
    seed: u64,
) -> (Vec<u8>, Vec<u8>) {
    let spec_a = spec.clone();
    let spec_b = spec.clone();
    let batches_a = batches.clone();
    run_pair(
        cfg,
        seed,
        move |mut sess| {
            let mut model = PartyAModel::init(&mut sess, &spec_a, &data_a).unwrap();
            for idx in &batches_a {
                model.forward(&mut sess, &data_a.select(idx), true).unwrap();
                model.backward(&mut sess).unwrap();
            }
            export_party_a(&model)
        },
        move |mut sess| {
            let mut model = PartyBModel::init(&mut sess, &spec_b, &data_b).unwrap();
            for idx in &batches {
                model.train_batch(&mut sess, &data_b.select(idx)).unwrap();
            }
            export_party_b(&model)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Byte-exact round trip across random GLM shapes (Plain backend;
    /// dims down to 1×1, batches down to 0 rows).
    #[test]
    fn glm_roundtrip_is_byte_exact(
        in_a in 1usize..=4,
        in_b in 1usize..=4,
        out in 1usize..=2,
        rows in 1usize..=6,
        steps in 0usize..=2,
        zero_row_batch in 0u8..=1,
        seed in 0u64..1000,
    ) {
        let cfg = FedConfig::plain();
        let spec = FedSpec::Glm { out };
        let data_a = toy_data(rows, in_a, &[], seed * 3 + 1, 0);
        let data_b = toy_data(rows, in_b, &[], seed * 3 + 2, out);
        let mut batches: Vec<Vec<usize>> = (0..steps).map(|_| (0..rows).collect()).collect();
        if zero_row_batch == 1 {
            // A 0-row mini-batch must neither corrupt state nor leave
            // residue in the exported blob.
            batches.push(Vec::new());
        }
        let (bytes_a, bytes_b) = train_and_export(&cfg, &spec, data_a, data_b, batches, seed);
        let model_a = import_party_a(&bytes_a).unwrap();
        let model_b = import_party_b(&bytes_b).unwrap();
        prop_assert_eq!(export_party_a(&model_a), bytes_a);
        prop_assert_eq!(export_party_b(&model_b), bytes_b);
    }
}

#[test]
fn paillier_wdl_roundtrip_is_byte_exact() {
    // The densest state any model carries: a WDL half holds both
    // source layers (nine plaintext pieces + eight momentum buffers +
    // four real-Paillier ciphertext caches) plus the deep-tower top.
    let cfg = FedConfig::paillier_test();
    let spec = FedSpec::Wdl {
        emb_dim: 2,
        deep_hidden: vec![3],
        out: 1,
    };
    let data_a = toy_data(6, 3, &[4, 3], 11, 0);
    let data_b = toy_data(6, 2, &[5], 12, 1);
    let batches = vec![(0..6).collect::<Vec<_>>(), (0..3).collect()];
    let (bytes_a, bytes_b) = train_and_export(&cfg, &spec, data_a, data_b, batches, 21);
    let model_a = import_party_a(&bytes_a).unwrap();
    let model_b = import_party_b(&bytes_b).unwrap();
    assert_eq!(export_party_a(&model_a), bytes_a);
    assert_eq!(export_party_b(&model_b), bytes_b);
    // The plaintext pieces survived verbatim too (spot check through
    // the inspection accessors).
    let m2 = import_party_a(&bytes_a).unwrap();
    assert_eq!(
        m2.matmul().unwrap().u_own().data(),
        model_a.matmul().unwrap().u_own().data()
    );
    assert_eq!(
        m2.embed().unwrap().s_own().data(),
        model_a.embed().unwrap().s_own().data()
    );
}

#[test]
fn mlp_and_dlrm_tops_roundtrip() {
    // Cover the remaining Top variants (hidden towers with their
    // per-layer momentum buffers).
    for (spec, cat) in [
        (
            FedSpec::Mlp {
                widths: vec![4, 3, 1],
            },
            Vec::new(),
        ),
        (
            FedSpec::Dlrm {
                emb_dim: 2,
                vec_dim: 3,
                top_hidden: vec![4],
            },
            vec![3u32, 4],
        ),
    ] {
        let cfg = FedConfig::plain();
        let data_a = toy_data(5, 3, &cat, 31, 0);
        let data_b = toy_data(5, 4, &cat, 32, 1);
        let batches = vec![(0..5).collect::<Vec<_>>()];
        let (bytes_a, bytes_b) = train_and_export(&cfg, &spec, data_a, data_b, batches, 33);
        assert_eq!(
            export_party_a(&import_party_a(&bytes_a).unwrap()),
            bytes_a,
            "spec {spec:?}"
        );
        assert_eq!(
            export_party_b(&import_party_b(&bytes_b).unwrap()),
            bytes_b,
            "spec {spec:?}"
        );
    }
}

#[test]
fn multi_party_b_roundtrip_is_byte_exact() {
    // M = 2 guests, WDL spec: exercises MultiMatMulB's per-link
    // triples and MultiEmbedB's per-link pairwise submodels.
    let m = 2usize;
    let cfg = FedConfig::plain();
    let spec = FedSpec::Wdl {
        emb_dim: 2,
        deep_hidden: vec![3],
        out: 1,
    };
    let rows = 6;
    let guests: Vec<Dataset> = (0..m)
        .map(|i| toy_data(rows, 2 + i, &[3], 40 + i as u64, 0))
        .collect();
    let data_b = toy_data(rows, 3, &[4], 50, 1);

    let mut host_eps = Vec::new();
    let mut handles = Vec::new();
    for (i, data_a) in guests.into_iter().enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        host_eps.push(ep_b);
        let cfg_a = cfg.clone();
        let spec_a = spec.clone();
        handles.push(std::thread::spawn(move || {
            let mut sess =
                Session::handshake(ep_a, cfg_a, Role::A, multi_party_seed(Role::A, i, 60)).unwrap();
            let mut model = PartyAModel::init(&mut sess, &spec_a, &data_a).unwrap();
            for _ in 0..2 {
                let batch = data_a.select(&(0..rows).collect::<Vec<_>>());
                model.forward(&mut sess, &batch, true).unwrap();
                model.backward(&mut sess).unwrap();
            }
            export_party_a(&model)
        }));
    }
    let mut sessions: Vec<Session> = host_eps
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, 60)).unwrap()
        })
        .collect();
    let mut model_b = MultiPartyBModel::init(&mut sessions, &spec, &data_b).unwrap();
    for _ in 0..2 {
        let batch = data_b.select(&(0..rows).collect::<Vec<_>>());
        model_b.train_batch(&mut sessions, &batch).unwrap();
    }
    let bytes_b = export_multi_party_b(&model_b);
    let reloaded = import_multi_party_b(&bytes_b).unwrap();
    assert_eq!(export_multi_party_b(&reloaded), bytes_b);
    assert_eq!(reloaded.matmul().unwrap().parties(), m);
    assert_eq!(reloaded.embed().unwrap().parties(), m);
    for h in handles {
        let bytes_a = h.join().unwrap();
        assert_eq!(export_party_a(&import_party_a(&bytes_a).unwrap()), bytes_a);
    }
}

/// Loss curve of a 4-epoch run; when `reload_after` is set, both model
/// halves are torn down to bytes and rebuilt at that epoch boundary
/// mid-run (sessions stay, exactly like a serving node reloading its
/// model). Bit-identical curves ⇔ the blobs are complete.
fn losses_with_optional_reload(cfg: &FedConfig, reload_after: Option<usize>) -> Vec<u64> {
    let rows = 24;
    let bs = 8;
    let epochs = 4;
    let data_a = toy_data(rows, 5, &[], 71, 0);
    let data_b = toy_data(rows, 4, &[], 72, 1);
    let spec = FedSpec::Glm { out: 1 };
    let spec_a = spec.clone();
    let data_a2 = data_a.clone();
    let (_, losses) = run_pair(
        cfg,
        77,
        move |mut sess| {
            let mut model = PartyAModel::init(&mut sess, &spec_a, &data_a2).unwrap();
            for epoch in 0..epochs {
                if reload_after == Some(epoch) {
                    model = import_party_a(&export_party_a(&model)).unwrap();
                }
                for idx in BatchIter::new(rows, bs, 7 ^ epoch as u64) {
                    model
                        .forward(&mut sess, &data_a2.select(&idx), true)
                        .unwrap();
                    model.backward(&mut sess).unwrap();
                }
            }
        },
        move |mut sess| {
            let mut model = PartyBModel::init(&mut sess, &spec, &data_b).unwrap();
            let mut losses = Vec::new();
            for epoch in 0..epochs {
                if reload_after == Some(epoch) {
                    model = import_party_b(&export_party_b(&model)).unwrap();
                }
                for idx in BatchIter::new(rows, bs, 7 ^ epoch as u64) {
                    let loss = model.train_batch(&mut sess, &data_b.select(&idx)).unwrap();
                    losses.push(loss.to_bits());
                }
            }
            losses
        },
    );
    losses
}

#[test]
fn reloaded_model_resumes_training_bit_identically_plain() {
    let cfg = FedConfig::plain();
    let unbroken = losses_with_optional_reload(&cfg, None);
    let resumed = losses_with_optional_reload(&cfg, Some(2));
    assert_eq!(unbroken, resumed);
    // The curve actually moved (the equality above is not vacuous).
    assert_ne!(unbroken.first(), unbroken.last());
}

#[test]
fn reloaded_model_resumes_training_bit_identically_paillier() {
    // Same contract under real ciphertext caches: if the export missed
    // (or re-encrypted) any ⟦V⟧ cache, the resumed run would diverge.
    let cfg = FedConfig::paillier_test();
    let unbroken = losses_with_optional_reload(&cfg, None);
    let resumed = losses_with_optional_reload(&cfg, Some(2));
    assert_eq!(unbroken, resumed);
}

#[test]
fn truncated_and_corrupted_blobs_are_rejected() {
    let cfg = FedConfig::plain();
    let spec = FedSpec::Glm { out: 1 };
    let data_a = toy_data(4, 3, &[], 81, 0);
    let data_b = toy_data(4, 2, &[], 82, 1);
    let (bytes_a, bytes_b) =
        train_and_export(&cfg, &spec, data_a, data_b, vec![vec![0, 1, 2, 3]], 83);
    // Every proper prefix fails with a typed error, never a panic.
    for cut in 0..bytes_a.len() {
        assert!(import_party_a(&bytes_a[..cut]).is_err(), "prefix {cut}");
    }
    // Trailing garbage is rejected too (the payload is self-delimiting).
    let mut padded = bytes_b.clone();
    padded.push(0);
    assert!(import_party_b(&padded).is_err());
    // Cross-kind confusion is a typed error.
    assert!(import_party_b(&bytes_a).is_err());
    assert!(import_multi_party_b(&bytes_b).is_err());
}

/// Mid-epoch checkpoint blobs (BFMD kinds 4–6) obey the same
/// contracts as the model kinds: byte-exact round trip over arbitrary
/// shapes and cursors, typed rejection of truncation, trailing
/// garbage, header corruption, and cross-kind confusion.
mod checkpoints {
    use super::*;
    use proptest::collection::vec as pvec;

    /// Expand one seed into a full-entropy cursor (the vendored
    /// proptest has no tuple strategies; the cursor is still arbitrary
    /// through the expansion).
    fn cursor_from(seed: u64) -> LinkCursor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        LinkCursor {
            rng: [rng.random(), rng.random(), rng.random(), rng.random()],
            obf_drawn: rng.random(),
            bytes_sent: rng.random(),
            msgs_sent: rng.random(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

        /// Round trip + rejection sweep over random GLM shapes, batch
        /// cursors, loss prefixes, and link cursors.
        #[test]
        fn checkpoint_roundtrip_is_byte_exact(
            in_a in 1usize..=4,
            in_b in 1usize..=4,
            rows in 1usize..=6,
            epoch in 0u64..=3,
            batch in 0u64..=5,
            cur_seed in any::<u64>(),
            losses in pvec(any::<f64>(), 0..8),
            seed in 0u64..1000,
        ) {
            let cur = cursor_from(cur_seed);
            let cfg = FedConfig::plain();
            let spec = FedSpec::Glm { out: 1 };
            let data_a = toy_data(rows, in_a, &[], seed * 3 + 1, 0);
            let data_b = toy_data(rows, in_b, &[], seed * 3 + 2, 1);
            let (bytes_a, bytes_b) =
                train_and_export(&cfg, &spec, data_a, data_b, vec![(0..rows).collect()], seed);
            let model_a = import_party_a(&bytes_a).unwrap();
            let model_b = import_party_b(&bytes_b).unwrap();

            let cp_a = export_checkpoint_a(epoch, batch, &cur, None, &model_a);
            let cp_b = export_checkpoint_b(epoch, batch, &cur, None, &losses, &model_b);

            // Byte-exact round trip, cursor included.
            let back_a = import_checkpoint_a(&cp_a).unwrap();
            prop_assert_eq!((back_a.epoch, back_a.batch, back_a.link), (epoch, batch, cur));
            prop_assert_eq!(export_checkpoint_a(back_a.epoch, back_a.batch, &back_a.link, back_a.aligned.as_ref(), &back_a.model), cp_a.clone());
            let back_b = import_checkpoint_b(&cp_b).unwrap();
            prop_assert_eq!((back_b.epoch, back_b.batch, back_b.link), (epoch, batch, cur));
            prop_assert_eq!(back_b.losses.len(), losses.len());
            prop_assert_eq!(
                export_checkpoint_b(back_b.epoch, back_b.batch, &back_b.link, back_b.aligned.as_ref(), &back_b.losses, &back_b.model),
                cp_b.clone()
            );

            // Every proper prefix is a typed error, never a panic.
            for cut in 0..cp_a.len() {
                prop_assert!(import_checkpoint_a(&cp_a[..cut]).is_err(), "prefix {}", cut);
            }
            // Trailing garbage is rejected (self-delimiting payload).
            let mut padded = cp_b.clone();
            padded.push(0);
            prop_assert!(import_checkpoint_b(&padded).is_err());

            // Cross-kind confusion is a typed error in every direction:
            // between the checkpoint kinds, and against the pre-v7 model
            // kinds (old decoders reject the new kinds and vice versa).
            prop_assert!(import_checkpoint_b(&cp_a).is_err());
            prop_assert!(import_checkpoint_a(&cp_b).is_err());
            prop_assert!(import_checkpoint_multi_b(&cp_b).is_err());
            prop_assert!(import_party_a(&cp_a).is_err());
            prop_assert!(import_party_b(&cp_b).is_err());
            prop_assert!(import_checkpoint_a(&bytes_a).is_err());
            prop_assert!(import_checkpoint_b(&bytes_b).is_err());

            // Header corruption: a flipped magic or version byte fails.
            for byte in 0..2 {
                let mut bad = cp_a.clone();
                bad[byte] ^= 0xFF;
                prop_assert!(import_checkpoint_a(&bad).is_err(), "header byte {}", byte);
            }
        }
    }

    /// The multi-guest checkpoint kind: cursor-count validation on top
    /// of the shared contracts (the model is borrowed from the
    /// multi-party round-trip harness above).
    #[test]
    fn multi_checkpoint_roundtrip_and_link_count_guard() {
        let m = 2usize;
        let cfg = FedConfig::plain();
        let spec = FedSpec::Glm { out: 1 };
        let rows = 5;
        let data_b = toy_data(rows, 3, &[], 91, 1);

        let mut host_eps = Vec::new();
        let mut handles = Vec::new();
        for i in 0..m {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            host_eps.push(ep_b);
            let cfg_a = cfg.clone();
            let spec_a = spec.clone();
            let data_a = toy_data(rows, 2 + i, &[], 92 + i as u64, 0);
            handles.push(std::thread::spawn(move || {
                let mut sess =
                    Session::handshake(ep_a, cfg_a, Role::A, multi_party_seed(Role::A, i, 93))
                        .unwrap();
                let mut model = PartyAModel::init(&mut sess, &spec_a, &data_a).unwrap();
                let batch = data_a.select(&(0..rows).collect::<Vec<_>>());
                model.forward(&mut sess, &batch, true).unwrap();
                model.backward(&mut sess).unwrap();
            }));
        }
        let mut sessions: Vec<Session> = host_eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, 93))
                    .unwrap()
            })
            .collect();
        let mut model = MultiPartyBModel::init(&mut sessions, &spec, &data_b).unwrap();
        model
            .train_batch(
                &mut sessions,
                &data_b.select(&(0..rows).collect::<Vec<_>>()),
            )
            .unwrap();
        for h in handles {
            h.join().unwrap();
        }

        let links: Vec<LinkCursor> = (0..m as u64)
            .map(|i| LinkCursor {
                rng: [i, i + 1, i + 2, i + 3],
                obf_drawn: 10 * i,
                bytes_sent: 100 * i,
                msgs_sent: i,
            })
            .collect();
        let losses = vec![0.7, 0.65, f64::NAN];
        let cp = export_checkpoint_multi_b(1, 2, &links, None, &losses, &model);
        let back = import_checkpoint_multi_b(&cp).unwrap();
        assert_eq!((back.epoch, back.batch), (1, 2));
        assert_eq!(back.links, links);
        assert_eq!(
            export_checkpoint_multi_b(
                back.epoch,
                back.batch,
                &back.links,
                back.aligned.as_ref(),
                &back.losses,
                &back.model
            ),
            cp
        );

        // A cursor count that disagrees with the embedded model is a
        // typed error (import cross-checks `model.num_links()`).
        let bad = export_checkpoint_multi_b(1, 2, &links[..1], None, &losses, &model);
        assert!(import_checkpoint_multi_b(&bad).is_err());
        // Truncation sweep and cross-kind rejection hold here too.
        for cut in (0..cp.len()).step_by(7) {
            assert!(
                import_checkpoint_multi_b(&cp[..cut]).is_err(),
                "prefix {cut}"
            );
        }
        assert!(import_checkpoint_b(&cp).is_err());
        assert!(import_multi_party_b(&cp).is_err());
    }

    proptest! {
        /// PSI-aligned checkpoints (kinds 9/10): the align-cursor
        /// prefix round-trips byte-exactly, `aligned: None` blobs are
        /// byte-identical to the pre-PSI kinds, truncation anywhere is
        /// a typed error, and non-canonical (unsorted / duplicated)
        /// ID lists are rejected on import.
        #[test]
        fn aligned_checkpoint_roundtrip_and_canonical_ids(
            salt in any::<u64>(),
            raw_ids in pvec(any::<u64>(), 0..12),
            epoch in 0u64..=3,
            batch in 0u64..=5,
            cur_seed in any::<u64>(),
            losses in pvec(any::<f64>(), 0..6),
            seed in 0u64..1000,
        ) {
            let mut ids = raw_ids;
            ids.sort_unstable();
            ids.dedup();
            let align = AlignCursor { salt, ids };
            let cur = cursor_from(cur_seed);
            let cfg = FedConfig::plain();
            let spec = FedSpec::Glm { out: 1 };
            let rows = 4;
            let data_a = toy_data(rows, 2, &[], seed * 3 + 1, 0);
            let data_b = toy_data(rows, 3, &[], seed * 3 + 2, 1);
            let (bytes_a, bytes_b) =
                train_and_export(&cfg, &spec, data_a, data_b, vec![(0..rows).collect()], seed);
            let model_a = import_party_a(&bytes_a).unwrap();
            let model_b = import_party_b(&bytes_b).unwrap();

            let plain_a = export_checkpoint_a(epoch, batch, &cur, None, &model_a);
            let cp_a = export_checkpoint_a(epoch, batch, &cur, Some(&align), &model_a);
            let cp_b = export_checkpoint_b(epoch, batch, &cur, Some(&align), &losses, &model_b);

            // Kind byte differs, payload grows by exactly the prefix.
            prop_assert_eq!(cp_a.len(), plain_a.len() + 16 + 8 * align.ids.len());
            prop_assert_eq!(&cp_a[6..], {
                let mut want = Vec::new();
                want.extend_from_slice(&align.salt.to_le_bytes());
                want.extend_from_slice(&(align.ids.len() as u64).to_le_bytes());
                for id in &align.ids {
                    want.extend_from_slice(&id.to_le_bytes());
                }
                want.extend_from_slice(&plain_a[6..]);
                want
            });

            let back_a = import_checkpoint_a(&cp_a).unwrap();
            prop_assert_eq!(back_a.aligned.as_ref(), Some(&align));
            prop_assert_eq!((back_a.epoch, back_a.batch, back_a.link), (epoch, batch, cur));
            prop_assert_eq!(
                export_checkpoint_a(back_a.epoch, back_a.batch, &back_a.link, back_a.aligned.as_ref(), &back_a.model),
                cp_a.clone()
            );
            let back_b = import_checkpoint_b(&cp_b).unwrap();
            prop_assert_eq!(back_b.aligned.as_ref(), Some(&align));
            prop_assert_eq!(
                export_checkpoint_b(back_b.epoch, back_b.batch, &back_b.link, back_b.aligned.as_ref(), &back_b.losses, &back_b.model),
                cp_b.clone()
            );

            // Truncation sweep never panics, and cross-kind confusion
            // (aligned A as aligned B, aligned vs model kinds) fails.
            for cut in 0..cp_a.len() {
                prop_assert!(import_checkpoint_a(&cp_a[..cut]).is_err(), "prefix {}", cut);
            }
            prop_assert!(import_checkpoint_b(&cp_a).is_err());
            prop_assert!(import_checkpoint_a(&cp_b).is_err());
            prop_assert!(import_checkpoint_multi_b(&cp_a).is_err());
            prop_assert!(import_party_a(&cp_a).is_err());

            // Non-canonical ID lists are malformed: descending order
            // and duplicates both fail on import.
            if align.ids.len() >= 2 {
                let mut swapped = align.clone();
                swapped.ids.reverse();
                let bad = export_with_raw_ids(epoch, batch, &cur, &swapped, &model_a);
                prop_assert!(import_checkpoint_a(&bad).is_err());
                let mut dup = align.clone();
                dup.ids[0] = dup.ids[1];
                let bad = export_with_raw_ids(epoch, batch, &cur, &dup, &model_a);
                prop_assert!(import_checkpoint_a(&bad).is_err());
            }
        }
    }

    /// Re-encode an aligned Party A checkpoint with an arbitrary
    /// (possibly non-canonical) ID list by splicing raw bytes — the
    /// exporter itself debug-asserts canonical order, so malformed
    /// blobs have to be built by hand.
    fn export_with_raw_ids(
        epoch: u64,
        batch: u64,
        cur: &LinkCursor,
        align: &AlignCursor,
        model: &PartyAModel,
    ) -> Vec<u8> {
        let canon = AlignCursor {
            salt: align.salt,
            ids: {
                let mut ids = align.ids.clone();
                ids.sort_unstable();
                ids.dedup();
                ids
            },
        };
        let good = export_checkpoint_a(epoch, batch, cur, Some(&canon), model);
        let body_at = 6 + 16 + 8 * canon.ids.len();
        let mut out = good[..6].to_vec();
        out.extend_from_slice(&align.salt.to_le_bytes());
        out.extend_from_slice(&(align.ids.len() as u64).to_le_bytes());
        for id in &align.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&good[body_at..]);
        out
    }

    /// Train a tiny `m`-guest multi model over in-process channels and
    /// return Party B's half (enough structure for checkpoint tests).
    fn train_multi_model(m: usize, rows: usize, seed: u64) -> MultiPartyBModel {
        let cfg = FedConfig::plain();
        let spec = FedSpec::Glm { out: 1 };
        let data_b = toy_data(rows, 3, &[], seed, 1);
        let mut host_eps = Vec::new();
        let mut handles = Vec::new();
        for i in 0..m {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            host_eps.push(ep_b);
            let cfg_a = cfg.clone();
            let spec_a = spec.clone();
            let data_a = toy_data(rows, 2 + i, &[], seed + 1 + i as u64, 0);
            handles.push(std::thread::spawn(move || {
                let mut sess =
                    Session::handshake(ep_a, cfg_a, Role::A, multi_party_seed(Role::A, i, seed))
                        .unwrap();
                let mut model = PartyAModel::init(&mut sess, &spec_a, &data_a).unwrap();
                let batch = data_a.select(&(0..rows).collect::<Vec<_>>());
                model.forward(&mut sess, &batch, true).unwrap();
                model.backward(&mut sess).unwrap();
            }));
        }
        let mut sessions: Vec<Session> = host_eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, seed))
                    .unwrap()
            })
            .collect();
        let mut model = MultiPartyBModel::init(&mut sessions, &spec, &data_b).unwrap();
        model
            .train_batch(
                &mut sessions,
                &data_b.select(&(0..rows).collect::<Vec<_>>()),
            )
            .unwrap();
        for h in handles {
            h.join().unwrap();
        }
        model
    }

    /// The multi-guest aligned kind (11) carries the same prefix.
    #[test]
    fn aligned_multi_checkpoint_roundtrips() {
        let align = AlignCursor {
            salt: 0xD1CE,
            ids: vec![3, 9, 27],
        };
        let links: Vec<LinkCursor> = (0..2u64)
            .map(|i| LinkCursor {
                rng: [i; 4],
                obf_drawn: i,
                bytes_sent: i,
                msgs_sent: i,
            })
            .collect();
        // Tiny two-guest run, then checkpoint with the align prefix.
        let model = train_multi_model(2, 4, 95);
        let cp = export_checkpoint_multi_b(0, 1, &links, Some(&align), &[0.5], &model);
        let back = import_checkpoint_multi_b(&cp).unwrap();
        assert_eq!(back.aligned, Some(align));
        assert_eq!(back.links, links);
        assert!(import_checkpoint_multi_b(&cp[..cp.len() - 1]).is_err());
        assert!(import_checkpoint_b(&cp).is_err());
    }
}
