//! Property tests of the federated source-layer protocols: losslessness
//! and share synchronisation must hold for *arbitrary* shapes, inputs,
//! sparsity patterns and gradient streams — not just the unit tests'
//! fixed examples.

use bf_tensor::{CatBlock, Csr, Dense, Features};
use blindfl::config::FedConfig;
use blindfl::session::run_pair;
use blindfl::source::matmul::{aggregate_a, aggregate_b};
use blindfl::source::{EmbedSource, MatMulSource};
use proptest::prelude::*;

fn dense(rows: usize, cols: usize) -> impl Strategy<Value = Dense> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |v| Dense::from_vec(rows, cols, v))
}

/// Sparse features with arbitrary (possibly empty) rows.
fn sparse(rows: usize, cols: usize) -> impl Strategy<Value = Features> {
    prop::collection::vec(
        prop_oneof![4 => Just(0.0f64), 1 => -2.0f64..2.0],
        rows * cols,
    )
    .prop_map(move |v| Features::Sparse(Csr::from_dense(&Dense::from_vec(rows, cols, v))))
}

fn cat(rows: usize, vocabs: &'static [u32]) -> impl Strategy<Value = CatBlock> {
    let fields = vocabs.len();
    prop::collection::vec(0u32..vocabs.iter().copied().min().unwrap(), rows * fields)
        .prop_map(move |local| CatBlock::from_local(rows, vocabs, local))
}

/// One train step + eval forward through the real two-thread runtime.
fn matmul_roundtrip(
    x_a: Features,
    x_b: Features,
    out: usize,
    grads: Vec<Dense>,
) -> (MatMulSource, MatMulSource, Dense) {
    let cfg = FedConfig::plain();
    let ina = x_a.cols();
    let inb = x_b.cols();
    let gz_a = grads.clone();
    let (a, (b, z)) = run_pair(
        &cfg,
        42,
        move |mut sess| {
            let mut layer = MatMulSource::init(&mut sess, ina, out).unwrap();
            for _ in &gz_a {
                let z = layer.forward(&mut sess, &x_a, true).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer.backward_a(&mut sess).unwrap();
            }
            let z = layer.forward(&mut sess, &x_a, false).unwrap();
            aggregate_a(&sess, z).unwrap();
            layer
        },
        move |mut sess| {
            let mut layer = MatMulSource::init(&mut sess, inb, out).unwrap();
            for g in &grads {
                let z_own = layer.forward(&mut sess, &x_b, true).unwrap();
                let _ = aggregate_b(&sess, z_own).unwrap();
                layer.backward_b(&mut sess, g).unwrap();
            }
            let z_own = layer.forward(&mut sess, &x_b, false).unwrap();
            let z = aggregate_b(&sess, z_own).unwrap();
            (layer, z)
        },
    );
    (a, b, z)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    #[test]
    fn matmul_forward_lossless_any_shape(
        xa in sparse(5, 7),
        xb in dense(5, 4),
        out in 1usize..4,
    ) {
        let (a, b, z) = matmul_roundtrip(xa.clone(), Features::Dense(xb.clone()), out, vec![]);
        let w_a = a.u_own().add(b.v_peer());
        let w_b = b.u_own().add(a.v_peer());
        let want = xa.matmul(&w_a).add(&xb.matmul(&w_b));
        prop_assert!(z.approx_eq(&want, 1e-4), "err {}", z.sub(&want).max_abs());
    }

    #[test]
    fn matmul_stays_synchronized_over_random_gradient_streams(
        xa in sparse(4, 6),
        xb in sparse(4, 5),
        grads in prop::collection::vec(dense(4, 2), 1..4),
    ) {
        let (a, b, z) = matmul_roundtrip(xa.clone(), xb.clone(), 2, grads);
        let w_a = a.u_own().add(b.v_peer());
        let w_b = b.u_own().add(a.v_peer());
        let want = xa.matmul(&w_a).add(&xb.matmul(&w_b));
        prop_assert!(z.approx_eq(&want, 1e-4), "err {}", z.sub(&want).max_abs());
    }

    #[test]
    fn embed_forward_lossless_any_indices(
        xa in cat(3, &[4, 3]),
        xb in cat(3, &[5]),
        grads in prop::collection::vec(dense(3, 2), 0..3),
    ) {
        let cfg = FedConfig::plain();
        let xa2 = xa.clone();
        let xb2 = xb.clone();
        let gz_a = grads.clone();
        let (a, (b, z)) = run_pair(
            &cfg,
            7,
            move |mut sess| {
                let mut layer =
                    EmbedSource::init(&mut sess, xa2.vocab(), xa2.fields(), 2, 2).unwrap();
                for _ in &gz_a {
                    let z = layer.forward(&mut sess, &xa2, true).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    layer.backward_a(&mut sess).unwrap();
                }
                let z = layer.forward(&mut sess, &xa2, false).unwrap();
                aggregate_a(&sess, z).unwrap();
                layer
            },
            move |mut sess| {
                let mut layer =
                    EmbedSource::init(&mut sess, xb2.vocab(), xb2.fields(), 2, 2).unwrap();
                for g in &grads {
                    let z_own = layer.forward(&mut sess, &xb2, true).unwrap();
                    let _ = aggregate_b(&sess, z_own).unwrap();
                    layer.backward_b(&mut sess, g).unwrap();
                }
                let z_own = layer.forward(&mut sess, &xb2, false).unwrap();
                let z = aggregate_b(&sess, z_own).unwrap();
                (layer, z)
            },
        );
        // Reference from the reconstructed tables/weights.
        let q_a = a.s_own().add(b.t_peer());
        let q_b = b.s_own().add(a.t_peer());
        let w_a = a.u_own().add(b.v_peer());
        let w_b = b.u_own().add(a.v_peer());
        let want = lookup(&q_a, &xa).matmul(&w_a).add(&lookup(&q_b, &xb).matmul(&w_b));
        prop_assert!(z.approx_eq(&want, 1e-4), "err {}", z.sub(&want).max_abs());
    }
}

/// Plaintext embedding lookup used by the references above.
fn lookup(table: &Dense, x: &CatBlock) -> Dense {
    let dim = table.cols();
    let mut e = Dense::zeros(x.rows(), x.fields() * dim);
    for r in 0..x.rows() {
        for (f, &g) in x.row(r).iter().enumerate() {
            e.row_mut(r)[f * dim..(f + 1) * dim].copy_from_slice(table.row(g as usize));
        }
    }
    e
}

#[test]
fn embed_lossless_exhaustive_small_vocab() {
    // All 3^2 index combinations for a 2-row, 1-field-per-party layout.
    for i in 0..3u32 {
        for j in 0..3u32 {
            let xa = CatBlock::from_local(2, &[3], vec![i, j]);
            let xb = CatBlock::from_local(2, &[3], vec![j, i]);
            let cfg = FedConfig::plain();
            let xa2 = xa.clone();
            let xb2 = xb.clone();
            let (a, (b, z)) = run_pair(
                &cfg,
                100 + (i * 3 + j) as u64,
                move |mut sess| {
                    let mut layer = EmbedSource::init(&mut sess, 3, 1, 2, 1).unwrap();
                    let z = layer.forward(&mut sess, &xa2, false).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    layer
                },
                move |mut sess| {
                    let mut layer = EmbedSource::init(&mut sess, 3, 1, 2, 1).unwrap();
                    let z_own = layer.forward(&mut sess, &xb2, false).unwrap();
                    let z = aggregate_b(&sess, z_own).unwrap();
                    (layer, z)
                },
            );
            let q_a = a.s_own().add(b.t_peer());
            let q_b = b.s_own().add(a.t_peer());
            let w_a = a.u_own().add(b.v_peer());
            let w_b = b.u_own().add(a.v_peer());
            let mut want = Dense::zeros(2, 1);
            for r in 0..2 {
                let ea = q_a.row(xa.row(r)[0] as usize);
                let eb = q_b.row(xb.row(r)[0] as usize);
                let mut acc = 0.0;
                for (k, &e) in ea.iter().enumerate() {
                    acc += e * w_a.get(k, 0);
                }
                for (k, &e) in eb.iter().enumerate() {
                    acc += e * w_b.get(k, 0);
                }
                want.set(r, 0, acc);
            }
            assert!(
                z.approx_eq(&want, 1e-4),
                "i={i} j={j} err {}",
                z.sub(&want).max_abs()
            );
        }
    }
}
