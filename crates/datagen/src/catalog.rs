//! Dataset specifications — Table 4 of the paper, plus Fashion-MNIST
//! from the appendix (Table 6 / Figure 15).

/// Feature-space shape of a dataset.
#[derive(Clone, Debug, PartialEq)]
pub enum Shape {
    /// Sparse numerical features (one-hot-ish binary values).
    Sparse {
        /// Total feature dimensionality.
        features: usize,
        /// Average non-zeros per instance.
        avg_nnz: usize,
    },
    /// Dense numerical features.
    Dense {
        /// Feature dimensionality.
        features: usize,
    },
    /// Sparse numerical features *plus* categorical fields (the view
    /// WDL/DLRM consume: wide sparse part + deep categorical part).
    Tabular {
        /// Sparse numerical dimensionality.
        features: usize,
        /// Average non-zeros per instance.
        avg_nnz: usize,
        /// Per-field vocabulary sizes.
        vocabs: Vec<u32>,
    },
    /// Dense image-like features (class-prototype mixture), `h × w`.
    Image {
        /// Image height.
        h: usize,
        /// Image width.
        w: usize,
    },
}

impl Shape {
    /// Numerical feature dimensionality.
    pub fn features(&self) -> usize {
        match self {
            Shape::Sparse { features, .. } | Shape::Dense { features } => *features,
            Shape::Tabular { features, .. } => *features,
            Shape::Image { h, w } => h * w,
        }
    }

    /// Average non-zeros per row (dense rows count every feature).
    pub fn avg_nnz(&self) -> usize {
        match self {
            Shape::Sparse { avg_nnz, .. } | Shape::Tabular { avg_nnz, .. } => *avg_nnz,
            Shape::Dense { features } => *features,
            Shape::Image { h, w } => h * w,
        }
    }

    /// Sparsity fraction (zeros / total), as reported in Table 5.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.avg_nnz() as f64 / self.features() as f64
    }
}

/// A dataset specification.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name (matching the paper).
    pub name: &'static str,
    /// Training instances.
    pub train_rows: usize,
    /// Test instances.
    pub test_rows: usize,
    /// Number of classes (2 = binary).
    pub classes: usize,
    /// Feature-space shape.
    pub shape: Shape,
}

impl DatasetSpec {
    /// Scale the row counts down by `row_div` and the feature space by
    /// `feat_div` (avg nnz shrinks with the feature space but never
    /// below 4). Used to keep harnesses laptop-scale while preserving
    /// sparsity ratios.
    pub fn scaled(&self, row_div: usize, feat_div: usize) -> DatasetSpec {
        let scale_shape = |s: &Shape| match s {
            Shape::Sparse { features, avg_nnz } => Shape::Sparse {
                features: (features / feat_div).max(8),
                avg_nnz: (*avg_nnz).min((features / feat_div).max(8)).max(4),
            },
            Shape::Dense { features } => Shape::Dense {
                features: (features / feat_div).max(4),
            },
            Shape::Tabular {
                features,
                avg_nnz,
                vocabs,
            } => Shape::Tabular {
                features: (features / feat_div).max(8),
                avg_nnz: (*avg_nnz).min((features / feat_div).max(8)).max(4),
                vocabs: vocabs
                    .iter()
                    .map(|&v| (v / feat_div as u32).max(4))
                    .collect(),
            },
            Shape::Image { h, w } => Shape::Image { h: *h, w: *w },
        };
        DatasetSpec {
            name: self.name,
            train_rows: (self.train_rows / row_div).max(256),
            test_rows: (self.test_rows / row_div).max(128),
            classes: self.classes,
            shape: scale_shape(&self.shape),
        }
    }
}

/// The paper-scale dataset inventory (Table 4 plus fmnist).
pub fn catalog() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "a9a",
            train_rows: 32_000,
            test_rows: 16_000,
            classes: 2,
            shape: Shape::Tabular {
                features: 123,
                avg_nnz: 14,
                vocabs: vec![16, 8, 7, 16, 6, 5, 2, 2],
            },
        },
        DatasetSpec {
            name: "w8a",
            train_rows: 50_000,
            test_rows: 15_000,
            classes: 2,
            shape: Shape::Tabular {
                features: 300,
                avg_nnz: 12,
                vocabs: vec![32, 16, 16, 8, 8, 4],
            },
        },
        DatasetSpec {
            name: "connect-4",
            train_rows: 50_000,
            test_rows: 17_000,
            classes: 3,
            shape: Shape::Sparse {
                features: 126,
                avg_nnz: 42,
            },
        },
        DatasetSpec {
            name: "news20",
            train_rows: 16_000,
            test_rows: 4_000,
            classes: 20,
            shape: Shape::Sparse {
                features: 62_000,
                avg_nnz: 80,
            },
        },
        DatasetSpec {
            name: "higgs",
            train_rows: 8_000_000,
            test_rows: 3_000_000,
            classes: 2,
            shape: Shape::Dense { features: 28 },
        },
        DatasetSpec {
            name: "avazu-app",
            train_rows: 13_000_000,
            test_rows: 2_000_000,
            classes: 2,
            shape: Shape::Tabular {
                features: 1_000_000,
                avg_nnz: 14,
                vocabs: vec![4096, 2048, 1024, 512, 256, 64, 32, 8],
            },
        },
        DatasetSpec {
            name: "industry",
            train_rows: 100_000_000,
            test_rows: 8_000_000,
            classes: 2,
            shape: Shape::Tabular {
                features: 10_000_000,
                avg_nnz: 12,
                vocabs: vec![65536, 16384, 4096, 1024, 512, 128, 64, 16],
            },
        },
        DatasetSpec {
            name: "fmnist",
            train_rows: 60_000,
            test_rows: 10_000,
            classes: 10,
            shape: Shape::Image { h: 28, w: 28 },
        },
    ]
}

/// Look up a paper-scale spec by name.
pub fn spec(name: &str) -> DatasetSpec {
    catalog()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table4() {
        let c = catalog();
        assert_eq!(c.len(), 8);
        let a9a = spec("a9a");
        assert_eq!(a9a.shape.features(), 123);
        assert_eq!(a9a.shape.avg_nnz(), 14);
        assert_eq!(spec("news20").classes, 20);
        assert_eq!(spec("higgs").shape.avg_nnz(), 28); // dense
        assert!(spec("industry").shape.sparsity() > 0.9999);
    }

    #[test]
    fn sparsity_matches_paper_table5() {
        // Table 5 reports these sparsity percentages.
        assert!((spec("a9a").shape.sparsity() - 0.8872).abs() < 0.01);
        assert!((spec("w8a").shape.sparsity() - 0.96).abs() < 0.01);
        assert!((spec("connect-4").shape.sparsity() - 0.6667).abs() < 0.01);
        assert!(spec("news20").shape.sparsity() > 0.998);
    }

    #[test]
    fn scaling_preserves_type_and_bounds() {
        let s = spec("avazu-app").scaled(1000, 100);
        assert!(s.train_rows >= 256);
        match &s.shape {
            Shape::Tabular {
                features,
                avg_nnz,
                vocabs,
            } => {
                assert_eq!(*features, 10_000);
                assert!(*avg_nnz >= 4);
                assert!(vocabs.iter().all(|&v| v >= 4));
            }
            _ => panic!("shape changed"),
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        spec("mnist-c");
    }
}
