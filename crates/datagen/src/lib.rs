//! Synthetic dataset generators matched to the BlindFL evaluation.
//!
//! The paper evaluates on six LIBSVM datasets, one industrial
//! advertising dataset, and Fashion-MNIST (Table 4 / Table 6). None of
//! those can ship with this repository, so — per the substitution rule
//! in DESIGN.md §5 — each is replaced by a generator that reproduces
//! the *shape statistics* the evaluation depends on:
//!
//! * dimensionality and average non-zeros per row (⇒ sparsity, which
//!   drives the Table 5 cost comparison),
//! * class count and feature type (numerical / categorical),
//! * a planted ground-truth model whose signal spans **both** parties'
//!   feature halves, so that `NonFed-Party B < BlindFL ≈
//!   NonFed-collocated` (the Figure 12 ordering) is a property of the
//!   data, not an accident.
//!
//! [`catalog`](mod@catalog) lists the paper-scale specs (printed by the Table 4
//! harness); [`DatasetSpec::scaled`] produces laptop-scale variants used
//! by the experiment harnesses (documented in EXPERIMENTS.md).

pub mod catalog;
pub mod libsvm;
pub mod split;
pub mod synth;

pub use catalog::{catalog, spec, DatasetSpec, Shape};
pub use libsvm::{load_libsvm, parse_libsvm};
pub use split::{
    sample_id, vsplit, vsplit_misaligned, vsplit_misaligned_multi, vsplit_multi,
    MisalignedMultiVflData, MisalignedParty, MisalignedVflData, MultiVflData, VflData, VflView,
};
pub use synth::{generate, generate_tree};
