//! LIBSVM-format loader.
//!
//! The paper's public datasets (a9a, w8a, connect-4, news20, higgs,
//! avazu-app) are distributed in LIBSVM text format
//! (`<label> <idx>:<val> <idx>:<val> ...`, 1-based indices). This
//! repository ships synthetic stand-ins, but if you download the real
//! files you can run every harness on them through this loader.

use bf_ml::data::{Dataset, Labels};
use bf_tensor::{Csr, Features};

/// Parse LIBSVM-format text into a sparse dataset.
///
/// * `features`: total dimensionality (pass 0 to infer from the data).
/// * `classes`: 2 for binary (labels are mapped `{-1,0}→0`, `{+1}→1`;
///   any other value is thresholded at 0), otherwise labels are read as
///   0-based or 1-based class indices (1-based detected when the
///   minimum label is 1 and the maximum equals `classes`).
pub fn parse_libsvm(text: &str, features: usize, classes: usize) -> Result<Dataset, String> {
    let mut triplets: Vec<(usize, u32, f64)> = Vec::new();
    let mut raw_labels: Vec<f64> = Vec::new();
    let mut max_idx = 0u32;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row = raw_labels.len();
        let mut parts = line.split_whitespace();
        let label: f64 = parts
            .next()
            .ok_or_else(|| format!("line {}: empty", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad label ({e})", lineno + 1))?;
        raw_labels.push(label);
        for tok in parts {
            let (idx, val) = tok
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected idx:val, got {tok:?}", lineno + 1))?;
            let idx: u32 = idx
                .parse()
                .map_err(|e| format!("line {}: bad index ({e})", lineno + 1))?;
            if idx == 0 {
                return Err(format!("line {}: LIBSVM indices are 1-based", lineno + 1));
            }
            let val: f64 = val
                .parse()
                .map_err(|e| format!("line {}: bad value ({e})", lineno + 1))?;
            max_idx = max_idx.max(idx);
            triplets.push((row, idx - 1, val));
        }
    }
    if raw_labels.is_empty() {
        return Err("no instances".to_string());
    }
    let dim = if features == 0 {
        max_idx as usize
    } else {
        features
    };
    if (max_idx as usize) > dim {
        return Err(format!(
            "feature index {max_idx} exceeds declared dimensionality {dim}"
        ));
    }
    let x = Csr::from_triplets(raw_labels.len(), dim, triplets);
    let labels = if classes == 2 {
        Labels::Binary(
            raw_labels
                .iter()
                .map(|&l| if l > 0.0 { 1.0 } else { 0.0 })
                .collect(),
        )
    } else {
        let min = raw_labels.iter().cloned().fold(f64::INFINITY, f64::min);
        let offset = if min >= 1.0 { 1.0 } else { 0.0 };
        let y: Vec<u32> = raw_labels
            .iter()
            .map(|&l| {
                let c = (l - offset) as i64;
                if c < 0 || c as usize >= classes {
                    u32::MAX
                } else {
                    c as u32
                }
            })
            .collect();
        if y.contains(&u32::MAX) {
            return Err("label out of class range".to_string());
        }
        Labels::Multi { classes, y }
    };
    Ok(Dataset {
        num: Some(Features::Sparse(x)),
        cat: None,
        labels: Some(labels),
    })
}

/// Load a LIBSVM file from disk.
pub fn load_libsvm(
    path: &std::path::Path,
    features: usize,
    classes: usize,
) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_libsvm(&text, features, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
+1 1:1 5:1 7:0.5
-1 2:1 3:1
+1 1:1 7:1
";

    #[test]
    fn parses_binary_sample() {
        let ds = parse_libsvm(SAMPLE, 0, 2).unwrap();
        assert_eq!(ds.rows(), 3);
        assert_eq!(ds.num_dim(), 7); // inferred from max index
        let y = ds.labels.as_ref().unwrap().as_binary();
        assert_eq!(y, &[1.0, 0.0, 1.0]);
        let f = ds.num.as_ref().unwrap();
        assert_eq!(f.nnz(), 7);
        // Value and 0-based column check.
        let Features::Sparse(s) = f else { panic!() };
        assert_eq!(s.row(0), (&[0u32, 4, 6][..], &[1.0, 1.0, 0.5][..]));
    }

    #[test]
    fn declared_dimensionality_respected() {
        let ds = parse_libsvm(SAMPLE, 123, 2).unwrap();
        assert_eq!(ds.num_dim(), 123);
        assert!(
            parse_libsvm(SAMPLE, 3, 2).is_err(),
            "index above declared dim must fail"
        );
    }

    #[test]
    fn multiclass_one_based() {
        let txt = "1 1:1\n3 2:1\n2 3:1\n";
        let ds = parse_libsvm(txt, 0, 3).unwrap();
        assert_eq!(ds.labels.as_ref().unwrap().as_multi(), &[0, 2, 1]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_libsvm("+1 0:1\n", 0, 2).is_err(), "0 index");
        assert!(parse_libsvm("+1 a:1\n", 0, 2).is_err(), "bad index");
        assert!(parse_libsvm("+1 1=1\n", 0, 2).is_err(), "bad separator");
        assert!(parse_libsvm("", 0, 2).is_err(), "empty file");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let txt = "# header\n\n+1 1:2.5\n";
        let ds = parse_libsvm(txt, 0, 2).unwrap();
        assert_eq!(ds.rows(), 1);
    }

    #[test]
    fn loaded_data_splits_vertically() {
        let ds = parse_libsvm(SAMPLE, 8, 2).unwrap();
        let v = crate::vsplit(&ds);
        assert_eq!(v.party_a.num_dim() + v.party_b.num_dim(), 8);
        assert!(v.party_b.labels.is_some());
    }
}
