//! Vertical (feature-wise) splitting of a collocated dataset into the
//! two-party VFL views of Figure 1: Party A holds the first half of the
//! features; Party B holds the second half **and the labels**.

use bf_ml::data::Dataset;
use bf_tensor::Features;

/// One party's view of a vertically-partitioned dataset.
pub type VflView = Dataset;

/// Collocated data plus the two party views (train or test).
#[derive(Clone, Debug)]
pub struct VflData {
    /// The full dataset (for the NonFed-collocated baseline only; a
    /// real deployment never materialises this).
    pub collocated: Dataset,
    /// Party A: features only.
    pub party_a: VflView,
    /// Party B: features plus labels.
    pub party_b: VflView,
}

/// Split features evenly: Party A gets the first half of numerical
/// columns and the first half of categorical fields.
pub fn vsplit(ds: &Dataset) -> VflData {
    let (num_a, num_b) = match &ds.num {
        Some(Features::Sparse(s)) => {
            let half = s.cols() / 2;
            let left: Vec<u32> = (0..half as u32).collect();
            let right: Vec<u32> = (half as u32..s.cols() as u32).collect();
            (
                Some(Features::Sparse(s.select_cols(&left))),
                Some(Features::Sparse(s.select_cols(&right))),
            )
        }
        Some(Features::Dense(d)) => {
            let half = d.cols() / 2;
            let left: Vec<usize> = (0..half).collect();
            let right: Vec<usize> = (half..d.cols()).collect();
            (
                Some(Features::Dense(d.select_cols(&left))),
                Some(Features::Dense(d.select_cols(&right))),
            )
        }
        None => (None, None),
    };
    let (cat_a, cat_b) = match &ds.cat {
        Some(c) => {
            let half = (c.fields() / 2).max(1);
            if half == c.fields() {
                // A single field cannot be split; Party B keeps it.
                (None, Some(c.clone()))
            } else {
                (
                    Some(c.select_fields(0, half)),
                    Some(c.select_fields(half, c.fields())),
                )
            }
        }
        None => (None, None),
    };
    VflData {
        collocated: ds.clone(),
        party_a: Dataset {
            num: num_a,
            cat: cat_a,
            labels: None,
        },
        party_b: Dataset {
            num: num_b,
            cat: cat_b,
            labels: ds.labels.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::spec;
    use crate::synth::generate;
    use bf_tensor::Dense;

    #[test]
    fn split_partitions_features() {
        let s = spec("a9a").scaled(200, 1);
        let (train_ds, _) = generate(&s, 1);
        let v = vsplit(&train_ds);
        assert_eq!(
            v.party_a.num_dim() + v.party_b.num_dim(),
            train_ds.num_dim()
        );
        assert!(v.party_a.labels.is_none(), "Party A must not hold labels");
        assert!(v.party_b.labels.is_some());
        assert_eq!(v.party_a.rows(), v.party_b.rows());
    }

    #[test]
    fn split_preserves_row_content() {
        let s = spec("a9a").scaled(200, 1);
        let (train_ds, _) = generate(&s, 2);
        let v = vsplit(&train_ds);
        // Reassembling A|B columns gives back the original matrix.
        let full = train_ds.num.as_ref().unwrap().to_dense();
        let a = v.party_a.num.as_ref().unwrap().to_dense();
        let b = v.party_b.num.as_ref().unwrap().to_dense();
        let rebuilt: Dense = a.hstack(&b);
        assert!(rebuilt.approx_eq(&full, 0.0));
    }

    #[test]
    fn categorical_fields_split() {
        let s = spec("avazu-app").scaled(10_000, 100);
        let (train_ds, _) = generate(&s, 3);
        let v = vsplit(&train_ds);
        let total = train_ds.cat.as_ref().unwrap().fields();
        let fa = v.party_a.cat.as_ref().unwrap().fields();
        let fb = v.party_b.cat.as_ref().unwrap().fields();
        assert_eq!(fa + fb, total);
        // Vocabularies are rebased per party.
        let va = v.party_a.cat.as_ref().unwrap().vocab();
        let vb = v.party_b.cat.as_ref().unwrap().vocab();
        assert_eq!(va + vb, train_ds.cat.as_ref().unwrap().vocab());
    }

    #[test]
    fn dense_split() {
        let s = spec("higgs").scaled(50_000, 1);
        let (train_ds, _) = generate(&s, 4);
        let v = vsplit(&train_ds);
        assert_eq!(v.party_a.num_dim(), 14);
        assert_eq!(v.party_b.num_dim(), 14);
    }
}
