//! Vertical (feature-wise) splitting of a collocated dataset into the
//! two-party VFL views of Figure 1: Party A holds the first half of the
//! features; Party B holds the second half **and the labels**.
//! [`vsplit_multi`] generalises the Party A side to `M` guests (paper
//! Appendix C): Party B's view is unchanged, and the Party A half is
//! re-partitioned into `M` contiguous slices — horizontally
//! concatenating the guest slices reconstructs exactly the two-party
//! Party A view, which is what makes an M-guest run comparable to the
//! single-A baseline.

use bf_ml::data::Dataset;
use bf_tensor::Features;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One party's view of a vertically-partitioned dataset.
pub type VflView = Dataset;

/// Collocated data plus the two party views (train or test).
#[derive(Clone, Debug)]
pub struct VflData {
    /// The full dataset (for the NonFed-collocated baseline only; a
    /// real deployment never materialises this).
    pub collocated: Dataset,
    /// Party A: features only.
    pub party_a: VflView,
    /// Party B: features plus labels.
    pub party_b: VflView,
}

/// Split features evenly: Party A gets the first half of numerical
/// columns and the first half of categorical fields.
pub fn vsplit(ds: &Dataset) -> VflData {
    let (num_a, num_b) = match &ds.num {
        Some(Features::Sparse(s)) => {
            let half = s.cols() / 2;
            let left: Vec<u32> = (0..half as u32).collect();
            let right: Vec<u32> = (half as u32..s.cols() as u32).collect();
            (
                Some(Features::Sparse(s.select_cols(&left))),
                Some(Features::Sparse(s.select_cols(&right))),
            )
        }
        Some(Features::Dense(d)) => {
            let half = d.cols() / 2;
            let left: Vec<usize> = (0..half).collect();
            let right: Vec<usize> = (half..d.cols()).collect();
            (
                Some(Features::Dense(d.select_cols(&left))),
                Some(Features::Dense(d.select_cols(&right))),
            )
        }
        None => (None, None),
    };
    let (cat_a, cat_b) = match &ds.cat {
        Some(c) => {
            let half = (c.fields() / 2).max(1);
            if half == c.fields() {
                // A single field cannot be split; Party B keeps it.
                (None, Some(c.clone()))
            } else {
                (
                    Some(c.select_fields(0, half)),
                    Some(c.select_fields(half, c.fields())),
                )
            }
        }
        None => (None, None),
    };
    VflData {
        collocated: ds.clone(),
        party_a: Dataset {
            num: num_a,
            cat: cat_a,
            labels: None,
        },
        party_b: Dataset {
            num: num_b,
            cat: cat_b,
            labels: ds.labels.clone(),
        },
    }
}

/// Collocated data plus `M` guest views and the Party B view.
#[derive(Clone, Debug)]
pub struct MultiVflData {
    /// The full dataset (baselines only; never materialised in a real
    /// deployment).
    pub collocated: Dataset,
    /// Guest views (Party A(1..M)): features only, in link order.
    pub guests: Vec<VflView>,
    /// Party B: features plus labels — identical to [`vsplit`]'s
    /// `party_b`.
    pub party_b: VflView,
}

/// Split a dataset for an `M`-guest run: Party B keeps exactly its
/// [`vsplit`] share (second half of the features, plus the labels),
/// and the [`vsplit`] Party A share is partitioned into `M` contiguous
/// near-equal slices, one per guest.
///
/// Invariants (tested below):
/// * `vsplit_multi(ds, 1)` equals `vsplit(ds)` with a single guest;
/// * horizontally concatenating `guests[0..M]` reconstructs the
///   two-party Party A view column-for-column, so the M-guest run and
///   the single-A run train over the same virtually-joint matrix.
///
/// Categorical fields: the Party A field range is partitioned among
/// the first `min(M, fields_A)` guests; later guests get no
/// categorical block (a guest running a MatMul-only spec ignores it).
///
/// # Panics
///
/// Panics if `m == 0` — a data split for zero guests is meaningless
/// (the runtime's `M = 0` guard is typed; see `blindfl::multiparty`).
pub fn vsplit_multi(ds: &Dataset, m: usize) -> MultiVflData {
    assert!(m >= 1, "vsplit_multi needs at least one guest");
    let two_party = vsplit(ds);
    let a = &two_party.party_a;

    // Contiguous near-equal column ranges over a width of `n`: the
    // first `n % m` slices get the extra column.
    let ranges = |n: usize, parts: usize| -> Vec<(usize, usize)> {
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut lo = 0;
        for i in 0..parts {
            let hi = lo + base + usize::from(i < extra);
            out.push((lo, hi));
            lo = hi;
        }
        out
    };

    let num_slices: Vec<Option<Features>> = match &a.num {
        Some(Features::Sparse(s)) => ranges(s.cols(), m)
            .into_iter()
            .map(|(lo, hi)| {
                let cols: Vec<u32> = (lo as u32..hi as u32).collect();
                Some(Features::Sparse(s.select_cols(&cols)))
            })
            .collect(),
        Some(Features::Dense(d)) => ranges(d.cols(), m)
            .into_iter()
            .map(|(lo, hi)| {
                let cols: Vec<usize> = (lo..hi).collect();
                Some(Features::Dense(d.select_cols(&cols)))
            })
            .collect(),
        None => vec![None; m],
    };
    let cat_slices: Vec<Option<bf_tensor::CatBlock>> = match &a.cat {
        Some(c) => {
            let holders = m.min(c.fields());
            let mut slices: Vec<Option<bf_tensor::CatBlock>> = ranges(c.fields(), holders)
                .into_iter()
                .map(|(lo, hi)| Some(c.select_fields(lo, hi)))
                .collect();
            slices.resize(m, None);
            slices
        }
        None => vec![None; m],
    };
    let guests = num_slices
        .into_iter()
        .zip(cat_slices)
        .map(|(num, cat)| Dataset {
            num,
            cat,
            labels: None,
        })
        .collect();
    MultiVflData {
        collocated: two_party.collocated,
        guests,
        party_b: two_party.party_b,
    }
}

/// Base of the synthetic sample-ID space. IDs are assigned
/// monotonically in row order (`id = PSI_ID_BASE + 3·row`) so the
/// canonical PSI order (ascending ID) of any overlap subset coincides
/// with original row order — which is what makes `overlap_frac = 1.0`
/// reproduce [`vsplit`] *bit-exactly* after alignment. The stride of 3
/// keeps the IDs from being a trivial 0..n range (off-by-one bugs in
/// id↔row bookkeeping would otherwise cancel out).
pub const PSI_ID_BASE: u64 = 0x5A17;

/// The sample ID planted on collocated row `row`.
pub fn sample_id(row: usize) -> u64 {
    PSI_ID_BASE + 3 * row as u64
}

/// One party's *misaligned* view: a locally-shuffled superset of the
/// overlap rows, plus the sample-ID column that PSI aligns on.
#[derive(Clone, Debug)]
pub struct MisalignedParty {
    /// The party's feature view over its local rows (overlap rows plus
    /// its private remainder, in locally-shuffled order).
    pub data: VflView,
    /// `ids[r]` identifies local row `r`; input to the PSI phase.
    pub ids: Vec<u64>,
}

/// A partial-overlap vertical split: each party holds a shuffled
/// superset of a common sample set, and [`MisalignedVflData::aligned`]
/// is the ground-truth pre-aligned [`vsplit`] of exactly that common
/// set — the oracle the alignment-parity suite compares PSI against.
#[derive(Clone, Debug)]
pub struct MisalignedVflData {
    /// `vsplit` of the overlap rows in canonical (ascending-ID) order:
    /// what a PSI-aligned run must reproduce bit-for-bit.
    pub aligned: VflData,
    /// Party A's misaligned view (features only).
    pub party_a: MisalignedParty,
    /// Party B's misaligned view (features + labels).
    pub party_b: MisalignedParty,
    /// Collocated row indices of the overlap, ascending.
    pub overlap_rows: Vec<usize>,
}

/// A partial-overlap `M`-guest split, mirroring [`vsplit_multi`].
#[derive(Clone, Debug)]
pub struct MisalignedMultiVflData {
    /// `vsplit_multi` of the overlap rows in canonical order.
    pub aligned: MultiVflData,
    /// Guest views in link order, each a shuffled superset.
    pub guests: Vec<MisalignedParty>,
    /// Party B's misaligned view.
    pub party_b: MisalignedParty,
    /// Collocated row indices of the overlap, ascending.
    pub overlap_rows: Vec<usize>,
}

/// Row bookkeeping shared by the two-party and `M`-guest misaligned
/// splits: pick `round(overlap_frac·n)` overlap rows (seeded), deal
/// the remaining rows round-robin into `parties` disjoint private
/// remainders, and give every party a seeded local shuffle of
/// `overlap ∪ remainderᵢ`.
///
/// Returns `(overlap_rows, per-party local row lists)`.
fn misaligned_rows(
    n: usize,
    parties: usize,
    overlap_frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<Vec<usize>>) {
    assert!(
        (0.0..=1.0).contains(&overlap_frac),
        "overlap_frac must be in [0, 1], got {overlap_frac}"
    );
    let k = ((overlap_frac * n as f64).round() as usize).min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x0A11_6E00));
    let mut overlap: Vec<usize> = order[..k].to_vec();
    overlap.sort_unstable();
    // Disjoint private remainders, dealt round-robin so every party
    // gets a near-equal share of the unaligned rows.
    let mut extras: Vec<Vec<usize>> = vec![Vec::new(); parties];
    for (i, &row) in order[k..].iter().enumerate() {
        extras[i % parties].push(row);
    }
    let locals: Vec<Vec<usize>> = extras
        .into_iter()
        .enumerate()
        .map(|(p, extra)| {
            let mut local: Vec<usize> = overlap.iter().copied().chain(extra).collect();
            local.shuffle(&mut StdRng::seed_from_u64(
                seed ^ 0x10CA_1000 ^ (p as u64 + 1),
            ));
            local
        })
        .collect();
    (overlap, locals)
}

/// Vertically split `ds` with only a fraction of rows common to both
/// parties — the limited-overlap regime of Sun et al. (SNIPPETS.md
/// snippet 3). Each party receives its [`vsplit`] feature columns over
/// a locally-shuffled superset of the overlap rows (its private
/// remainder rows are disjoint from the other party's), plus a
/// sample-ID column. The PSI phase run on those ID columns must
/// reconstruct [`MisalignedVflData::aligned`] exactly on both sides.
///
/// `overlap_frac = 1.0` degenerates to [`vsplit`] (modulo the local
/// shuffles PSI undoes); `0.0` leaves the parties fully disjoint.
pub fn vsplit_misaligned(ds: &Dataset, overlap_frac: f64, seed: u64) -> MisalignedVflData {
    let full = vsplit(ds);
    let (overlap, locals) = misaligned_rows(ds.rows(), 2, overlap_frac, seed);
    let party = |view: &VflView, local: &[usize]| MisalignedParty {
        data: view.select(local),
        ids: local.iter().map(|&r| sample_id(r)).collect(),
    };
    MisalignedVflData {
        aligned: VflData {
            collocated: full.collocated.select(&overlap),
            party_a: full.party_a.select(&overlap),
            party_b: full.party_b.select(&overlap),
        },
        party_a: party(&full.party_a, &locals[0]),
        party_b: party(&full.party_b, &locals[1]),
        overlap_rows: overlap,
    }
}

/// The `M`-guest generalisation of [`vsplit_misaligned`]: Party B and
/// every guest hold shuffled supersets with pairwise-disjoint private
/// remainders, and the global intersection across all `M + 1` ID
/// columns is exactly `aligned` (a [`vsplit_multi`] of the overlap).
pub fn vsplit_misaligned_multi(
    ds: &Dataset,
    m: usize,
    overlap_frac: f64,
    seed: u64,
) -> MisalignedMultiVflData {
    assert!(m >= 1, "vsplit_misaligned_multi needs at least one guest");
    let full = vsplit_multi(ds, m);
    let (overlap, locals) = misaligned_rows(ds.rows(), m + 1, overlap_frac, seed);
    let party = |view: &VflView, local: &[usize]| MisalignedParty {
        data: view.select(local),
        ids: local.iter().map(|&r| sample_id(r)).collect(),
    };
    MisalignedMultiVflData {
        aligned: MultiVflData {
            collocated: full.collocated.select(&overlap),
            guests: full.guests.iter().map(|g| g.select(&overlap)).collect(),
            party_b: full.party_b.select(&overlap),
        },
        guests: full
            .guests
            .iter()
            .enumerate()
            .map(|(i, g)| party(g, &locals[i]))
            .collect(),
        party_b: party(&full.party_b, &locals[m]),
        overlap_rows: overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::spec;
    use crate::synth::generate;
    use bf_tensor::Dense;

    #[test]
    fn split_partitions_features() {
        let s = spec("a9a").scaled(200, 1);
        let (train_ds, _) = generate(&s, 1);
        let v = vsplit(&train_ds);
        assert_eq!(
            v.party_a.num_dim() + v.party_b.num_dim(),
            train_ds.num_dim()
        );
        assert!(v.party_a.labels.is_none(), "Party A must not hold labels");
        assert!(v.party_b.labels.is_some());
        assert_eq!(v.party_a.rows(), v.party_b.rows());
    }

    #[test]
    fn split_preserves_row_content() {
        let s = spec("a9a").scaled(200, 1);
        let (train_ds, _) = generate(&s, 2);
        let v = vsplit(&train_ds);
        // Reassembling A|B columns gives back the original matrix.
        let full = train_ds.num.as_ref().unwrap().to_dense();
        let a = v.party_a.num.as_ref().unwrap().to_dense();
        let b = v.party_b.num.as_ref().unwrap().to_dense();
        let rebuilt: Dense = a.hstack(&b);
        assert!(rebuilt.approx_eq(&full, 0.0));
    }

    #[test]
    fn categorical_fields_split() {
        let s = spec("avazu-app").scaled(10_000, 100);
        let (train_ds, _) = generate(&s, 3);
        let v = vsplit(&train_ds);
        let total = train_ds.cat.as_ref().unwrap().fields();
        let fa = v.party_a.cat.as_ref().unwrap().fields();
        let fb = v.party_b.cat.as_ref().unwrap().fields();
        assert_eq!(fa + fb, total);
        // Vocabularies are rebased per party.
        let va = v.party_a.cat.as_ref().unwrap().vocab();
        let vb = v.party_b.cat.as_ref().unwrap().vocab();
        assert_eq!(va + vb, train_ds.cat.as_ref().unwrap().vocab());
    }

    #[test]
    fn dense_split() {
        let s = spec("higgs").scaled(50_000, 1);
        let (train_ds, _) = generate(&s, 4);
        let v = vsplit(&train_ds);
        assert_eq!(v.party_a.num_dim(), 14);
        assert_eq!(v.party_b.num_dim(), 14);
    }

    #[test]
    fn multi_split_with_one_guest_equals_vsplit() {
        let s = spec("a9a").scaled(150, 1);
        let (train_ds, _) = generate(&s, 5);
        let two = vsplit(&train_ds);
        let multi = vsplit_multi(&train_ds, 1);
        assert_eq!(multi.guests.len(), 1);
        let a2 = two.party_a.num.as_ref().unwrap().to_dense();
        let a1 = multi.guests[0].num.as_ref().unwrap().to_dense();
        assert!(a1.approx_eq(&a2, 0.0));
        let b2 = two.party_b.num.as_ref().unwrap().to_dense();
        let b1 = multi.party_b.num.as_ref().unwrap().to_dense();
        assert!(b1.approx_eq(&b2, 0.0));
    }

    #[test]
    fn multi_split_concatenation_reconstructs_party_a() {
        let s = spec("a9a").scaled(150, 1);
        let (train_ds, _) = generate(&s, 6);
        let two = vsplit(&train_ds);
        for m in [2usize, 3, 5] {
            let multi = vsplit_multi(&train_ds, m);
            assert_eq!(multi.guests.len(), m);
            // No guest is empty and widths are near-equal.
            let widths: Vec<usize> = multi.guests.iter().map(|g| g.num_dim()).collect();
            let (min, max) = (*widths.iter().min().unwrap(), *widths.iter().max().unwrap());
            assert!(min >= 1 && max - min <= 1, "widths {widths:?}");
            // hstack(guests) == the two-party Party A view.
            let mut rebuilt = multi.guests[0].num.as_ref().unwrap().to_dense();
            for g in &multi.guests[1..] {
                rebuilt = rebuilt.hstack(&g.num.as_ref().unwrap().to_dense());
            }
            let want = two.party_a.num.as_ref().unwrap().to_dense();
            assert!(rebuilt.approx_eq(&want, 0.0));
            // No guest holds labels; B is unchanged.
            assert!(multi.guests.iter().all(|g| g.labels.is_none()));
            assert!(multi.party_b.labels.is_some());
        }
    }

    /// Emulate a party's PSI outcome: select local rows whose ID is in
    /// `common`, in ascending-ID order (the canonical PSI order).
    fn psi_select(p: &MisalignedParty, common: &std::collections::HashSet<u64>) -> Dataset {
        let mut hits: Vec<(u64, usize)> = p
            .ids
            .iter()
            .enumerate()
            .filter(|(_, id)| common.contains(id))
            .map(|(row, &id)| (id, row))
            .collect();
        hits.sort_unstable_by_key(|&(id, _)| id);
        let rows: Vec<usize> = hits.into_iter().map(|(_, row)| row).collect();
        p.data.select(&rows)
    }

    fn common_ids(parties: &[&MisalignedParty]) -> std::collections::HashSet<u64> {
        let mut it = parties.iter();
        let mut common: std::collections::HashSet<u64> =
            it.next().unwrap().ids.iter().copied().collect();
        for p in it {
            let theirs: std::collections::HashSet<u64> = p.ids.iter().copied().collect();
            common.retain(|id| theirs.contains(id));
        }
        common
    }

    fn assert_same_view(got: &Dataset, want: &Dataset) {
        assert_eq!(got.rows(), want.rows());
        match (&got.num, &want.num) {
            (Some(g), Some(w)) => assert!(g.to_dense().approx_eq(&w.to_dense(), 0.0)),
            (None, None) => {}
            _ => panic!("numerical block presence differs"),
        }
        match (&got.labels, &want.labels) {
            (Some(g), Some(w)) => assert_eq!(g.as_binary(), w.as_binary()),
            (None, None) => {}
            _ => panic!("label presence differs"),
        }
    }

    #[test]
    fn misaligned_intersection_reconstructs_aligned_vsplit() {
        let s = spec("a9a").scaled(160, 1);
        let (ds, _) = generate(&s, 8);
        let mis = vsplit_misaligned(&ds, 0.4, 21);
        assert_eq!(mis.aligned.party_a.rows(), mis.overlap_rows.len());
        let common = common_ids(&[&mis.party_a, &mis.party_b]);
        assert_eq!(common.len(), mis.overlap_rows.len());
        assert_same_view(&psi_select(&mis.party_a, &common), &mis.aligned.party_a);
        assert_same_view(&psi_select(&mis.party_b, &common), &mis.aligned.party_b);
        // The intersection IDs are exactly the planted IDs of the
        // overlap rows (monotone map row → id).
        let mut got: Vec<u64> = common.iter().copied().collect();
        got.sort_unstable();
        let want: Vec<u64> = mis.overlap_rows.iter().map(|&r| sample_id(r)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn misaligned_remainders_are_disjoint_supersets() {
        let s = spec("a9a").scaled(160, 1);
        let (ds, _) = generate(&s, 9);
        let mis = vsplit_misaligned(&ds, 0.3, 5);
        let common = common_ids(&[&mis.party_a, &mis.party_b]);
        let extra = |p: &MisalignedParty| -> std::collections::HashSet<u64> {
            p.ids
                .iter()
                .copied()
                .filter(|id| !common.contains(id))
                .collect()
        };
        let (ea, eb) = (extra(&mis.party_a), extra(&mis.party_b));
        assert!(ea.is_disjoint(&eb), "private remainders must not overlap");
        // Every original row lands somewhere: overlap + both remainders.
        assert_eq!(common.len() + ea.len() + eb.len(), ds.rows());
        // Local shuffles really shuffle (supersets are not pre-aligned).
        assert_ne!(
            mis.party_a.ids,
            {
                let mut sorted = mis.party_a.ids.clone();
                sorted.sort_unstable();
                sorted
            },
            "party A's local rows should arrive shuffled"
        );
    }

    #[test]
    fn misaligned_degenerate_fractions() {
        let s = spec("a9a").scaled(120, 1);
        let (ds, _) = generate(&s, 10);
        // 0.0: parties fully disjoint, empty aligned set.
        let none = vsplit_misaligned(&ds, 0.0, 3);
        assert!(none.overlap_rows.is_empty());
        assert_eq!(none.aligned.party_a.rows(), 0);
        assert!(common_ids(&[&none.party_a, &none.party_b]).is_empty());
        assert_eq!(none.party_a.ids.len() + none.party_b.ids.len(), ds.rows());
        // 1.0: every row is common; aligned ≡ vsplit, and PSI-selecting
        // the shuffled supersets reconstructs it exactly.
        let all = vsplit_misaligned(&ds, 1.0, 3);
        assert_eq!(all.overlap_rows.len(), ds.rows());
        let two = vsplit(&ds);
        assert_same_view(&all.aligned.party_a, &two.party_a);
        assert_same_view(&all.aligned.party_b, &two.party_b);
        let common = common_ids(&[&all.party_a, &all.party_b]);
        assert_same_view(&psi_select(&all.party_a, &common), &two.party_a);
        assert_same_view(&psi_select(&all.party_b, &common), &two.party_b);
    }

    #[test]
    fn misaligned_multi_global_intersection() {
        let s = spec("a9a").scaled(150, 1);
        let (ds, _) = generate(&s, 11);
        let m = 3;
        let mis = vsplit_misaligned_multi(&ds, m, 0.5, 7);
        assert_eq!(mis.guests.len(), m);
        let mut parties: Vec<&MisalignedParty> = mis.guests.iter().collect();
        parties.push(&mis.party_b);
        let common = common_ids(&parties);
        assert_eq!(common.len(), mis.overlap_rows.len());
        for (g, aligned) in mis.guests.iter().zip(&mis.aligned.guests) {
            assert_same_view(&psi_select(g, &common), aligned);
        }
        assert_same_view(&psi_select(&mis.party_b, &common), &mis.aligned.party_b);
        // Private remainders pairwise disjoint across all M+1 parties.
        let extras: Vec<std::collections::HashSet<u64>> = parties
            .iter()
            .map(|p| {
                p.ids
                    .iter()
                    .copied()
                    .filter(|id| !common.contains(id))
                    .collect()
            })
            .collect();
        for i in 0..extras.len() {
            for j in i + 1..extras.len() {
                assert!(extras[i].is_disjoint(&extras[j]), "parties {i} and {j}");
            }
        }
    }

    #[test]
    fn multi_split_partitions_categorical_fields() {
        let s = spec("avazu-app").scaled(10_000, 100);
        let (train_ds, _) = generate(&s, 7);
        let two = vsplit(&train_ds);
        let fields_a = two.party_a.cat.as_ref().unwrap().fields();
        // More guests than A-side fields: the tail guests get None.
        let m = fields_a + 2;
        let multi = vsplit_multi(&train_ds, m);
        let held: Vec<usize> = multi
            .guests
            .iter()
            .map(|g| g.cat.as_ref().map_or(0, |c| c.fields()))
            .collect();
        assert_eq!(held.iter().sum::<usize>(), fields_a);
        assert!(held[..fields_a].iter().all(|&f| f == 1));
        assert!(held[fields_a..].iter().all(|&f| f == 0));
    }
}
