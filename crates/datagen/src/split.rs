//! Vertical (feature-wise) splitting of a collocated dataset into the
//! two-party VFL views of Figure 1: Party A holds the first half of the
//! features; Party B holds the second half **and the labels**.
//! [`vsplit_multi`] generalises the Party A side to `M` guests (paper
//! Appendix C): Party B's view is unchanged, and the Party A half is
//! re-partitioned into `M` contiguous slices — horizontally
//! concatenating the guest slices reconstructs exactly the two-party
//! Party A view, which is what makes an M-guest run comparable to the
//! single-A baseline.

use bf_ml::data::Dataset;
use bf_tensor::Features;

/// One party's view of a vertically-partitioned dataset.
pub type VflView = Dataset;

/// Collocated data plus the two party views (train or test).
#[derive(Clone, Debug)]
pub struct VflData {
    /// The full dataset (for the NonFed-collocated baseline only; a
    /// real deployment never materialises this).
    pub collocated: Dataset,
    /// Party A: features only.
    pub party_a: VflView,
    /// Party B: features plus labels.
    pub party_b: VflView,
}

/// Split features evenly: Party A gets the first half of numerical
/// columns and the first half of categorical fields.
pub fn vsplit(ds: &Dataset) -> VflData {
    let (num_a, num_b) = match &ds.num {
        Some(Features::Sparse(s)) => {
            let half = s.cols() / 2;
            let left: Vec<u32> = (0..half as u32).collect();
            let right: Vec<u32> = (half as u32..s.cols() as u32).collect();
            (
                Some(Features::Sparse(s.select_cols(&left))),
                Some(Features::Sparse(s.select_cols(&right))),
            )
        }
        Some(Features::Dense(d)) => {
            let half = d.cols() / 2;
            let left: Vec<usize> = (0..half).collect();
            let right: Vec<usize> = (half..d.cols()).collect();
            (
                Some(Features::Dense(d.select_cols(&left))),
                Some(Features::Dense(d.select_cols(&right))),
            )
        }
        None => (None, None),
    };
    let (cat_a, cat_b) = match &ds.cat {
        Some(c) => {
            let half = (c.fields() / 2).max(1);
            if half == c.fields() {
                // A single field cannot be split; Party B keeps it.
                (None, Some(c.clone()))
            } else {
                (
                    Some(c.select_fields(0, half)),
                    Some(c.select_fields(half, c.fields())),
                )
            }
        }
        None => (None, None),
    };
    VflData {
        collocated: ds.clone(),
        party_a: Dataset {
            num: num_a,
            cat: cat_a,
            labels: None,
        },
        party_b: Dataset {
            num: num_b,
            cat: cat_b,
            labels: ds.labels.clone(),
        },
    }
}

/// Collocated data plus `M` guest views and the Party B view.
#[derive(Clone, Debug)]
pub struct MultiVflData {
    /// The full dataset (baselines only; never materialised in a real
    /// deployment).
    pub collocated: Dataset,
    /// Guest views (Party A(1..M)): features only, in link order.
    pub guests: Vec<VflView>,
    /// Party B: features plus labels — identical to [`vsplit`]'s
    /// `party_b`.
    pub party_b: VflView,
}

/// Split a dataset for an `M`-guest run: Party B keeps exactly its
/// [`vsplit`] share (second half of the features, plus the labels),
/// and the [`vsplit`] Party A share is partitioned into `M` contiguous
/// near-equal slices, one per guest.
///
/// Invariants (tested below):
/// * `vsplit_multi(ds, 1)` equals `vsplit(ds)` with a single guest;
/// * horizontally concatenating `guests[0..M]` reconstructs the
///   two-party Party A view column-for-column, so the M-guest run and
///   the single-A run train over the same virtually-joint matrix.
///
/// Categorical fields: the Party A field range is partitioned among
/// the first `min(M, fields_A)` guests; later guests get no
/// categorical block (a guest running a MatMul-only spec ignores it).
///
/// # Panics
///
/// Panics if `m == 0` — a data split for zero guests is meaningless
/// (the runtime's `M = 0` guard is typed; see `blindfl::multiparty`).
pub fn vsplit_multi(ds: &Dataset, m: usize) -> MultiVflData {
    assert!(m >= 1, "vsplit_multi needs at least one guest");
    let two_party = vsplit(ds);
    let a = &two_party.party_a;

    // Contiguous near-equal column ranges over a width of `n`: the
    // first `n % m` slices get the extra column.
    let ranges = |n: usize, parts: usize| -> Vec<(usize, usize)> {
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut lo = 0;
        for i in 0..parts {
            let hi = lo + base + usize::from(i < extra);
            out.push((lo, hi));
            lo = hi;
        }
        out
    };

    let num_slices: Vec<Option<Features>> = match &a.num {
        Some(Features::Sparse(s)) => ranges(s.cols(), m)
            .into_iter()
            .map(|(lo, hi)| {
                let cols: Vec<u32> = (lo as u32..hi as u32).collect();
                Some(Features::Sparse(s.select_cols(&cols)))
            })
            .collect(),
        Some(Features::Dense(d)) => ranges(d.cols(), m)
            .into_iter()
            .map(|(lo, hi)| {
                let cols: Vec<usize> = (lo..hi).collect();
                Some(Features::Dense(d.select_cols(&cols)))
            })
            .collect(),
        None => vec![None; m],
    };
    let cat_slices: Vec<Option<bf_tensor::CatBlock>> = match &a.cat {
        Some(c) => {
            let holders = m.min(c.fields());
            let mut slices: Vec<Option<bf_tensor::CatBlock>> = ranges(c.fields(), holders)
                .into_iter()
                .map(|(lo, hi)| Some(c.select_fields(lo, hi)))
                .collect();
            slices.resize(m, None);
            slices
        }
        None => vec![None; m],
    };
    let guests = num_slices
        .into_iter()
        .zip(cat_slices)
        .map(|(num, cat)| Dataset {
            num,
            cat,
            labels: None,
        })
        .collect();
    MultiVflData {
        collocated: two_party.collocated,
        guests,
        party_b: two_party.party_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::spec;
    use crate::synth::generate;
    use bf_tensor::Dense;

    #[test]
    fn split_partitions_features() {
        let s = spec("a9a").scaled(200, 1);
        let (train_ds, _) = generate(&s, 1);
        let v = vsplit(&train_ds);
        assert_eq!(
            v.party_a.num_dim() + v.party_b.num_dim(),
            train_ds.num_dim()
        );
        assert!(v.party_a.labels.is_none(), "Party A must not hold labels");
        assert!(v.party_b.labels.is_some());
        assert_eq!(v.party_a.rows(), v.party_b.rows());
    }

    #[test]
    fn split_preserves_row_content() {
        let s = spec("a9a").scaled(200, 1);
        let (train_ds, _) = generate(&s, 2);
        let v = vsplit(&train_ds);
        // Reassembling A|B columns gives back the original matrix.
        let full = train_ds.num.as_ref().unwrap().to_dense();
        let a = v.party_a.num.as_ref().unwrap().to_dense();
        let b = v.party_b.num.as_ref().unwrap().to_dense();
        let rebuilt: Dense = a.hstack(&b);
        assert!(rebuilt.approx_eq(&full, 0.0));
    }

    #[test]
    fn categorical_fields_split() {
        let s = spec("avazu-app").scaled(10_000, 100);
        let (train_ds, _) = generate(&s, 3);
        let v = vsplit(&train_ds);
        let total = train_ds.cat.as_ref().unwrap().fields();
        let fa = v.party_a.cat.as_ref().unwrap().fields();
        let fb = v.party_b.cat.as_ref().unwrap().fields();
        assert_eq!(fa + fb, total);
        // Vocabularies are rebased per party.
        let va = v.party_a.cat.as_ref().unwrap().vocab();
        let vb = v.party_b.cat.as_ref().unwrap().vocab();
        assert_eq!(va + vb, train_ds.cat.as_ref().unwrap().vocab());
    }

    #[test]
    fn dense_split() {
        let s = spec("higgs").scaled(50_000, 1);
        let (train_ds, _) = generate(&s, 4);
        let v = vsplit(&train_ds);
        assert_eq!(v.party_a.num_dim(), 14);
        assert_eq!(v.party_b.num_dim(), 14);
    }

    #[test]
    fn multi_split_with_one_guest_equals_vsplit() {
        let s = spec("a9a").scaled(150, 1);
        let (train_ds, _) = generate(&s, 5);
        let two = vsplit(&train_ds);
        let multi = vsplit_multi(&train_ds, 1);
        assert_eq!(multi.guests.len(), 1);
        let a2 = two.party_a.num.as_ref().unwrap().to_dense();
        let a1 = multi.guests[0].num.as_ref().unwrap().to_dense();
        assert!(a1.approx_eq(&a2, 0.0));
        let b2 = two.party_b.num.as_ref().unwrap().to_dense();
        let b1 = multi.party_b.num.as_ref().unwrap().to_dense();
        assert!(b1.approx_eq(&b2, 0.0));
    }

    #[test]
    fn multi_split_concatenation_reconstructs_party_a() {
        let s = spec("a9a").scaled(150, 1);
        let (train_ds, _) = generate(&s, 6);
        let two = vsplit(&train_ds);
        for m in [2usize, 3, 5] {
            let multi = vsplit_multi(&train_ds, m);
            assert_eq!(multi.guests.len(), m);
            // No guest is empty and widths are near-equal.
            let widths: Vec<usize> = multi.guests.iter().map(|g| g.num_dim()).collect();
            let (min, max) = (*widths.iter().min().unwrap(), *widths.iter().max().unwrap());
            assert!(min >= 1 && max - min <= 1, "widths {widths:?}");
            // hstack(guests) == the two-party Party A view.
            let mut rebuilt = multi.guests[0].num.as_ref().unwrap().to_dense();
            for g in &multi.guests[1..] {
                rebuilt = rebuilt.hstack(&g.num.as_ref().unwrap().to_dense());
            }
            let want = two.party_a.num.as_ref().unwrap().to_dense();
            assert!(rebuilt.approx_eq(&want, 0.0));
            // No guest holds labels; B is unchanged.
            assert!(multi.guests.iter().all(|g| g.labels.is_none()));
            assert!(multi.party_b.labels.is_some());
        }
    }

    #[test]
    fn multi_split_partitions_categorical_fields() {
        let s = spec("avazu-app").scaled(10_000, 100);
        let (train_ds, _) = generate(&s, 7);
        let two = vsplit(&train_ds);
        let fields_a = two.party_a.cat.as_ref().unwrap().fields();
        // More guests than A-side fields: the tail guests get None.
        let m = fields_a + 2;
        let multi = vsplit_multi(&train_ds, m);
        let held: Vec<usize> = multi
            .guests
            .iter()
            .map(|g| g.cat.as_ref().map_or(0, |c| c.fields()))
            .collect();
        assert_eq!(held.iter().sum::<usize>(), fields_a);
        assert!(held[..fields_a].iter().all(|&f| f == 1));
        assert!(held[fields_a..].iter().all(|&f| f == 0));
    }
}
