//! Data synthesis with planted cross-party signal.

use bf_ml::data::{Dataset, Labels};
use bf_tensor::{CatBlock, Csr, Dense, Features};
use rand::Rng;
use rand::SeedableRng;

use crate::catalog::{DatasetSpec, Shape};

/// Generate `(train, test)` collocated datasets for a spec.
///
/// The planted model draws a weight per feature (and a latent effect
/// per categorical value); labels are sampled from the resulting
/// logits with moderate noise, so linear models reach strong-but-not-
/// perfect metrics and extra features (Party A's half) always help.
pub fn generate(spec: &DatasetSpec, seed: u64) -> (Dataset, Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let planted = Planted::new(&mut rng, spec);
    let train = synth_rows(&mut rng, spec, &planted, spec.train_rows);
    let test = synth_rows(&mut rng, spec, &planted, spec.test_rows);
    (train, test)
}

/// Generate a collocated dataset with a planted **axis-aligned,
/// non-additive** signal — the shape gradient-boosted trees excel at
/// and linear models cannot represent.
///
/// Labels follow an XOR of two threshold predicates, `(x₀ > 0) ⊕
/// (x₁ > 0)`, softened by a margin-proportional flip probability near
/// the thresholds, plus a weak additive nudge from the remaining
/// features so every column carries some signal (and a vertical split
/// leaves useful features on both sides). A depth-≥2 tree recovers the
/// XOR exactly; a GLM on the raw features stays near chance.
///
/// Dense features, binary labels, deterministic per `(rows, features,
/// seed)`. Requires `features >= 2`.
pub fn generate_tree(rows: usize, features: usize, seed: u64) -> Dataset {
    assert!(features >= 2, "the XOR signal needs two feature columns");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let x = bf_tensor::init::gaussian(&mut rng, rows, features, 1.0);
    let mut y = Vec::with_capacity(rows);
    for r in 0..rows {
        let a = x.get(r, 0);
        let b = x.get(r, 1);
        let core = (a > 0.0) != (b > 0.0);
        // Margin-aware noise: rows near a threshold flip more often, so
        // the task is strong-but-not-separable (logloss can improve for
        // several boosting rounds instead of saturating on round one).
        let margin = a.abs().min(b.abs());
        let mut nudge = 0.0;
        for f in 2..features {
            nudge += 0.15 * x.get(r, f) * if f % 2 == 0 { 1.0 } else { -1.0 };
        }
        let p_true = bf_ml::layers::sigmoid(4.0 * margin + nudge);
        let keep = rng.random::<f64>() < p_true;
        y.push(if core == keep { 1.0 } else { 0.0 });
    }
    Dataset {
        num: Some(Features::Dense(x)),
        cat: None,
        labels: Some(Labels::Binary(y)),
    }
}

/// The hidden ground-truth model.
struct Planted {
    /// Per-numerical-feature weight, one column per class (binary uses
    /// a single column).
    w_num: Dense,
    /// Per-categorical-value effect (vocab × classes'), empty when the
    /// spec has no categorical fields.
    w_cat: Dense,
    /// Logit sharpness.
    gain: f64,
}

impl Planted {
    fn new<R: Rng + ?Sized>(rng: &mut R, spec: &DatasetSpec) -> Self {
        let out = if spec.classes == 2 { 1 } else { spec.classes };
        let features = spec.shape.features();
        let w_num = bf_tensor::init::gaussian(rng, features, out, 1.0);
        let vocab_total: u32 = match &spec.shape {
            Shape::Tabular { vocabs, .. } => vocabs.iter().sum(),
            _ => 0,
        };
        // Categorical effects are a secondary signal (weight 0.3) so the
        // numerical-only GLMs of the evaluation still reach strong
        // metrics, while WDL/DLRM gain from the embeddings.
        let w_cat = bf_tensor::init::gaussian(rng, vocab_total as usize, out, 0.3);
        // Sparse rows have ~avg_nnz active weights; normalise the logit
        // variance so labels are neither pure noise nor deterministic.
        // Image labels are set directly by the prototype sampler.
        // Many-class tasks need a sharper signal for the argmax to be
        // learnable at laptop-scale row counts.
        let class_boost = if spec.classes > 3 { 2.0 } else { 1.0 };
        let gain = match spec.shape {
            Shape::Image { .. } => 1.0,
            _ => 3.0 * class_boost / (spec.shape.avg_nnz() as f64).sqrt(),
        };
        Self { w_num, w_cat, gain }
    }
}

fn synth_rows<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &DatasetSpec,
    planted: &Planted,
    rows: usize,
) -> Dataset {
    let out = planted.w_num.cols();
    let mut logits = Dense::zeros(rows, out);

    // Numerical part.
    let num: Features = match &spec.shape {
        Shape::Sparse { features, avg_nnz }
        | Shape::Tabular {
            features, avg_nnz, ..
        } => {
            let x = sparse_rows(rng, rows, *features, *avg_nnz);
            accumulate_logits(&mut logits, &x.matmul_dense(&planted.w_num));
            Features::Sparse(x)
        }
        Shape::Dense { features } => {
            let x = bf_tensor::init::gaussian(rng, rows, *features, 1.0);
            accumulate_logits(&mut logits, &x.matmul(&planted.w_num));
            Features::Dense(x)
        }
        Shape::Image { h, w } => {
            let x = image_rows(rng, rows, *h, *w, spec.classes, &mut logits);
            Features::Dense(x)
        }
    };

    // Categorical part.
    let cat = match &spec.shape {
        Shape::Tabular { vocabs, .. } => {
            let cb = cat_rows(rng, rows, vocabs);
            // Latent effect per looked-up value.
            for r in 0..rows {
                for &g in cb.row(r) {
                    for j in 0..out {
                        let cur = logits.get(r, j);
                        logits.set(r, j, cur + planted.w_cat.get(g as usize, j));
                    }
                }
            }
            Some(cb)
        }
        _ => None,
    };

    // Labels from noisy logits.
    let labels = if spec.classes == 2 {
        let y = (0..rows)
            .map(|r| {
                let p = bf_ml::layers::sigmoid(logits.get(r, 0) * planted.gain);
                if rng.random::<f64>() < p {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Labels::Binary(y)
    } else {
        let y = (0..rows)
            .map(|r| {
                // Softmax sample with temperature 1/gain.
                let row = logits.row(r);
                let max = row
                    .iter()
                    .fold(f64::NEG_INFINITY, |m, &v| m.max(v * planted.gain));
                let exps: Vec<f64> = row
                    .iter()
                    .map(|&v| (v * planted.gain - max).exp())
                    .collect();
                let total: f64 = exps.iter().sum();
                let mut t = rng.random::<f64>() * total;
                let mut cls = 0u32;
                for (j, &e) in exps.iter().enumerate() {
                    if t < e {
                        cls = j as u32;
                        break;
                    }
                    t -= e;
                }
                cls
            })
            .collect();
        Labels::Multi {
            classes: spec.classes,
            y,
        }
    };

    Dataset {
        num: Some(num),
        cat,
        labels: Some(labels),
    }
}

fn accumulate_logits(logits: &mut Dense, contrib: &Dense) {
    logits.add_assign(contrib);
}

/// Sparse binary rows shaped like real one-hot/hashed data: the feature
/// space is partitioned into `avg_nnz` fields and each row activates at
/// most one (skewed) value per field. Popular values recur across rows,
/// so a linear model generalises; the skew keeps a long tail, so the
/// batch support stays much smaller than the dimensionality (the
/// property the sparse protocol exploits).
fn sparse_rows<R: Rng + ?Sized>(rng: &mut R, rows: usize, features: usize, avg_nnz: usize) -> Csr {
    let nfields = avg_nnz.min(features);
    let width = features / nfields;
    let mut triplets = Vec::with_capacity(rows * nfields);
    for r in 0..rows {
        for f in 0..nfields {
            // ~8% missing values so nnz varies per row.
            if rng.random::<f64>() < 0.08 {
                continue;
            }
            let base = f * width;
            let w = if f == nfields - 1 {
                features - base
            } else {
                width
            };
            // Skewed within-field choice (power transform).
            let u: f64 = rng.random::<f64>().max(1e-12);
            let v = ((w as f64).powf(u) - 1.0) as usize;
            triplets.push((r, (base + v.min(w - 1)) as u32, 1.0));
        }
    }
    Csr::from_triplets(rows, features, triplets)
}

/// Categorical rows with skewed per-field value popularity.
fn cat_rows<R: Rng + ?Sized>(rng: &mut R, rows: usize, vocabs: &[u32]) -> CatBlock {
    let fields = vocabs.len();
    let mut local = Vec::with_capacity(rows * fields);
    for _ in 0..rows {
        for &v in vocabs {
            let u: f64 = rng.random::<f64>().max(1e-12);
            let idx = ((v as f64).powf(u) - 1.0) as u32;
            local.push(idx.min(v - 1));
        }
    }
    CatBlock::from_local(rows, vocabs, local)
}

/// Image-like rows: class prototypes + pixel noise; fills `logits` with
/// a near-one-hot signal so the downstream label sampler mostly picks
/// the prototype class (≈12% label noise caps the achievable accuracy,
/// like the real fmnist task).
///
/// The vertical split gives Party A the *first* half of the pixels
/// (the paper splits each image into two 14×28 sub-figures). To give
/// Party A's half genuine marginal value — the Figure 15 gap — two
/// pairs of classes share their second-half prototype, so the label
/// owner's half alone cannot tell those pairs apart.
fn image_rows<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    h: usize,
    w: usize,
    classes: usize,
    logits: &mut Dense,
) -> Dense {
    let d = h * w;
    let half = d / 2;
    // Fixed prototypes per class (fixed child seed so train and test
    // share them).
    let mut proto_rng = rand::rngs::StdRng::seed_from_u64(0xF00D);
    let mut protos: Vec<Dense> = (0..classes)
        .map(|_| bf_tensor::init::gaussian(&mut proto_rng, 1, d, 1.0))
        .collect();
    // Classes 1 and 3 copy the second half of classes 0 and 2.
    for (dup, src) in [(1usize, 0usize), (3, 2)] {
        if dup < classes && src < classes {
            let shared: Vec<f64> = protos[src].data()[half..].to_vec();
            protos[dup].data_mut()[half..].copy_from_slice(&shared);
        }
    }
    let mut x = Dense::zeros(rows, d);
    for r in 0..rows {
        let cls = rng.random_range(0..classes);
        let noise = bf_tensor::init::gaussian(rng, 1, d, 1.2);
        for c in 0..d {
            x.set(r, c, protos[cls].get(0, c) + noise.get(0, c));
        }
        // ~12% label noise via the softmax sampler.
        logits.set(r, cls, (0.88f64 * (classes - 1) as f64 / 0.12).ln());
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::spec;
    use bf_ml::models::GlmModel;
    use bf_ml::train::{train, TrainConfig};

    #[test]
    fn shapes_match_spec() {
        let s = spec("a9a").scaled(100, 1);
        let (train_ds, test_ds) = generate(&s, 1);
        assert_eq!(train_ds.rows(), s.train_rows);
        assert_eq!(test_ds.rows(), s.test_rows);
        assert_eq!(train_ds.num_dim(), 123);
        assert!(train_ds.cat.is_some());
        let f = train_ds.num.as_ref().unwrap();
        assert!(f.is_sparse());
    }

    #[test]
    fn sparsity_close_to_spec() {
        let s = spec("w8a").scaled(100, 1);
        let (train_ds, _) = generate(&s, 2);
        let f = train_ds.num.as_ref().unwrap();
        let avg_nnz = f.nnz() as f64 / train_ds.rows() as f64;
        assert!((avg_nnz - 12.0).abs() < 4.0, "avg_nnz={avg_nnz}");
    }

    #[test]
    fn labels_are_balanced_enough() {
        let s = spec("a9a").scaled(100, 1);
        let (train_ds, _) = generate(&s, 3);
        let y = train_ds.labels.as_ref().unwrap().as_binary();
        let pos = y.iter().filter(|&&v| v > 0.5).count() as f64 / y.len() as f64;
        assert!(pos > 0.2 && pos < 0.8, "pos rate {pos}");
    }

    #[test]
    fn planted_signal_is_learnable() {
        let s = spec("a9a").scaled(50, 1);
        let (train_ds, test_ds) = generate(&s, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut m = GlmModel::new(&mut rng, train_ds.num_dim(), 1);
        let cfg = TrainConfig {
            epochs: 6,
            ..Default::default()
        };
        let report = train(&mut m, &train_ds, &test_ds, &cfg);
        assert!(report.test_metric > 0.75, "auc={}", report.test_metric);
    }

    #[test]
    fn multiclass_generation() {
        let s = spec("connect-4").scaled(100, 1);
        let (train_ds, _) = generate(&s, 6);
        match train_ds.labels.as_ref().unwrap() {
            Labels::Multi { classes, y } => {
                assert_eq!(*classes, 3);
                assert!(y.contains(&0));
                assert!(y.contains(&2));
            }
            _ => panic!("expected multi-class"),
        }
    }

    #[test]
    fn image_generation_learnable_by_prototype_distance() {
        let s = spec("fmnist").scaled(200, 1);
        let (train_ds, test_ds) = generate(&s, 7);
        assert_eq!(train_ds.num_dim(), 784);
        // Same prototypes in train and test: an MLR should beat chance easily.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut m = GlmModel::new(&mut rng, 784, 10);
        let cfg = TrainConfig {
            epochs: 4,
            ..Default::default()
        };
        let report = train(&mut m, &train_ds, &test_ds, &cfg);
        assert!(report.test_metric > 0.5, "acc={}", report.test_metric);
    }

    #[test]
    fn tree_signal_is_learnable_by_gbdt_not_glm() {
        use bf_ml::gbdt::{CollocatedGbdt, GbdtParams};
        let ds = generate_tree(400, 6, 21);
        let params = GbdtParams {
            trees: 8,
            max_depth: 3,
            ..GbdtParams::default()
        };
        let (_, losses) = CollocatedGbdt::train(&ds, &params);
        let first = losses.first().copied().unwrap();
        let last = losses.last().copied().unwrap();
        assert!(
            last < first - 0.05,
            "boosting should cut logloss: {first} -> {last}"
        );
        // The XOR core defeats a linear model: its logloss stays near
        // chance (ln 2 ≈ 0.693) where the forest's keeps dropping.
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut m = GlmModel::new(&mut rng, ds.num_dim(), 1);
        let report = train(&mut m, &ds, &ds, &TrainConfig::default());
        assert!(report.test_metric < 0.65, "glm auc={}", report.test_metric);
        assert!(last < 0.55, "gbdt logloss={last}");
    }

    #[test]
    fn tree_generation_deterministic() {
        let a = generate_tree(100, 4, 3);
        let b = generate_tree(100, 4, 3);
        assert_eq!(
            a.labels.as_ref().unwrap().as_binary(),
            b.labels.as_ref().unwrap().as_binary()
        );
        assert_eq!(a.rows(), 100);
        assert_eq!(a.num_dim(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec("a9a").scaled(200, 1);
        let (a, _) = generate(&s, 9);
        let (b, _) = generate(&s, 9);
        assert_eq!(
            a.labels.as_ref().unwrap().as_binary(),
            b.labels.as_ref().unwrap().as_binary()
        );
    }
}
