//! Integration test crate.
