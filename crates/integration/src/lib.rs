//! Workspace smoke tests.
//!
//! `bf-integration` exists so that one fast `cargo test -p
//! bf-integration` catches cross-crate breakage — datagen → tensor →
//! ml → mpc → core wired together through the public APIs — without
//! paying for the full Paillier-backed suites in `tests/` at the repo
//! root. Everything here runs on the Plain backend and finishes in a
//! few seconds even in debug builds.
//!
//! The deep coverage lives elsewhere:
//!
//! * `tests/crypto_stack.rs` — Paillier + HE↔SS property tests,
//! * `tests/end_to_end.rs` / `tests/lossless.rs` — full federated
//!   training vs. collocated reference,
//! * `tests/security.rs` — message-kind audits against the paper's
//!   restricted-observable tables.

#[cfg(test)]
mod smoke {
    use bf_datagen::{generate, spec, vsplit};
    use bf_ml::TrainConfig;
    use blindfl::config::FedConfig;
    use blindfl::models::FedSpec;
    use blindfl::train::{train_federated, FedTrainConfig};

    /// One-epoch federated LR on a tiny vertically-split synthetic
    /// dataset, Plain backend. Guards the datagen → split → session →
    /// source-layer → train pipeline; must stay under ~5 s in debug.
    #[test]
    fn tiny_federated_lr_trains_on_plain_backend() {
        let mut ds = spec("a9a").scaled(100, 1);
        ds.train_rows = 256;
        ds.test_rows = 128;
        let (train, test) = generate(&ds, 9);
        let train_v = vsplit(&train);
        let test_v = vsplit(&test);

        let cfg = FedConfig::plain();
        let tc = FedTrainConfig {
            base: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        let outcome = train_federated(
            &FedSpec::Glm { out: 1 },
            &cfg,
            &tc,
            train_v.party_a.clone(),
            train_v.party_b.clone(),
            test_v.party_a.clone(),
            test_v.party_b.clone(),
            3,
        );

        assert!(
            !outcome.report.losses.is_empty(),
            "training produced no batches"
        );
        assert!(
            outcome.report.losses.iter().all(|l| l.is_finite()),
            "non-finite loss: {:?}",
            outcome.report.losses
        );
        assert!(
            outcome.report.test_metric.is_finite() && outcome.report.test_metric > 0.0,
            "bad test metric {}",
            outcome.report.test_metric
        );
        // Runtime target: well under 5 s even in debug (measured ~10 ms
        // release / <3 s debug incl. compile). Enforced by CI's overall
        // timeout rather than a wall-clock assert, which would flake on
        // loaded shared runners.
    }
}
