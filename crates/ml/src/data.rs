//! Dataset containers and mini-batch iteration.

use bf_tensor::{CatBlock, Features};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Classification labels: binary (`f64 ∈ {0,1}`) or multi-class.
#[derive(Clone, Debug)]
pub enum Labels {
    /// Binary labels.
    Binary(Vec<f64>),
    /// Class indices with the number of classes.
    Multi { classes: usize, y: Vec<u32> },
}

impl Labels {
    /// Number of labelled instances.
    pub fn len(&self) -> usize {
        match self {
            Labels::Binary(v) => v.len(),
            Labels::Multi { y, .. } => y.len(),
        }
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of model outputs (1 for binary, C for multi-class).
    pub fn out_dim(&self) -> usize {
        match self {
            Labels::Binary(_) => 1,
            Labels::Multi { classes, .. } => *classes,
        }
    }

    /// Gather a batch of labels.
    pub fn select(&self, idx: &[usize]) -> Labels {
        match self {
            Labels::Binary(v) => Labels::Binary(idx.iter().map(|&i| v[i]).collect()),
            Labels::Multi { classes, y } => Labels::Multi {
                classes: *classes,
                y: idx.iter().map(|&i| y[i]).collect(),
            },
        }
    }

    /// Binary labels as a slice (panics for multi-class).
    pub fn as_binary(&self) -> &[f64] {
        match self {
            Labels::Binary(v) => v,
            _ => panic!("expected binary labels"),
        }
    }

    /// Multi-class labels as a slice (panics for binary).
    pub fn as_multi(&self) -> &[u32] {
        match self {
            Labels::Multi { y, .. } => y,
            _ => panic!("expected multi-class labels"),
        }
    }
}

/// A (possibly single-party view of a) dataset: numerical features,
/// optional categorical features, optional labels.
///
/// Under the VFL split, Party A's view has `labels = None`; Party B's
/// view has the labels. A collocated dataset has everything.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Numerical features (dense or sparse). `None` for purely
    /// categorical datasets.
    pub num: Option<Features>,
    /// Categorical features. `None` for purely numerical datasets.
    pub cat: Option<CatBlock>,
    /// Labels, if this view owns them.
    pub labels: Option<Labels>,
}

impl Dataset {
    /// Number of instances.
    pub fn rows(&self) -> usize {
        if let Some(n) = &self.num {
            return n.rows();
        }
        if let Some(c) = &self.cat {
            return c.rows();
        }
        0
    }

    /// Numerical dimensionality (0 when absent).
    pub fn num_dim(&self) -> usize {
        self.num.as_ref().map_or(0, |f| f.cols())
    }

    /// Gather a mini-batch view.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            num: self.num.as_ref().map(|f| f.select_rows(idx)),
            cat: self.cat.as_ref().map(|c| c.select_rows(idx)),
            labels: self.labels.as_ref().map(|l| l.select(idx)),
        }
    }
}

/// Deterministic shuffled mini-batch index iterator.
///
/// Both parties construct the same `BatchIter` from a shared seed, so
/// their batch schedules agree without exchanging indices — mirroring
/// the PSI-aligned instance ordering the paper assumes.
#[derive(Clone, Debug)]
pub struct BatchIter {
    order: Vec<usize>,
    batch: usize,
    pos: usize,
}

impl BatchIter {
    /// A shuffled pass over `n` instances in batches of `batch`
    /// (the final short batch is dropped, as mini-batch SGD usually
    /// does).
    pub fn new(n: usize, batch: usize, seed: u64) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        Self {
            order,
            batch,
            pos: 0,
        }
    }

    /// Sequential (unshuffled) batches, e.g. for evaluation.
    pub fn sequential(n: usize, batch: usize) -> Self {
        Self {
            order: (0..n).collect(),
            batch,
            pos: 0,
        }
    }

    /// Number of full batches in a pass.
    pub fn batches_per_epoch(&self) -> usize {
        self.order.len() / self.batch
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.pos + self.batch > self.order.len() {
            return None;
        }
        let out = self.order[self.pos..self.pos + self.batch].to_vec();
        self.pos += self.batch;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_tensor::Dense;

    #[test]
    fn batch_iter_is_deterministic_partition() {
        let a: Vec<Vec<usize>> = BatchIter::new(10, 3, 7).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(10, 3, 7).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3); // drops the short batch
        let mut seen: Vec<usize> = a.concat();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<Vec<usize>> = BatchIter::new(100, 10, 1).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(100, 10, 2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn dataset_select_views() {
        let x = Dense::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let ds = Dataset {
            num: Some(Features::Dense(x)),
            cat: None,
            labels: Some(Labels::Binary(vec![0.0, 1.0, 1.0])),
        };
        let b = ds.select(&[2, 0]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.labels.unwrap().as_binary(), &[1.0, 0.0]);
    }

    #[test]
    fn labels_out_dim() {
        assert_eq!(Labels::Binary(vec![0.0]).out_dim(), 1);
        assert_eq!(
            Labels::Multi {
                classes: 5,
                y: vec![0]
            }
            .out_dim(),
            5
        );
    }
}
