//! Client-side local encoders for the limited-overlap regime.
//!
//! Sun et al. ("Communication-Efficient Vertical Federated Learning
//! with Limited Overlapping Samples", SNIPPETS.md snippet 3) have each
//! client learn an **unsupervised** representation of its local
//! features — the reference implementation uses `StandardScaler +
//! PCA` — on *all* of its local rows, including the ones outside the
//! PSI intersection. Federated training then runs over the encoded
//! features of the intersection only. The unaligned rows, useless to
//! the joint protocol (no common sample, no label), still contribute:
//! they shape the encoder.
//!
//! [`LocalEncoder`] is that object: a frozen
//! standardise-then-project transform fitted by deterministic,
//! seeded orthogonal power iteration (no LAPACK in this workspace).
//! Everything is `f64` and fully deterministic for a given seed, so
//! encoder-assisted federated runs stay bit-reproducible — the repo's
//! proof style extends through the limited-overlap path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;
use bf_tensor::{Dense, Features};

/// A frozen StandardScaler + PCA transform over one party's
/// numerical features: `encode(x) = standardise(x) · proj`.
#[derive(Clone, Debug)]
pub struct LocalEncoder {
    /// Per-column mean of the fitting rows.
    mean: Vec<f64>,
    /// Per-column inverse standard deviation (0 for constant columns,
    /// which standardise to exactly 0).
    inv_std: Vec<f64>,
    /// `d × k` projection; columns are orthonormal principal
    /// directions of the standardised fitting rows.
    proj: Dense,
}

impl LocalEncoder {
    /// Output dimensionality `k`.
    pub fn dim(&self) -> usize {
        self.proj.cols()
    }

    /// Input dimensionality `d`.
    pub fn input_dim(&self) -> usize {
        self.proj.rows()
    }

    /// Fit on `x` (rows = local samples): standardise each column,
    /// then extract `k` principal directions by orthogonal power
    /// iteration with deflation. `k` is clamped to `min(d, rows)`;
    /// `iters` power steps per component (≈10 is plenty at these
    /// scales). Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has zero rows or columns, or `k == 0` — an
    /// encoder fitted on nothing is a caller bug.
    pub fn fit(x: &Dense, k: usize, iters: usize, seed: u64) -> LocalEncoder {
        let (n, d) = (x.rows(), x.cols());
        assert!(n > 0 && d > 0, "cannot fit an encoder on an empty matrix");
        assert!(k > 0, "encoder output dimension must be positive");
        let k = k.min(d).min(n);

        // StandardScaler: per-column mean and (population) std.
        let mut mean = vec![0.0; d];
        for r in 0..n {
            for c in 0..d {
                mean[c] += x.get(r, c);
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; d];
        for r in 0..n {
            for c in 0..d {
                let dv = x.get(r, c) - mean[c];
                var[c] += dv * dv;
            }
        }
        let inv_std: Vec<f64> = var
            .iter()
            .map(|&v| {
                let s = (v / n as f64).sqrt();
                if s > 0.0 {
                    1.0 / s
                } else {
                    0.0
                }
            })
            .collect();

        // Standardised data, then its d×d covariance (population).
        let z = standardise(x, &mean, &inv_std);
        let cov = z.t_matmul(&z).scale(1.0 / n as f64);

        // Orthogonal power iteration with deflation: component j is
        // repeatedly multiplied by the covariance and re-orthogonalised
        // against components 0..j.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9CA0_E27D);
        let mut proj = Dense::zeros(d, k);
        for j in 0..k {
            let mut v: Vec<f64> = (0..d).map(|_| rng.random_range(-1.0..1.0)).collect();
            for _ in 0..iters.max(1) {
                // v ← cov · v
                let mut next = vec![0.0; d];
                for r in 0..d {
                    let mut acc = 0.0;
                    for c in 0..d {
                        acc += cov.get(r, c) * v[c];
                    }
                    next[r] = acc;
                }
                // Gram–Schmidt against earlier components.
                for p in 0..j {
                    let dot: f64 = (0..d).map(|r| next[r] * proj.get(r, p)).sum();
                    for r in 0..d {
                        next[r] -= dot * proj.get(r, p);
                    }
                }
                let norm = next.iter().map(|a| a * a).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for a in &mut next {
                        *a /= norm;
                    }
                } else {
                    // Degenerate direction (rank-deficient data): keep
                    // a deterministic unit basis vector instead.
                    next = vec![0.0; d];
                    next[j % d] = 1.0;
                    for p in 0..j {
                        let dot: f64 = (0..d).map(|r| next[r] * proj.get(r, p)).sum();
                        for r in 0..d {
                            next[r] -= dot * proj.get(r, p);
                        }
                    }
                    let n2 = next.iter().map(|a| a * a).sum::<f64>().sqrt();
                    if n2 > 0.0 {
                        for a in &mut next {
                            *a /= n2;
                        }
                    }
                }
                v = next;
            }
            for r in 0..d {
                proj.set(r, j, v[r]);
            }
        }
        LocalEncoder {
            mean,
            inv_std,
            proj,
        }
    }

    /// Encode a feature matrix (`rows × d` → `rows × k`).
    pub fn transform(&self, x: &Dense) -> Dense {
        assert_eq!(x.cols(), self.input_dim(), "encoder dimension mismatch");
        standardise(x, &self.mean, &self.inv_std).matmul(&self.proj)
    }

    /// Encode a dataset's numerical block in place of the original
    /// features (categorical blocks and labels pass through).
    pub fn encode_dataset(&self, ds: &Dataset) -> Dataset {
        let num = ds
            .num
            .as_ref()
            .map(|f| Features::Dense(self.transform(&f.to_dense())));
        Dataset {
            num,
            cat: ds.cat.clone(),
            labels: ds.labels.clone(),
        }
    }
}

fn standardise(x: &Dense, mean: &[f64], inv_std: &[f64]) -> Dense {
    let (n, d) = (x.rows(), x.cols());
    let mut out = Dense::zeros(n, d);
    for r in 0..n {
        for c in 0..d {
            out.set(r, c, (x.get(r, c) - mean[c]) * inv_std[c]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, d: usize, seed: u64) -> Dense {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Dense::zeros(n, d);
        for r in 0..n {
            let t: f64 = rng.random_range(-2.0..2.0);
            for c in 0..d {
                // Strong rank-1 signal plus noise: PCA must find `t`.
                let noise: f64 = rng.random_range(-0.05..0.05);
                x.set(r, c, t * (c as f64 + 1.0) + noise + 3.0);
            }
        }
        x
    }

    #[test]
    fn fit_is_deterministic() {
        let x = toy(40, 6, 1);
        let a = LocalEncoder::fit(&x, 3, 12, 9);
        let b = LocalEncoder::fit(&x, 3, 12, 9);
        assert!(a.transform(&x).approx_eq(&b.transform(&x), 0.0));
    }

    #[test]
    fn projection_is_orthonormal() {
        let x = toy(50, 5, 2);
        let enc = LocalEncoder::fit(&x, 3, 15, 4);
        let gram = enc.proj.t_matmul(&enc.proj);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (gram.get(i, j) - want).abs() < 1e-9,
                    "gram[{i}][{j}] = {}",
                    gram.get(i, j)
                );
            }
        }
    }

    #[test]
    fn first_component_captures_the_planted_signal() {
        let x = toy(80, 6, 3);
        let enc = LocalEncoder::fit(&x, 1, 20, 5);
        // The planted direction is ∝ (1, 2, …, d) after standardising
        // ⇒ ∝ (1, 1, …, 1)/√d. Check |cos| close to 1.
        let d = 6;
        let unit = 1.0 / (d as f64).sqrt();
        let cos: f64 = (0..d).map(|r| enc.proj.get(r, 0) * unit).sum();
        assert!(cos.abs() > 0.999, "cos = {cos}");
    }

    #[test]
    fn constant_columns_standardise_to_zero() {
        let mut x = toy(30, 4, 6);
        for r in 0..30 {
            x.set(r, 2, 42.0);
        }
        let enc = LocalEncoder::fit(&x, 2, 12, 7);
        let z = enc.transform(&x);
        assert!(z.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn k_is_clamped_to_rank_bounds() {
        let x = toy(4, 9, 8);
        let enc = LocalEncoder::fit(&x, 32, 10, 9);
        assert_eq!(enc.dim(), 4, "k clamps to min(d, rows)");
        assert_eq!(enc.transform(&x).cols(), 4);
    }
}
