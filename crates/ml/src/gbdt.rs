//! Histogram-based gradient-boosted trees (XGBoost-style second order).
//!
//! This module is the *shared substrate* for both tree trainers in the
//! workspace: the collocated twin ([`CollocatedGbdt`]) used as the
//! ground truth in parity tests, and the federated SecureBoost-style
//! protocol in the `blindfl` crate. Every piece of split-search
//! arithmetic — bucketization, gradient/hessian quantization, histogram
//! accumulation, gain computation, leaf weights, tree growth order —
//! lives here and is executed identically by both paths, which is what
//! makes the federated forest *bit-identical* to the twin rather than
//! merely close.
//!
//! The exactness hinges on one invariant: all histogram sums are taken
//! over **i64 fixed-point** gradients/hessians on the `2^-frac_bits`
//! grid (the same grid the Paillier codec encodes onto). Integer sums
//! are exact; the federated path recovers the very same integers from
//! decrypted homomorphic aggregates, so gains, argmaxes and leaf
//! weights — all pure functions of those integers — agree bit for bit.

use crate::data::Dataset;
use crate::layers::sigmoid;
use bf_tensor::Features;

/// Hyper-parameters for gradient-boosted binary classification trees.
#[derive(Clone, Debug)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub trees: usize,
    /// Maximum tree depth; the root is depth 0, so a tree has at most
    /// `2^(max_depth+1) - 1` nodes.
    pub max_depth: usize,
    /// Shrinkage applied inside each leaf weight.
    pub lr: f64,
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum hessian sum on each side of a split (XGBoost
    /// `min_child_weight`), in real (un-quantized) units.
    pub min_child_weight: f64,
    /// Maximum histogram buckets per feature.
    pub max_bins: usize,
    /// Initial margin (logit) before any tree.
    pub base_score: f64,
    /// Fixed-point fractional bits for gradient/hessian quantization.
    /// Must match the federation's `FedConfig::frac_bits` for parity.
    pub frac_bits: u32,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            trees: 5,
            max_depth: 3,
            lr: 0.3,
            lambda: 1.0,
            min_child_weight: 1e-3,
            max_bins: 16,
            base_score: 0.0,
            frac_bits: 24,
        }
    }
}

/// Quantize onto the `2^-frac_bits` grid, rounding ties away from zero
/// — the same rounding the Paillier codec applies when encoding.
pub fn quantize_i64(v: f64, frac_bits: u32) -> i64 {
    (v * (frac_bits as f64).exp2()).round() as i64
}

/// Recover a real value from its grid representation.
pub fn grid_f64(q: i64, frac_bits: u32) -> f64 {
    q as f64 / (frac_bits as f64).exp2()
}

/// Per-feature quantile bucketization of one party's feature block.
#[derive(Clone, Debug)]
pub struct FeatureBuckets {
    /// Per feature: ascending candidate thresholds. A split at bucket
    /// `b` means "x ≤ edges\[b\]"; a feature with `k` edges has `k+1`
    /// buckets. Constant features have no edges (1 bucket, unsplittable).
    pub edges: Vec<Vec<f64>>,
    /// Per feature, per row: the bucket id (`#edges < x`).
    pub ids: Vec<Vec<u16>>,
}

impl FeatureBuckets {
    /// Bucket counts per feature (`edges.len() + 1`).
    pub fn nbuckets(&self) -> Vec<usize> {
        self.edges.iter().map(|e| e.len() + 1).collect()
    }
}

/// Deterministic quantile edges over the distinct values of a column.
fn edges_for(vals: &[f64], max_bins: usize) -> Vec<f64> {
    let mut v = vals.to_vec();
    v.sort_by(f64::total_cmp);
    v.dedup();
    if v.len() <= 1 {
        return Vec::new();
    }
    if v.len() <= max_bins {
        // One bucket per distinct value; the candidate thresholds are
        // every distinct value except the last.
        return v[..v.len() - 1].to_vec();
    }
    let mut out: Vec<f64> = Vec::new();
    for b in 1..max_bins {
        let idx = b * v.len() / max_bins; // 1 ≤ idx < len
        let e = v[idx - 1];
        if out.last().map(|&l| l < e).unwrap_or(true) {
            out.push(e);
        }
    }
    out
}

/// Bucket id of `x` against ascending `edges`: the number of edges
/// strictly below `x`, so `id ≤ b ⇔ x ≤ edges[b]`.
pub fn bucket_of(edges: &[f64], x: f64) -> usize {
    edges.partition_point(|&e| e < x)
}

/// Bucketize every column of a feature block with deterministic
/// quantile edges. Both federation parties and the collocated twin call
/// this same function, so bucket boundaries agree exactly.
pub fn bucketize(x: &Features, max_bins: usize) -> FeatureBuckets {
    assert!(max_bins >= 2, "need at least 2 histogram bins");
    let d = x.to_dense();
    let (n, c) = (d.rows(), d.cols());
    let mut edges = Vec::with_capacity(c);
    let mut ids = Vec::with_capacity(c);
    for j in 0..c {
        let col: Vec<f64> = (0..n).map(|i| d.get(i, j)).collect();
        let e = edges_for(&col, max_bins);
        assert!(e.len() < u16::MAX as usize, "too many buckets");
        let id: Vec<u16> = col.iter().map(|&v| bucket_of(&e, v) as u16).collect();
        edges.push(e);
        ids.push(id);
    }
    FeatureBuckets { edges, ids }
}

/// One node of a [`Tree`]. `feature` is a *global* feature index (the
/// concatenation order of all parties' columns); `bucket` is the split
/// candidate, meaning rows with bucket id ≤ `bucket` go left.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Internal split node.
    Split {
        /// Global feature index.
        feature: u32,
        /// Split bucket: rows with id ≤ bucket go left.
        bucket: u32,
        /// Left child node index.
        left: u32,
        /// Right child node index.
        right: u32,
    },
    /// Terminal node carrying an additive margin contribution.
    Leaf {
        /// Leaf weight (already includes shrinkage).
        weight: f64,
    },
}

/// One regression tree; node 0 is the root, children were allocated in
/// BFS order so node indices encode the split-decision order.
#[derive(Clone, Debug, PartialEq)]
pub struct Tree {
    /// Flat node storage, root first.
    pub nodes: Vec<Node>,
}

/// A flat per-node histogram: one `(Σg, Σh)` grid-sum pair per bucket,
/// concatenated over features in global order.
pub type NodeHist = Vec<(i64, i64)>;

/// A grown tree plus the `(row, leaf_weight)` assignment of every
/// training row, so callers update margins identically.
pub type GrownTree = (Tree, Vec<(u32, f64)>);

/// Accumulate the histogram for `rows` over local bucket ids.
/// `offsets[f]` is the flat position of feature `f`'s bucket 0 and the
/// returned vector has `total` entries.
pub fn local_hist(
    ids: &[Vec<u16>],
    offsets: &[usize],
    total: usize,
    rows: &[u32],
    gq: &[i64],
    hq: &[i64],
) -> NodeHist {
    let mut hist = vec![(0i64, 0i64); total];
    for (f, col) in ids.iter().enumerate() {
        let off = offsets[f];
        for &r in rows {
            let slot = &mut hist[off + col[r as usize] as usize];
            slot.0 += gq[r as usize];
            slot.1 += hq[r as usize];
        }
    }
    hist
}

/// Flat bucket offsets for a list of per-feature bucket counts; returns
/// `(offsets, total)`.
pub fn bucket_offsets(nbuckets: &[usize]) -> (Vec<usize>, usize) {
    let mut offsets = Vec::with_capacity(nbuckets.len());
    let mut total = 0usize;
    for &nb in nbuckets {
        offsets.push(total);
        total += nb;
    }
    (offsets, total)
}

/// The winning split candidate for a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitDecision {
    /// Global feature index.
    pub feature: u32,
    /// Split bucket (left = ids ≤ bucket).
    pub bucket: u32,
    /// Gain over keeping the node whole.
    pub gain: f64,
}

fn score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

/// Exact argmax split search over a node histogram. Candidates are
/// enumerated feature-ascending then bucket-ascending with a strict `>`
/// comparison, so the winner is deterministic. Returns `None` when no
/// candidate has positive gain (or none satisfies `min_child_weight`).
pub fn best_split(
    hist: &NodeHist,
    nbuckets: &[usize],
    totals: (i64, i64),
    p: &GbdtParams,
) -> Option<SplitDecision> {
    let fb = p.frac_bits;
    let (gt, ht) = (grid_f64(totals.0, fb), grid_f64(totals.1, fb));
    let base = score(gt, ht, p.lambda);
    let mut best: Option<SplitDecision> = None;
    let mut off = 0usize;
    for (f, &nb) in nbuckets.iter().enumerate() {
        let (mut gl, mut hl) = (0i64, 0i64);
        // The last bucket is not a candidate (nothing would go right).
        for b in 0..nb.saturating_sub(1) {
            let (g, h) = hist[off + b];
            gl += g;
            hl += h;
            let (gr, hr) = (totals.0 - gl, totals.1 - hl);
            let (glf, hlf) = (grid_f64(gl, fb), grid_f64(hl, fb));
            let (grf, hrf) = (grid_f64(gr, fb), grid_f64(hr, fb));
            if hlf < p.min_child_weight || hrf < p.min_child_weight {
                continue;
            }
            let gain = score(glf, hlf, p.lambda) + score(grf, hrf, p.lambda) - base;
            if gain > 0.0 && best.map(|s| gain > s.gain).unwrap_or(true) {
                best = Some(SplitDecision {
                    feature: f as u32,
                    bucket: b as u32,
                    gain,
                });
            }
        }
        off += nb;
    }
    best
}

/// Leaf weight `-lr · G / (H + λ)` from grid totals.
pub fn leaf_weight(totals: (i64, i64), p: &GbdtParams) -> f64 {
    let (g, h) = (
        grid_f64(totals.0, p.frac_bits),
        grid_f64(totals.1, p.frac_bits),
    );
    -p.lr * g / (h + p.lambda)
}

/// The data-access seam [`grow_tree`] is generic over: the collocated
/// twin answers from local bucket ids; the federated host answers by
/// dispatching to guests (or its own columns) over the wire.
pub trait SplitOracle {
    /// Transport-level error type (`Infallible` for local oracles).
    type Err;
    /// Histogram of `rows` over *all* global features.
    fn hist(&mut self, rows: &[u32]) -> Result<NodeHist, Self::Err>;
    /// The subset of `rows` (order-preserving) whose bucket id for
    /// `feature` is ≤ `bucket`.
    fn route_left(
        &mut self,
        feature: u32,
        bucket: u32,
        rows: &[u32],
    ) -> Result<Vec<u32>, Self::Err>;
}

/// Grow one tree by breadth-first exact split search. Returns the tree
/// plus the `(row, leaf_weight)` assignment of every training row, so
/// callers update margins identically. Node allocation order (and hence
/// node indices) is the BFS split-decision order on both paths.
pub fn grow_tree<O: SplitOracle>(
    p: &GbdtParams,
    nbuckets: &[usize],
    gq: &[i64],
    hq: &[i64],
    root_rows: Vec<u32>,
    oracle: &mut O,
) -> Result<GrownTree, O::Err> {
    let mut nodes: Vec<Node> = vec![Node::Leaf { weight: 0.0 }];
    let mut assign: Vec<(u32, f64)> = Vec::new();
    let mut queue: std::collections::VecDeque<(usize, Vec<u32>, usize)> =
        std::collections::VecDeque::new();
    queue.push_back((0, root_rows, 0));
    while let Some((idx, rows, depth)) = queue.pop_front() {
        let totals = rows.iter().fold((0i64, 0i64), |(g, h), &r| {
            (g + gq[r as usize], h + hq[r as usize])
        });
        let decision = if depth < p.max_depth && rows.len() >= 2 {
            let hist = oracle.hist(&rows)?;
            best_split(&hist, nbuckets, totals, p)
        } else {
            None
        };
        match decision {
            Some(s) => {
                let left_rows = oracle.route_left(s.feature, s.bucket, &rows)?;
                let right_rows = diff_sorted(&rows, &left_rows);
                assert!(
                    !left_rows.is_empty() && !right_rows.is_empty(),
                    "split with positive gain produced an empty child — \
                     histogram and routing disagree"
                );
                let (l, r) = (nodes.len() as u32, nodes.len() as u32 + 1);
                nodes[idx] = Node::Split {
                    feature: s.feature,
                    bucket: s.bucket,
                    left: l,
                    right: r,
                };
                nodes.push(Node::Leaf { weight: 0.0 });
                nodes.push(Node::Leaf { weight: 0.0 });
                queue.push_back((l as usize, left_rows, depth + 1));
                queue.push_back((r as usize, right_rows, depth + 1));
            }
            None => {
                let w = leaf_weight(totals, p);
                nodes[idx] = Node::Leaf { weight: w };
                for &r in &rows {
                    assign.push((r, w));
                }
            }
        }
    }
    Ok((Tree { nodes }, assign))
}

/// `rows \ left` preserving order; both inputs are ascending subsets of
/// the training rows (BFS children of a sorted root stay sorted).
fn diff_sorted(rows: &[u32], left: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(rows.len() - left.len());
    let mut li = 0usize;
    for &r in rows {
        if li < left.len() && left[li] == r {
            li += 1;
        } else {
            out.push(r);
        }
    }
    out
}

/// First-order gradient and second-order hessian of binary logloss at
/// the current margins: `g = σ(z) − y`, `h = σ(z)(1 − σ(z))`.
pub fn grad_hess(margins: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut g = Vec::with_capacity(margins.len());
    let mut h = Vec::with_capacity(margins.len());
    for (&z, &t) in margins.iter().zip(y) {
        let p = sigmoid(z);
        g.push(p - t);
        h.push(p * (1.0 - p));
    }
    (g, h)
}

/// Numerically stable mean binary logloss over margins, summed in index
/// order (deterministic).
pub fn logloss_mean(margins: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&z, &t) in margins.iter().zip(y) {
        // ln(1 + e^-|z|) + max(z, 0) − z·t
        acc += (-z.abs()).exp().ln_1p() + z.max(0.0) - z * t;
    }
    acc / margins.len() as f64
}

/// Local oracle answering from bucket ids (the collocated trainer and
/// the federated host's own-feature shard both reduce to this).
struct LocalOracle<'a> {
    ids: &'a [Vec<u16>],
    offsets: &'a [usize],
    total: usize,
    gq: &'a [i64],
    hq: &'a [i64],
}

impl SplitOracle for LocalOracle<'_> {
    type Err = std::convert::Infallible;
    fn hist(&mut self, rows: &[u32]) -> Result<NodeHist, Self::Err> {
        Ok(local_hist(
            self.ids,
            self.offsets,
            self.total,
            rows,
            self.gq,
            self.hq,
        ))
    }
    fn route_left(
        &mut self,
        feature: u32,
        bucket: u32,
        rows: &[u32],
    ) -> Result<Vec<u32>, Self::Err> {
        let col = &self.ids[feature as usize];
        Ok(rows
            .iter()
            .copied()
            .filter(|&r| col[r as usize] as u32 <= bucket)
            .collect())
    }
}

/// A collocated (single-process) gradient-boosted forest: the ground
/// truth every federated run is compared against.
#[derive(Clone, Debug)]
pub struct CollocatedGbdt {
    /// The boosted trees in training order.
    pub trees: Vec<Tree>,
    /// Per-feature split thresholds (bucket edges) used at inference.
    pub edges: Vec<Vec<f64>>,
    /// Hyper-parameters the forest was trained with.
    pub params: GbdtParams,
}

impl CollocatedGbdt {
    /// Train on a collocated dataset (numerical features + binary
    /// labels). Returns the model and the post-tree training losses.
    pub fn train(ds: &Dataset, params: &GbdtParams) -> (CollocatedGbdt, Vec<f64>) {
        let x = ds.num.as_ref().expect("gbdt needs numerical features");
        let y = ds.labels.as_ref().expect("gbdt needs labels").as_binary();
        let n = x.rows();
        assert_eq!(n, y.len());
        let buckets = bucketize(x, params.max_bins);
        let nbuckets = buckets.nbuckets();
        let (offsets, total) = bucket_offsets(&nbuckets);
        let mut margins = vec![params.base_score; n];
        let mut trees = Vec::with_capacity(params.trees);
        let mut losses = Vec::with_capacity(params.trees);
        for _ in 0..params.trees {
            let (g, h) = grad_hess(&margins, y);
            let gq: Vec<i64> = g
                .iter()
                .map(|&v| quantize_i64(v, params.frac_bits))
                .collect();
            let hq: Vec<i64> = h
                .iter()
                .map(|&v| quantize_i64(v, params.frac_bits))
                .collect();
            let mut oracle = LocalOracle {
                ids: &buckets.ids,
                offsets: &offsets,
                total,
                gq: &gq,
                hq: &hq,
            };
            let root: Vec<u32> = (0..n as u32).collect();
            let (tree, assign) = match grow_tree(params, &nbuckets, &gq, &hq, root, &mut oracle) {
                Ok(t) => t,
                Err(e) => match e {},
            };
            for (r, w) in assign {
                margins[r as usize] += w;
            }
            losses.push(logloss_mean(&margins, y));
            trees.push(tree);
        }
        (
            CollocatedGbdt {
                trees,
                edges: buckets.edges,
                params: params.clone(),
            },
            losses,
        )
    }

    /// Predict margins (logits) for a feature block by threshold
    /// comparison (`x ≤ edges[f][b]` goes left — equivalent to the
    /// bucket-id routing used during training).
    pub fn predict(&self, x: &Features) -> Vec<f64> {
        let d = x.to_dense();
        let n = d.rows();
        let mut out = vec![self.params.base_score; n];
        for tree in &self.trees {
            for (i, o) in out.iter_mut().enumerate() {
                let mut node = 0usize;
                loop {
                    match &tree.nodes[node] {
                        Node::Leaf { weight } => {
                            *o += weight;
                            break;
                        }
                        Node::Split {
                            feature,
                            bucket,
                            left,
                            right,
                        } => {
                            let e = &self.edges[*feature as usize];
                            let go_left = d.get(i, *feature as usize) <= e[*bucket as usize];
                            node = if go_left {
                                *left as usize
                            } else {
                                *right as usize
                            };
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Labels;
    use bf_tensor::Dense;

    fn xor_dataset(n: usize) -> Dataset {
        // Deterministic pseudo-random grid: labels are a noisy XOR of
        // two thresholded columns — linearly unseparable, easy for a
        // depth-2 tree.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let cols = 4;
        let mut data = Vec::with_capacity(n * cols);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f64> = (0..cols).map(|_| next()).collect();
            let label = ((row[0] > 0.0) ^ (row[1] > 0.0)) as u8 as f64;
            data.extend_from_slice(&row);
            y.push(label);
        }
        Dataset {
            num: Some(Features::Dense(Dense::from_vec(n, cols, data))),
            cat: None,
            labels: Some(Labels::Binary(y)),
        }
    }

    #[test]
    fn bucket_id_matches_threshold_predicate() {
        let edges = [-0.5, 0.0, 1.25];
        for x in [-2.0, -0.5, -0.499, 0.0, 0.5, 1.25, 9.0] {
            let id = bucket_of(&edges, x);
            for (b, &e) in edges.iter().enumerate() {
                assert_eq!(id <= b, x <= e, "x={x} b={b}");
            }
        }
    }

    #[test]
    fn constant_feature_has_one_bucket() {
        let b = bucketize(&Features::Dense(Dense::from_vec(4, 1, vec![3.0; 4])), 8);
        assert!(b.edges[0].is_empty());
        assert_eq!(b.nbuckets(), vec![1]);
    }

    #[test]
    fn few_distinct_values_get_exact_edges() {
        let b = bucketize(
            &Features::Dense(Dense::from_vec(6, 1, vec![2.0, 1.0, 2.0, 3.0, 1.0, 3.0])),
            8,
        );
        assert_eq!(b.edges[0], vec![1.0, 2.0]);
        assert_eq!(b.ids[0], vec![1, 0, 1, 2, 0, 2]);
    }

    #[test]
    fn twin_learns_xor() {
        let ds = xor_dataset(256);
        let (model, losses) = CollocatedGbdt::train(&ds, &GbdtParams::default());
        assert_eq!(losses.len(), 5);
        assert!(losses.last().unwrap() < &0.4, "xor not learned: {losses:?}");
        // Training predictions must reproduce the training margins
        // (threshold routing ≡ bucket routing).
        let margins = model.predict(ds.num.as_ref().unwrap());
        let y = ds.labels.as_ref().unwrap().as_binary();
        let acc = margins
            .iter()
            .zip(y)
            .filter(|(&z, &t)| (z > 0.0) == (t > 0.5))
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = xor_dataset(128);
        let (m1, l1) = CollocatedGbdt::train(&ds, &GbdtParams::default());
        let (m2, l2) = CollocatedGbdt::train(&ds, &GbdtParams::default());
        assert_eq!(l1, l2);
        assert_eq!(m1.trees, m2.trees);
    }

    #[test]
    fn quantize_matches_codec_rounding() {
        // Ties away from zero, same as f64::round (and the Paillier
        // codec's encode path).
        assert_eq!(quantize_i64(1.5 / 16.0, 4), 2);
        assert_eq!(quantize_i64(-1.5 / 16.0, 4), -2);
        assert_eq!(quantize_i64(0.0, 24), 0);
    }
}
