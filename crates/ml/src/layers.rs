//! Neural-network layers with explicit forward/backward passes.

use bf_tensor::{CatBlock, Dense, Features};
use rand::Rng;

use crate::optim::Sgd;

/// A linear layer over [`Features`] input (the *source* position in the
/// paper's architecture — this is what the federated MatMul layer
/// replaces). Does not propagate a gradient to its input.
///
/// Gradients are materialised only on the batch's feature support and
/// updated with lazy (support-sparse) momentum — the exact update rule
/// of the federated MatMul source layer, so federated and collocated
/// training are numerically comparable (see DESIGN.md §3).
#[derive(Clone, Debug)]
pub struct LinearF {
    /// Weights (`in × out`).
    pub w: Dense,
    vel_w: Dense,
    grad_rows: Dense,
    grad_support: Vec<usize>,
    cached_x: Option<Features>,
}

impl LinearF {
    /// Xavier-initialised layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, output: usize) -> Self {
        let w = bf_tensor::init::xavier(rng, input, output);
        Self {
            vel_w: Dense::zeros(input, output),
            grad_rows: Dense::zeros(0, output),
            grad_support: Vec::new(),
            w,
            cached_x: None,
        }
    }

    /// Wrap an existing weight matrix (used by tests and by the
    /// split-learning baseline to control initialisation).
    pub fn from_weights(w: Dense) -> Self {
        let (r, c) = w.shape();
        Self {
            vel_w: Dense::zeros(r, c),
            grad_rows: Dense::zeros(0, c),
            grad_support: Vec::new(),
            w,
            cached_x: None,
        }
    }

    /// `Z = X·W`.
    pub fn forward(&mut self, x: &Features) -> Dense {
        let z = x.matmul(&self.w);
        self.cached_x = Some(x.clone());
        z
    }

    /// Inference-only forward (no cache).
    pub fn infer(&self, x: &Features) -> Dense {
        x.matmul(&self.w)
    }

    /// Compute `∇W = Xᵀ∇Z` restricted to the batch support.
    pub fn backward(&mut self, grad_z: &Dense) {
        let x = self.cached_x.take().expect("backward before forward");
        let support = x.col_support();
        self.grad_rows = x.t_matmul_support(grad_z, &support);
        self.grad_support = support.into_iter().map(|c| c as usize).collect();
    }

    /// Optimizer step (lazy momentum on the support rows).
    pub fn step(&mut self, opt: &Sgd) {
        opt.step_sparse_rows(
            &mut self.w,
            &self.grad_rows,
            &mut self.vel_w,
            &self.grad_support,
        );
    }

    /// Most recent gradient rows and their support (inspection/tests).
    pub fn last_grad(&self) -> (&Dense, &[usize]) {
        (&self.grad_rows, &self.grad_support)
    }
}

/// A linear layer over dense input, with bias.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weights (`in × out`).
    pub w: Dense,
    /// Bias (`1 × out`).
    pub b: Dense,
    grad_w: Dense,
    grad_b: Dense,
    vel_w: Dense,
    vel_b: Dense,
    cached_x: Option<Dense>,
}

impl Linear {
    /// Xavier-initialised layer with zero bias.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, output: usize) -> Self {
        let w = bf_tensor::init::xavier(rng, input, output);
        Self {
            grad_w: Dense::zeros(input, output),
            vel_w: Dense::zeros(input, output),
            w,
            b: Dense::zeros(1, output),
            grad_b: Dense::zeros(1, output),
            vel_b: Dense::zeros(1, output),
            cached_x: None,
        }
    }

    /// `Z = X·W + b`.
    pub fn forward(&mut self, x: &Dense) -> Dense {
        let mut z = x.matmul(&self.w);
        for r in 0..z.rows() {
            let row = z.row_mut(r);
            for (v, &bias) in row.iter_mut().zip(self.b.row(0)) {
                *v += bias;
            }
        }
        self.cached_x = Some(x.clone());
        z
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Dense) -> Dense {
        let mut z = x.matmul(&self.w);
        for r in 0..z.rows() {
            let row = z.row_mut(r);
            for (v, &bias) in row.iter_mut().zip(self.b.row(0)) {
                *v += bias;
            }
        }
        z
    }

    /// Rebuild a layer from persisted state: weights, bias and their
    /// momentum buffers (gradients are transient and start empty).
    /// Shapes must be consistent (`vel_w` matches `w`, `vel_b` matches
    /// `b`); asserted.
    pub fn from_state(w: Dense, b: Dense, vel_w: Dense, vel_b: Dense) -> Self {
        assert_eq!(w.shape(), vel_w.shape(), "vel_w shape mismatch");
        assert_eq!(b.shape(), vel_b.shape(), "vel_b shape mismatch");
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(w.cols(), b.cols(), "bias width mismatch");
        let (r, c) = w.shape();
        Self {
            grad_w: Dense::zeros(r, c),
            grad_b: Dense::zeros(1, c),
            vel_w,
            vel_b,
            w,
            b,
            cached_x: None,
        }
    }

    /// The persistent state `(w, b, vel_w, vel_b)` — everything a
    /// byte-exact training resume needs (gradients and input caches
    /// are transient; they are rebuilt by the next backward pass).
    pub fn state(&self) -> (&Dense, &Dense, &Dense, &Dense) {
        (&self.w, &self.b, &self.vel_w, &self.vel_b)
    }

    /// Backward: stores `∇W`, `∇b`; returns `∇X = ∇Z·Wᵀ`.
    pub fn backward(&mut self, grad_z: &Dense) -> Dense {
        let x = self.cached_x.take().expect("backward before forward");
        self.grad_w = x.t_matmul(grad_z);
        let mut gb = Dense::zeros(1, grad_z.cols());
        for r in 0..grad_z.rows() {
            for (j, &g) in grad_z.row(r).iter().enumerate() {
                let cur = gb.get(0, j);
                gb.set(0, j, cur + g);
            }
        }
        self.grad_b = gb;
        grad_z.matmul_t(&self.w)
    }

    /// Optimizer step on weights and bias.
    pub fn step(&mut self, opt: &Sgd) {
        opt.step(&mut self.w, &self.grad_w, &mut self.vel_w);
        opt.step(&mut self.b, &self.grad_b, &mut self.vel_b);
    }
}

/// A standalone bias layer (`1 × out`, broadcast over rows). In the
/// BlindFL architecture the bias term belongs to the *top model* — the
/// federated source layer computes a pure matmul — so the bias is a
/// separate layer here too.
#[derive(Clone, Debug)]
pub struct Bias {
    /// The bias row.
    pub b: Dense,
    grad: Dense,
    vel: Dense,
}

impl Bias {
    /// Zero-initialised bias of the given width.
    pub fn new(out: usize) -> Self {
        Self {
            b: Dense::zeros(1, out),
            grad: Dense::zeros(1, out),
            vel: Dense::zeros(1, out),
        }
    }

    /// Rebuild a bias from persisted state (bias row + momentum
    /// buffer; shapes must match — asserted).
    pub fn from_state(b: Dense, vel: Dense) -> Self {
        assert_eq!(b.shape(), vel.shape(), "bias velocity shape mismatch");
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        let grad = Dense::zeros(1, b.cols());
        Self { b, grad, vel }
    }

    /// The momentum buffer (persisted alongside `b` so a reloaded
    /// model resumes training bit-identically).
    pub fn velocity(&self) -> &Dense {
        &self.vel
    }

    /// `Z + b` (broadcast).
    pub fn forward(&mut self, z: &Dense) -> Dense {
        self.infer(z)
    }

    /// Inference-only forward.
    pub fn infer(&self, z: &Dense) -> Dense {
        let mut out = z.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, &bias) in row.iter_mut().zip(self.b.row(0)) {
                *v += bias;
            }
        }
        out
    }

    /// Backward: `∇b = Σ_rows ∇Z`; the input gradient is `∇Z` itself.
    pub fn backward(&mut self, grad_z: &Dense) {
        let mut gb = Dense::zeros(1, grad_z.cols());
        for r in 0..grad_z.rows() {
            for (j, &g) in grad_z.row(r).iter().enumerate() {
                let cur = gb.get(0, j);
                gb.set(0, j, cur + g);
            }
        }
        self.grad = gb;
    }

    /// Optimizer step.
    pub fn step(&mut self, opt: &Sgd) {
        opt.step(&mut self.b, &self.grad, &mut self.vel);
    }
}

/// Pointwise activation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActKind {
    Relu,
    Sigmoid,
    Tanh,
}

/// A pointwise activation layer.
#[derive(Clone, Debug)]
pub struct Activation {
    /// Which nonlinearity.
    pub kind: ActKind,
    cached_y: Option<Dense>,
}

impl Activation {
    /// Construct.
    pub fn new(kind: ActKind) -> Self {
        Self {
            kind,
            cached_y: None,
        }
    }

    fn apply(&self, x: &Dense) -> Dense {
        match self.kind {
            ActKind::Relu => x.map(|v| v.max(0.0)),
            ActKind::Sigmoid => x.map(sigmoid),
            ActKind::Tanh => x.map(f64::tanh),
        }
    }

    /// Forward (caches output for the backward pass).
    pub fn forward(&mut self, x: &Dense) -> Dense {
        let y = self.apply(x);
        self.cached_y = Some(y.clone());
        y
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Dense) -> Dense {
        self.apply(x)
    }

    /// Backward through the nonlinearity.
    pub fn backward(&mut self, grad_y: &Dense) -> Dense {
        let y = self.cached_y.take().expect("backward before forward");
        let dydx = match self.kind {
            ActKind::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            ActKind::Sigmoid => y.map(|v| v * (1.0 - v)),
            ActKind::Tanh => y.map(|v| 1.0 - v * v),
        };
        grad_y.hadamard(&dydx)
    }
}

/// Numerically-stable logistic function.
pub fn sigmoid(v: f64) -> f64 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// An embedding layer over categorical inputs (shared table across
/// fields, as in WDL/DLRM). Output is `rows × fields·dim`.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Table (`vocab × dim`).
    pub table: Dense,
    dim: usize,
    grad_rows: Dense,
    grad_support: Vec<usize>,
    vel: Dense,
    cached_x: Option<CatBlock>,
}

impl Embedding {
    /// Uniform-initialised table.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Self {
        let table = bf_tensor::init::uniform(rng, vocab, dim, 0.05);
        Self {
            grad_rows: Dense::zeros(0, dim),
            grad_support: Vec::new(),
            vel: Dense::zeros(vocab, dim),
            table,
            dim,
            cached_x: None,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `E = lkup(Q, X)`.
    pub fn forward(&mut self, x: &CatBlock) -> Dense {
        let e = self.lookup(x);
        self.cached_x = Some(x.clone());
        e
    }

    /// Inference-only lookup.
    pub fn infer(&self, x: &CatBlock) -> Dense {
        self.lookup(x)
    }

    fn lookup(&self, x: &CatBlock) -> Dense {
        let mut e = Dense::zeros(x.rows(), x.fields() * self.dim);
        for r in 0..x.rows() {
            for (f, &g) in x.row(r).iter().enumerate() {
                let dst = &mut e.row_mut(r)[f * self.dim..(f + 1) * self.dim];
                dst.copy_from_slice(self.table.row(g as usize));
            }
        }
        e
    }

    /// `∇Q = lkup_bw(∇E, X)` (scatter-add), materialised only on the
    /// batch's embedding-row support.
    pub fn backward(&mut self, grad_e: &Dense) {
        let x = self.cached_x.take().expect("backward before forward");
        let support = x.support();
        let mut g = Dense::zeros(support.len(), self.dim);
        for r in 0..x.rows() {
            for (f, &idx) in x.row(r).iter().enumerate() {
                let s = support.binary_search(&idx).expect("index in support");
                let src = &grad_e.row(r)[f * self.dim..(f + 1) * self.dim];
                let dst = g.row_mut(s);
                for (d, &v) in dst.iter_mut().zip(src) {
                    *d += v;
                }
            }
        }
        self.grad_rows = g;
        self.grad_support = support.into_iter().map(|c| c as usize).collect();
    }

    /// Optimizer step (lazy momentum on touched embedding rows).
    pub fn step(&mut self, opt: &Sgd) {
        opt.step_sparse_rows(
            &mut self.table,
            &self.grad_rows,
            &mut self.vel,
            &self.grad_support,
        );
    }

    /// Most recent gradient rows and their support (inspection/tests).
    pub fn last_grad(&self) -> (&Dense, &[usize]) {
        (&self.grad_rows, &self.grad_support)
    }
}

/// A stack of `Linear → ReLU` blocks with a final `Linear` (no terminal
/// activation) — the generic hidden tower used by MLP, WDL and DLRM.
#[derive(Clone, Debug)]
pub struct Mlp {
    blocks: Vec<(Linear, Option<Activation>)>,
}

impl Mlp {
    /// Build a tower with the given layer widths, e.g.
    /// `Mlp::new(rng, &[64, 32, 16, 1])` is three Linear layers with
    /// ReLU between them.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, widths: &[usize]) -> Self {
        assert!(
            widths.len() >= 2,
            "Mlp needs at least input and output widths"
        );
        let mut blocks = Vec::new();
        for i in 0..widths.len() - 1 {
            let lin = Linear::new(rng, widths[i], widths[i + 1]);
            let act = if i + 2 < widths.len() {
                Some(Activation::new(ActKind::Relu))
            } else {
                None
            };
            blocks.push((lin, act));
        }
        Self { blocks }
    }

    /// Number of Linear layers.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// The tower's layers in order, each with a flag for whether a
    /// ReLU follows it (persistence reads the tower through this).
    pub fn layers(&self) -> impl Iterator<Item = (&Linear, bool)> {
        self.blocks.iter().map(|(lin, act)| (lin, act.is_some()))
    }

    /// Rebuild a tower from persisted layers (`(linear, relu-follows)`
    /// pairs in order; must be non-empty — asserted).
    pub fn from_layers(layers: Vec<(Linear, bool)>) -> Self {
        assert!(!layers.is_empty(), "Mlp needs at least one layer");
        let blocks = layers
            .into_iter()
            .map(|(lin, has_act)| {
                let act = has_act.then(|| Activation::new(ActKind::Relu));
                (lin, act)
            })
            .collect();
        Self { blocks }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Dense) -> Dense {
        let mut h = x.clone();
        for (lin, act) in &mut self.blocks {
            h = lin.forward(&h);
            if let Some(a) = act {
                h = a.forward(&h);
            }
        }
        h
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Dense) -> Dense {
        let mut h = x.clone();
        for (lin, act) in &self.blocks {
            h = lin.infer(&h);
            if let Some(a) = act {
                h = a.infer(&h);
            }
        }
        h
    }

    /// Backward pass; returns the gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Dense) -> Dense {
        let mut g = grad_out.clone();
        for (lin, act) in self.blocks.iter_mut().rev() {
            if let Some(a) = act {
                g = a.backward(&g);
            }
            g = lin.backward(&g);
        }
        g
    }

    /// Optimizer step on every layer.
    pub fn step(&mut self, opt: &Sgd) {
        for (lin, _) in &mut self.blocks {
            lin.step(opt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_forward_backward_shapes() {
        let mut r = rng();
        let mut lin = Linear::new(&mut r, 4, 3);
        let x = bf_tensor::init::uniform(&mut r, 5, 4, 1.0);
        let z = lin.forward(&x);
        assert_eq!(z.shape(), (5, 3));
        let dx = lin.backward(&bf_tensor::init::uniform(&mut r, 5, 3, 1.0));
        assert_eq!(dx.shape(), (5, 4));
    }

    #[test]
    fn linear_gradient_check() {
        // Finite-difference check of ∇W for f = sum(X·W + b).
        let mut r = rng();
        let mut lin = Linear::new(&mut r, 3, 2);
        let x = bf_tensor::init::uniform(&mut r, 4, 3, 1.0);
        let ones = Dense::from_vec(4, 2, vec![1.0; 8]);
        lin.forward(&x);
        lin.backward(&ones);
        let eps = 1e-6;
        for (i, j) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = lin.w.get(i, j);
            lin.w.set(i, j, orig + eps);
            let fp: f64 = lin.infer(&x).data().iter().sum();
            lin.w.set(i, j, orig - eps);
            let fm: f64 = lin.infer(&x).data().iter().sum();
            lin.w.set(i, j, orig);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - lin.grad_w.get(i, j)).abs() < 1e-5, "({i},{j})");
        }
    }

    #[test]
    fn relu_backward_masks() {
        let mut act = Activation::new(ActKind::Relu);
        let x = Dense::from_vec(1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        let y = act.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = act.backward(&Dense::from_vec(1, 4, vec![1.0; 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(40.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-40.0) < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut r = rng();
        let mut emb = Embedding::new(&mut r, 5, 2);
        let x = CatBlock::from_local(2, &[3, 2], vec![1, 0, 2, 1]);
        let e = emb.forward(&x);
        assert_eq!(e.shape(), (2, 4));
        assert_eq!(e.row(0)[..2], *emb.table.row(1));
        assert_eq!(e.row(0)[2..], *emb.table.row(3));
        let g = Dense::from_vec(2, 4, vec![1.0; 8]);
        emb.backward(&g);
        // Support rows are {1,2,3,4}; untouched row 0 is absent.
        let (grad, support) = emb.last_grad();
        assert_eq!(support, &[1, 2, 3, 4]);
        assert_eq!(grad.row(0), &[1.0, 1.0]); // table row 1
        assert_eq!(grad.row(3), &[1.0, 1.0]); // table row 4
    }

    #[test]
    fn mlp_reduces_loss_on_toy_problem() {
        let mut r = rng();
        let mut mlp = Mlp::new(&mut r, &[2, 8, 1]);
        let opt = Sgd {
            lr: 0.1,
            momentum: 0.9,
        };
        // XOR-ish target.
        let x = Dense::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..400 {
            let z = mlp.forward(&x);
            let (loss, grad) = crate::loss::bce_with_logits(&z, &y);
            first.get_or_insert(loss);
            last = loss;
            mlp.backward(&grad);
            mlp.step(&opt);
        }
        assert!(last < first.unwrap() * 0.3, "loss {first:?} -> {last}");
    }

    #[test]
    fn linearf_sparse_matches_dense() {
        let mut r = rng();
        let w_init = bf_tensor::init::xavier(&mut r, 4, 2);
        let xd = Dense::from_vec(
            3,
            4,
            vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 4.0],
        );
        let xs = bf_tensor::Csr::from_dense(&xd);
        let mut la = LinearF::from_weights(w_init.clone());
        let mut lb = la.clone();
        let za = la.forward(&Features::Dense(xd));
        let zb = lb.forward(&Features::Sparse(xs));
        assert!(za.approx_eq(&zb, 1e-12));
        let g = Dense::from_vec(3, 2, vec![0.1; 6]);
        la.backward(&g);
        lb.backward(&g);
        // Dense support covers every column; sparse covers its nnz cols.
        let (ga, sa) = la.last_grad();
        let (gb, sb) = lb.last_grad();
        assert_eq!(sa, &[0, 1, 2, 3]);
        assert_eq!(sb, &[0, 1, 2, 3]); // all columns carry a non-zero here
        for (k, &r) in sb.iter().enumerate() {
            let pos = sa.iter().position(|&c| c == r).unwrap();
            assert_eq!(ga.row(pos), gb.row(k));
        }
    }
}
