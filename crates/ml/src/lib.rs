//! A minimal neural-network stack for blindfl-rs.
//!
//! Provides the plaintext substrate the paper builds on top of PyTorch:
//! layers with explicit forward/backward, momentum SGD, classification
//! losses, AUC/accuracy metrics, a mini-batch loader, and the five model
//! families of the evaluation (LR, MLR, MLP, WDL, DLRM) in
//! *collocated* (non-federated) form. The federated variants in the
//! `blindfl` crate swap the first layer for a federated source layer
//! and reuse everything else here as the (local) top model.

#![allow(clippy::needless_range_loop)] // index-parallel numeric loops
pub mod data;
pub mod encoder;
pub mod gbdt;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod train;

pub use data::{BatchIter, Dataset, Labels};
pub use encoder::LocalEncoder;
pub use gbdt::{CollocatedGbdt, GbdtParams, Node, Tree};
pub use layers::{ActKind, Activation, Embedding, Linear, LinearF, Mlp};
pub use loss::{bce_with_logits, softmax_ce};
pub use metrics::{accuracy_binary, accuracy_multiclass, auc};
pub use models::{DlrmModel, GlmModel, MlpModel, Model, WdlModel};
pub use optim::Sgd;
pub use train::{evaluate, train, TrainConfig, TrainReport};
