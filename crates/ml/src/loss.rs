//! Classification losses with analytic gradients w.r.t. logits.

use bf_tensor::Dense;

use crate::layers::sigmoid;

/// Binary cross-entropy with logits.
///
/// `logits` is `(bs × 1)`, `y ∈ {0,1}`. Returns the mean loss and the
/// gradient `∂L/∂z = (σ(z) − y)/bs`.
pub fn bce_with_logits(logits: &Dense, y: &[f64]) -> (f64, Dense) {
    assert_eq!(logits.cols(), 1, "bce expects single-logit output");
    assert_eq!(logits.rows(), y.len(), "bce label count mismatch");
    let bs = y.len() as f64;
    let mut loss = 0.0;
    let mut grad = Dense::zeros(logits.rows(), 1);
    for i in 0..logits.rows() {
        let z = logits.get(i, 0);
        let t = y[i];
        // log(1 + e^{-|z|}) + max(z,0) - z·t is the stable form.
        loss += (1.0 + (-z.abs()).exp()).ln() + z.max(0.0) - z * t;
        grad.set(i, 0, (sigmoid(z) - t) / bs);
    }
    (loss / bs, grad)
}

/// Softmax cross-entropy for multi-class labels.
///
/// `logits` is `(bs × C)`, `y[i] ∈ 0..C`. Returns the mean loss and
/// `∂L/∂z = (softmax(z) − onehot(y))/bs`.
pub fn softmax_ce(logits: &Dense, y: &[u32]) -> (f64, Dense) {
    assert_eq!(logits.rows(), y.len(), "softmax label count mismatch");
    let bs = y.len() as f64;
    let c = logits.cols();
    let mut loss = 0.0;
    let mut grad = Dense::zeros(logits.rows(), c);
    for i in 0..logits.rows() {
        let row = logits.row(i);
        let max = row.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let exp: Vec<f64> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f64 = exp.iter().sum();
        let t = y[i] as usize;
        assert!(t < c, "label out of range");
        loss += -(exp[t] / sum).ln();
        let grow = grad.row_mut(i);
        for (j, e) in exp.iter().enumerate() {
            grow[j] = (e / sum - if j == t { 1.0 } else { 0.0 }) / bs;
        }
    }
    (loss / bs, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_known_values() {
        let z = Dense::from_vec(2, 1, vec![0.0, 0.0]);
        let (loss, grad) = bce_with_logits(&z, &[1.0, 0.0]);
        assert!((loss - (2.0f64).ln()).abs() < 1e-12);
        assert!((grad.get(0, 0) + 0.25).abs() < 1e-12);
        assert!((grad.get(1, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bce_gradient_finite_difference() {
        let z0 = 0.37;
        let eps = 1e-6;
        let lp = bce_with_logits(&Dense::from_vec(1, 1, vec![z0 + eps]), &[1.0]).0;
        let lm = bce_with_logits(&Dense::from_vec(1, 1, vec![z0 - eps]), &[1.0]).0;
        let g = bce_with_logits(&Dense::from_vec(1, 1, vec![z0]), &[1.0]).1;
        assert!(((lp - lm) / (2.0 * eps) - g.get(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn bce_stable_for_large_logits() {
        let z = Dense::from_vec(2, 1, vec![500.0, -500.0]);
        let (loss, _) = bce_with_logits(&z, &[1.0, 0.0]);
        assert!(loss.is_finite());
        assert!(loss < 1e-6);
    }

    #[test]
    fn softmax_uniform_logits() {
        let z = Dense::zeros(1, 4);
        let (loss, grad) = softmax_ce(&z, &[2]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-12);
        assert!((grad.get(0, 2) + 0.75).abs() < 1e-12);
        assert!((grad.get(0, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn softmax_gradient_rows_sum_to_zero() {
        let z = Dense::from_vec(2, 3, vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]);
        let (_, grad) = softmax_ce(&z, &[0, 2]);
        for i in 0..2 {
            let s: f64 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let z = Dense::from_vec(1, 2, vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_ce(&z, &[0]);
        assert!(loss.is_finite() && loss < 1e-9);
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }
}
