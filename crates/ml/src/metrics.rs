//! Evaluation metrics: ROC-AUC and accuracy (binary and multi-class) —
//! the metrics the paper reports in Figures 9, 10, 12 and 15.

use bf_tensor::Dense;

/// ROC-AUC of `scores` against binary `labels` (exact rank statistic,
/// tie-aware: ties contribute 1/2).
pub fn auc(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    // Assign average ranks over tie groups.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &o in &order[i..=j] {
            ranks[o] = avg;
        }
        i = j + 1;
    }
    let pos = labels.iter().filter(|&&l| l > 0.5).count() as f64;
    let neg = labels.len() as f64 - pos;
    if pos == 0.0 || neg == 0.0 {
        return 0.5;
    }
    let rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l > 0.5)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg)
}

/// Binary accuracy at threshold 0 on logits (or 0.5 on probabilities —
/// pass the matching `threshold`).
pub fn accuracy_binary(scores: &[f64], labels: &[f64], threshold: f64) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if scores.is_empty() {
        return 0.0;
    }
    let correct = scores
        .iter()
        .zip(labels)
        .filter(|(&s, &l)| (s > threshold) == (l > 0.5))
        .count();
    correct as f64 / scores.len() as f64
}

/// Multi-class accuracy from a logit matrix (`bs × C`).
pub fn accuracy_multiclass(logits: &Dense, labels: &[u32]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0;
    for (i, &t) in labels.iter().enumerate() {
        let row = logits.row(i);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap();
        if pred == t as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let rev = [1.0, 1.0, 0.0, 0.0];
        assert!(auc(&scores, &rev).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [0.0, 1.0, 0.0, 1.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_mixed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_degenerate() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn binary_accuracy() {
        let got = accuracy_binary(&[-1.0, 2.0, 0.5, -0.5], &[0.0, 1.0, 0.0, 1.0], 0.0);
        assert!((got - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multiclass_accuracy() {
        let logits = Dense::from_vec(3, 3, vec![5.0, 1.0, 0.0, 0.0, 2.0, 1.0, 0.0, 0.0, 9.0]);
        assert!((accuracy_multiclass(&logits, &[0, 1, 2]) - 1.0).abs() < 1e-12);
        assert!((accuracy_multiclass(&logits, &[1, 1, 1]) - 1.0 / 3.0).abs() < 1e-12);
    }
}
