//! The five model families of the paper's evaluation, in collocated
//! (non-federated) form: LR, MLR (multinomial LR), MLP, WDL (wide &
//! deep) and DLRM.
//!
//! Each model's *first* layer is structured exactly the way BlindFL
//! splits it: a bias-free matmul (or embedding+matmul) "source" stage
//! followed by a local "top" stage — so the federated variants in the
//! `blindfl` crate are drop-in replacements of the source stage.

use bf_tensor::Dense;
use rand::Rng;

use crate::data::{Dataset, Labels};
use crate::layers::{ActKind, Activation, Bias, Embedding, Linear, LinearF, Mlp};
use crate::loss::{bce_with_logits, softmax_ce};
use crate::optim::Sgd;

/// A trainable classification model over [`Dataset`] batches.
pub trait Model {
    /// One SGD step on a mini-batch; returns the batch loss.
    fn train_batch(&mut self, batch: &Dataset, opt: &Sgd) -> f64;
    /// Logits for a dataset (no caching side effects).
    fn predict(&self, data: &Dataset) -> Dense;
    /// Output width (1 = binary).
    fn out_dim(&self) -> usize;
}

/// Compute loss/gradient for either label kind.
pub fn loss_and_grad(logits: &Dense, labels: &Labels) -> (f64, Dense) {
    match labels {
        Labels::Binary(y) => bce_with_logits(logits, y),
        Labels::Multi { y, .. } => softmax_ce(logits, y),
    }
}

/// Generalised linear model: LR (`out = 1`) or MLR (`out = C`).
/// `logits = X·W + b` — matmul source stage plus a bias-only top.
#[derive(Clone, Debug)]
pub struct GlmModel {
    source: LinearF,
    bias: Bias,
    out: usize,
}

impl GlmModel {
    /// Construct for the given feature and output dimensionality.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, out: usize) -> Self {
        Self {
            source: LinearF::new(rng, input, out),
            bias: Bias::new(out),
            out,
        }
    }

    /// The source-stage weights (inspection/tests).
    pub fn weights(&self) -> &Dense {
        &self.source.w
    }

    /// Construct from explicit source weights (zero bias). Used by the
    /// lossless-equivalence tests, which initialise the plaintext model
    /// with the reconstructed federated initialisation.
    pub fn from_weights(w: Dense) -> Self {
        let out = w.cols();
        Self {
            source: LinearF::from_weights(w),
            bias: Bias::new(out),
            out,
        }
    }
}

impl Model for GlmModel {
    fn train_batch(&mut self, batch: &Dataset, opt: &Sgd) -> f64 {
        let x = batch.num.as_ref().expect("GLM needs numerical features");
        let labels = batch.labels.as_ref().expect("training needs labels");
        let z = self.source.forward(x);
        let logits = self.bias.forward(&z);
        let (loss, grad) = loss_and_grad(&logits, labels);
        self.bias.backward(&grad);
        self.source.backward(&grad);
        self.bias.step(opt);
        self.source.step(opt);
        loss
    }

    fn predict(&self, data: &Dataset) -> Dense {
        let x = data.num.as_ref().expect("GLM needs numerical features");
        self.bias.infer(&self.source.infer(x))
    }

    fn out_dim(&self) -> usize {
        self.out
    }
}

/// Multi-layer perceptron: matmul source stage into a ReLU tower.
#[derive(Clone, Debug)]
pub struct MlpModel {
    source: LinearF,
    bias0: Bias,
    act0: Activation,
    top: Mlp,
    out: usize,
}

impl MlpModel {
    /// `widths` are the hidden widths plus the output width, e.g.
    /// `&[64, 16, 3]` builds `input→64 (source) → relu → 64→16 → relu →
    /// 16→3`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, widths: &[usize]) -> Self {
        assert!(
            widths.len() >= 2,
            "MLP needs at least one hidden and one output width"
        );
        let h0 = widths[0];
        Self {
            source: LinearF::new(rng, input, h0),
            bias0: Bias::new(h0),
            act0: Activation::new(ActKind::Relu),
            top: Mlp::new(rng, widths),
            out: *widths.last().unwrap(),
        }
    }
}

impl Model for MlpModel {
    fn train_batch(&mut self, batch: &Dataset, opt: &Sgd) -> f64 {
        let x = batch.num.as_ref().expect("MLP needs numerical features");
        let labels = batch.labels.as_ref().expect("training needs labels");
        let z = self.source.forward(x);
        let h = self.act0.forward(&self.bias0.forward(&z));
        let logits = self.top.forward(&h);
        let (loss, grad) = loss_and_grad(&logits, labels);
        let gh = self.top.backward(&grad);
        let gz = self.act0.backward(&gh);
        self.bias0.backward(&gz);
        self.source.backward(&gz);
        self.top.step(opt);
        self.bias0.step(opt);
        self.source.step(opt);
        loss
    }

    fn predict(&self, data: &Dataset) -> Dense {
        let x = data.num.as_ref().expect("MLP needs numerical features");
        let h = self.act0.infer(&self.bias0.infer(&self.source.infer(x)));
        self.top.infer(&h)
    }

    fn out_dim(&self) -> usize {
        self.out
    }
}

/// Wide & Deep (Figure 5 of the paper): a MatMul source over the
/// sparse numerical features (wide) plus an Embed-MatMul source over
/// the categorical fields feeding a hidden tower (deep); outputs sum.
#[derive(Clone, Debug)]
pub struct WdlModel {
    wide: LinearF,
    emb: Embedding,
    deep_proj: Linear,
    deep_tower: Mlp,
    bias: Bias,
    out: usize,
}

impl WdlModel {
    /// `hidden` are the deep-tower hidden widths (the paper's Figure 10
    /// varies their count).
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        num_input: usize,
        vocab: usize,
        fields: usize,
        emb_dim: usize,
        hidden: &[usize],
        out: usize,
    ) -> Self {
        let emb = Embedding::new(rng, vocab, emb_dim);
        let proj_in = fields * emb_dim;
        let proj_out = hidden.first().copied().unwrap_or(out);
        let mut widths: Vec<usize> = hidden.to_vec();
        widths.push(out);
        Self {
            wide: LinearF::new(rng, num_input, out),
            emb,
            deep_proj: Linear::new(rng, proj_in, proj_out),
            deep_tower: Mlp::new(rng, &widths),
            bias: Bias::new(out),
            out,
        }
    }

    /// Embedding-table reference (inspection/tests).
    pub fn embedding_table(&self) -> &Dense {
        &self.emb.table
    }
}

impl Model for WdlModel {
    fn train_batch(&mut self, batch: &Dataset, opt: &Sgd) -> f64 {
        let x_num = batch.num.as_ref().expect("WDL needs numerical features");
        let x_cat = batch.cat.as_ref().expect("WDL needs categorical features");
        let labels = batch.labels.as_ref().expect("training needs labels");

        let z_wide = self.wide.forward(x_num);
        let e = self.emb.forward(x_cat);
        let h = self.deep_proj.forward(&e).map(|v| v.max(0.0));
        let relu_mask = h.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let z_deep = self.deep_tower.forward(&h);
        let logits = self.bias.forward(&z_wide.add(&z_deep));

        let (loss, grad) = loss_and_grad(&logits, labels);
        self.bias.backward(&grad);
        // Wide path.
        self.wide.backward(&grad);
        // Deep path.
        let gh = self.deep_tower.backward(&grad).hadamard(&relu_mask);
        let ge = self.deep_proj.backward(&gh);
        self.emb.backward(&ge);

        self.bias.step(opt);
        self.wide.step(opt);
        self.deep_tower.step(opt);
        self.deep_proj.step(opt);
        self.emb.step(opt);
        loss
    }

    fn predict(&self, data: &Dataset) -> Dense {
        let x_num = data.num.as_ref().expect("WDL needs numerical features");
        let x_cat = data.cat.as_ref().expect("WDL needs categorical features");
        let z_wide = self.wide.infer(x_num);
        let e = self.emb.infer(x_cat);
        let h = self.deep_proj.infer(&e).map(|v| v.max(0.0));
        let z_deep = self.deep_tower.infer(&h);
        self.bias.infer(&z_wide.add(&z_deep))
    }

    fn out_dim(&self) -> usize {
        self.out
    }
}

/// DLRM-lite: per-field embeddings plus a bottom MLP over the dense
/// features; pairwise dot-product feature interactions feed a top MLP.
#[derive(Clone, Debug)]
pub struct DlrmModel {
    emb: Embedding,
    emb_dim: usize,
    fields: usize,
    bottom: Mlp,
    top: Mlp,
    out: usize,
    // caches for backward
    cached_vecs: Option<Vec<Dense>>,
}

impl DlrmModel {
    #[allow(clippy::too_many_arguments)]
    /// Construct. The bottom MLP maps `num_input → emb_dim`; the top
    /// MLP maps the interaction vector to `out` logits through
    /// `top_hidden`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        num_input: usize,
        vocab: usize,
        fields: usize,
        emb_dim: usize,
        bottom_hidden: &[usize],
        top_hidden: &[usize],
        out: usize,
    ) -> Self {
        let mut bw = vec![num_input];
        bw.extend_from_slice(bottom_hidden);
        bw.push(emb_dim);
        let n_vec = fields + 1;
        let inter = n_vec * (n_vec - 1) / 2 + emb_dim;
        let mut tw = vec![inter];
        tw.extend_from_slice(top_hidden);
        tw.push(out);
        Self {
            emb: Embedding::new(rng, vocab, emb_dim),
            emb_dim,
            fields,
            bottom: Mlp::new(rng, &bw),
            top: Mlp::new(rng, &tw),
            out,
            cached_vecs: None,
        }
    }

    /// Split the flat embedding output plus bottom vector into the
    /// per-field vectors `v_0..v_F` (bottom last).
    fn gather_vecs(&self, e: &Dense, b: &Dense) -> Vec<Dense> {
        let bs = e.rows();
        let mut vecs = Vec::with_capacity(self.fields + 1);
        for f in 0..self.fields {
            let mut m = Dense::zeros(bs, self.emb_dim);
            for r in 0..bs {
                m.row_mut(r)
                    .copy_from_slice(&e.row(r)[f * self.emb_dim..(f + 1) * self.emb_dim]);
            }
            vecs.push(m);
        }
        vecs.push(b.clone());
        vecs
    }

    /// Interaction features: `[bottom | dot(v_i, v_j) for i<j]`.
    fn interact(vecs: &[Dense]) -> Dense {
        let n = vecs.len();
        let bs = vecs[0].rows();
        let dim = vecs[0].cols();
        let pairs = n * (n - 1) / 2;
        let mut out = Dense::zeros(bs, dim + pairs);
        let bottom = &vecs[n - 1];
        for r in 0..bs {
            out.row_mut(r)[..dim].copy_from_slice(bottom.row(r));
            let mut p = dim;
            for i in 0..n {
                for j in (i + 1)..n {
                    let dot: f64 = vecs[i]
                        .row(r)
                        .iter()
                        .zip(vecs[j].row(r))
                        .map(|(a, b)| a * b)
                        .sum();
                    out.row_mut(r)[p] = dot;
                    p += 1;
                }
            }
        }
        out
    }

    /// Backward through the interaction: given `∇out`, produce `∇v_k`.
    fn interact_backward(vecs: &[Dense], grad_out: &Dense) -> Vec<Dense> {
        let n = vecs.len();
        let bs = vecs[0].rows();
        let dim = vecs[0].cols();
        let mut grads: Vec<Dense> = (0..n).map(|_| Dense::zeros(bs, dim)).collect();
        for r in 0..bs {
            // Bottom passthrough.
            let (gb, gpairs) = grad_out.row(r).split_at(dim);
            for (d, &g) in grads[n - 1].row_mut(r).iter_mut().zip(gb) {
                *d += g;
            }
            let mut p = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    let g = gpairs[p];
                    p += 1;
                    if g == 0.0 {
                        continue;
                    }
                    for d in 0..dim {
                        let vi = vecs[i].get(r, d);
                        let vj = vecs[j].get(r, d);
                        let cur_i = grads[i].get(r, d);
                        grads[i].set(r, d, cur_i + g * vj);
                        let cur_j = grads[j].get(r, d);
                        grads[j].set(r, d, cur_j + g * vi);
                    }
                }
            }
        }
        grads
    }
}

impl Model for DlrmModel {
    fn train_batch(&mut self, batch: &Dataset, opt: &Sgd) -> f64 {
        let x_num = batch.num.as_ref().expect("DLRM needs numerical features");
        let x_cat = batch.cat.as_ref().expect("DLRM needs categorical features");
        let labels = batch.labels.as_ref().expect("training needs labels");
        let e = self.emb.forward(x_cat);
        let b = self.bottom.forward(&x_num.to_dense());
        let vecs = self.gather_vecs(&e, &b);
        let inter = Self::interact(&vecs);
        let logits = self.top.forward(&inter);
        let (loss, grad) = loss_and_grad(&logits, labels);

        let g_inter = self.top.backward(&grad);
        let g_vecs = Self::interact_backward(&vecs, &g_inter);
        self.cached_vecs = None;
        // Reassemble ∇E from the per-field gradients.
        let bs = e.rows();
        let mut ge = Dense::zeros(bs, self.fields * self.emb_dim);
        for f in 0..self.fields {
            for r in 0..bs {
                ge.row_mut(r)[f * self.emb_dim..(f + 1) * self.emb_dim]
                    .copy_from_slice(g_vecs[f].row(r));
            }
        }
        self.emb.backward(&ge);
        self.bottom.backward(&g_vecs[self.fields]);

        self.top.step(opt);
        self.emb.step(opt);
        self.bottom.step(opt);
        loss
    }

    fn predict(&self, data: &Dataset) -> Dense {
        let x_num = data.num.as_ref().expect("DLRM needs numerical features");
        let x_cat = data.cat.as_ref().expect("DLRM needs categorical features");
        let e = self.emb.infer(x_cat);
        let b = self.bottom.infer(&x_num.to_dense());
        let vecs = self.gather_vecs(&e, &b);
        let inter = Self::interact(&vecs);
        self.top.infer(&inter)
    }

    fn out_dim(&self) -> usize {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_tensor::{CatBlock, Features};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(9)
    }

    fn toy_binary(n: usize) -> Dataset {
        // y = 1 iff x0 + x1 > 0.
        let mut r = rng();
        let x = bf_tensor::init::uniform(&mut r, n, 4, 1.0);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if x.get(i, 0) + x.get(i, 1) > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Dataset {
            num: Some(Features::Dense(x)),
            cat: None,
            labels: Some(Labels::Binary(y)),
        }
    }

    fn toy_cat(n: usize) -> Dataset {
        // Categorical signal: label = field0 parity.
        let mut r = rng();
        let x = bf_tensor::init::uniform(&mut r, n, 3, 1.0);
        let local: Vec<u32> = (0..n * 2)
            .map(|i| ((i * 7919 + 13) % if i % 2 == 0 { 8 } else { 6 }) as u32)
            .collect();
        let cat = CatBlock::from_local(n, &[8, 6], local.clone());
        let y: Vec<f64> = (0..n).map(|i| (local[2 * i] % 2) as f64).collect();
        Dataset {
            num: Some(Features::Dense(x)),
            cat: Some(cat),
            labels: Some(Labels::Binary(y)),
        }
    }

    fn final_loss<M: Model>(model: &mut M, ds: &Dataset, iters: usize) -> (f64, f64) {
        let opt = Sgd {
            lr: 0.1,
            momentum: 0.9,
        };
        let idx: Vec<usize> = (0..ds.rows()).collect();
        let batch = ds.select(&idx);
        let first = model.train_batch(&batch, &opt);
        let mut last = first;
        for _ in 1..iters {
            last = model.train_batch(&batch, &opt);
        }
        (first, last)
    }

    #[test]
    fn lr_learns_linear_rule() {
        let ds = toy_binary(128);
        let mut m = GlmModel::new(&mut rng(), 4, 1);
        let (first, last) = final_loss(&mut m, &ds, 150);
        assert!(last < first * 0.5, "{first} -> {last}");
        let scores: Vec<f64> = m.predict(&ds).data().to_vec();
        let auc = crate::metrics::auc(&scores, ds.labels.as_ref().unwrap().as_binary());
        assert!(auc > 0.95, "auc={auc}");
    }

    #[test]
    fn mlr_learns_multiclass() {
        // 3 classes from argmax of first 3 features.
        let mut r = rng();
        let x = bf_tensor::init::uniform(&mut r, 150, 5, 1.0);
        let y: Vec<u32> = (0..150)
            .map(|i| {
                let row = [x.get(i, 0), x.get(i, 1), x.get(i, 2)];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0 as u32
            })
            .collect();
        let ds = Dataset {
            num: Some(Features::Dense(x)),
            cat: None,
            labels: Some(Labels::Multi { classes: 3, y }),
        };
        let mut m = GlmModel::new(&mut r, 5, 3);
        let (first, last) = final_loss(&mut m, &ds, 250);
        assert!(last < first * 0.6, "{first} -> {last}");
        let acc = crate::metrics::accuracy_multiclass(
            &m.predict(&ds),
            ds.labels.as_ref().unwrap().as_multi(),
        );
        assert!(acc > 0.8, "acc={acc}");
    }

    #[test]
    fn mlp_learns() {
        let ds = toy_binary(128);
        let mut m = MlpModel::new(&mut rng(), 4, &[16, 8, 1]);
        let (first, last) = final_loss(&mut m, &ds, 200);
        assert!(last < first * 0.5, "{first} -> {last}");
    }

    #[test]
    fn wdl_learns_categorical_signal() {
        let ds = toy_cat(128);
        let mut m = WdlModel::new(&mut rng(), 3, 14, 2, 4, &[8], 1);
        let (first, last) = final_loss(&mut m, &ds, 250);
        assert!(last < first * 0.6, "{first} -> {last}");
    }

    #[test]
    fn dlrm_learns() {
        let ds = toy_cat(128);
        let mut m = DlrmModel::new(&mut rng(), 3, 14, 2, 4, &[8], &[8], 1);
        let (first, last) = final_loss(&mut m, &ds, 250);
        assert!(last < first * 0.7, "{first} -> {last}");
    }

    #[test]
    fn dlrm_interaction_gradcheck() {
        // Finite-difference check of the interaction backward.
        let mut r = rng();
        let v0 = bf_tensor::init::uniform(&mut r, 2, 3, 1.0);
        let v1 = bf_tensor::init::uniform(&mut r, 2, 3, 1.0);
        let v2 = bf_tensor::init::uniform(&mut r, 2, 3, 1.0);
        let vecs = vec![v0, v1, v2];
        let out = DlrmModel::interact(&vecs);
        let g_out = Dense::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let grads = DlrmModel::interact_backward(&vecs, &g_out);
        let eps = 1e-6;
        for k in 0..3 {
            for (r_i, d) in [(0usize, 0usize), (1, 2)] {
                let mut vp = vecs.clone();
                let cur = vp[k].get(r_i, d);
                vp[k].set(r_i, d, cur + eps);
                let fp: f64 = DlrmModel::interact(&vp).data().iter().sum();
                vp[k].set(r_i, d, cur - eps);
                let fm: f64 = DlrmModel::interact(&vp).data().iter().sum();
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (fd - grads[k].get(r_i, d)).abs() < 1e-5,
                    "k={k} r={r_i} d={d}"
                );
            }
        }
    }
}
