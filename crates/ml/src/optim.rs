//! Momentum SGD (the optimizer used throughout the paper's evaluation:
//! lr 0.05, momentum 0.9).

use bf_tensor::Dense;

/// Per-parameter momentum SGD state.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate `η`.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
}

impl Sgd {
    /// Standard configuration from the paper's protocol section.
    pub fn paper_default() -> Self {
        Self {
            lr: 0.05,
            momentum: 0.9,
        }
    }

    /// Update `param` in place given `grad`, maintaining `velocity`:
    /// `v ← μ·v + g; w ← w − η·v`.
    pub fn step(&self, param: &mut Dense, grad: &Dense, velocity: &mut Dense) {
        debug_assert_eq!(param.shape(), grad.shape());
        debug_assert_eq!(param.shape(), velocity.shape());
        if self.momentum == 0.0 {
            param.axpy(-self.lr, grad);
            return;
        }
        velocity.scale_assign(self.momentum);
        velocity.add_assign(grad);
        param.axpy(-self.lr, velocity);
    }

    /// Lazy (support-sparse) momentum: only the given rows of the
    /// parameter/velocity are touched, using the *leading rows* of
    /// `grad` (one per entry of `rows`).
    ///
    /// The federated source layers only ever materialise the batch
    /// support rows of a gradient (that is the whole sparse-efficiency
    /// argument of Table 5), so momentum on their weights must be lazy;
    /// the plaintext counterparts use the same rule to stay bit-for-bit
    /// comparable. For dense inputs `rows` covers everything and this
    /// equals classic momentum.
    pub fn step_sparse_rows(
        &self,
        param: &mut Dense,
        grad_rows: &Dense,
        velocity: &mut Dense,
        rows: &[usize],
    ) {
        debug_assert_eq!(grad_rows.rows(), rows.len());
        debug_assert_eq!(param.shape(), velocity.shape());
        for (gi, &r) in rows.iter().enumerate() {
            let g = grad_rows.row(gi);
            let v = velocity.row_mut(r);
            for (vv, &gg) in v.iter_mut().zip(g) {
                *vv = self.momentum * *vv + gg;
            }
            let p = param.row_mut(r);
            let v = velocity.row(r);
            for (pp, &vv) in p.iter_mut().zip(v) {
                *pp -= self.lr * vv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let opt = Sgd {
            lr: 0.1,
            momentum: 0.0,
        };
        let mut w = Dense::from_vec(1, 2, vec![1.0, -1.0]);
        let g = Dense::from_vec(1, 2, vec![0.5, -0.5]);
        let mut v = Dense::zeros(1, 2);
        opt.step(&mut w, &g, &mut v);
        assert!(w.approx_eq(&Dense::from_vec(1, 2, vec![0.95, -0.95]), 1e-12));
    }

    #[test]
    fn momentum_accumulates() {
        let opt = Sgd {
            lr: 1.0,
            momentum: 0.5,
        };
        let mut w = Dense::zeros(1, 1);
        let g = Dense::from_vec(1, 1, vec![1.0]);
        let mut v = Dense::zeros(1, 1);
        opt.step(&mut w, &g, &mut v); // v=1, w=-1
        opt.step(&mut w, &g, &mut v); // v=1.5, w=-2.5
        assert!((w.get(0, 0) + 2.5).abs() < 1e-12);
        assert!((v.get(0, 0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimise (w-3)^2 via its gradient 2(w-3).
        let opt = Sgd {
            lr: 0.1,
            momentum: 0.9,
        };
        let mut w = Dense::zeros(1, 1);
        let mut v = Dense::zeros(1, 1);
        for _ in 0..600 {
            let g = Dense::from_vec(1, 1, vec![2.0 * (w.get(0, 0) - 3.0)]);
            opt.step(&mut w, &g, &mut v);
        }
        // Heavy-ball contraction is sqrt(momentum) per step.
        assert!((w.get(0, 0) - 3.0).abs() < 1e-6, "w={}", w.get(0, 0));
    }
}
