//! Training loop and evaluation for plaintext models — used for the
//! `NonFed-collocated` and `NonFed-Party B` baselines of Figure 12.

use bf_tensor::Dense;

use crate::data::{BatchIter, Dataset, Labels};
use crate::metrics::{accuracy_multiclass, auc};
use crate::models::Model;
use crate::optim::Sgd;

/// Training hyper-parameters (defaults are the paper's: lr 0.05,
/// batch 128, momentum 0.9, 10 epochs).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f64,
    pub momentum: f64,
    /// Shared shuffle seed (both VFL parties derive the same batches).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 128,
            lr: 0.05,
            momentum: 0.9,
            seed: 42,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss after each mini-batch, in order.
    pub losses: Vec<f64>,
    /// Test metric after training: AUC for binary tasks, accuracy for
    /// multi-class.
    pub test_metric: f64,
}

/// Train a model and evaluate on `test`.
pub fn train<M: Model>(
    model: &mut M,
    train_data: &Dataset,
    test_data: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    let opt = Sgd {
        lr: cfg.lr,
        momentum: cfg.momentum,
    };
    let mut losses = Vec::new();
    for epoch in 0..cfg.epochs {
        let iter = BatchIter::new(train_data.rows(), cfg.batch_size, cfg.seed ^ epoch as u64);
        for idx in iter {
            let batch = train_data.select(&idx);
            losses.push(model.train_batch(&batch, &opt));
        }
    }
    let test_metric = evaluate(model, test_data);
    TrainReport {
        losses,
        test_metric,
    }
}

/// Evaluate a model: AUC for binary labels, accuracy for multi-class.
pub fn evaluate<M: Model + ?Sized>(model: &M, data: &Dataset) -> f64 {
    let logits = model.predict(data);
    metric_from_logits(
        &logits,
        data.labels.as_ref().expect("evaluation needs labels"),
    )
}

/// Metric selection shared with the federated trainer.
pub fn metric_from_logits(logits: &Dense, labels: &Labels) -> f64 {
    match labels {
        Labels::Binary(y) => auc(logits.data(), y),
        Labels::Multi { y, .. } => accuracy_multiclass(logits, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::GlmModel;
    use bf_tensor::Features;
    use rand::SeedableRng;

    #[test]
    fn train_improves_auc_over_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = bf_tensor::init::uniform(&mut rng, 400, 6, 1.0);
        let y: Vec<f64> = (0..400)
            .map(|i| {
                if x.get(i, 0) - x.get(i, 3) > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let ds = Dataset {
            num: Some(Features::Dense(x)),
            cat: None,
            labels: Some(Labels::Binary(y)),
        };
        let mut model = GlmModel::new(&mut rng, 6, 1);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 32,
            ..Default::default()
        };
        let report = train(&mut model, &ds, &ds, &cfg);
        assert!(report.test_metric > 0.95, "auc={}", report.test_metric);
        assert!(report.losses.last().unwrap() < &report.losses[0]);
        assert_eq!(report.losses.len(), 5 * (400 / 32));
    }
}
