//! Beaver matmul triplets for the SecureML baseline.
//!
//! SecureML performs secret-shared matrix multiplication `⟨X⟩·⟨Y⟩`
//! using one-time triplets `(A, B, C = A·B)`. Two generation modes are
//! reproduced from the paper's evaluation:
//!
//! * **client-aided** — a non-colluding third party (the "dealer")
//!   hands both parties triplet shares; the online phase then involves
//!   no cryptography at all (Table 5's fast column), and
//! * **HE-assisted** — the two parties generate the triplet themselves
//!   with Paillier (the expensive offline phase folded into SecureML's
//!   per-batch cost, Table 5's slow column).

use bf_paillier::{Obfuscator, PublicKey, SecretKey};
use bf_tensor::Dense;
use rand::Rng;

use crate::shares::{random_mask, share_dense};
use crate::transport::{Endpoint, Msg, TransportResult};

/// One party's share of a matmul triplet for shapes `(m×k)·(k×n)`.
#[derive(Clone, Debug)]
pub struct TripleShare {
    /// Share of `A` (`m×k`).
    pub a: Dense,
    /// Share of `B` (`k×n`).
    pub b: Dense,
    /// Share of `C = A·B` (`m×n`).
    pub c: Dense,
}

impl TripleShare {
    /// Approximate memory footprint in bytes, used by the Table 5
    /// harness to reproduce SecureML's OOM on high-dimensional data.
    pub fn estimated_bytes(m: usize, k: usize, n: usize) -> usize {
        8 * (m * k + k * n + m * n)
    }
}

/// Dealer-generated triplet shares (the client-aided variant): no
/// cryptography, just three random matrices and their exact product.
pub fn dealer_triple<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    k: usize,
    n: usize,
    mask: f64,
) -> (TripleShare, TripleShare) {
    let a = random_mask(rng, m, k, 1.0);
    let b = random_mask(rng, k, n, 1.0);
    let c = a.matmul(&b);
    let (a1, a2) = share_dense(rng, &a, mask);
    let (b1, b2) = share_dense(rng, &b, mask);
    let (c1, c2) = share_dense(rng, &c, mask);
    (
        TripleShare {
            a: a1,
            b: b1,
            c: c1,
        },
        TripleShare {
            a: a2,
            b: b2,
            c: c2,
        },
    )
}

/// HE-assisted triplet generation (symmetric two-party protocol).
///
/// Each party samples its own `A_i, B_i`; the cross terms `A_1·B_2`
/// and `A_2·B_1` are computed under Paillier and re-shared with random
/// masks, so neither party learns the other's factors.
pub fn he_gen_triple<R: Rng + ?Sized>(
    ep: &Endpoint,
    own_pk: &PublicKey,
    own_sk: &SecretKey,
    own_obf: &Obfuscator,
    peer_pk: &PublicKey,
    m: usize,
    k: usize,
    n: usize,
    rng: &mut R,
) -> TransportResult<TripleShare> {
    let a_own = random_mask(rng, m, k, 1.0);
    let b_own = random_mask(rng, k, n, 1.0);

    // 1. Exchange encrypted A factors (each under its owner's key).
    let enc_a = own_pk.encrypt(&a_own, own_obf);
    ep.send(Msg::Ct(enc_a))?;
    let enc_a_peer = ep.recv_ct()?;

    // 2. Compute ⟦A_peer · B_own⟧ under the peer's key, mask it with a
    //    fresh R, and return it.
    let cross = peer_pk.matmul_ct_wt(&enc_a_peer, &b_own.transpose());
    let r_own = random_mask(rng, m, n, 10.0);
    ep.send(Msg::Ct(peer_pk.sub_plain(&cross, &r_own)))?;

    // 3. Decrypt the peer's response: d = A_own · B_peer − R_peer.
    let d = own_sk.decrypt(&ep.recv_ct()?);

    // C_own = A_own·B_own + (A_own·B_peer − R_peer) + R_own.
    let mut c = a_own.matmul(&b_own);
    c.add_assign(&d);
    c.add_assign(&r_own);
    Ok(TripleShare {
        a: a_own,
        b: b_own,
        c,
    })
}

/// Online Beaver multiplication: both parties hold shares of `X` and
/// `Y` plus triplet shares; returns this party's share of `X·Y`.
///
/// `is_leader` selects which party adds the public `E·F` term.
pub fn beaver_matmul(
    ep: &Endpoint,
    is_leader: bool,
    x_share: &Dense,
    y_share: &Dense,
    ts: &TripleShare,
) -> TransportResult<Dense> {
    // Open E = X - A and F = Y - B.
    let e_share = x_share.sub(&ts.a);
    let f_share = y_share.sub(&ts.b);
    ep.send(Msg::Mat(e_share.clone()))?;
    ep.send(Msg::Mat(f_share.clone()))?;
    let e_peer = ep.recv_mat()?;
    let f_peer = ep.recv_mat()?;
    let e = e_share.add(&e_peer);
    let f = f_share.add(&f_peer);

    // Z_share = C + E·B_share + A_share·F (+ E·F for the leader).
    let mut z = ts.c.clone();
    z.add_assign(&e.matmul(&ts.b));
    z.add_assign(&ts.a.matmul(&f));
    if is_leader {
        z.add_assign(&e.matmul(&f));
    }
    Ok(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_pair;
    use bf_paillier::{keygen, ObfMode};
    use rand::SeedableRng;

    #[test]
    fn dealer_triple_is_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (t1, t2) = dealer_triple(&mut rng, 3, 4, 2, 50.0);
        let a = t1.a.add(&t2.a);
        let b = t1.b.add(&t2.b);
        let c = t1.c.add(&t2.c);
        assert!(c.approx_eq(&a.matmul(&b), 1e-9));
    }

    #[test]
    fn beaver_matmul_reconstructs_product() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = random_mask(&mut rng, 3, 4, 2.0);
        let y = random_mask(&mut rng, 4, 2, 2.0);
        let (x1, x2) = share_dense(&mut rng, &x, 10.0);
        let (y1, y2) = share_dense(&mut rng, &y, 10.0);
        let (t1, t2) = dealer_triple(&mut rng, 3, 4, 2, 10.0);
        let (ep1, ep2) = channel_pair();
        let h = std::thread::spawn(move || beaver_matmul(&ep1, true, &x1, &y1, &t1).unwrap());
        let z2 = beaver_matmul(&ep2, false, &x2, &y2, &t2).unwrap();
        let z1 = h.join().unwrap();
        assert!(z1.add(&z2).approx_eq(&x.matmul(&y), 1e-8));
    }

    #[test]
    fn he_generated_triple_is_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (pk1, sk1) = keygen(192, 20, &mut rng);
        let (pk2, sk2) = keygen(192, 20, &mut rng);
        let obf1 = Obfuscator::new(&pk1, ObfMode::Pool(4), 4);
        let obf2 = Obfuscator::new(&pk2, ObfMode::Pool(4), 5);
        let (ep1, ep2) = channel_pair();
        let (m, k, n) = (2, 3, 2);
        let pk2c = pk2.clone();
        let pk1c = pk1.clone();
        let h = std::thread::spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            he_gen_triple(&ep1, &pk1c, &sk1, &obf1, &pk2c, m, k, n, &mut rng).unwrap()
        });
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let t2 = he_gen_triple(&ep2, &pk2, &sk2, &obf2, &pk1, m, k, n, &mut rng2).unwrap();
        let t1 = h.join().unwrap();
        let a = t1.a.add(&t2.a);
        let b = t1.b.add(&t2.b);
        let c = t1.c.add(&t2.c);
        assert!(
            c.approx_eq(&a.matmul(&b), 1e-4),
            "C != A·B: max err {}",
            c.sub(&a.matmul(&b)).max_abs()
        );
    }

    #[test]
    fn estimated_bytes_matches_shapes() {
        assert_eq!(TripleShare::estimated_bytes(2, 3, 4), 8 * (6 + 12 + 8));
    }
}
