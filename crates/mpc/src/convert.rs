//! HE ↔ SS conversion — the paper's Algorithm 1 and Algorithm 2.
//!
//! `HE2SS` turns a ciphertext `⟦v⟧` (held by the party *without* the
//! secret key) into an additive sharing `⟨φ, v − φ⟩`: the holder
//! subtracts a random mask homomorphically and ships the result to the
//! key owner for decryption. `SS2HE` turns a sharing into ciphertexts
//! of `v` under each party's key via one exchange of encrypted pieces.

use bf_paillier::{CtMat, Obfuscator, PaillierMode, PublicKey, SecretKey};
use bf_tensor::Dense;
use rand::Rng;

use crate::shares::random_mask;
use crate::transport::{Endpoint, Msg, TransportResult};

/// Algorithm 1, holder side: given `⟦v⟧` under the *peer's* key,
/// generate a mask `φ`, send `⟦v − φ⟧` to the peer, and return `φ`.
pub fn he2ss_holder<R: Rng + ?Sized>(
    ep: &Endpoint,
    peer_pk: &PublicKey,
    ct: &CtMat,
    mask: f64,
    rng: &mut R,
) -> TransportResult<Dense> {
    let phi = random_mask(rng, ct.rows(), ct.cols(), mask);
    let masked = peer_pk.sub_plain(ct, &phi);
    ep.send(Msg::Ct(masked))?;
    Ok(phi)
}

/// Algorithm 1, key-owner side: receive `⟦v − φ⟧` and decrypt it,
/// yielding this party's piece `v − φ`.
pub fn he2ss_peer(ep: &Endpoint, sk: &SecretKey) -> TransportResult<Dense> {
    let ct = ep.recv_ct()?;
    Ok(sk.decrypt(&ct))
}

/// Algorithm 2 (symmetric in both parties): given this party's piece
/// `v_mine` of a sharing of `v`, encrypt and send it under *this
/// party's own* key, receive the peer's encrypted piece (under the
/// peer's key), and return `⟦v⟧ = ⟦v_peer⟧ + v_mine` — a ciphertext of
/// the full value under the **peer's** key.
pub fn ss2he(
    ep: &Endpoint,
    own_pk: &PublicKey,
    own_obf: &Obfuscator,
    peer_pk: &PublicKey,
    v_mine: &Dense,
) -> TransportResult<CtMat> {
    ss2he_mode(ep, own_pk, own_obf, peer_pk, v_mine, PaillierMode::Scalar)
}

/// [`ss2he`] with an explicit ciphertext layout for the encrypted piece
/// this party sends. Both parties must pass the same `mode` (it is part
/// of the shared session config): the packed layout is derived only
/// from the key and shape, so the peer's `add_plain` sees a matching
/// body. Falls back to scalar when the shape or key cannot pack.
pub fn ss2he_mode(
    ep: &Endpoint,
    own_pk: &PublicKey,
    own_obf: &Obfuscator,
    peer_pk: &PublicKey,
    v_mine: &Dense,
    mode: PaillierMode,
) -> TransportResult<CtMat> {
    let enc_mine = own_pk.encrypt_mode(v_mine, mode, own_obf);
    ep.send(Msg::Ct(enc_mine))?;
    let enc_peer = ep.recv_ct()?;
    Ok(peer_pk.add_plain(&enc_peer, v_mine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_pair;
    use bf_paillier::{keygen, ObfMode};
    use bf_tensor::Dense;
    use rand::SeedableRng;

    #[test]
    fn he2ss_reconstructs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (pk_b, sk_b) = keygen(256, 24, &mut rng);
        let obf_b = Obfuscator::new(&pk_b, ObfMode::Pool(4), 1);
        let v = Dense::from_vec(2, 2, vec![1.25, -3.5, 0.0, 42.0]);
        // B encrypts v under its key; A holds ⟦v⟧_B.
        let ct = pk_b.encrypt(&v, &obf_b);
        let (ep_a, ep_b) = channel_pair();
        let phi = he2ss_holder(&ep_a, &pk_b, &ct, 100.0, &mut rng).unwrap();
        let piece_b = he2ss_peer(&ep_b, &sk_b).unwrap();
        assert!(phi.add(&piece_b).approx_eq(&v, 1e-5));
    }

    #[test]
    fn ss2he_reconstructs_under_both_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (pk_a, sk_a) = keygen(192, 20, &mut rng);
        let (pk_b, sk_b) = keygen(192, 20, &mut rng);
        let obf_a = Obfuscator::new(&pk_a, ObfMode::Pool(4), 2);
        let obf_b = Obfuscator::new(&pk_b, ObfMode::Pool(4), 3);
        let v = Dense::from_vec(1, 3, vec![5.0, -1.5, 2.25]);
        let (piece_a, piece_b) = crate::shares::share_dense(&mut rng, &v, 10.0);

        let (ep_a, ep_b) = channel_pair();
        let pk_a2 = pk_a.clone();
        let pk_b2 = pk_b.clone();
        let pa = piece_a.clone();
        let handle = std::thread::spawn(move || ss2he(&ep_a, &pk_a2, &obf_a, &pk_b2, &pa).unwrap());
        let ct_under_a = ss2he(&ep_b, &pk_b, &obf_b, &pk_a, &piece_b).unwrap();
        let ct_under_b = handle.join().unwrap();

        // A's output decrypts under B's key; B's under A's key.
        assert!(sk_b.decrypt(&ct_under_b).approx_eq(&v, 1e-5));
        assert!(sk_a.decrypt(&ct_under_a).approx_eq(&v, 1e-5));
    }

    #[test]
    fn ss2he_packed_bit_identical_to_scalar() {
        // 256-bit/frac-20 keys pack 3 slots; both parties run Packed and
        // the reconstruction must equal the scalar run bit-for-bit.
        let run = |mode: PaillierMode| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(17);
            let (pk_a, sk_a) = keygen(256, 20, &mut rng);
            let (pk_b, sk_b) = keygen(256, 20, &mut rng);
            let obf_a = Obfuscator::new(&pk_a, ObfMode::Pool(4), 2);
            let obf_b = Obfuscator::new(&pk_b, ObfMode::Pool(4), 3);
            let v = Dense::from_vec(2, 3, vec![5.0, -1.5, 2.25, 0.0, -7.125, 3.5]);
            let (piece_a, piece_b) = crate::shares::share_dense(&mut rng, &v, 10.0);

            let (ep_a, ep_b) = channel_pair();
            let pk_a2 = pk_a.clone();
            let pk_b2 = pk_b.clone();
            let handle = std::thread::spawn(move || {
                ss2he_mode(&ep_a, &pk_a2, &obf_a, &pk_b2, &piece_a, mode).unwrap()
            });
            let ct_under_a = ss2he_mode(&ep_b, &pk_b, &obf_b, &pk_a, &piece_b, mode).unwrap();
            let ct_under_b = handle.join().unwrap();
            (sk_a.decrypt(&ct_under_a), sk_b.decrypt(&ct_under_b))
        };
        let (sa, sb) = run(PaillierMode::Scalar);
        let (pa, pb) = run(PaillierMode::Packed);
        assert_eq!(pa.data(), sa.data());
        assert_eq!(pb.data(), sb.data());
    }
}
