//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] scripts exactly one failure into a training run:
//! *what* happens ([`FaultAction`]) and *when* (after batch
//! `at_batch` completes, counting batches from 0 across the whole
//! run). The trainer checks the plan at its per-batch boundary, so an
//! injected fault lands at the same instruction-stream position on
//! every backend and transport — which is what lets the chaos harness
//! (`tests/chaos_parity.rs`) assert *bit-identical* recovery rather
//! than approximate recovery.
//!
//! Plans come from code or from the `BF_FAULT` environment knob:
//!
//! ```text
//! BF_FAULT=kill@3        abort the party after batch 3 (typed error;
//!                        the harness restarts from the checkpoint)
//! BF_FAULT=drop@3        sever the TCP link after batch 3 (the
//!                        reconnect + replay layer recovers in place)
//! BF_FAULT=delay@3:250   stall this party 250 ms after batch 3
//!                        (exercises the peer's patience, changes no
//!                        bytes)
//! ```

use std::time::Duration;

/// What the injected failure does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the party's run with a typed error — simulates a process
    /// kill. Recovery is checkpoint resume, not reconnection.
    Kill,
    /// Sever the transport link ([`crate::Endpoint::sever`]) while the
    /// party stays up — simulates a dropped connection. Recovery is
    /// transparent reconnect + replay.
    Drop,
    /// Stall the party for the given duration — simulates a GC pause /
    /// network brown-out. Nothing to recover; the run must simply
    /// tolerate it without changing a byte.
    Delay(Duration),
}

/// One scripted failure: do `action` once the batch with this 0-based
/// run-wide index has completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Run-wide batch index (counted across epochs) after which the
    /// fault fires.
    pub at_batch: u64,
    /// The failure to inject.
    pub action: FaultAction,
}

impl FaultPlan {
    /// Parse a plan from the `BF_FAULT` environment knob; `None` when
    /// unset or unparseable (an experiment script with a typo should
    /// run fault-free, loudly visible in its output, not crash).
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var("BF_FAULT").ok()?;
        let plan = FaultPlan::parse(&raw);
        if plan.is_none() {
            eprintln!(
                "warning: BF_FAULT={raw:?} is not a valid fault plan \
                 (expected kill@N, drop@N or delay@N:MS); running fault-free"
            );
        }
        plan
    }

    /// Parse `kill@N` / `drop@N` / `delay@N:MS`.
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let (what, rest) = s.split_once('@')?;
        match what {
            "kill" => Some(FaultPlan {
                at_batch: rest.parse().ok()?,
                action: FaultAction::Kill,
            }),
            "drop" => Some(FaultPlan {
                at_batch: rest.parse().ok()?,
                action: FaultAction::Drop,
            }),
            "delay" => {
                let (batch, ms) = rest.split_once(':')?;
                Some(FaultPlan {
                    at_batch: batch.parse().ok()?,
                    action: FaultAction::Delay(Duration::from_millis(ms.parse().ok()?)),
                })
            }
            _ => None,
        }
    }

    /// True if the fault fires after the batch with this run-wide
    /// index.
    pub fn fires_after(&self, batch: u64) -> bool {
        self.at_batch == batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_action() {
        assert_eq!(
            FaultPlan::parse("kill@3"),
            Some(FaultPlan {
                at_batch: 3,
                action: FaultAction::Kill
            })
        );
        assert_eq!(
            FaultPlan::parse("drop@0"),
            Some(FaultPlan {
                at_batch: 0,
                action: FaultAction::Drop
            })
        );
        assert_eq!(
            FaultPlan::parse("delay@7:250"),
            Some(FaultPlan {
                at_batch: 7,
                action: FaultAction::Delay(Duration::from_millis(250))
            })
        );
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "",
            "kill",
            "kill@",
            "kill@x",
            "kill@3x",
            "drop@-1",
            "drop@3 ",
            "delay@3",
            "delay@3:",
            "delay@3:x",
            "delay@3:250ms",
            "panic@3",
            "@3",
            "kill@3:9",
        ] {
            assert_eq!(FaultPlan::parse(bad), None, "parsed {bad:?}");
        }
    }

    #[test]
    fn fires_exactly_once() {
        let plan = FaultPlan::parse("kill@2").unwrap();
        let fired: Vec<u64> = (0..5).filter(|&b| plan.fires_after(b)).collect();
        assert_eq!(fired, vec![2]);
    }
}
