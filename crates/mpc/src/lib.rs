//! Two-party MPC primitives for BlindFL.
//!
//! * [`transport`] — the "network": paired in-process duplex channels
//!   with full byte/message accounting, so the harnesses can report
//!   communication volume alongside wall-clock time.
//! * [`shares`] — two-party additive secret sharing of `f64` tensors
//!   (the representation the paper's `FederatedParameter`s use; see
//!   Figure 11 for the magnitude convention).
//! * [`convert`] — the paper's Algorithm 1 (`HE2SS`) and Algorithm 2
//!   (`SS2HE`), the glue between the Paillier and secret-sharing
//!   domains.
//! * [`beaver`] — Beaver matmul triplets (trusted-dealer / client-aided
//!   and HE-assisted generation) powering the SecureML baseline.

#![allow(clippy::too_many_arguments)] // protocol functions mirror the paper's parameter lists
pub mod beaver;
pub mod convert;
pub mod shares;
pub mod transport;

pub use convert::{he2ss_holder, he2ss_peer, ss2he};
pub use shares::{reconstruct, share_dense};
pub use transport::{
    channel_pair, channel_pair_with_network, Endpoint, Msg, NetworkProfile, TrafficStats,
};
