//! Two-party MPC primitives for BlindFL — the machinery under the
//! paper's **federated source layers (§4)** and **secure aggregation
//! (§5)**: every cross-party byte of those protocols moves through this
//! crate, and nothing restricted ever should.
//!
//! * [`transport`] — the "network": a pluggable [`Endpoint`] with an
//!   in-process channel backend (tests, single-machine experiments) and
//!   a TCP backend speaking the documented binary protocol
//!   (`docs/WIRE_PROTOCOL.md`), both with full byte/message accounting
//!   so the harnesses can report communication volume alongside
//!   wall-clock time.
//! * [`wire`] — the byte-level frame codec the TCP backend speaks
//!   (golden-tested; see `docs/WIRE_PROTOCOL.md`).
//! * [`shares`] — two-party additive secret sharing of `f64` tensors
//!   (the representation the paper's §4 `FederatedParameter`s use; see
//!   Figure 11 for the magnitude convention).
//! * [`convert`] — the paper's Algorithm 1 (`HE2SS`) and Algorithm 2
//!   (`SS2HE`), the §5 glue between the Paillier and secret-sharing
//!   domains.
//! * [`beaver`] — Beaver matmul triplets (trusted-dealer / client-aided
//!   and HE-assisted generation) powering the SecureML baseline of the
//!   paper's evaluation.
//! * [`reactor`] — nonblocking framed-TCP primitives
//!   ([`FrameAcceptor`] / [`FrameConn`]) for event-loop servers that
//!   multiplex many connections without a thread per link; the
//!   serving gateway's readiness seam.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]:
//!   kill/drop/delay at batch N, `BF_FAULT` env knob) for the chaos
//!   harness; the transport's reconnect + replay layer and the
//!   trainer's checkpoint resume are what it exercises.
//! * [`psi`] — salted-digest private set intersection over sample-ID
//!   columns (wire kinds 11–12, protocol v6): the alignment phase that
//!   runs before any training or serving protocol, emitting each
//!   party's deterministic row selection for the common samples.

#![warn(missing_docs)]
#![allow(clippy::too_many_arguments)] // protocol functions mirror the paper's parameter lists
pub mod beaver;
pub mod convert;
pub mod fault;
pub mod psi;
pub mod reactor;
pub mod shares;
pub mod transport;
pub mod wire;

pub use convert::{he2ss_holder, he2ss_peer, ss2he, ss2he_mode};
pub use fault::{FaultAction, FaultPlan};
pub use psi::{
    psi_digest, psi_guest, psi_host, psi_host_multi, select_common, PsiError, PsiSelection,
};
pub use reactor::{FrameAcceptor, FrameConn};
pub use shares::{reconstruct, share_dense};
pub use transport::{
    channel_pair, channel_pair_with_network, Endpoint, Msg, NetworkProfile, Redial, RetryPolicy,
    TrafficStats, TransportError, TransportResult,
};
