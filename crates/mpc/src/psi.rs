//! Salted-digest private set intersection over sample-ID columns —
//! the **sample alignment** phase that VFL surveys place at the entry
//! point of the vertical-federated life cycle (PAPERS.md, Yu et al.).
//!
//! BlindFL's training and serving protocols assume both parties feed
//! row *i* of the same logical sample; this module is what makes that
//! assumption true. Each party holds a `u64` sample-ID column (think
//! hashed customer numbers). The host draws a salt, both parties
//! digest their IDs with it, digests are exchanged as canonical
//! strictly-ascending sets (wire kinds 11–12, protocol v6), and each
//! party ends with a [`PsiSelection`]: the common IDs plus the local
//! row index of each, **sorted by ID**. Because the common IDs are
//! equal on both sides, the ID-sorted order is the shared canonical
//! row order — both parties can feed `selection.rows` to
//! `Dataset::select` and be aligned, no matter how their local rows
//! were permuted.
//!
//! ## What this leaks (documented threat model)
//!
//! Digest-exchange PSI is the protocol BlindFL-class systems deploy
//! for its one-round simplicity, and it is *not* leak-free:
//!
//! * **Set sizes** — both parties learn each other's row counts.
//! * **Intersection membership** — both parties learn which of their
//!   own rows are common (that is the output).
//! * **Digest grinding** — a peer that can enumerate the ID space
//!   (low-entropy IDs) can test candidate IDs against the received
//!   digests, because the salt is shared. The salt defeats
//!   *precomputed* dictionaries only. For high-entropy IDs (the
//!   deployment assumption) grinding is vacuous: a digest match ⇔ an
//!   ID the peer already holds.
//!
//! The hardening path (ECDH-style PSI, where neither party can grind)
//! drops into the same two frame kinds; `docs/ARCHITECTURE.md`
//! §"Sample alignment" carries the full discussion.
//!
//! Everything here is deterministic: same salt + same ID multisets ⇒
//! identical frames, identical selections, identical
//! [`TrafficStats`](crate::TrafficStats) — which is what lets the
//! alignment-parity suite assert bit-identity end to end.

use std::collections::HashMap;

use crate::transport::{Endpoint, Msg, TransportError, TransportResult};

/// A PSI failure detected before any bad bytes hit the wire (or on
/// receipt of a structurally valid but semantically impossible set).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PsiError {
    /// The local ID column contains the same ID twice — row identity
    /// is ill-defined, alignment must refuse.
    DuplicateId(u64),
    /// Two *distinct* local IDs hash to the same salted digest. With a
    /// 64-bit digest this is a ~2⁻⁶⁴ event per pair; refusing (rather
    /// than silently mis-aligning a row) is the only sound move.
    DigestCollision(u64),
    /// The peer's digest set contains a digest that matches none of
    /// ours even though protocol state says it must (host echoed an
    /// intersection we cannot reproduce) — a protocol violation.
    UnknownDigest(u64),
}

impl std::fmt::Display for PsiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsiError::DuplicateId(id) => write!(f, "duplicate sample id {id} in local column"),
            PsiError::DigestCollision(d) => {
                write!(
                    f,
                    "salted digest collision on {d:#018x} between distinct ids"
                )
            }
            PsiError::UnknownDigest(d) => {
                write!(f, "peer digest {d:#018x} matches no local id")
            }
        }
    }
}

impl std::error::Error for PsiError {}

impl From<PsiError> for TransportError {
    fn from(e: PsiError) -> TransportError {
        TransportError::Setup(format!("psi: {e}"))
    }
}

/// One party's alignment result: the intersection, in the shared
/// canonical order (ascending ID), with each ID's local row index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PsiSelection {
    /// Common sample IDs, ascending. Identical on every party.
    pub ids: Vec<u64>,
    /// `rows[i]` = local row index holding `ids[i]`. Party-specific;
    /// feeding it to `Dataset::select` yields the aligned dataset.
    pub rows: Vec<usize>,
}

impl PsiSelection {
    /// Number of common samples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the intersection is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Salted ID digest: two rounds of the SplitMix64 finalizer over
/// `id ⊕ mix(salt)`. Fast, deterministic, and — like every practical
/// digest-exchange PSI — *not* a cryptographic commitment; see the
/// module docs for exactly what that trade-off leaks.
pub fn psi_digest(salt: u64, id: u64) -> u64 {
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    mix(mix(salt ^ 0x5A4D_9E3C_0B1F_7A22) ^ mix(id))
}

/// Digest a local ID column, refusing duplicate IDs and (astronomically
/// unlikely) digest collisions. Returns `digest → row index`.
fn digest_index(salt: u64, ids: &[u64]) -> Result<HashMap<u64, usize>, PsiError> {
    digest_index_with(|id| psi_digest(salt, id), ids)
}

/// The digest-parametric core of [`digest_index`] — split out so the
/// collision-refusal path can be exercised with a deliberately
/// colliding digest function (a real 64-bit collision is not
/// constructible in a test).
fn digest_index_with<F: Fn(u64) -> u64>(
    digest: F,
    ids: &[u64],
) -> Result<HashMap<u64, usize>, PsiError> {
    let mut seen_ids: HashMap<u64, usize> = HashMap::with_capacity(ids.len());
    let mut by_digest: HashMap<u64, usize> = HashMap::with_capacity(ids.len());
    for (row, &id) in ids.iter().enumerate() {
        if seen_ids.insert(id, row).is_some() {
            return Err(PsiError::DuplicateId(id));
        }
        let d = digest(id);
        if by_digest.insert(d, row).is_some() {
            // Distinct IDs (duplicates were just rejected) sharing a
            // digest: refuse rather than mis-align.
            return Err(PsiError::DigestCollision(d));
        }
    }
    Ok(by_digest)
}

/// A local ID column as the canonical wire set: salted digests,
/// strictly ascending. Errors on duplicate IDs / digest collisions.
pub fn salted_digests(salt: u64, ids: &[u64]) -> Result<Vec<u64>, PsiError> {
    let index = digest_index(salt, ids)?;
    let mut digests: Vec<u64> = index.into_keys().collect();
    digests.sort_unstable();
    Ok(digests)
}

/// The pure intersection core (oracle-tested in
/// `crates/mpc/tests/psi_prop.rs`): given the local ID column and a
/// peer digest set, select the common rows in canonical (ascending-ID)
/// order. The peer set may be the peer's full column or an
/// already-reduced intersection — any subset works.
pub fn select_common(
    salt: u64,
    my_ids: &[u64],
    peer_digests: &[u64],
) -> Result<PsiSelection, PsiError> {
    let by_digest = digest_index(salt, my_ids)?;
    let mut pairs: Vec<(u64, usize)> = Vec::new();
    for &d in peer_digests {
        if let Some(&row) = by_digest.get(&d) {
            pairs.push((my_ids[row], row));
        }
    }
    pairs.sort_unstable_by_key(|&(id, _)| id);
    Ok(PsiSelection {
        ids: pairs.iter().map(|&(id, _)| id).collect(),
        rows: pairs.iter().map(|&(_, row)| row).collect(),
    })
}

/// Like [`select_common`], but every peer digest **must** match a
/// local ID — used by the guest on the host's echoed intersection,
/// which by protocol is a subset of what the guest sent.
fn select_exact(salt: u64, my_ids: &[u64], peer_digests: &[u64]) -> Result<PsiSelection, PsiError> {
    let sel = select_common(salt, my_ids, peer_digests)?;
    if sel.ids.len() != peer_digests.len() {
        let mine = digest_index(salt, my_ids)?;
        let missing = peer_digests
            .iter()
            .find(|d| !mine.contains_key(d))
            .copied()
            .unwrap_or_default();
        return Err(PsiError::UnknownDigest(missing));
    }
    Ok(sel)
}

/// Host (Party B) side of the PSI phase over one link. Sends
/// `PsiOffer{salt, count}`, receives the guest's digest set, sends
/// back the intersection digests, returns the host's selection.
///
/// Every frame moves through [`Endpoint::send`], so PSI traffic lands
/// in [`TrafficStats`](crate::TrafficStats) exactly like protocol
/// traffic — and exactly once (reconnect replay bypasses accounting).
pub fn psi_host(ep: &Endpoint, salt: u64, ids: &[u64]) -> TransportResult<PsiSelection> {
    psi_host_multi(&[ep], salt, ids)
}

/// Host side of the PSI phase across `M` guest links: the global
/// intersection (host ∩ guest₀ ∩ … ∩ guest_{M−1}) is computed on the
/// host and echoed to every guest, so all `M+1` parties end aligned on
/// the same sample set — the Appendix C fan-out needs one shared
/// intersection, not `M` pairwise ones.
pub fn psi_host_multi(eps: &[&Endpoint], salt: u64, ids: &[u64]) -> TransportResult<PsiSelection> {
    assert!(!eps.is_empty(), "psi_host_multi needs at least one link");
    // Validate the local column (and own digest map) before any bytes
    // move: a malformed host column must not half-run the phase.
    let by_digest = digest_index(salt, ids).map_err(TransportError::from)?;
    for ep in eps {
        ep.send(Msg::PsiOffer {
            salt,
            count: ids.len() as u64,
        })?;
    }
    // Intersect progressively: start from the host's digest set, keep
    // only digests every guest also sent. Link order cannot matter —
    // set intersection is commutative and the final sort is canonical.
    let mut common: Vec<u64> = by_digest.keys().copied().collect();
    for ep in eps {
        let guest = ep.recv_psi_digests()?;
        // The wire codec already enforced "strictly ascending set", so
        // membership is a binary search away.
        common.retain(|d| guest.binary_search(d).is_ok());
    }
    common.sort_unstable();
    for ep in eps {
        ep.send(Msg::PsiDigests {
            digests: common.clone(),
        })?;
    }
    select_common(salt, ids, &common).map_err(TransportError::from)
}

/// Guest (Party A) side of the PSI phase. Receives the host's offer,
/// answers with the full local digest set, receives the intersection,
/// returns `(salt, selection)` — the salt is surfaced so the caller
/// can persist it in an aligned checkpoint cursor.
pub fn psi_guest(ep: &Endpoint, ids: &[u64]) -> TransportResult<(u64, PsiSelection)> {
    let (salt, _host_count) = ep.recv_psi_offer()?;
    let digests = salted_digests(salt, ids).map_err(TransportError::from)?;
    ep.send(Msg::PsiDigests { digests })?;
    let common = ep.recv_psi_digests()?;
    let sel = select_exact(salt, ids, &common).map_err(TransportError::from)?;
    Ok((salt, sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_pair;

    #[test]
    fn digest_is_deterministic_and_salt_sensitive() {
        assert_eq!(psi_digest(7, 42), psi_digest(7, 42));
        assert_ne!(psi_digest(7, 42), psi_digest(8, 42));
        assert_ne!(psi_digest(7, 42), psi_digest(7, 43));
    }

    #[test]
    fn two_party_psi_selects_common_rows_in_id_order() {
        let (a, b) = channel_pair();
        // Guest rows are shuffled; host holds a superset.
        let guest_ids = vec![50, 10, 99, 30];
        let host_ids = vec![10, 20, 30, 40, 50];
        let guest = std::thread::spawn(move || psi_guest(&a, &guest_ids).unwrap());
        let host_sel = psi_host(&b, 0xBEEF, &host_ids).unwrap();
        let (salt, guest_sel) = guest.join().unwrap();
        assert_eq!(salt, 0xBEEF);
        assert_eq!(host_sel.ids, vec![10, 30, 50]);
        assert_eq!(guest_sel.ids, vec![10, 30, 50]);
        assert_eq!(host_sel.rows, vec![0, 2, 4]);
        assert_eq!(guest_sel.rows, vec![1, 3, 0]);
    }

    #[test]
    fn multi_guest_psi_takes_the_global_intersection() {
        let (a0, b0) = channel_pair();
        let (a1, b1) = channel_pair();
        let g0 = std::thread::spawn(move || psi_guest(&a0, &[1, 2, 3, 4]).unwrap());
        let g1 = std::thread::spawn(move || psi_guest(&a1, &[2, 4, 6]).unwrap());
        let host = psi_host_multi(&[&b0, &b1], 1, &[4, 3, 2]).unwrap();
        assert_eq!(host.ids, vec![2, 4]);
        assert_eq!(host.rows, vec![2, 0]);
        assert_eq!(g0.join().unwrap().1.ids, vec![2, 4]);
        assert_eq!(g1.join().unwrap().1.ids, vec![2, 4]);
    }

    #[test]
    fn duplicate_ids_are_refused_before_any_bytes_move() {
        let (_a, b) = channel_pair();
        let err = psi_host(&b, 3, &[5, 6, 5]).unwrap_err();
        assert!(err.to_string().contains("duplicate sample id 5"));
        assert_eq!(b.stats().bytes(), 0, "refusal must precede traffic");
    }

    #[test]
    fn digest_collisions_between_distinct_ids_are_refused() {
        // The public digest is collision-free in any reachable test
        // (64-bit SplitMix finalizer), so drive the refusal path with
        // a digest that collides by construction.
        let err = digest_index_with(|_id| 7, &[1, 2]).unwrap_err();
        assert_eq!(err, PsiError::DigestCollision(7));
        // One row alone never collides.
        assert!(digest_index_with(|_id| 7, &[1]).is_ok());
    }

    #[test]
    fn host_echoing_unknown_digests_is_a_protocol_violation() {
        let err = select_exact(3, &[1, 2], &[psi_digest(3, 1), psi_digest(3, 99)]).unwrap_err();
        assert_eq!(err, PsiError::UnknownDigest(psi_digest(3, 99)));
    }

    #[test]
    fn disjoint_parties_align_on_the_empty_set() {
        let (a, b) = channel_pair();
        let guest = std::thread::spawn(move || psi_guest(&a, &[1, 2]).unwrap());
        let host = psi_host(&b, 9, &[3, 4]).unwrap();
        assert!(host.is_empty());
        assert!(guest.join().unwrap().1.is_empty());
    }
}
