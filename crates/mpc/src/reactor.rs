//! Nonblocking framed-TCP primitives — the readiness seam under the
//! serving gateway's poll-based event loop (`blindfl::gateway`).
//!
//! The blocking [`crate::transport::Endpoint`] owns one thread per
//! link; a gateway multiplexing hundreds of client connections cannot
//! afford that, so this module speaks the same byte-exact frame codec
//! ([`crate::wire`], `docs/WIRE_PROTOCOL.md`) over *nonblocking*
//! sockets instead:
//!
//! * [`FrameAcceptor`] — a nonblocking listener whose
//!   [`FrameAcceptor::try_accept`] never parks the event loop;
//! * [`FrameConn`] — one nonblocking connection with explicit read
//!   and write staging buffers: [`FrameConn::try_recv`] returns a
//!   complete decoded [`Msg`] or `None` (frame still in flight),
//!   [`FrameConn::enqueue`] serializes a reply into the write buffer,
//!   and [`FrameConn::try_flush`] drains as much as the socket will
//!   take without blocking.
//!
//! No epoll/kqueue binding is vendored: the gateway's connection
//! counts (hundreds, not hundreds of thousands) are comfortably
//! served by a level-triggered scan over nonblocking sockets with a
//! short idle sleep, which keeps this crate std-only. The seam to a
//! real readiness API is confined to the two `try_*` entry points.
//!
//! Interop is total: a [`FrameConn`] peer can be a plain blocking
//! [`crate::transport::Endpoint`] — same magic, same version byte,
//! same per-kind payloads (the unit tests pin this).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use crate::transport::{Msg, TransportError, TransportResult};
use crate::wire::{self, HEADER_LEN};

/// How many bytes one nonblocking `read` call pulls at most.
const READ_CHUNK: usize = 64 * 1024;

/// A nonblocking TCP listener producing [`FrameConn`]s.
pub struct FrameAcceptor {
    listener: TcpListener,
}

impl FrameAcceptor {
    /// Bind a nonblocking listener on `addr`.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> TransportResult<FrameAcceptor> {
        FrameAcceptor::from_listener(TcpListener::bind(addr)?)
    }

    /// Wrap an existing listener, switching it to nonblocking mode.
    pub fn from_listener(listener: TcpListener) -> TransportResult<FrameAcceptor> {
        listener.set_nonblocking(true)?;
        Ok(FrameAcceptor { listener })
    }

    /// The bound address (port 0 resolves to the assigned port).
    pub fn local_addr(&self) -> TransportResult<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Accept one pending connection, or `None` if none is waiting.
    /// Never blocks.
    pub fn try_accept(&self) -> TransportResult<Option<FrameConn>> {
        match self.listener.accept() {
            Ok((stream, _)) => Ok(Some(FrameConn::from_stream(stream)?)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// One nonblocking framed connection with explicit staging buffers.
///
/// Read side: bytes accumulate in an internal buffer until a complete
/// frame (header + payload) is present, then decode. Write side:
/// [`FrameConn::enqueue`] serializes eagerly, [`FrameConn::try_flush`]
/// drains opportunistically — the caller bounds memory by checking
/// [`FrameConn::pending_out`] before enqueuing more.
pub struct FrameConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    eof: bool,
}

impl FrameConn {
    /// Connect to a gateway at `addr` (nonblocking after connect).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> TransportResult<FrameConn> {
        FrameConn::from_stream(TcpStream::connect(addr)?)
    }

    /// Wrap an accepted stream, switching it to nonblocking + nodelay.
    pub fn from_stream(stream: TcpStream) -> TransportResult<FrameConn> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(FrameConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
        })
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> TransportResult<SocketAddr> {
        Ok(self.stream.peer_addr()?)
    }

    /// Decode one message if a complete frame is buffered or readable
    /// right now; `None` means "no complete frame yet, try later".
    /// A peer that closed the connection (with no partial frame
    /// pending) surfaces as [`TransportError::Disconnected`].
    pub fn try_recv(&mut self) -> TransportResult<Option<Msg>> {
        loop {
            if let Some(msg) = self.parse_frame()? {
                return Ok(Some(msg));
            }
            if self.eof {
                // No complete frame can ever arrive. A clean close on
                // a frame boundary and a mid-frame cut are both
                // "peer is gone" to the event loop.
                return Err(TransportError::Disconnected);
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Pop one complete frame off the read buffer, if present.
    fn parse_frame(&mut self) -> TransportResult<Option<Msg>> {
        if self.rbuf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = self.rbuf[..HEADER_LEN].try_into().unwrap();
        let (kind, len) = wire::decode_header(&header)?;
        let total = HEADER_LEN + len as usize;
        if self.rbuf.len() < total {
            return Ok(None);
        }
        let msg = wire::decode_payload(kind, &self.rbuf[HEADER_LEN..total])?;
        self.rbuf.drain(..total);
        Ok(Some(msg))
    }

    /// Serialize `msg` into the write buffer (no I/O — call
    /// [`FrameConn::try_flush`] to drain).
    pub fn enqueue(&mut self, msg: &Msg) {
        let payload = wire::encode_payload(msg);
        self.wbuf
            .extend_from_slice(&wire::frame_header(msg, &payload));
        self.wbuf.extend_from_slice(&payload);
    }

    /// Write as much buffered output as the socket accepts without
    /// blocking. `Ok(true)` means the buffer fully drained.
    pub fn try_flush(&mut self) -> TransportResult<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            return Ok(true);
        }
        // Compact occasionally so a slow reader cannot pin the whole
        // history of its replies in memory.
        if self.wpos > 64 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(false)
    }

    /// Bytes enqueued but not yet written to the socket.
    pub fn pending_out(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Endpoint;
    use std::time::{Duration, Instant};

    /// Poll `try_recv` until a message lands (bounded).
    fn recv_blocking(conn: &mut FrameConn) -> Msg {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(m) = conn.try_recv().unwrap() {
                return m;
            }
            assert!(Instant::now() < deadline, "no frame within 10s");
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Poll `try_flush` until drained (bounded).
    fn flush_blocking(conn: &mut FrameConn) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !conn.try_flush().unwrap() {
            assert!(Instant::now() < deadline, "flush stuck for 10s");
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    #[test]
    fn interops_with_a_blocking_endpoint_peer() {
        let acceptor = FrameAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let ep = Endpoint::tcp_connect(addr).unwrap();
            ep.send(Msg::U64(7)).unwrap();
            ep.send(Msg::Support(vec![1, 2, 3])).unwrap();
            // Read the replies the nonblocking side enqueues.
            let m = ep.recv_mat().unwrap();
            assert_eq!((m.rows(), m.cols()), (1, 2));
            assert_eq!(ep.recv_u64().unwrap(), 99);
        });
        let mut conn = loop {
            if let Some(c) = acceptor.try_accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        assert!(matches!(recv_blocking(&mut conn), Msg::U64(7)));
        match recv_blocking(&mut conn) {
            Msg::Support(s) => assert_eq!(s, vec![1, 2, 3]),
            other => panic!("expected Support, got {:?}", other.kind()),
        }
        conn.enqueue(&Msg::Mat(bf_tensor::Dense::from_vec(
            1,
            2,
            vec![0.25, -1.5],
        )));
        conn.enqueue(&Msg::U64(99));
        assert!(conn.pending_out() > 0);
        flush_blocking(&mut conn);
        assert_eq!(conn.pending_out(), 0);
        peer.join().unwrap();
    }

    #[test]
    fn reassembles_partial_and_coalesced_frames() {
        let acceptor = FrameAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let (half_sent_tx, half_sent_rx) = std::sync::mpsc::channel();
        let (resume_tx, resume_rx) = std::sync::mpsc::channel();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            let frame = wire::encode_frame(&Msg::Support(vec![10, 20, 30, 40]));
            // First half only, then wait for the reader to observe
            // "no complete frame yet".
            s.write_all(&frame[..5]).unwrap();
            s.flush().unwrap();
            half_sent_tx.send(()).unwrap();
            resume_rx.recv().unwrap();
            // Rest of frame 1 plus two complete frames in one write.
            let mut tail = frame[5..].to_vec();
            tail.extend_from_slice(&wire::encode_frame(&Msg::U64(1)));
            tail.extend_from_slice(&wire::encode_frame(&Msg::U64(2)));
            s.write_all(&tail).unwrap();
            s.flush().unwrap();
            s
        });
        let mut conn = loop {
            if let Some(c) = acceptor.try_accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        half_sent_rx.recv().unwrap();
        // Give the half-frame time to land, then confirm it does not
        // decode early.
        std::thread::sleep(Duration::from_millis(20));
        assert!(conn.try_recv().unwrap().is_none());
        resume_tx.send(()).unwrap();
        match recv_blocking(&mut conn) {
            Msg::Support(s) => assert_eq!(s, vec![10, 20, 30, 40]),
            other => panic!("expected Support, got {:?}", other.kind()),
        }
        assert!(matches!(recv_blocking(&mut conn), Msg::U64(1)));
        assert!(matches!(recv_blocking(&mut conn), Msg::U64(2)));
        let _stream = writer.join().unwrap();
    }

    #[test]
    fn rejects_oversized_and_garbage_headers() {
        let acceptor = FrameAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Valid magic/version/kind but a length past MAX_PAYLOAD.
            let len = (wire::MAX_PAYLOAD + 1).to_le_bytes();
            let hdr = [
                b'B',
                b'F',
                wire::VERSION,
                wire::KIND_U64,
                len[0],
                len[1],
                len[2],
                len[3],
            ];
            s.write_all(&hdr).unwrap();
            s.flush().unwrap();
            s
        });
        let mut conn = loop {
            if let Some(c) = acceptor.try_accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        let err = loop {
            match conn.try_recv() {
                Ok(None) => {
                    assert!(Instant::now() < deadline, "no error within 10s");
                    std::thread::sleep(Duration::from_micros(200));
                }
                Ok(Some(m)) => panic!("oversized frame decoded as {:?}", m.kind()),
                Err(e) => break e,
            }
        };
        assert!(matches!(
            err,
            TransportError::Wire(wire::WireError::OversizedPayload(_))
        ));
        let _stream = writer.join().unwrap();
    }

    #[test]
    fn peer_close_surfaces_as_disconnected() {
        let acceptor = FrameAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&wire::encode_frame(&Msg::U64(5))).unwrap();
            // Drop: clean close after one whole frame.
        });
        let mut conn = loop {
            if let Some(c) = acceptor.try_accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        writer.join().unwrap();
        assert!(matches!(recv_blocking(&mut conn), Msg::U64(5)));
        let deadline = Instant::now() + Duration::from_secs(10);
        let err = loop {
            match conn.try_recv() {
                Ok(None) => {
                    assert!(Instant::now() < deadline, "no disconnect within 10s");
                    std::thread::sleep(Duration::from_micros(200));
                }
                Ok(Some(m)) => panic!("unexpected frame {:?}", m.kind()),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TransportError::Disconnected));
    }
}
