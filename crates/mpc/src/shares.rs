//! Two-party additive secret sharing of `f64` tensors.
//!
//! A value `v` is split as `v = s1 + s2` with `s1` uniform in
//! `[-mask, mask]`. As in the paper's implementation (and visible in
//! its Figure 11), pieces are floating-point tensors whose masks are
//! orders of magnitude larger than the hidden values — statistical
//! hiding sized so that reconstruction keeps ≈10 significant decimal
//! digits.

use bf_tensor::Dense;
use rand::Rng;

/// Default mask magnitude for model-weight shares. Figure 11 of the
/// paper shows share pieces spanning roughly ±50 against weights of
/// ±1; we default somewhat larger.
pub const DEFAULT_MASK: f64 = 100.0;

/// Split `v` into `(piece_kept, piece_sent)` with the kept piece drawn
/// uniformly from `[-mask, mask]`.
pub fn share_dense<R: Rng + ?Sized>(rng: &mut R, v: &Dense, mask: f64) -> (Dense, Dense) {
    let rand_piece = random_mask(rng, v.rows(), v.cols(), mask);
    let other = v.sub(&rand_piece);
    (rand_piece, other)
}

/// A uniform random tensor in `[-mask, mask]` (the `φ`/`ε`/`ρ` masks of
/// Figures 6 and 7).
pub fn random_mask<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, mask: f64) -> Dense {
    let data = (0..rows * cols)
        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * mask)
        .collect();
    Dense::from_vec(rows, cols, data)
}

/// Reconstruct a shared value.
pub fn reconstruct(s1: &Dense, s2: &Dense) -> Dense {
    s1.add(s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn share_reconstructs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let v = Dense::from_vec(2, 3, vec![1.5, -2.0, 0.0, 3.25, -0.5, 10.0]);
        let (s1, s2) = share_dense(&mut rng, &v, DEFAULT_MASK);
        assert!(reconstruct(&s1, &s2).approx_eq(&v, 1e-10));
    }

    #[test]
    fn pieces_hide_the_value() {
        // The kept piece must be independent of the secret: same RNG
        // stream, different secrets, identical first piece.
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let a = Dense::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Dense::from_vec(1, 4, vec![-9.0, 0.0, 5.5, 100.0]);
        let (p1a, _) = share_dense(&mut rng1, &a, 50.0);
        let (p1b, _) = share_dense(&mut rng2, &b, 50.0);
        assert!(p1a.approx_eq(&p1b, 0.0));
    }

    #[test]
    fn mask_bounds_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = random_mask(&mut rng, 20, 20, 5.0);
        assert!(m.max_abs() <= 5.0);
    }
}
