//! Pluggable two-party transport with traffic accounting.
//!
//! Every cross-party value in the BlindFL protocols flows through an
//! [`Endpoint`] as a typed [`Msg`]. This gives the experiments exact
//! communication-volume numbers and gives the security tests a single
//! choke point to audit: if a restricted value never appears in a
//! message, the other party never sees it.
//!
//! Two wire backends sit behind the same [`Endpoint`] API:
//!
//! * **in-process** ([`channel_pair`]) — a `crossbeam` channel pair
//!   moving `Msg` values between threads; the harness every test and
//!   experiment uses,
//! * **TCP** ([`Endpoint::tcp_connect`] / [`Endpoint::tcp_accept`]) —
//!   a length-prefixed binary stream per [`crate::wire`] and
//!   `docs/WIRE_PROTOCOL.md`, so the two parties can run as separate
//!   processes or machines.
//!
//! [`TrafficStats`] counts the *canonical* message sizes
//! ([`Msg::wire_size`]) on both backends, so byte counts — the paper's
//! Table 7/8 numbers — are identical whether a run is in-process or
//! cross-process. [`NetworkProfile`] simulation likewise applies to
//! both.
//!
//! # Pipelined mode
//!
//! Either backend can be converted in place into a **pipelined**
//! endpoint ([`Endpoint::make_pipelined`]): `send` then enqueues onto a
//! bounded queue drained by a dedicated writer thread (which owns the
//! physical send half and the simulated [`NetworkProfile`]), and a
//! reader thread eagerly drains the physical receive half into a
//! bounded inbox. The caller's compute thus overlaps wire time instead
//! of sleeping through it. Message *content*, *order*, and
//! [`TrafficStats`] accounting are identical to the blocking mode —
//! pipelining reorders wall-clock work, never bytes (the determinism
//! contract `tests/pipeline_parity.rs` enforces).

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bf_paillier::{CtMat, PublicKey};
use bf_tensor::Dense;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::wire;

/// A typed cross-party message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// An encrypted tensor.
    Ct(CtMat),
    /// A plaintext tensor (only ever secret-share pieces or aggregated
    /// outputs — the protocols never put restricted plaintext here).
    Mat(Dense),
    /// A public key (initialisation handshake).
    Key(PublicKey),
    /// A sparse support set (sorted feature / embedding-row indices).
    Support(Vec<u32>),
    /// A scalar (e.g. a loss value for logging, batch sizes).
    Scalar(f64),
    /// A small integer (protocol step tags, dimensions).
    U64(u64),
    /// Multi-party link identification: the first message a guest
    /// sends on a fresh connection, announcing which of the job's
    /// `total` guest slots it fills. Lets the host map an arbitrary
    /// TCP accept order back onto the deterministic link order (and
    /// reject mis-configured guests with a typed error).
    Hello {
        /// This guest's 0-based link index.
        index: u32,
        /// The total number of guests the sender was configured with.
        total: u32,
    },
    /// Reconnect resync cursor (wire kind 8, protocol v4): the first
    /// frame each side sends on a re-established connection, announcing
    /// how many logical frames it had received before the link dropped
    /// so the peer can replay exactly the gap. Transport control, never
    /// sent by protocol code and never counted in [`TrafficStats`] —
    /// the logical byte stream of a run is identical with or without a
    /// mid-run reconnect.
    Resume {
        /// Logical frames the sender has received on this link so far.
        recv_seq: u64,
    },
    /// Federated gradient boosting (wire kind 9, protocol v5): the
    /// host tells a guest which of the guest's split candidates won a
    /// node, naming it only by the guest's *local* feature index and
    /// bucket — the host never learns the threshold value, the guest
    /// never learns why it won.
    GbSplit {
        /// Guest-local feature index of the winning split.
        feature: u32,
        /// Split bucket: rows whose bucket id ≤ `bucket` go left.
        bucket: u32,
    },
    /// Federated gradient boosting (wire kind 10, protocol v5): a
    /// guest's routing bitmap for an inference batch — for each of its
    /// `records` stored split predicates and each of the `rows`
    /// requested rows, one bit saying whether the row satisfies the
    /// predicate (goes left). Packed LSB-first; bit index is
    /// `record · rows + row`; padding bits must be zero (canonical).
    GbBits {
        /// Number of inference rows covered.
        rows: u64,
        /// Number of split records covered.
        records: u64,
        /// LSB-first packed predicate bits, `⌈rows·records / 8⌉` bytes.
        bits: Vec<u8>,
    },
    /// Sample alignment (wire kind 11, protocol v6): the host opens the
    /// PSI phase by announcing the shared digest salt and its own set
    /// size. The salt travels in the clear — salted hashing defends
    /// against *precomputed* dictionaries, not against a peer grinding
    /// a low-entropy ID space; see `docs/ARCHITECTURE.md` §"Sample
    /// alignment" for the threat model.
    PsiOffer {
        /// Salt mixed into every ID digest of this PSI phase.
        salt: u64,
        /// Number of sample IDs the host holds (set size leaks by
        /// design in digest-exchange PSI).
        count: u64,
    },
    /// Sample alignment (wire kind 12, protocol v6): a salted-digest
    /// *set*, strictly ascending on the wire — the canonical form means
    /// a party's row order can never leak through frame bytes. Sent
    /// guest→host with the guest's full column, then host→guest with
    /// the intersection.
    PsiDigests {
        /// Strictly ascending salted ID digests.
        digests: Vec<u64>,
    },
}

impl Msg {
    /// Canonical size in bytes for traffic accounting (shape header +
    /// payload, excluding the 8-byte frame header the TCP backend
    /// adds; see `docs/WIRE_PROTOCOL.md` §"Traffic accounting").
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::Ct(ct) => ct.wire_size(),
            Msg::Mat(m) => 16 + m.rows() * m.cols() * 8,
            Msg::Key(_) => 256, // n + metadata, order-of-magnitude
            Msg::Support(s) => 8 + s.len() * 4,
            Msg::Scalar(_) => 8,
            Msg::U64(_) => 8,
            Msg::Hello { .. } => 8,
            Msg::Resume { .. } => 8,
            Msg::GbSplit { .. } => 8,
            Msg::GbBits { bits, .. } => 16 + bits.len(),
            Msg::PsiOffer { .. } => 16,
            Msg::PsiDigests { digests } => 8 + digests.len() * 8,
        }
    }

    /// Message kind tag (used by the security audit: the peer's
    /// received-kinds list is this endpoint's sent-kinds list).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Ct(_) => "Ct",
            Msg::Mat(_) => "Mat",
            Msg::Key(_) => "Key",
            Msg::Support(_) => "Support",
            Msg::Scalar(_) => "Scalar",
            Msg::U64(_) => "U64",
            Msg::Hello { .. } => "Hello",
            Msg::Resume { .. } => "Resume",
            Msg::GbSplit { .. } => "GbSplit",
            Msg::GbBits { .. } => "GbBits",
            Msg::PsiOffer { .. } => "PsiOffer",
            Msg::PsiDigests { .. } => "PsiDigests",
        }
    }
}

/// Why a send or receive failed. At the transport level a malformed or
/// vanished peer surfaces here as an `Err` — never as a panic — so a
/// party loop can refuse the connection and keep serving others.
///
/// Scope: this covers frame and payload *structure* (bad magic,
/// truncation, type mismatches, length-field attacks). Semantic
/// validity — e.g. a well-formed `Ct` whose shape or limb width does
/// not match the current protocol step and key — is the protocol
/// layer's contract, enforced by its shape assertions.
#[derive(Debug)]
pub enum TransportError {
    /// The peer endpoint is gone (channel dropped / TCP EOF).
    Disconnected,
    /// The peer sent a well-formed message of the wrong kind.
    TypeMismatch {
        /// The kind the protocol step expected.
        expected: &'static str,
        /// The kind that actually arrived.
        got: &'static str,
    },
    /// The peer sent bytes that do not decode as a protocol frame.
    Wire(wire::WireError),
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer violated the session-setup contract: wrong role, zero
    /// guests, a duplicate / out-of-range / inconsistent link index in
    /// a multi-party [`Msg::Hello`], and similar configuration faults.
    Setup(String),
    /// An operation's overall deadline elapsed: a connect retry
    /// ([`Endpoint::tcp_connect_retry`]) or a reconnect attempt
    /// ([`RetryPolicy::deadline`]) gave up waiting for the peer.
    Timeout {
        /// How long the operation waited before giving up.
        waited: Duration,
    },
    /// The link dropped and could not be transparently resumed: the
    /// reconnect resync failed for the stated reason (e.g. the peer
    /// missed more frames than the replay window holds, or sent
    /// something other than a [`Msg::Resume`] cursor).
    Reconnecting(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::TypeMismatch { expected, got } => {
                write!(f, "protocol error: expected {expected}, got {got}")
            }
            TransportError::Wire(e) => write!(f, "wire decode error: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Setup(why) => write!(f, "session setup error: {why}"),
            TransportError::Timeout { waited } => {
                write!(f, "transport deadline elapsed after {waited:?}")
            }
            TransportError::Reconnecting(why) => {
                write!(f, "link dropped and could not be resumed: {why}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Wire(e) => Some(e),
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for TransportError {
    fn from(e: wire::WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        // Keep the "peer is gone" classification transport-agnostic:
        // a dead remote surfaces as EOF on reads and as broken-pipe /
        // reset / abort on writes, all of which mean Disconnected —
        // the same variant the channel backend yields when the peer
        // endpoint is dropped.
        match e.kind() {
            ErrorKind::UnexpectedEof
            | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted => TransportError::Disconnected,
            _ => TransportError::Io(e),
        }
    }
}

/// Shorthand for transport-fallible results, used by every protocol
/// function downstream.
pub type TransportResult<T> = Result<T, TransportError>;

/// Shared traffic counters for one direction of a channel pair.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Total bytes sent from this endpoint.
    pub bytes_sent: AtomicU64,
    /// Total messages sent from this endpoint.
    pub msgs_sent: AtomicU64,
    /// Kind tags of every message sent, in order — the *peer's*
    /// received-observable audit trail (see `tests/security.rs`).
    sent_kinds: Mutex<Vec<&'static str>>,
}

impl TrafficStats {
    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages sent so far.
    pub fn msgs(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Kinds of every message sent so far, in order.
    pub fn sent_kinds(&self) -> Vec<&'static str> {
        self.sent_kinds.lock().clone()
    }

    /// Preload the byte/message counters — the checkpoint-restore hook:
    /// a run resumed on a fresh endpoint seeds the counters with the
    /// totals captured at the checkpoint so its final numbers equal an
    /// uninterrupted run's. The per-kind audit trail is deliberately
    /// *not* restored (it is a security-test observable of the live
    /// connection, not an accounting total).
    pub fn preload(&self, bytes: u64, msgs: u64) {
        self.bytes_sent.store(bytes, Ordering::Relaxed);
        self.msgs_sent.store(msgs, Ordering::Relaxed);
    }
}

/// The backend actually moving messages.
enum Wire {
    /// In-process `crossbeam` channel pair: values move, nothing is
    /// serialized.
    Channel { tx: Sender<Msg>, rx: Receiver<Msg> },
    /// A TCP stream carrying [`crate::wire`] frames. Reader and writer
    /// halves are locked independently so full-duplex protocols (send
    /// while the peer sends) don't deadlock.
    Tcp {
        writer: Mutex<BufWriter<TcpStream>>,
        reader: Mutex<BufReader<TcpStream>>,
    },
    /// Queue-decoupled wrapper over either backend: sends enqueue onto
    /// a writer thread, receives pop a reader thread's prefetch inbox
    /// (see [`Endpoint::make_pipelined`]).
    Pipelined(Pipelined),
}

/// State of a pipelined endpoint. Outbox entries carry their enqueue
/// time so the writer can schedule simulated delivery relative to when
/// the protocol produced the message, not to when the writer finished
/// the previous one (that is what lets propagation latency pipeline).
struct Pipelined {
    /// Bounded outbox; `None` only transiently during drop.
    tx_q: Option<Sender<(Msg, Instant)>>,
    /// Bounded inbox filled by the reader thread.
    rx_q: Receiver<TransportResult<Msg>>,
    /// Writer thread handle, joined on drop so queued tail messages
    /// reach the wire before the endpoint disappears.
    writer: Option<std::thread::JoinHandle<()>>,
    /// Messages the writer has put on the wire so far. Drop watches
    /// this to tell "writer is draining a slow (simulated) link" from
    /// "writer is stuck on a peer that stopped reading".
    progress: Arc<AtomicU64>,
    /// First writer-side failure, surfaced on the next `send`.
    send_err: Arc<Mutex<Option<TransportError>>>,
    /// TCP backend only: a clone of the stream kept for teardown. The
    /// reader thread holds its own duplicated fd blocked in `read`, so
    /// without an explicit `shutdown` the kernel would never send FIN
    /// when this endpoint drops, and the peer's blocking `recv` would
    /// hang instead of returning `Disconnected`.
    tcp: Option<TcpStream>,
}

/// Write one `Msg` as a wire frame. Header and payload are written
/// separately: Ct payloads are megabytes, and a contiguous
/// `encode_frame` buffer would re-copy every one of them on the hot
/// path. Shared by the blocking TCP path and the pipelined writer.
fn write_frame(w: &mut impl Write, msg: &Msg) -> TransportResult<()> {
    let payload = wire::encode_payload(msg);
    let header = wire::frame_header(msg, &payload);
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one wire frame into a `Msg`. Shared by the blocking TCP path
/// and the pipelined reader.
fn read_frame(r: &mut impl Read) -> TransportResult<Msg> {
    let mut header = [0u8; wire::HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len) = wire::decode_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(wire::decode_payload(kind, &payload)?)
}

/// Exclusive send half handed to a pipelined writer thread.
enum SendHalf {
    Channel(Sender<Msg>),
    Tcp(BufWriter<TcpStream>),
}

impl SendHalf {
    fn send(&mut self, msg: Msg) -> TransportResult<()> {
        match self {
            SendHalf::Channel(tx) => tx.send(msg).map_err(|_| TransportError::Disconnected),
            SendHalf::Tcp(w) => write_frame(w, &msg),
        }
    }
}

/// Exclusive receive half handed to a pipelined reader thread.
enum RecvHalf {
    Channel(Receiver<Msg>),
    Tcp(BufReader<TcpStream>),
}

impl RecvHalf {
    fn recv(&mut self) -> TransportResult<Msg> {
        match self {
            RecvHalf::Channel(rx) => rx.recv().map_err(|_| TransportError::Disconnected),
            RecvHalf::Tcp(r) => read_frame(r),
        }
    }
}

/// How a reconnecting endpoint re-establishes its TCP link after a
/// drop: redial the peer's address, or re-accept on the listener the
/// original connection came from. The two ends of a link use opposite
/// variants, mirroring the original connect/accept split.
pub enum Redial {
    /// Redial the peer (the original `tcp_connect` side).
    Connect(std::net::SocketAddr),
    /// Re-accept on the original listener (the `tcp_accept` side).
    Accept(Arc<TcpListener>),
}

/// Timeout/backoff policy for connect retries and reconnects.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Overall deadline: give up with [`TransportError::Timeout`] once
    /// this much time has elapsed without a live connection.
    pub deadline: Duration,
    /// Pause between attempts (the peer needs time to come back).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(10),
            backoff: Duration::from_millis(20),
        }
    }
}

/// Bounded send/recv replay cursor for a reconnecting TCP endpoint.
///
/// Every logical frame sent is also appended to a bounded log and
/// counted in `sent_seq`; every logical frame received bumps
/// `recv_seq`. When the link drops, both sides re-establish a socket
/// (per their [`Redial`]), exchange [`Msg::Resume`] cursors (each side
/// sends first, then reads — deadlock-free), and the sender replays
/// exactly the `sent_seq − peer.recv_seq` tail of its log. In-flight
/// frames are therefore neither lost (the gap is replayed) nor
/// duplicated (frames the peer acknowledged are skipped); a gap wider
/// than the log window is a typed [`TransportError::Reconnecting`].
struct ReconnectState {
    redial: Redial,
    policy: RetryPolicy,
    window: usize,
    sent_seq: AtomicU64,
    recv_seq: AtomicU64,
    sent_log: Mutex<std::collections::VecDeque<Msg>>,
}

impl ReconnectState {
    /// Log one outgoing logical frame into the bounded replay window.
    fn log_sent(&self, msg: &Msg) {
        self.sent_seq.fetch_add(1, Ordering::Relaxed);
        let mut log = self.sent_log.lock();
        if log.len() == self.window {
            log.pop_front();
        }
        log.push_back(msg.clone());
    }

    /// Re-establish the physical stream per the redial policy.
    fn redial(&self) -> TransportResult<TcpStream> {
        let start = Instant::now();
        let deadline = start + self.policy.deadline;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout {
                    waited: start.elapsed(),
                });
            }
            let attempt = match &self.redial {
                Redial::Connect(addr) => TcpStream::connect_timeout(addr, remaining),
                Redial::Accept(listener) => accept_with_deadline(listener, remaining),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) if is_transient_connect_error(&e) => {
                    std::thread::sleep(self.policy.backoff.min(remaining))
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Accept one connection within `deadline`, restoring the listener to
/// blocking mode afterwards. (A plain `accept` has no timeout; polling
/// in nonblocking mode keeps the reconnect path's overall deadline.)
fn accept_with_deadline(listener: &TcpListener, deadline: Duration) -> std::io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    let until = Instant::now() + deadline;
    let res = loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                break Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= until {
                    break Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "accept deadline elapsed",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => break Err(e),
        }
    };
    let _ = listener.set_nonblocking(false);
    res
}

/// Try every resolved address once, each under the given per-attempt
/// timeout; returns the first success or the last failure.
fn connect_any<A: ToSocketAddrs>(addr: &A, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last = None;
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to no socket addresses",
        )
    }))
}

/// Connect failures worth retrying while waiting for a peer to (re)
/// appear; anything else (unroutable host, permission denied, …) is a
/// configuration error and fails fast.
fn is_transient_connect_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// True if this failure means "the link itself died" (as opposed to a
/// protocol/codec fault) — the trigger for transparent reconnection.
fn is_link_failure(e: &TransportError) -> bool {
    matches!(e, TransportError::Disconnected | TransportError::Io(_))
}

/// The replay-cursor arithmetic of the resync handshake, as a pure
/// function: given that we have sent `sent` frames, the peer
/// acknowledges receiving `peer_recv` of them, and the bounded replay
/// log holds the last `log_len` sent frames, return how many frames
/// from the tail of the log must be replayed — or a reason the link
/// cannot be resumed (an impossible cursor, or a gap wider than the
/// window). Property-tested in this module's test suite.
fn replay_span(sent: u64, peer_recv: u64, log_len: usize) -> Result<usize, String> {
    let gap = sent.checked_sub(peer_recv).ok_or_else(|| {
        format!("peer claims {peer_recv} frames received, only {sent} were ever sent")
    })?;
    let gap = usize::try_from(gap).unwrap_or(usize::MAX);
    if gap > log_len {
        return Err(format!(
            "peer missed {gap} frames but the replay window holds only {log_len}"
        ));
    }
    Ok(gap)
}

/// One party's end of a duplex link (in-process or TCP).
pub struct Endpoint {
    wire: Wire,
    stats: Arc<TrafficStats>,
    net: Option<NetworkProfile>,
    reconnect: Option<ReconnectState>,
}

impl Endpoint {
    /// Send a message to the peer.
    pub fn send(&self, msg: Msg) -> TransportResult<()> {
        let bytes = msg.wire_size();
        self.stats
            .bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats.sent_kinds.lock().push(msg.kind());
        if let Some(net) = &self.net {
            std::thread::sleep(net.delay_for(bytes));
        }
        match &self.wire {
            Wire::Channel { tx, .. } => tx.send(msg).map_err(|_| TransportError::Disconnected),
            Wire::Tcp { writer, .. } => {
                if let Some(rc) = &self.reconnect {
                    // Log before the physical write: if the write (or
                    // any in-flight predecessor) is lost to a link
                    // drop, the resync replay covers it.
                    rc.log_sent(&msg);
                    let res = write_frame(&mut *writer.lock(), &msg);
                    match res {
                        Err(e) if is_link_failure(&e) => self.reestablish(),
                        other => other,
                    }
                } else {
                    write_frame(&mut *writer.lock(), &msg)
                }
            }
            Wire::Pipelined(p) => {
                let q = p.tx_q.as_ref().expect("pipelined outbox present");
                q.send((msg, Instant::now())).map_err(|_| {
                    // Writer thread died: surface its error once, then
                    // a generic disconnect.
                    p.send_err
                        .lock()
                        .take()
                        .unwrap_or(TransportError::Disconnected)
                })
            }
        }
    }

    /// Blocking receive.
    pub fn recv(&self) -> TransportResult<Msg> {
        match &self.wire {
            Wire::Channel { rx, .. } => rx.recv().map_err(|_| TransportError::Disconnected),
            Wire::Tcp { reader, .. } => {
                let Some(rc) = &self.reconnect else {
                    return read_frame(&mut *reader.lock());
                };
                // A couple of reconnect rounds bound the retry: each
                // round is itself deadline-limited by the policy, and a
                // link that dies again mid-resync is not coming back.
                for _ in 0..2 {
                    let res = read_frame(&mut *reader.lock());
                    match res {
                        Ok(msg) => {
                            rc.recv_seq.fetch_add(1, Ordering::Relaxed);
                            return Ok(msg);
                        }
                        Err(e) if is_link_failure(&e) => self.reestablish()?,
                        Err(e) => return Err(e),
                    }
                }
                Err(TransportError::Reconnecting(
                    "link kept dropping across reconnect attempts".into(),
                ))
            }
            Wire::Pipelined(p) => match p.rx_q.recv() {
                Ok(res) => res,
                // Reader thread gone after delivering its final error.
                Err(_) => Err(TransportError::Disconnected),
            },
        }
    }

    /// Re-establish a dropped TCP link and resync the replay cursors:
    /// redial per the policy, exchange [`Msg::Resume`] cursors (send
    /// first, then read — both sides doing the same cannot deadlock),
    /// replay the frames the peer missed, and swap the fresh stream
    /// into place. Resync and replayed frames bypass [`TrafficStats`]:
    /// the logical traffic of the run is unchanged by a reconnect.
    fn reestablish(&self) -> TransportResult<()> {
        let rc = self
            .reconnect
            .as_ref()
            .expect("reestablish requires reconnect state");
        let Wire::Tcp { writer, reader } = &self.wire else {
            return Err(TransportError::Disconnected);
        };
        // Both halves are held for the whole resync so a concurrent
        // send/recv on another thread observes either the dead stream
        // (and retries into this path) or the fully resynced one.
        let mut w = writer.lock();
        let mut r = reader.lock();
        let stream = rc.redial()?;
        let mut new_w = BufWriter::new(stream.try_clone()?);
        let mut new_r = BufReader::new(stream);
        write_frame(
            &mut new_w,
            &Msg::Resume {
                recv_seq: rc.recv_seq.load(Ordering::Relaxed),
            },
        )?;
        let peer_recv = match read_frame(&mut new_r)? {
            Msg::Resume { recv_seq } => recv_seq,
            other => {
                return Err(TransportError::Reconnecting(format!(
                    "peer sent {} instead of a Resume cursor",
                    other.kind()
                )))
            }
        };
        let sent = rc.sent_seq.load(Ordering::Relaxed);
        let log = rc.sent_log.lock();
        let gap = replay_span(sent, peer_recv, log.len()).map_err(TransportError::Reconnecting)?;
        for msg in log.iter().skip(log.len() - gap) {
            write_frame(&mut new_w, msg)?;
        }
        drop(log);
        *w = new_w;
        *r = new_r;
        Ok(())
    }

    /// Forcibly shut down the underlying TCP socket — the `Drop` fault
    /// injection seam: the connection dies mid-run while both party
    /// processes stay up, exactly what a flaky WAN does. Returns
    /// `false` on backends with no socket to sever (in-process
    /// channels). Subsequent operations surface the failure and, on a
    /// reconnect-enabled endpoint, recover transparently.
    pub fn sever(&self) -> bool {
        match &self.wire {
            Wire::Channel { .. } => false,
            Wire::Tcp { writer, .. } => {
                let _ = writer.lock().get_ref().shutdown(std::net::Shutdown::Both);
                true
            }
            Wire::Pipelined(p) => match &p.tcp {
                Some(stream) => {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    true
                }
                None => false,
            },
        }
    }

    /// Enable transparent reconnection with a bounded replay cursor on
    /// this (blocking TCP) endpoint. `window` bounds how many recent
    /// frames are kept for replay; the protocols here are strict
    /// request/response, so a handful suffices. Pipelined endpoints do
    /// not reconnect (their writer/reader threads own the stream) —
    /// convert *after* a run, or rely on checkpoint resume instead.
    pub fn with_reconnect(
        mut self,
        redial: Redial,
        policy: RetryPolicy,
        window: usize,
    ) -> Endpoint {
        assert!(window >= 1, "replay window must hold at least 1 frame");
        assert!(
            matches!(self.wire, Wire::Tcp { .. }),
            "reconnection requires a blocking TCP endpoint"
        );
        self.reconnect = Some(ReconnectState {
            redial,
            policy,
            window,
            sent_seq: AtomicU64::new(0),
            recv_seq: AtomicU64::new(0),
            sent_log: Mutex::new(std::collections::VecDeque::with_capacity(window)),
        });
        self
    }

    /// Receive, expecting a ciphertext tensor.
    pub fn recv_ct(&self) -> TransportResult<CtMat> {
        match self.recv()? {
            Msg::Ct(ct) => Ok(ct),
            other => Err(mismatch("Ct", &other)),
        }
    }

    /// Receive, expecting a plaintext tensor.
    pub fn recv_mat(&self) -> TransportResult<Dense> {
        match self.recv()? {
            Msg::Mat(m) => Ok(m),
            other => Err(mismatch("Mat", &other)),
        }
    }

    /// Receive, expecting a public key.
    pub fn recv_key(&self) -> TransportResult<PublicKey> {
        match self.recv()? {
            Msg::Key(k) => Ok(k),
            other => Err(mismatch("Key", &other)),
        }
    }

    /// Receive, expecting a support set.
    pub fn recv_support(&self) -> TransportResult<Vec<u32>> {
        match self.recv()? {
            Msg::Support(s) => Ok(s),
            other => Err(mismatch("Support", &other)),
        }
    }

    /// Receive, expecting a scalar.
    pub fn recv_scalar(&self) -> TransportResult<f64> {
        match self.recv()? {
            Msg::Scalar(v) => Ok(v),
            other => Err(mismatch("Scalar", &other)),
        }
    }

    /// Receive, expecting a u64.
    pub fn recv_u64(&self) -> TransportResult<u64> {
        match self.recv()? {
            Msg::U64(v) => Ok(v),
            other => Err(mismatch("U64", &other)),
        }
    }

    /// Receive, expecting a multi-party hello; returns `(index, total)`.
    pub fn recv_hello(&self) -> TransportResult<(u32, u32)> {
        match self.recv()? {
            Msg::Hello { index, total } => Ok((index, total)),
            other => Err(mismatch("Hello", &other)),
        }
    }

    /// Receive, expecting a tree-split record; returns
    /// `(feature, bucket)`.
    pub fn recv_gb_split(&self) -> TransportResult<(u32, u32)> {
        match self.recv()? {
            Msg::GbSplit { feature, bucket } => Ok((feature, bucket)),
            other => Err(mismatch("GbSplit", &other)),
        }
    }

    /// Receive, expecting a routing bitmap; returns
    /// `(rows, records, bits)`.
    pub fn recv_gb_bits(&self) -> TransportResult<(u64, u64, Vec<u8>)> {
        match self.recv()? {
            Msg::GbBits {
                rows,
                records,
                bits,
            } => Ok((rows, records, bits)),
            other => Err(mismatch("GbBits", &other)),
        }
    }

    /// Receive, expecting a PSI offer; returns `(salt, count)`.
    pub fn recv_psi_offer(&self) -> TransportResult<(u64, u64)> {
        match self.recv()? {
            Msg::PsiOffer { salt, count } => Ok((salt, count)),
            other => Err(mismatch("PsiOffer", &other)),
        }
    }

    /// Receive, expecting a PSI digest set (strictly ascending).
    pub fn recv_psi_digests(&self) -> TransportResult<Vec<u64>> {
        match self.recv()? {
            Msg::PsiDigests { digests } => Ok(digests),
            other => Err(mismatch("PsiDigests", &other)),
        }
    }

    /// This endpoint's outbound traffic counters.
    pub fn stats(&self) -> &Arc<TrafficStats> {
        &self.stats
    }

    /// Attach a simulated network profile (applied to every subsequent
    /// `send`, exactly as on the in-process backend).
    pub fn with_network(mut self, profile: NetworkProfile) -> Endpoint {
        self.net = Some(profile);
        self
    }

    /// Wrap an established TCP stream. Disables Nagle's algorithm —
    /// the protocols are strict request/response ping-pong, where
    /// delayed ACKs would otherwise dominate round times.
    pub fn from_tcp_stream(stream: TcpStream) -> TransportResult<Endpoint> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Endpoint {
            wire: Wire::Tcp {
                writer: Mutex::new(writer),
                reader: Mutex::new(reader),
            },
            stats: Arc::new(TrafficStats::default()),
            net: None,
            reconnect: None,
        })
    }

    /// Connect to a listening peer (the "guest" side of a deployment).
    pub fn tcp_connect<A: ToSocketAddrs>(addr: A) -> TransportResult<Endpoint> {
        Endpoint::from_tcp_stream(TcpStream::connect(addr)?)
    }

    /// Connect, retrying while the peer's listener is not up yet (used
    /// by two-process launches where start order is not guaranteed).
    /// Only transient failures are retried; a non-transient error
    /// (unroutable host, permission denied, …) fails fast. The
    /// `timeout` is an overall deadline — a peer that never listens
    /// (or silently drops SYNs, which `connect` alone can out-wait)
    /// yields a typed [`TransportError::Timeout`], never a hang.
    pub fn tcp_connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> TransportResult<Endpoint> {
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout {
                    waited: start.elapsed(),
                });
            }
            // Per-attempt timeout bounded by the remaining budget, so
            // even a single black-holed connect cannot exceed the
            // overall deadline.
            match connect_any(&addr, remaining) {
                Ok(stream) => return Endpoint::from_tcp_stream(stream),
                Err(e) if is_transient_connect_error(&e) => {
                    std::thread::sleep(Duration::from_millis(20).min(remaining));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Accept one peer connection (the "host" side of a deployment).
    pub fn tcp_accept(listener: &TcpListener) -> TransportResult<Endpoint> {
        let (stream, _) = listener.accept()?;
        Endpoint::from_tcp_stream(stream)
    }

    /// Convert this endpoint into **pipelined** mode in place (no-op if
    /// already pipelined).
    ///
    /// After conversion, `send` enqueues onto a bounded queue of
    /// `depth` messages (blocking only when the queue is full —
    /// backpressure, bounding memory) and returns immediately; a
    /// dedicated writer thread performs the physical sends, including
    /// any [`NetworkProfile`] delay attached at conversion time. A
    /// reader thread symmetrically prefetches up to `depth` incoming
    /// messages.
    ///
    /// Semantics preserved exactly: message order, message bytes, and
    /// [`TrafficStats`] accounting (still performed on the calling
    /// thread, in call order) are identical to the blocking mode. Only
    /// wall-clock scheduling changes. One deliberate difference in the
    /// *simulated* network: the blocking mode models a stop-and-wait
    /// link (each send sleeps `latency + bytes/bw` inline), while the
    /// pipelined writer models a streaming link — serialisation
    /// occupies the link back-to-back and propagation latency is
    /// pipelined across in-flight messages, which is how a real TCP
    /// stream behaves. Delivery order is unchanged.
    pub fn make_pipelined(&mut self, depth: usize) {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        if matches!(self.wire, Wire::Pipelined(_)) {
            return;
        }
        // The writer/reader threads take exclusive ownership of the
        // stream halves; transparent reconnection is a blocking-TCP
        // feature (a pipelined run that loses its link surfaces an
        // error and recovers via checkpoint resume instead).
        self.reconnect = None;
        // Swap in a throwaway channel wire so we can take ownership of
        // the real one (its halves move into the worker threads).
        let (dummy_tx, dummy_rx) = unbounded();
        let inner = std::mem::replace(
            &mut self.wire,
            Wire::Channel {
                tx: dummy_tx,
                rx: dummy_rx,
            },
        );
        let (send_half, recv_half, tcp) = match inner {
            Wire::Channel { tx, rx } => (SendHalf::Channel(tx), RecvHalf::Channel(rx), None),
            Wire::Tcp { writer, reader } => {
                let writer = writer.into_inner();
                let tcp = writer.get_ref().try_clone().ok();
                (
                    SendHalf::Tcp(writer),
                    RecvHalf::Tcp(reader.into_inner()),
                    tcp,
                )
            }
            Wire::Pipelined(_) => unreachable!("checked above"),
        };
        // The writer thread takes over the simulated network: inline
        // sleeps on the caller are exactly what pipelining removes.
        let net = self.net.take();
        let send_err = Arc::new(Mutex::new(None));
        let err_slot = Arc::clone(&send_err);
        let progress = Arc::new(AtomicU64::new(0));
        let progress_w = Arc::clone(&progress);
        let (tx_q, out_q) = bounded(depth);
        let (in_q, rx_q) = bounded(depth);
        let writer = std::thread::Builder::new()
            .name("bf-mpc-writer".into())
            .spawn(move || writer_loop(send_half, out_q, net, progress_w, err_slot))
            .expect("spawn transport writer");
        std::thread::Builder::new()
            .name("bf-mpc-reader".into())
            .spawn(move || reader_loop(recv_half, in_q))
            .expect("spawn transport reader");
        self.wire = Wire::Pipelined(Pipelined {
            tx_q: Some(tx_q),
            rx_q,
            writer: Some(writer),
            progress,
            send_err,
            tcp,
        });
    }

    /// True if this endpoint is in pipelined mode.
    pub fn is_pipelined(&self) -> bool {
        matches!(self.wire, Wire::Pipelined(_))
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        if let Wire::Pipelined(p) = &mut self.wire {
            // Close the outbox, then wait for the writer to drain the
            // queued tail onto the wire: the peer may still be waiting
            // on those messages after this side's party loop returned.
            p.tx_q.take();
            if let Some(h) = p.writer.take() {
                // Let the writer flush the queued tail (at most `depth`
                // messages), but don't join unconditionally: a peer
                // that stopped reading would leave the writer blocked
                // in `write_all` and this Drop stuck forever. A slow
                // *simulated* link is legitimate, so the deadline is
                // on per-message progress, not total elapsed time; the
                // socket is severed only after 5 s with no message
                // delivered.
                let mut last_progress = p.progress.load(Ordering::Relaxed);
                let mut stalled_since = Instant::now();
                while !h.is_finished() {
                    std::thread::sleep(Duration::from_millis(2));
                    let now_progress = p.progress.load(Ordering::Relaxed);
                    if now_progress != last_progress {
                        last_progress = now_progress;
                        stalled_since = Instant::now();
                    } else if stalled_since.elapsed() > Duration::from_secs(5) {
                        if let Some(stream) = &p.tcp {
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                        }
                        break;
                    }
                }
                let _ = h.join();
            }
            // TCP: the reader thread's duplicated fd would keep the
            // connection open forever; shut the socket down so the
            // peer sees FIN (→ `Disconnected`) and our reader exits.
            // Channel readers exit when the peer's send half drops.
            if let Some(stream) = p.tcp.take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// Writer-thread body: drain the outbox onto the physical wire,
/// applying the simulated network as a *streaming* link.
fn writer_loop(
    mut half: SendHalf,
    q: Receiver<(Msg, Instant)>,
    net: Option<NetworkProfile>,
    progress: Arc<AtomicU64>,
    err_slot: Arc<Mutex<Option<TransportError>>>,
) {
    // When the link becomes free for the next message's serialisation.
    let mut link_free = Instant::now();
    while let Ok((msg, enqueued_at)) = q.recv() {
        if let Some(p) = &net {
            // Serialisation starts when the sender handed the message
            // over (not when this thread got around to it) or when the
            // link frees up, whichever is later; propagation latency
            // then rides on top and pipelines across messages.
            let start = if link_free > enqueued_at {
                link_free
            } else {
                enqueued_at
            };
            link_free = start + p.ser_delay(msg.wire_size());
            let deliver_at = link_free + p.latency;
            if let Some(wait) = deliver_at.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        if let Err(e) = half.send(msg) {
            *err_slot.lock() = Some(e);
            // Dropping the queue receiver makes the caller's next
            // `send` fail and pick up the stored error.
            return;
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }
}

/// Reader-thread body: eagerly pull physical messages into the inbox.
/// A transport error is delivered in-stream (after all messages that
/// preceded it), then the thread exits.
fn reader_loop(mut half: RecvHalf, q: Sender<TransportResult<Msg>>) {
    loop {
        let res = half.recv();
        let done = res.is_err();
        if q.send(res).is_err() || done {
            return;
        }
    }
}

fn mismatch(expected: &'static str, got: &Msg) -> TransportError {
    TransportError::TypeMismatch {
        expected,
        got: got.kind(),
    }
}

/// Create a connected pair of endpoints (Party A's end, Party B's end).
pub fn channel_pair() -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let a = Endpoint {
        wire: Wire::Channel {
            tx: tx_ab,
            rx: rx_ba,
        },
        stats: Arc::new(TrafficStats::default()),
        net: None,
        reconnect: None,
    };
    let b = Endpoint {
        wire: Wire::Channel {
            tx: tx_ba,
            rx: rx_ab,
        },
        stats: Arc::new(TrafficStats::default()),
        net: None,
        reconnect: None,
    };
    (a, b)
}

/// A simulated network link: per-message latency plus serialisation
/// delay proportional to the message size.
///
/// The paper's testbed links the two parties at 10 Gbps; to study how
/// BlindFL behaves over slower cross-enterprise links (where its low
/// communication volume matters even more), build the pair with a
/// profile and every `send` pays `latency + bytes/bandwidth`.
#[derive(Clone, Copy, Debug)]
pub struct NetworkProfile {
    /// One-way latency per message.
    pub latency: std::time::Duration,
    /// Link bandwidth in bytes/second (0 = infinite).
    pub bytes_per_sec: u64,
}

impl NetworkProfile {
    /// The paper's testbed: 10 Gbps LAN, sub-millisecond latency.
    pub fn lan_10gbps() -> Self {
        Self {
            latency: std::time::Duration::from_micros(100),
            bytes_per_sec: 10_000_000_000 / 8,
        }
    }

    /// A conservative cross-enterprise WAN: 20 ms, 100 Mbps.
    pub fn wan_100mbps() -> Self {
        Self {
            latency: std::time::Duration::from_millis(20),
            bytes_per_sec: 100_000_000 / 8,
        }
    }

    /// Serialisation (bandwidth) delay alone — the portion that
    /// occupies the link. Propagation latency pipelines across
    /// in-flight messages on a streaming link, so the pipelined writer
    /// accounts for the two separately.
    fn ser_delay(&self, bytes: usize) -> Duration {
        if self.bytes_per_sec == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
        }
    }

    fn delay_for(&self, bytes: usize) -> std::time::Duration {
        self.latency + self.ser_delay(bytes)
    }
}

/// Create a connected pair whose sends incur the given simulated
/// network delay (applied on the sender, so wall-clock measurements of
/// protocol phases include the wire time).
pub fn channel_pair_with_network(profile: NetworkProfile) -> (Endpoint, Endpoint) {
    let (a, b) = channel_pair();
    (a.with_network(profile), b.with_network(profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_accounting() {
        let (a, b) = channel_pair();
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.send(Msg::Mat(m.clone())).unwrap();
        a.send(Msg::Scalar(7.5)).unwrap();
        assert_eq!(b.recv_mat().unwrap(), m);
        assert_eq!(b.recv_scalar().unwrap(), 7.5);
        assert_eq!(a.stats().msgs(), 2);
        assert_eq!(a.stats().bytes(), (16 + 32 + 8) as u64);
        assert_eq!(b.stats().msgs(), 0);
    }

    #[test]
    fn duplex_across_threads() {
        let (a, b) = channel_pair();
        let t = std::thread::spawn(move || {
            let v = b.recv_scalar().unwrap();
            b.send(Msg::Scalar(v * 2.0)).unwrap();
        });
        a.send(Msg::Scalar(21.0)).unwrap();
        assert_eq!(a.recv_scalar().unwrap(), 42.0);
        t.join().unwrap();
    }

    #[test]
    fn type_mismatch_is_a_typed_error() {
        let (a, b) = channel_pair();
        a.send(Msg::Scalar(1.0)).unwrap();
        match b.recv_ct() {
            Err(TransportError::TypeMismatch { expected, got }) => {
                assert_eq!(expected, "Ct");
                assert_eq!(got, "Scalar");
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn dropped_peer_is_disconnected_not_panic() {
        let (a, b) = channel_pair();
        drop(b);
        assert!(matches!(
            a.send(Msg::Scalar(1.0)),
            Err(TransportError::Disconnected)
        ));
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn network_profile_delays_sends() {
        let profile = NetworkProfile {
            latency: std::time::Duration::from_millis(5),
            bytes_per_sec: 0,
        };
        let (a, b) = channel_pair_with_network(profile);
        let t = std::time::Instant::now();
        for _ in 0..4 {
            a.send(Msg::Scalar(1.0)).unwrap();
        }
        assert!(t.elapsed() >= std::time::Duration::from_millis(20));
        for _ in 0..4 {
            b.recv_scalar().unwrap();
        }
    }

    #[test]
    fn network_profile_serialisation_delay() {
        // 1 KiB at 1 KiB/s ≈ 1s; use a tiny message + tiny bandwidth to
        // keep the test fast but measurable.
        let profile = NetworkProfile {
            latency: std::time::Duration::ZERO,
            bytes_per_sec: 1_000,
        };
        assert!(profile.delay_for(100) >= std::time::Duration::from_millis(99));
        let lan = NetworkProfile::lan_10gbps();
        assert!(lan.delay_for(1 << 20) < std::time::Duration::from_millis(2));
        let wan = NetworkProfile::wan_100mbps();
        assert!(wan.delay_for(1 << 20) > std::time::Duration::from_millis(20));
    }

    #[test]
    fn support_roundtrip() {
        let (a, b) = channel_pair();
        a.send(Msg::Support(vec![1, 5, 9])).unwrap();
        assert_eq!(b.recv_support().unwrap(), vec![1, 5, 9]);
    }

    /// One connected TCP endpoint pair over localhost.
    fn tcp_pair() -> (Endpoint, Endpoint) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || Endpoint::tcp_connect(addr).unwrap());
        let host = Endpoint::tcp_accept(&listener).unwrap();
        (t.join().unwrap(), host)
    }

    #[test]
    fn tcp_roundtrip_matches_channel_accounting() {
        let (a, b) = tcp_pair();
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.send(Msg::Mat(m.clone())).unwrap();
        a.send(Msg::Scalar(7.5)).unwrap();
        a.send(Msg::Support(vec![3, 1])).unwrap();
        a.send(Msg::U64(9)).unwrap();
        assert_eq!(b.recv_mat().unwrap(), m);
        assert_eq!(b.recv_scalar().unwrap(), 7.5);
        assert_eq!(b.recv_support().unwrap(), vec![3, 1]);
        assert_eq!(b.recv_u64().unwrap(), 9);
        // Byte accounting identical to the in-process backend.
        let (ca, _cb) = channel_pair();
        ca.send(Msg::Mat(m)).unwrap();
        ca.send(Msg::Scalar(7.5)).unwrap();
        ca.send(Msg::Support(vec![3, 1])).unwrap();
        ca.send(Msg::U64(9)).unwrap();
        assert_eq!(a.stats().bytes(), ca.stats().bytes());
        assert_eq!(a.stats().msgs(), ca.stats().msgs());
        assert_eq!(a.stats().sent_kinds(), ca.stats().sent_kinds());
    }

    #[test]
    fn tcp_duplex_and_disconnect() {
        let (a, b) = tcp_pair();
        let t = std::thread::spawn(move || {
            let v = b.recv_scalar().unwrap();
            b.send(Msg::Scalar(v + 1.0)).unwrap();
            // b drops here: a's next recv must be Disconnected.
        });
        a.send(Msg::Scalar(1.0)).unwrap();
        assert_eq!(a.recv_scalar().unwrap(), 2.0);
        t.join().unwrap();
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn pipelined_channel_preserves_order_content_and_accounting() {
        let (mut a, b) = channel_pair();
        a.make_pipelined(8);
        assert!(a.is_pipelined());
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.send(Msg::Mat(m.clone())).unwrap();
        a.send(Msg::Scalar(7.5)).unwrap();
        a.send(Msg::Support(vec![3, 1])).unwrap();
        assert_eq!(b.recv_mat().unwrap(), m);
        assert_eq!(b.recv_scalar().unwrap(), 7.5);
        assert_eq!(b.recv_support().unwrap(), vec![3, 1]);
        // Accounting identical to the blocking mode.
        let (sync_a, _sync_b) = channel_pair();
        sync_a.send(Msg::Mat(m)).unwrap();
        sync_a.send(Msg::Scalar(7.5)).unwrap();
        sync_a.send(Msg::Support(vec![3, 1])).unwrap();
        assert_eq!(a.stats().bytes(), sync_a.stats().bytes());
        assert_eq!(a.stats().msgs(), sync_a.stats().msgs());
        assert_eq!(a.stats().sent_kinds(), sync_a.stats().sent_kinds());
    }

    #[test]
    fn pipelined_recv_side_prefetches() {
        let (a, mut b) = channel_pair();
        b.make_pipelined(4);
        for i in 0..16 {
            a.send(Msg::U64(i)).unwrap();
        }
        for i in 0..16 {
            assert_eq!(b.recv_u64().unwrap(), i);
        }
    }

    #[test]
    fn pipelined_send_overlaps_network_latency() {
        // Blocking mode sleeps latency+ser inline per send; pipelined
        // mode returns immediately and the writer thread pays the
        // delays, with latency pipelined across in-flight messages.
        let profile = NetworkProfile {
            latency: std::time::Duration::from_millis(30),
            bytes_per_sec: 0,
        };
        let (a, b) = channel_pair_with_network(profile);
        let mut a = a;
        a.make_pipelined(8);
        let t = std::time::Instant::now();
        for _ in 0..4 {
            a.send(Msg::Scalar(1.0)).unwrap();
        }
        let enqueue_time = t.elapsed();
        // The blocking path would `sleep` ≥ 4×30 ms = 120 ms inline
        // (thread::sleep guarantees at least its duration), so these
        // bounds discriminate even with generous scheduling slack for
        // loaded CI machines.
        assert!(
            enqueue_time < std::time::Duration::from_millis(90),
            "pipelined sends blocked for {enqueue_time:?}"
        );
        for _ in 0..4 {
            b.recv_scalar().unwrap();
        }
        let total = t.elapsed();
        // Streaming link: ≈ one latency for the whole burst (ideal
        // 30 ms) vs 120 ms stop-and-wait; 115 ms keeps the
        // discrimination while absorbing ~85 ms of scheduler noise.
        assert!(total >= std::time::Duration::from_millis(30));
        assert!(
            total < std::time::Duration::from_millis(115),
            "latencies did not pipeline: {total:?}"
        );
    }

    #[test]
    fn pipelined_drop_flushes_queued_tail() {
        // Messages still queued when the endpoint drops must reach the
        // peer (Drop joins the writer thread).
        let profile = NetworkProfile {
            latency: std::time::Duration::from_millis(10),
            bytes_per_sec: 0,
        };
        let (a, b) = channel_pair_with_network(profile);
        let mut a = a;
        a.make_pipelined(8);
        for i in 0..5 {
            a.send(Msg::U64(i)).unwrap();
        }
        drop(a);
        for i in 0..5 {
            assert_eq!(b.recv_u64().unwrap(), i);
        }
        assert!(matches!(b.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn pipelined_disconnect_surfaces_as_error() {
        let (mut a, b) = channel_pair();
        a.make_pipelined(2);
        drop(b);
        // The writer discovers the dead peer asynchronously; keep
        // sending until the error propagates back.
        let mut saw_err = false;
        for _ in 0..64 {
            if a.send(Msg::Scalar(1.0)).is_err() {
                saw_err = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(saw_err, "send against a dead peer never failed");
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn pipelined_tcp_matches_channel_accounting() {
        let (mut a, mut b) = tcp_pair();
        a.make_pipelined(4);
        b.make_pipelined(4);
        let m = Dense::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        a.send(Msg::Mat(m.clone())).unwrap();
        b.send(Msg::Scalar(2.0)).unwrap();
        a.send(Msg::U64(7)).unwrap();
        assert_eq!(b.recv_mat().unwrap(), m);
        assert_eq!(b.recv_u64().unwrap(), 7);
        assert_eq!(a.recv_scalar().unwrap(), 2.0);
        let (ca, _cb) = channel_pair();
        ca.send(Msg::Mat(m)).unwrap();
        ca.send(Msg::U64(7)).unwrap();
        assert_eq!(a.stats().bytes(), ca.stats().bytes());
        assert_eq!(a.stats().sent_kinds(), ca.stats().sent_kinds());
    }

    #[test]
    fn pipelined_tcp_drop_disconnects_the_peer() {
        // Regression: the pipelined reader thread holds a duplicated
        // socket fd; Drop must still get a FIN out so a peer blocked
        // in a *sync* recv observes Disconnected (with queued tail
        // messages delivered first) instead of hanging forever.
        let (mut a, b) = tcp_pair();
        a.make_pipelined(4);
        a.send(Msg::U64(5)).unwrap();
        drop(a);
        assert_eq!(b.recv_u64().unwrap(), 5);
        assert!(matches!(b.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn connect_retry_times_out_with_typed_error() {
        // Bind a port, then drop the listener: nothing ever listens
        // there again, so the retry loop must give up at its overall
        // deadline with a typed Timeout — not loop forever and not
        // return a raw refused error.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let budget = Duration::from_millis(200);
        let t = Instant::now();
        let err = Endpoint::tcp_connect_retry(addr, budget)
            .err()
            .expect("never-listening peer must fail");
        assert!(
            matches!(err, TransportError::Timeout { waited } if waited >= budget),
            "expected Timeout, got {err:?}"
        );
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "deadline not honoured: {:?}",
            t.elapsed()
        );
    }

    /// A reconnect-enabled TCP pair: the accept side keeps its
    /// listener for re-accepts, the connect side redials the address.
    fn reconnecting_tcp_pair(window: usize, policy: RetryPolicy) -> (Endpoint, Endpoint) {
        let listener = Arc::new(TcpListener::bind("127.0.0.1:0").unwrap());
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            Endpoint::tcp_connect(addr).unwrap().with_reconnect(
                Redial::Connect(addr),
                policy,
                window,
            )
        });
        let host = Endpoint::tcp_accept(&listener).unwrap().with_reconnect(
            Redial::Accept(listener),
            policy,
            window,
        );
        (t.join().unwrap(), host)
    }

    #[test]
    fn severed_link_reconnects_and_replays_in_flight_frames() {
        let (a, b) = reconnecting_tcp_pair(8, RetryPolicy::default());
        a.send(Msg::U64(1)).unwrap();
        assert_eq!(b.recv_u64().unwrap(), 1);
        // Kill the link, then keep talking: the frame sent into the
        // dead socket must arrive exactly once after the transparent
        // reconnect (b blocks in recv on the dead socket, observes the
        // failure, re-accepts; a's failed send redials and replays).
        a.sever();
        let t = std::thread::spawn(move || {
            let v = b.recv_u64().unwrap();
            let m = b.recv_mat().unwrap();
            b.send(Msg::Scalar(v as f64)).unwrap();
            (v, m, b)
        });
        let m = Dense::from_vec(1, 2, vec![4.0, -5.0]);
        a.send(Msg::U64(2)).unwrap();
        a.send(Msg::Mat(m.clone())).unwrap();
        assert_eq!(a.recv_scalar().unwrap(), 2.0);
        let (v, got, b) = t.join().unwrap();
        assert_eq!(v, 2);
        assert_eq!(got, m);
        // Accounting counts each logical frame exactly once — resync
        // and replay frames are invisible to TrafficStats.
        assert_eq!(a.stats().msgs(), 3);
        assert_eq!(a.stats().bytes(), (8 + 8 + 32) as u64);
        assert_eq!(a.stats().sent_kinds(), vec!["U64", "U64", "Mat"]);
        assert_eq!(b.stats().msgs(), 1);
    }

    #[test]
    fn reconnect_survives_repeated_drops() {
        let (a, b) = reconnecting_tcp_pair(4, RetryPolicy::default());
        let t = std::thread::spawn(move || {
            for i in 0..6u64 {
                assert_eq!(b.recv_u64().unwrap(), i);
            }
            b
        });
        for i in 0..6u64 {
            if i % 2 == 0 {
                a.sever();
            }
            a.send(Msg::U64(i)).unwrap();
        }
        t.join().unwrap();
    }

    #[test]
    fn replay_gap_beyond_window_is_a_typed_error() {
        // A scripted peer that lost everything: it accepts the redial
        // and announces `recv_seq = 0` although five frames were sent
        // against a 2-frame window. The resync must refuse with a
        // typed Reconnecting error — silently dropping the three
        // unreplayable frames would corrupt the protocol stream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            // Original connection: swallow frames, never ack anything.
            let (conn1, _) = listener.accept().unwrap();
            // Redialled connection: speak the resync handshake raw.
            let (mut conn2, _) = listener.accept().unwrap();
            conn2
                .write_all(&wire::encode_frame(&Msg::Resume { recv_seq: 0 }))
                .unwrap();
            let theirs = read_frame(&mut conn2).unwrap();
            assert!(matches!(theirs, Msg::Resume { recv_seq: 0 }));
            drop(conn1);
            conn2
        });
        let a = Endpoint::tcp_connect(addr).unwrap().with_reconnect(
            Redial::Connect(addr),
            RetryPolicy::default(),
            2,
        );
        for i in 0..4u64 {
            a.send(Msg::U64(i)).unwrap();
        }
        // Kill the local write side so the fifth send deterministically
        // fails over into the resync path.
        a.sever();
        let err = a.send(Msg::U64(4)).expect_err("gap exceeds the window");
        match err {
            TransportError::Reconnecting(why) => {
                assert!(why.contains("replay window"), "unexpected reason: {why}")
            }
            other => panic!("expected Reconnecting, got {other:?}"),
        }
        peer.join().unwrap();
    }

    #[test]
    fn sever_reports_backend_capability() {
        let (a, _b) = channel_pair();
        assert!(!a.sever());
        let (ta, _tb) = tcp_pair();
        assert!(ta.sever());
    }

    #[test]
    fn tcp_rejects_garbage_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        });
        let host = Endpoint::tcp_accept(&listener).unwrap();
        assert!(matches!(host.recv(), Err(TransportError::Wire(_))));
        t.join().unwrap();
    }

    #[test]
    fn replay_span_edge_cases() {
        // Fully acknowledged → nothing to replay, even with an empty log.
        assert_eq!(replay_span(0, 0, 0), Ok(0));
        assert_eq!(replay_span(7, 7, 0), Ok(0));
        // Exact window fit.
        assert_eq!(replay_span(10, 7, 3), Ok(3));
        // One frame beyond the window → typed refusal.
        assert!(replay_span(10, 6, 3).unwrap_err().contains("replay window"));
        // A peer acknowledging more than was sent is an impossible
        // cursor, not a zero-length replay.
        assert!(replay_span(3, 4, 8).unwrap_err().contains("ever sent"));
        // u64 gap far beyond usize must refuse, not wrap.
        assert!(replay_span(u64::MAX, 0, 16).is_err());
    }

    proptest::proptest! {
        /// The resync cursor arithmetic never panics, never replays
        /// more than the log holds, and accepts exactly the cursors
        /// with `sent − peer_recv ≤ log_len`.
        #[test]
        fn replay_span_is_sound(
            sent in 0u64..=u64::MAX,
            lag in 0u64..1024,
            log_len in 0usize..512,
        ) {
            let peer_recv = sent.saturating_sub(lag);
            let gap = sent - peer_recv;
            match replay_span(sent, peer_recv, log_len) {
                Ok(n) => {
                    proptest::prop_assert!(n <= log_len);
                    proptest::prop_assert_eq!(n as u64, gap);
                }
                Err(why) => {
                    proptest::prop_assert!(gap > log_len as u64, "refused a coverable gap: {}", why);
                    proptest::prop_assert!(why.contains("replay window"));
                }
            }
        }

        /// An acknowledgement ahead of the send cursor is always an
        /// impossible-cursor error, regardless of window size.
        #[test]
        fn replay_span_rejects_future_acks(
            sent in 0u64..u64::MAX,
            ahead in 1u64..1024,
            log_len in 0usize..512,
        ) {
            let peer_recv = sent.saturating_add(ahead);
            let res = replay_span(sent, peer_recv, log_len);
            proptest::prop_assert!(res.is_err());
            proptest::prop_assert!(res.unwrap_err().contains("ever sent"));
        }
    }
}
