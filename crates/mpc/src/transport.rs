//! Pluggable two-party transport with traffic accounting.
//!
//! Every cross-party value in the BlindFL protocols flows through an
//! [`Endpoint`] as a typed [`Msg`]. This gives the experiments exact
//! communication-volume numbers and gives the security tests a single
//! choke point to audit: if a restricted value never appears in a
//! message, the other party never sees it.
//!
//! Two wire backends sit behind the same [`Endpoint`] API:
//!
//! * **in-process** ([`channel_pair`]) — a `crossbeam` channel pair
//!   moving `Msg` values between threads; the harness every test and
//!   experiment uses,
//! * **TCP** ([`Endpoint::tcp_connect`] / [`Endpoint::tcp_accept`]) —
//!   a length-prefixed binary stream per [`crate::wire`] and
//!   `docs/WIRE_PROTOCOL.md`, so the two parties can run as separate
//!   processes or machines.
//!
//! [`TrafficStats`] counts the *canonical* message sizes
//! ([`Msg::wire_size`]) on both backends, so byte counts — the paper's
//! Table 7/8 numbers — are identical whether a run is in-process or
//! cross-process. [`NetworkProfile`] simulation likewise applies to
//! both.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bf_paillier::{CtMat, PublicKey};
use bf_tensor::Dense;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::wire;

/// A typed cross-party message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// An encrypted tensor.
    Ct(CtMat),
    /// A plaintext tensor (only ever secret-share pieces or aggregated
    /// outputs — the protocols never put restricted plaintext here).
    Mat(Dense),
    /// A public key (initialisation handshake).
    Key(PublicKey),
    /// A sparse support set (sorted feature / embedding-row indices).
    Support(Vec<u32>),
    /// A scalar (e.g. a loss value for logging, batch sizes).
    Scalar(f64),
    /// A small integer (protocol step tags, dimensions).
    U64(u64),
}

impl Msg {
    /// Canonical size in bytes for traffic accounting (shape header +
    /// payload, excluding the 8-byte frame header the TCP backend
    /// adds; see `docs/WIRE_PROTOCOL.md` §"Traffic accounting").
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::Ct(ct) => ct.wire_size(),
            Msg::Mat(m) => 16 + m.rows() * m.cols() * 8,
            Msg::Key(_) => 256, // n + metadata, order-of-magnitude
            Msg::Support(s) => 8 + s.len() * 4,
            Msg::Scalar(_) => 8,
            Msg::U64(_) => 8,
        }
    }

    /// Message kind tag (used by the security audit: the peer's
    /// received-kinds list is this endpoint's sent-kinds list).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Ct(_) => "Ct",
            Msg::Mat(_) => "Mat",
            Msg::Key(_) => "Key",
            Msg::Support(_) => "Support",
            Msg::Scalar(_) => "Scalar",
            Msg::U64(_) => "U64",
        }
    }
}

/// Why a send or receive failed. At the transport level a malformed or
/// vanished peer surfaces here as an `Err` — never as a panic — so a
/// party loop can refuse the connection and keep serving others.
///
/// Scope: this covers frame and payload *structure* (bad magic,
/// truncation, type mismatches, length-field attacks). Semantic
/// validity — e.g. a well-formed `Ct` whose shape or limb width does
/// not match the current protocol step and key — is the protocol
/// layer's contract, enforced by its shape assertions.
#[derive(Debug)]
pub enum TransportError {
    /// The peer endpoint is gone (channel dropped / TCP EOF).
    Disconnected,
    /// The peer sent a well-formed message of the wrong kind.
    TypeMismatch {
        /// The kind the protocol step expected.
        expected: &'static str,
        /// The kind that actually arrived.
        got: &'static str,
    },
    /// The peer sent bytes that do not decode as a protocol frame.
    Wire(wire::WireError),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::TypeMismatch { expected, got } => {
                write!(f, "protocol error: expected {expected}, got {got}")
            }
            TransportError::Wire(e) => write!(f, "wire decode error: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Wire(e) => Some(e),
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for TransportError {
    fn from(e: wire::WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        // Keep the "peer is gone" classification transport-agnostic:
        // a dead remote surfaces as EOF on reads and as broken-pipe /
        // reset / abort on writes, all of which mean Disconnected —
        // the same variant the channel backend yields when the peer
        // endpoint is dropped.
        match e.kind() {
            ErrorKind::UnexpectedEof
            | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted => TransportError::Disconnected,
            _ => TransportError::Io(e),
        }
    }
}

/// Shorthand for transport-fallible results, used by every protocol
/// function downstream.
pub type TransportResult<T> = Result<T, TransportError>;

/// Shared traffic counters for one direction of a channel pair.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Total bytes sent from this endpoint.
    pub bytes_sent: AtomicU64,
    /// Total messages sent from this endpoint.
    pub msgs_sent: AtomicU64,
    /// Kind tags of every message sent, in order — the *peer's*
    /// received-observable audit trail (see `tests/security.rs`).
    sent_kinds: Mutex<Vec<&'static str>>,
}

impl TrafficStats {
    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages sent so far.
    pub fn msgs(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Kinds of every message sent so far, in order.
    pub fn sent_kinds(&self) -> Vec<&'static str> {
        self.sent_kinds.lock().clone()
    }
}

/// The backend actually moving messages.
enum Wire {
    /// In-process `crossbeam` channel pair: values move, nothing is
    /// serialized.
    Channel { tx: Sender<Msg>, rx: Receiver<Msg> },
    /// A TCP stream carrying [`crate::wire`] frames. Reader and writer
    /// halves are locked independently so full-duplex protocols (send
    /// while the peer sends) don't deadlock.
    Tcp {
        writer: Mutex<BufWriter<TcpStream>>,
        reader: Mutex<BufReader<TcpStream>>,
    },
}

/// One party's end of a duplex link (in-process or TCP).
pub struct Endpoint {
    wire: Wire,
    stats: Arc<TrafficStats>,
    net: Option<NetworkProfile>,
}

impl Endpoint {
    /// Send a message to the peer.
    pub fn send(&self, msg: Msg) -> TransportResult<()> {
        let bytes = msg.wire_size();
        self.stats
            .bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats.sent_kinds.lock().push(msg.kind());
        if let Some(net) = &self.net {
            std::thread::sleep(net.delay_for(bytes));
        }
        match &self.wire {
            Wire::Channel { tx, .. } => tx.send(msg).map_err(|_| TransportError::Disconnected),
            Wire::Tcp { writer, .. } => {
                // Write header and payload separately: Ct payloads are
                // megabytes, and `encode_frame`'s contiguous buffer
                // would re-copy every one of them on the hot path.
                let payload = wire::encode_payload(&msg);
                let header = wire::frame_header(&msg, &payload);
                let mut w = writer.lock();
                w.write_all(&header)?;
                w.write_all(&payload)?;
                w.flush()?;
                Ok(())
            }
        }
    }

    /// Blocking receive.
    pub fn recv(&self) -> TransportResult<Msg> {
        match &self.wire {
            Wire::Channel { rx, .. } => rx.recv().map_err(|_| TransportError::Disconnected),
            Wire::Tcp { reader, .. } => {
                let mut r = reader.lock();
                let mut header = [0u8; wire::HEADER_LEN];
                r.read_exact(&mut header)?;
                let (kind, len) = wire::decode_header(&header)?;
                let mut payload = vec![0u8; len as usize];
                r.read_exact(&mut payload)?;
                Ok(wire::decode_payload(kind, &payload)?)
            }
        }
    }

    /// Receive, expecting a ciphertext tensor.
    pub fn recv_ct(&self) -> TransportResult<CtMat> {
        match self.recv()? {
            Msg::Ct(ct) => Ok(ct),
            other => Err(mismatch("Ct", &other)),
        }
    }

    /// Receive, expecting a plaintext tensor.
    pub fn recv_mat(&self) -> TransportResult<Dense> {
        match self.recv()? {
            Msg::Mat(m) => Ok(m),
            other => Err(mismatch("Mat", &other)),
        }
    }

    /// Receive, expecting a public key.
    pub fn recv_key(&self) -> TransportResult<PublicKey> {
        match self.recv()? {
            Msg::Key(k) => Ok(k),
            other => Err(mismatch("Key", &other)),
        }
    }

    /// Receive, expecting a support set.
    pub fn recv_support(&self) -> TransportResult<Vec<u32>> {
        match self.recv()? {
            Msg::Support(s) => Ok(s),
            other => Err(mismatch("Support", &other)),
        }
    }

    /// Receive, expecting a scalar.
    pub fn recv_scalar(&self) -> TransportResult<f64> {
        match self.recv()? {
            Msg::Scalar(v) => Ok(v),
            other => Err(mismatch("Scalar", &other)),
        }
    }

    /// Receive, expecting a u64.
    pub fn recv_u64(&self) -> TransportResult<u64> {
        match self.recv()? {
            Msg::U64(v) => Ok(v),
            other => Err(mismatch("U64", &other)),
        }
    }

    /// This endpoint's outbound traffic counters.
    pub fn stats(&self) -> &Arc<TrafficStats> {
        &self.stats
    }

    /// Attach a simulated network profile (applied to every subsequent
    /// `send`, exactly as on the in-process backend).
    pub fn with_network(mut self, profile: NetworkProfile) -> Endpoint {
        self.net = Some(profile);
        self
    }

    /// Wrap an established TCP stream. Disables Nagle's algorithm —
    /// the protocols are strict request/response ping-pong, where
    /// delayed ACKs would otherwise dominate round times.
    pub fn from_tcp_stream(stream: TcpStream) -> TransportResult<Endpoint> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Endpoint {
            wire: Wire::Tcp {
                writer: Mutex::new(writer),
                reader: Mutex::new(reader),
            },
            stats: Arc::new(TrafficStats::default()),
            net: None,
        })
    }

    /// Connect to a listening peer (the "guest" side of a deployment).
    pub fn tcp_connect<A: ToSocketAddrs>(addr: A) -> TransportResult<Endpoint> {
        Endpoint::from_tcp_stream(TcpStream::connect(addr)?)
    }

    /// Connect, retrying while the peer's listener is not up yet (used
    /// by two-process launches where start order is not guaranteed).
    /// Only transient failures are retried; a non-transient error
    /// (unroutable host, permission denied, …) fails fast.
    pub fn tcp_connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: std::time::Duration,
    ) -> TransportResult<Endpoint> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Endpoint::from_tcp_stream(stream),
                Err(e) => {
                    let transient = matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::TimedOut
                    );
                    if !transient || std::time::Instant::now() >= deadline {
                        return Err(e.into());
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        }
    }

    /// Accept one peer connection (the "host" side of a deployment).
    pub fn tcp_accept(listener: &TcpListener) -> TransportResult<Endpoint> {
        let (stream, _) = listener.accept()?;
        Endpoint::from_tcp_stream(stream)
    }
}

fn mismatch(expected: &'static str, got: &Msg) -> TransportError {
    TransportError::TypeMismatch {
        expected,
        got: got.kind(),
    }
}

/// Create a connected pair of endpoints (Party A's end, Party B's end).
pub fn channel_pair() -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let a = Endpoint {
        wire: Wire::Channel {
            tx: tx_ab,
            rx: rx_ba,
        },
        stats: Arc::new(TrafficStats::default()),
        net: None,
    };
    let b = Endpoint {
        wire: Wire::Channel {
            tx: tx_ba,
            rx: rx_ab,
        },
        stats: Arc::new(TrafficStats::default()),
        net: None,
    };
    (a, b)
}

/// A simulated network link: per-message latency plus serialisation
/// delay proportional to the message size.
///
/// The paper's testbed links the two parties at 10 Gbps; to study how
/// BlindFL behaves over slower cross-enterprise links (where its low
/// communication volume matters even more), build the pair with a
/// profile and every `send` pays `latency + bytes/bandwidth`.
#[derive(Clone, Copy, Debug)]
pub struct NetworkProfile {
    /// One-way latency per message.
    pub latency: std::time::Duration,
    /// Link bandwidth in bytes/second (0 = infinite).
    pub bytes_per_sec: u64,
}

impl NetworkProfile {
    /// The paper's testbed: 10 Gbps LAN, sub-millisecond latency.
    pub fn lan_10gbps() -> Self {
        Self {
            latency: std::time::Duration::from_micros(100),
            bytes_per_sec: 10_000_000_000 / 8,
        }
    }

    /// A conservative cross-enterprise WAN: 20 ms, 100 Mbps.
    pub fn wan_100mbps() -> Self {
        Self {
            latency: std::time::Duration::from_millis(20),
            bytes_per_sec: 100_000_000 / 8,
        }
    }

    fn delay_for(&self, bytes: usize) -> std::time::Duration {
        let ser = if self.bytes_per_sec == 0 {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
        };
        self.latency + ser
    }
}

/// Create a connected pair whose sends incur the given simulated
/// network delay (applied on the sender, so wall-clock measurements of
/// protocol phases include the wire time).
pub fn channel_pair_with_network(profile: NetworkProfile) -> (Endpoint, Endpoint) {
    let (a, b) = channel_pair();
    (a.with_network(profile), b.with_network(profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_accounting() {
        let (a, b) = channel_pair();
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.send(Msg::Mat(m.clone())).unwrap();
        a.send(Msg::Scalar(7.5)).unwrap();
        assert_eq!(b.recv_mat().unwrap(), m);
        assert_eq!(b.recv_scalar().unwrap(), 7.5);
        assert_eq!(a.stats().msgs(), 2);
        assert_eq!(a.stats().bytes(), (16 + 32 + 8) as u64);
        assert_eq!(b.stats().msgs(), 0);
    }

    #[test]
    fn duplex_across_threads() {
        let (a, b) = channel_pair();
        let t = std::thread::spawn(move || {
            let v = b.recv_scalar().unwrap();
            b.send(Msg::Scalar(v * 2.0)).unwrap();
        });
        a.send(Msg::Scalar(21.0)).unwrap();
        assert_eq!(a.recv_scalar().unwrap(), 42.0);
        t.join().unwrap();
    }

    #[test]
    fn type_mismatch_is_a_typed_error() {
        let (a, b) = channel_pair();
        a.send(Msg::Scalar(1.0)).unwrap();
        match b.recv_ct() {
            Err(TransportError::TypeMismatch { expected, got }) => {
                assert_eq!(expected, "Ct");
                assert_eq!(got, "Scalar");
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn dropped_peer_is_disconnected_not_panic() {
        let (a, b) = channel_pair();
        drop(b);
        assert!(matches!(
            a.send(Msg::Scalar(1.0)),
            Err(TransportError::Disconnected)
        ));
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn network_profile_delays_sends() {
        let profile = NetworkProfile {
            latency: std::time::Duration::from_millis(5),
            bytes_per_sec: 0,
        };
        let (a, b) = channel_pair_with_network(profile);
        let t = std::time::Instant::now();
        for _ in 0..4 {
            a.send(Msg::Scalar(1.0)).unwrap();
        }
        assert!(t.elapsed() >= std::time::Duration::from_millis(20));
        for _ in 0..4 {
            b.recv_scalar().unwrap();
        }
    }

    #[test]
    fn network_profile_serialisation_delay() {
        // 1 KiB at 1 KiB/s ≈ 1s; use a tiny message + tiny bandwidth to
        // keep the test fast but measurable.
        let profile = NetworkProfile {
            latency: std::time::Duration::ZERO,
            bytes_per_sec: 1_000,
        };
        assert!(profile.delay_for(100) >= std::time::Duration::from_millis(99));
        let lan = NetworkProfile::lan_10gbps();
        assert!(lan.delay_for(1 << 20) < std::time::Duration::from_millis(2));
        let wan = NetworkProfile::wan_100mbps();
        assert!(wan.delay_for(1 << 20) > std::time::Duration::from_millis(20));
    }

    #[test]
    fn support_roundtrip() {
        let (a, b) = channel_pair();
        a.send(Msg::Support(vec![1, 5, 9])).unwrap();
        assert_eq!(b.recv_support().unwrap(), vec![1, 5, 9]);
    }

    /// One connected TCP endpoint pair over localhost.
    fn tcp_pair() -> (Endpoint, Endpoint) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || Endpoint::tcp_connect(addr).unwrap());
        let host = Endpoint::tcp_accept(&listener).unwrap();
        (t.join().unwrap(), host)
    }

    #[test]
    fn tcp_roundtrip_matches_channel_accounting() {
        let (a, b) = tcp_pair();
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.send(Msg::Mat(m.clone())).unwrap();
        a.send(Msg::Scalar(7.5)).unwrap();
        a.send(Msg::Support(vec![3, 1])).unwrap();
        a.send(Msg::U64(9)).unwrap();
        assert_eq!(b.recv_mat().unwrap(), m);
        assert_eq!(b.recv_scalar().unwrap(), 7.5);
        assert_eq!(b.recv_support().unwrap(), vec![3, 1]);
        assert_eq!(b.recv_u64().unwrap(), 9);
        // Byte accounting identical to the in-process backend.
        let (ca, _cb) = channel_pair();
        ca.send(Msg::Mat(m)).unwrap();
        ca.send(Msg::Scalar(7.5)).unwrap();
        ca.send(Msg::Support(vec![3, 1])).unwrap();
        ca.send(Msg::U64(9)).unwrap();
        assert_eq!(a.stats().bytes(), ca.stats().bytes());
        assert_eq!(a.stats().msgs(), ca.stats().msgs());
        assert_eq!(a.stats().sent_kinds(), ca.stats().sent_kinds());
    }

    #[test]
    fn tcp_duplex_and_disconnect() {
        let (a, b) = tcp_pair();
        let t = std::thread::spawn(move || {
            let v = b.recv_scalar().unwrap();
            b.send(Msg::Scalar(v + 1.0)).unwrap();
            // b drops here: a's next recv must be Disconnected.
        });
        a.send(Msg::Scalar(1.0)).unwrap();
        assert_eq!(a.recv_scalar().unwrap(), 2.0);
        t.join().unwrap();
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn tcp_rejects_garbage_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        });
        let host = Endpoint::tcp_accept(&listener).unwrap();
        assert!(matches!(host.recv(), Err(TransportError::Wire(_))));
        t.join().unwrap();
    }
}
