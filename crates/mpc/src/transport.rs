//! In-process two-party transport with traffic accounting.
//!
//! Every cross-party value in the BlindFL protocols flows through an
//! [`Endpoint`] as a typed [`Msg`]. This gives the experiments exact
//! communication-volume numbers and gives the security tests a single
//! choke point to audit: if a restricted value never appears in a
//! message, the other party never sees it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bf_paillier::{CtMat, PublicKey};
use bf_tensor::Dense;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A typed cross-party message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// An encrypted tensor.
    Ct(CtMat),
    /// A plaintext tensor (only ever secret-share pieces or aggregated
    /// outputs — the protocols never put restricted plaintext here).
    Mat(Dense),
    /// A public key (initialisation handshake).
    Key(PublicKey),
    /// A sparse support set (sorted feature / embedding-row indices).
    Support(Vec<u32>),
    /// A scalar (e.g. a loss value for logging, batch sizes).
    Scalar(f64),
    /// A small integer (protocol step tags, dimensions).
    U64(u64),
}

impl Msg {
    /// Serialized size in bytes for traffic accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::Ct(ct) => ct.wire_size(),
            Msg::Mat(m) => 16 + m.rows() * m.cols() * 8,
            Msg::Key(_) => 256, // n + metadata, order-of-magnitude
            Msg::Support(s) => 8 + s.len() * 4,
            Msg::Scalar(_) => 8,
            Msg::U64(_) => 8,
        }
    }

    /// Message kind tag (used by the security audit: the peer's
    /// received-kinds list is this endpoint's sent-kinds list).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Ct(_) => "Ct",
            Msg::Mat(_) => "Mat",
            Msg::Key(_) => "Key",
            Msg::Support(_) => "Support",
            Msg::Scalar(_) => "Scalar",
            Msg::U64(_) => "U64",
        }
    }
}

/// Shared traffic counters for one direction of a channel pair.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Total bytes sent from this endpoint.
    pub bytes_sent: AtomicU64,
    /// Total messages sent from this endpoint.
    pub msgs_sent: AtomicU64,
    /// Kind tags of every message sent, in order — the *peer's*
    /// received-observable audit trail (see `tests/security.rs`).
    sent_kinds: Mutex<Vec<&'static str>>,
}

impl TrafficStats {
    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages sent so far.
    pub fn msgs(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Kinds of every message sent so far, in order.
    pub fn sent_kinds(&self) -> Vec<&'static str> {
        self.sent_kinds.lock().clone()
    }
}

/// One party's end of a duplex channel.
pub struct Endpoint {
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    stats: Arc<TrafficStats>,
    net: Option<NetworkProfile>,
}

impl Endpoint {
    /// Send a message to the peer.
    pub fn send(&self, msg: Msg) {
        let bytes = msg.wire_size();
        self.stats
            .bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats.sent_kinds.lock().push(msg.kind());
        if let Some(net) = &self.net {
            std::thread::sleep(net.delay_for(bytes));
        }
        self.tx.send(msg).expect("peer endpoint dropped");
    }

    /// Blocking receive.
    pub fn recv(&self) -> Msg {
        self.rx.recv().expect("peer endpoint dropped")
    }

    /// Receive, expecting a ciphertext tensor.
    pub fn recv_ct(&self) -> CtMat {
        match self.recv() {
            Msg::Ct(ct) => ct,
            other => panic!("protocol error: expected Ct, got {}", other.kind()),
        }
    }

    /// Receive, expecting a plaintext tensor.
    pub fn recv_mat(&self) -> Dense {
        match self.recv() {
            Msg::Mat(m) => m,
            other => panic!("protocol error: expected Mat, got {}", other.kind()),
        }
    }

    /// Receive, expecting a public key.
    pub fn recv_key(&self) -> PublicKey {
        match self.recv() {
            Msg::Key(k) => k,
            other => panic!("protocol error: expected Key, got {}", other.kind()),
        }
    }

    /// Receive, expecting a support set.
    pub fn recv_support(&self) -> Vec<u32> {
        match self.recv() {
            Msg::Support(s) => s,
            other => panic!("protocol error: expected Support, got {}", other.kind()),
        }
    }

    /// Receive, expecting a scalar.
    pub fn recv_scalar(&self) -> f64 {
        match self.recv() {
            Msg::Scalar(v) => v,
            other => panic!("protocol error: expected Scalar, got {}", other.kind()),
        }
    }

    /// Receive, expecting a u64.
    pub fn recv_u64(&self) -> u64 {
        match self.recv() {
            Msg::U64(v) => v,
            other => panic!("protocol error: expected U64, got {}", other.kind()),
        }
    }

    /// This endpoint's outbound traffic counters.
    pub fn stats(&self) -> &Arc<TrafficStats> {
        &self.stats
    }
}

/// Create a connected pair of endpoints (Party A's end, Party B's end).
pub fn channel_pair() -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let a = Endpoint {
        tx: tx_ab,
        rx: rx_ba,
        stats: Arc::new(TrafficStats::default()),
        net: None,
    };
    let b = Endpoint {
        tx: tx_ba,
        rx: rx_ab,
        stats: Arc::new(TrafficStats::default()),
        net: None,
    };
    (a, b)
}

/// A simulated network link: per-message latency plus serialisation
/// delay proportional to the message size.
///
/// The paper's testbed links the two parties at 10 Gbps; to study how
/// BlindFL behaves over slower cross-enterprise links (where its low
/// communication volume matters even more), build the pair with a
/// profile and every `send` pays `latency + bytes/bandwidth`.
#[derive(Clone, Copy, Debug)]
pub struct NetworkProfile {
    /// One-way latency per message.
    pub latency: std::time::Duration,
    /// Link bandwidth in bytes/second (0 = infinite).
    pub bytes_per_sec: u64,
}

impl NetworkProfile {
    /// The paper's testbed: 10 Gbps LAN, sub-millisecond latency.
    pub fn lan_10gbps() -> Self {
        Self {
            latency: std::time::Duration::from_micros(100),
            bytes_per_sec: 10_000_000_000 / 8,
        }
    }

    /// A conservative cross-enterprise WAN: 20 ms, 100 Mbps.
    pub fn wan_100mbps() -> Self {
        Self {
            latency: std::time::Duration::from_millis(20),
            bytes_per_sec: 100_000_000 / 8,
        }
    }

    fn delay_for(&self, bytes: usize) -> std::time::Duration {
        let ser = if self.bytes_per_sec == 0 {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
        };
        self.latency + ser
    }
}

/// Create a connected pair whose sends incur the given simulated
/// network delay (applied on the sender, so wall-clock measurements of
/// protocol phases include the wire time).
pub fn channel_pair_with_network(profile: NetworkProfile) -> (Endpoint, Endpoint) {
    let (mut a, mut b) = channel_pair();
    a.net = Some(profile);
    b.net = Some(profile);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_accounting() {
        let (a, b) = channel_pair();
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.send(Msg::Mat(m.clone()));
        a.send(Msg::Scalar(7.5));
        assert_eq!(b.recv_mat(), m);
        assert_eq!(b.recv_scalar(), 7.5);
        assert_eq!(a.stats().msgs(), 2);
        assert_eq!(a.stats().bytes(), (16 + 32 + 8) as u64);
        assert_eq!(b.stats().msgs(), 0);
    }

    #[test]
    fn duplex_across_threads() {
        let (a, b) = channel_pair();
        let t = std::thread::spawn(move || {
            let v = b.recv_scalar();
            b.send(Msg::Scalar(v * 2.0));
        });
        a.send(Msg::Scalar(21.0));
        assert_eq!(a.recv_scalar(), 42.0);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "expected Ct")]
    fn type_mismatch_panics() {
        let (a, b) = channel_pair();
        a.send(Msg::Scalar(1.0));
        let _ = b.recv_ct();
    }

    #[test]
    fn network_profile_delays_sends() {
        let profile = NetworkProfile {
            latency: std::time::Duration::from_millis(5),
            bytes_per_sec: 0,
        };
        let (a, b) = channel_pair_with_network(profile);
        let t = std::time::Instant::now();
        for _ in 0..4 {
            a.send(Msg::Scalar(1.0));
        }
        assert!(t.elapsed() >= std::time::Duration::from_millis(20));
        for _ in 0..4 {
            b.recv_scalar();
        }
    }

    #[test]
    fn network_profile_serialisation_delay() {
        // 1 KiB at 1 KiB/s ≈ 1s; use a tiny message + tiny bandwidth to
        // keep the test fast but measurable.
        let profile = NetworkProfile {
            latency: std::time::Duration::ZERO,
            bytes_per_sec: 1_000,
        };
        assert!(profile.delay_for(100) >= std::time::Duration::from_millis(99));
        let lan = NetworkProfile::lan_10gbps();
        assert!(lan.delay_for(1 << 20) < std::time::Duration::from_millis(2));
        let wan = NetworkProfile::wan_100mbps();
        assert!(wan.delay_for(1 << 20) > std::time::Duration::from_millis(20));
    }

    #[test]
    fn support_roundtrip() {
        let (a, b) = channel_pair();
        a.send(Msg::Support(vec![1, 5, 9]));
        assert_eq!(b.recv_support(), vec![1, 5, 9]);
    }
}
